//! Minimal offline stand-in for `criterion`: a real (if simple) wall-clock
//! measuring harness with criterion's call-site API.
//!
//! Each `Bencher::iter` call warms up for the configured duration, picks an
//! iteration count that fills the measurement window, then reports mean
//! ns/iteration (plus throughput when configured). Output goes to stdout,
//! one line per benchmark — machine-greppable as `bench: <id> ... ns/iter`.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark identifier, rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}
impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation for per-element / per-byte rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

#[derive(Debug, Clone, Copy)]
struct Config {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(900),
            sample_size: 10,
        }
    }
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement = d;
        self
    }

    /// Sets the number of samples (kept for API compatibility; the stub
    /// sizes iteration counts from the measurement window instead).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.config);
        f(&mut b);
        b.report("", &id.into().id, None);
        self
    }

    /// Criterion's post-run hook; a no-op here.
    pub fn final_summary(&self) {}
}

/// A group of related benchmarks sharing config and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up = d;
        self
    }

    /// Sets the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement = d;
        self
    }

    /// Sets the sample count for this group (API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a closure that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.config);
        f(&mut b, input);
        b.report(&self.name, &id.into().id, self.throughput);
        self
    }

    /// Benchmarks a plain closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.config);
        f(&mut b);
        b.report(&self.name, &id.into().id, self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    config: Config,
    mean_ns: f64,
}

impl Bencher {
    fn new(config: Config) -> Self {
        Bencher {
            config,
            mean_ns: f64::NAN,
        }
    }

    /// Times the closure: warm-up, then a measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.config.warm_up;
        let mut warm_runs = 0u64;
        let warm_start = Instant::now();
        loop {
            black_box(f());
            warm_runs += 1;
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) as u64 / warm_runs.max(1);
        let budget = self.config.measurement.as_nanos() as u64;
        let iters = (budget / per_iter.max(1)).clamp(1, 50_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Criterion's batched iteration; measured the same way here.
    pub fn iter_batched<S, O, FS, F>(&mut self, mut setup: FS, mut f: F, _size: BatchSize)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        let input = setup();
        // One-shot timing of `f` on a fresh input; setup excluded.
        let start = Instant::now();
        black_box(f(input));
        let once = start.elapsed().as_nanos().max(1) as u64;
        let iters = (self.config.measurement.as_nanos() as u64 / once).clamp(1, 1_000_000);
        let inputs: Vec<S> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(f(input));
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        let full = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 * 1e9 / self.mean_ns;
                println!(
                    "bench: {full:<50} {:>14.1} ns/iter {:>16.0} elem/s",
                    self.mean_ns, rate
                );
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 * 1e9 / self.mean_ns;
                println!(
                    "bench: {full:<50} {:>14.1} ns/iter {:>16.0} B/s",
                    self.mean_ns, rate
                );
            }
            None => println!("bench: {full:<50} {:>14.1} ns/iter", self.mean_ns),
        }
    }
}

/// Batch size hint for `iter_batched` (API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Declares a benchmark group, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
