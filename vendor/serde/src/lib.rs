//! Minimal offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` marker traits plus re-exported
//! derives. The workspace uses the derives as API markers only; actual JSON
//! emission goes through the (equally local) `serde_json` value type.

/// Marker for serializable types.
pub trait Serialize {}

/// Marker for deserializable types.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, String, char);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
