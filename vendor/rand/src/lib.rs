//! Minimal offline stand-in for `rand` 0.8.
//!
//! Implements exactly the slice of the `rand` API this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_range}`, and
//! `seq::SliceRandom::{shuffle, choose}`. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic, fast, and of ample quality
//! for seeded experiment workloads (it is *not* the upstream ChaCha12, so
//! seeded streams differ from crates.io `rand`).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {
        $(
            impl SampleRange for core::ops::Range<$t> {
                type Output = $t;
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl SampleRange for core::ops::RangeInclusive<$t> {
                type Output = $t;
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample from empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*
    };
}
int_ranges!(u8, u16, u32, u64, usize);

macro_rules! signed_ranges {
    ($($t:ty),*) => {
        $(
            impl SampleRange for core::ops::Range<$t> {
                type Output = $t;
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl SampleRange for core::ops::RangeInclusive<$t> {
                type Output = $t;
                fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample from empty range");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                }
            }
        )*
    };
}
signed_ranges!(i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: u64 = a.gen_range(10u64..20);
            assert_eq!(x, b.gen_range(10u64..20));
            assert!((10..20).contains(&x));
        }
        let f: f64 = a.gen_range(0.25..0.75);
        assert!((0.25..0.75).contains(&f));
        let v: f64 = a.gen();
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u64> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never stay sorted");
    }

    #[test]
    fn inclusive_range_hits_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
