//! Minimal offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The workspace's build environment has no network access, so the real
//! crates.io `serde` cannot be vendored. The workspace only uses the
//! derives as markers (no runtime (de)serialization of derived types goes
//! through serde itself), so the derives expand to empty trait impls.

use proc_macro::{TokenStream, TokenTree};

/// Derives the (empty) `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}

/// Derives the (empty) `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl tokens")
}

/// Extracts the type name following the `struct`/`enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    return name.to_string();
                }
            }
        }
    }
    panic!("serde stub derive: could not find a struct/enum name")
}
