//! Minimal offline stand-in for the `crossbeam` facade: scoped threads
//! (backed by `std::thread::scope`, which post-dates crossbeam's API and
//! makes the shim a thin wrapper) plus the [`deque`] work-stealing queues
//! the parallel sweep orchestrator schedules over.

pub mod deque;

use std::any::Any;

/// A scope handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives the scope so it can
    /// spawn further threads (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// A join handle mirroring `crossbeam::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result (`Err` on panic).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Creates a scope in which spawned threads are joined before returning.
///
/// Unlike crossbeam (which collects panics), a panicking child thread
/// propagates when `std::thread::scope` unwinds; the `Ok` wrapper exists
/// for call-site compatibility with `crossbeam::scope(...)`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1u64, 2, 3, 4];
        let chunks: Vec<&[u64]> = data.chunks(2).collect();
        let sums: Vec<u64> = super::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        })
        .expect("scope");
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn nested_spawn_via_scope_argument() {
        let r = super::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21u32).join().map(|x| x * 2).expect("inner"))
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(r, 42);
    }
}
