//! Minimal offline stand-in for `crossbeam-deque`: the injector / worker /
//! stealer triple behind the workspace's work-stealing orchestrator.
//!
//! The real crate is a lock-free Chase–Lev deque; this shim keeps the API
//! and the *scheduling semantics* (FIFO injector, per-worker local queues,
//! opposite-end stealing, batched injector refills) but backs every queue
//! with a `Mutex<VecDeque>`. For the workspace's workloads — tasks that
//! each run thousands of schedule-evaluation slots — queue overhead is
//! noise, and the mutex shim keeps `vendor/` free of `unsafe`.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Outcome of a steal attempt, mirroring `crossbeam_deque::Steal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The operation lost a race and may be retried.
    Retry,
}

impl<T> Steal<T> {
    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// A global FIFO task queue every worker pulls from, mirroring
/// `crossbeam_deque::Injector`.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueues a task at the back.
    pub fn push(&self, task: T) {
        self.queue
            .lock()
            .expect("injector poisoned")
            .push_back(task);
    }

    /// Steals one task from the front.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().expect("injector poisoned").pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Moves a batch of tasks into `dest`'s local queue and pops one of
    /// them, amortizing injector contention across several local pops.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut queue = self.queue.lock().expect("injector poisoned");
        let available = queue.len();
        if available == 0 {
            return Steal::Empty;
        }
        // Half the queue, capped — the real crate's batching policy.
        let batch = (available / 2).clamp(1, 32);
        let mut local = dest.queue.lock().expect("worker poisoned");
        for _ in 0..batch {
            if let Some(t) = queue.pop_front() {
                local.push_back(t);
            }
        }
        match local.pop_front() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Whether the injector currently holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("injector poisoned").is_empty()
    }
}

/// A worker's local queue, mirroring `crossbeam_deque::Worker` (FIFO
/// flavor — the order-preserving one, which the deterministic orchestrator
/// relies on for cache-friendly chunk traversal).
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Default for Worker<T> {
    fn default() -> Self {
        Self::new_fifo()
    }
}

impl<T> Worker<T> {
    /// Creates an empty FIFO worker queue.
    pub fn new_fifo() -> Self {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes a task onto the local queue.
    pub fn push(&self, task: T) {
        self.queue.lock().expect("worker poisoned").push_back(task);
    }

    /// Pops the next local task (front — FIFO order).
    pub fn pop(&self) -> Option<T> {
        self.queue.lock().expect("worker poisoned").pop_front()
    }

    /// A handle other threads can steal from.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }

    /// Whether the local queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("worker poisoned").is_empty()
    }
}

/// A steal handle onto some worker's queue, mirroring
/// `crossbeam_deque::Stealer`.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals one task from the *back* of the victim's queue (the end the
    /// owner touches last, minimizing interference).
    pub fn steal(&self) -> Steal<T> {
        match self.queue.lock().expect("stealer poisoned").pop_back() {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }

    /// Whether the victim's queue was observed empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().expect("stealer poisoned").is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        for i in 0..5 {
            inj.push(i);
        }
        assert_eq!(inj.steal(), Steal::Success(0));
        assert_eq!(inj.steal(), Steal::Success(1));
        assert!(!inj.is_empty());
    }

    #[test]
    fn batch_steal_refills_worker() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        // Half of 10 = batch of 5; first popped is 0, worker keeps 1..=4.
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert_eq!(w.pop(), Some(1));
        assert!(!w.is_empty());
        assert!(!inj.is_empty());
    }

    #[test]
    fn stealer_takes_from_back() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push(3);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(3));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.clone().steal(), Steal::Success(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn cross_thread_stealing_loses_no_tasks() {
        let inj = Injector::new();
        let total = 10_000u64;
        for i in 0..total {
            inj.push(i);
        }
        let workers: Vec<Worker<u64>> = (0..4).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<u64>> = workers.iter().map(Worker::stealer).collect();
        let sums: Vec<u64> = crate::scope(|scope| {
            let handles: Vec<_> = workers
                .iter()
                .map(|w| {
                    let inj = &inj;
                    let stealers = &stealers;
                    scope.spawn(move |_| {
                        let mut sum = 0u64;
                        loop {
                            let task = w.pop().or_else(|| {
                                inj.steal_batch_and_pop(w)
                                    .success()
                                    .or_else(|| stealers.iter().find_map(|s| s.steal().success()))
                            });
                            match task {
                                Some(t) => sum += t,
                                None => break,
                            }
                        }
                        sum
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread"))
                .collect()
        })
        .expect("scope");
        assert_eq!(sums.iter().sum::<u64>(), total * (total - 1) / 2);
    }
}
