//! Minimal offline stand-in for `serde_json`: a JSON `Value` tree with a
//! correct, escaping renderer and a recursive-descent parser. Enough to
//! emit *and read back* machine-readable reports (`BENCH_kernel.json`,
//! `REPRO_table1.json` and friends) without the crates.io dependency.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (rendered with up to 17 significant digits).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with stable (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Convenience object constructor from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        const TWO_POW_64: f64 = 18_446_744_073_709_551_616.0;
        match self {
            Value::Number(x) if *x >= 0.0 && *x == x.trunc() && *x < TWO_POW_64 => Some(*x as u64),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`].
///
/// Accepts exactly one top-level value surrounded by optional whitespace.
/// Number syntax follows RFC 8259; all numbers land in `f64` (like this
/// shim's `Value::Number`).
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the paired \uXXXX.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so any
                    // multi-byte sequence is valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number bytes are UTF-8");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Number(x)
    }
}
impl From<u64> for Value {
    fn from(x: u64) -> Value {
        Value::Number(x as f64)
    }
}
impl From<usize> for Value {
    fn from(x: usize) -> Value {
        Value::Number(x as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn write_number(f: &mut fmt::Formatter<'_>, x: f64) -> fmt::Result {
    if !x.is_finite() {
        return write!(f, "null");
    }
    if x == x.trunc() && x.abs() < 9e15 {
        write!(f, "{}", x as i64)
    } else {
        write!(f, "{x}")
    }
}

fn write_value(f: &mut fmt::Formatter<'_>, v: &Value, indent: usize, pretty: bool) -> fmt::Result {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => write!(f, "null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Number(x) => write_number(f, *x),
        Value::String(s) => write_escaped(f, s),
        Value::Array(items) => {
            if items.is_empty() {
                return write!(f, "[]");
            }
            write!(f, "[{nl}")?;
            for (i, item) in items.iter().enumerate() {
                write!(f, "{pad_in}")?;
                write_value(f, item, indent + 1, pretty)?;
                if i + 1 < items.len() {
                    write!(f, ",")?;
                }
                write!(f, "{nl}")?;
            }
            write!(f, "{pad}]")
        }
        Value::Object(map) => {
            if map.is_empty() {
                return write!(f, "{{}}");
            }
            write!(f, "{{{nl}")?;
            for (i, (k, val)) in map.iter().enumerate() {
                write!(f, "{pad_in}")?;
                write_escaped(f, k)?;
                write!(f, ":")?;
                if pretty {
                    write!(f, " ")?;
                }
                write_value(f, val, indent + 1, pretty)?;
                if i + 1 < map.len() {
                    write!(f, ",")?;
                }
                write!(f, "{nl}")?;
            }
            write!(f, "{pad}}}")
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self, 0, f.alternate())
    }
}

/// Renders a value as compact JSON.
pub fn to_string(v: &Value) -> String {
    format!("{v}")
}

/// Renders a value as human-readable, 2-space-indented JSON.
pub fn to_string_pretty(v: &Value) -> String {
    format!("{v:#}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_json() {
        let v = Value::object([
            ("name", Value::from("a\"b")),
            ("n", Value::from(64u64)),
            ("rate", Value::from(1.5f64)),
            ("flags", Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(
            to_string(&v),
            "{\"flags\":[true,null],\"n\":64,\"name\":\"a\\\"b\",\"rate\":1.5}"
        );
        assert!(to_string_pretty(&v).contains("\n  \"n\": 64"));
    }

    #[test]
    fn round_trips_through_the_parser() {
        let v = Value::object([
            ("name", Value::from("a\"b\\c\nd")),
            ("n", Value::from(64u64)),
            ("rate", Value::from(1.5f64)),
            ("neg", Value::from(-3.25f64)),
            ("big", Value::from(9.6e8f64)),
            (
                "flags",
                Value::Array(vec![Value::Bool(true), Value::Null, Value::from("x")]),
            ),
            ("empty_arr", Value::Array(vec![])),
            ("empty_obj", Value::Object(Default::default())),
        ]);
        assert_eq!(from_str(&to_string(&v)).unwrap(), v);
        assert_eq!(from_str(&to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = from_str(r#"{"s": "tab\tnl\nuniésurr😀"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("tab\tnl\nuniésurr😀"));
    }

    #[test]
    fn accessors_extract_typed_views() {
        let v = from_str(r#"{"n": 42, "x": 1.5, "s": "hi", "a": [1, 2]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(42.0));
        assert_eq!(v.get("x").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("missing").is_none());
        assert!(v.get("s").unwrap().get("nested").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1.",
            "1e",
            "\"unterminated",
            "{\"a\":1} extra",
            "\"bad \\q escape\"",
            "nul",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }
}
