//! Minimal offline stand-in for `serde_json`: a JSON `Value` tree with a
//! correct, escaping renderer. Enough to emit machine-readable reports
//! (`BENCH_kernel.json` and friends) without the crates.io dependency.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (rendered with up to 17 significant digits).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with stable (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Convenience object constructor from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Number(x)
    }
}
impl From<u64> for Value {
    fn from(x: u64) -> Value {
        Value::Number(x as f64)
    }
}
impl From<usize> for Value {
    fn from(x: usize) -> Value {
        Value::Number(x as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn write_number(f: &mut fmt::Formatter<'_>, x: f64) -> fmt::Result {
    if !x.is_finite() {
        return write!(f, "null");
    }
    if x == x.trunc() && x.abs() < 9e15 {
        write!(f, "{}", x as i64)
    } else {
        write!(f, "{x}")
    }
}

fn write_value(f: &mut fmt::Formatter<'_>, v: &Value, indent: usize, pretty: bool) -> fmt::Result {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match v {
        Value::Null => write!(f, "null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Number(x) => write_number(f, *x),
        Value::String(s) => write_escaped(f, s),
        Value::Array(items) => {
            if items.is_empty() {
                return write!(f, "[]");
            }
            write!(f, "[{nl}")?;
            for (i, item) in items.iter().enumerate() {
                write!(f, "{pad_in}")?;
                write_value(f, item, indent + 1, pretty)?;
                if i + 1 < items.len() {
                    write!(f, ",")?;
                }
                write!(f, "{nl}")?;
            }
            write!(f, "{pad}]")
        }
        Value::Object(map) => {
            if map.is_empty() {
                return write!(f, "{{}}");
            }
            write!(f, "{{{nl}")?;
            for (i, (k, val)) in map.iter().enumerate() {
                write!(f, "{pad_in}")?;
                write_escaped(f, k)?;
                write!(f, ":")?;
                if pretty {
                    write!(f, " ")?;
                }
                write_value(f, val, indent + 1, pretty)?;
                if i + 1 < map.len() {
                    write!(f, ",")?;
                }
                write!(f, "{nl}")?;
            }
            write!(f, "{pad}}}")
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self, 0, f.alternate())
    }
}

/// Renders a value as compact JSON.
pub fn to_string(v: &Value) -> String {
    format!("{v}")
}

/// Renders a value as human-readable, 2-space-indented JSON.
pub fn to_string_pretty(v: &Value) -> String {
    format!("{v:#}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_json() {
        let v = Value::object([
            ("name", Value::from("a\"b")),
            ("n", Value::from(64u64)),
            ("rate", Value::from(1.5f64)),
            ("flags", Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(
            to_string(&v),
            "{\"flags\":[true,null],\"n\":64,\"name\":\"a\\\"b\",\"rate\":1.5}"
        );
        assert!(to_string_pretty(&v).contains("\n  \"n\": 64"));
    }
}
