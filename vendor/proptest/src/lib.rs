//! Minimal offline stand-in for `proptest`.
//!
//! Supports the slice of the proptest API this workspace uses: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`), range and
//! tuple strategies, `any::<T>()`, `Just`, `prop_map` / `prop_flat_map`,
//! and `collection::{vec, btree_set}`. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name) and there is no
//! shrinking — a failure reports the assertion panic directly.

/// Deterministic RNG for test-case generation.
pub mod test_runner {
    /// xoshiro256++ seeded from a test-name hash.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary string (the test name).
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a then SplitMix64 expansion.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut next = move || {
                h = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, bound)` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Strategies: value generators composable with `prop_map`/`prop_flat_map`.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// The constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {
            $(
                impl Strategy for core::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end - self.start) as u64;
                        self.start + rng.below(span) as $t
                    }
                }
                impl Strategy for core::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range strategy");
                        let span = (hi - lo) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        lo + rng.below(span + 1) as $t
                    }
                }
            )*
        };
    }
    int_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))+) => {
            $(
                #[allow(non_snake_case)]
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.generate(rng),)+)
                    }
                }
            )+
        };
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }
    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }
    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    /// The `any::<T>()` strategy.
    #[derive(Debug)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Builds the [`Any`] strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// A size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }
    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with sizes in the given range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a `Vec` strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>` with sizes in the given range.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts so tiny element domains cannot loop forever;
            // the set may come out smaller than `target` in that case.
            for _ in 0..(64 * (target + 1)) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// Builds a `BTreeSet` strategy.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Asserts inside a proptest body (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Declares property tests; each `fn` runs `cases` times with generated
/// inputs bound by `pattern in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// The usual glob import.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 1usize..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn combinators_compose((a, b) in (0u64..4).prop_flat_map(|n| (Just(n), n..n + 5))) {
            prop_assert!(b >= a && b < a + 5);
        }

        #[test]
        fn mapped_strategy(x in evens()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn collections_sized(
            v in crate::collection::vec(any::<bool>(), 1..10),
            s in crate::collection::btree_set(1u64..=50, 2..=4),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(s.len() >= 2 && s.len() <= 4);
        }
    }
}
