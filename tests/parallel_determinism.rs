//! Determinism contract of the work-stealing parallel orchestrator:
//! sweeps and simulations must be **bit-identical** at 1, 2, and 8 worker
//! threads, and the task-indexed RNG stream derivation must be
//! collision-free — the two properties that make parallel reproduction
//! runs trustworthy artifacts.

use blind_rendezvous::prelude::*;
use blind_rendezvous::sim::workload::{self, PairScenario};
use blind_rendezvous::sim::{pool, sweep_pair_ttr, ParallelConfig, SweepConfig};
use proptest::prelude::*;
use rdv_sim::algo::AgentCtx;
use rdv_sim::engine::{Agent, EngineConfig, PlanePolicy, ResolveMode};
use std::collections::HashSet;

/// Sweeps one scenario at a given thread count and returns the serialized
/// result — the byte string the determinism claims are stated over.
fn sweep_json(algo: Algorithm, n: u64, scenario: &PairScenario, threads: usize) -> String {
    let cfg = SweepConfig {
        shifts: 96,
        shift_stride: 5,
        spread_over_period: true,
        seeds: 4,
        horizon_override: 0,
        threads,
    };
    let sweep = sweep_pair_ttr(algo, n, scenario, &cfg)
        .unwrap_or_else(|e| panic!("{algo} at {threads} threads: {e}"));
    serde_json::to_string(&sweep.to_json())
}

#[test]
fn sweeps_are_bit_identical_at_1_2_and_8_threads() {
    // Every algorithm class: compiled-table deterministic (Ours), long-
    // period fallback (JumpStay), seeded-random (Random), and the
    // wake-sensitive beacon path that constructs schedules inside the
    // workers (BeaconB).
    let n = 16u64;
    let scenario = workload::adversarial_overlap_one(n, 3, 4).expect("fits");
    for algo in [
        Algorithm::Ours,
        Algorithm::OursSymmetric,
        Algorithm::JumpStay,
        Algorithm::Random,
        Algorithm::BeaconB,
    ] {
        let single = sweep_json(algo, n, &scenario, 1);
        for threads in [2usize, 8] {
            assert_eq!(
                single,
                sweep_json(algo, n, &scenario, threads),
                "{algo}: 1-thread vs {threads}-thread sweep JSON diverged"
            );
        }
    }
}

#[test]
fn multi_agent_simulation_is_thread_count_invariant() {
    let sets: [&[u64]; 6] = [
        &[1, 2, 9],
        &[2, 5],
        &[5, 9, 11],
        &[1, 11],
        &[3, 9],
        &[2, 3, 11],
    ];
    let agents: Vec<Agent> = sets
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let set = ChannelSet::new(s.iter().copied()).expect("valid");
            let ctx = AgentCtx {
                wake: (i as u64) * 137,
                agent_seed: i as u64,
                shared_seed: 7,
                faults: None,
            };
            Agent {
                schedule: Algorithm::Ours.make(12, &set, &ctx).expect("valid"),
                set,
                wake: ctx.wake,
                share_key: None,
            }
        })
        .collect();
    let sim = Simulation::new(agents);
    let horizon = 4_321u64;
    let single = sim.run_with(horizon, &ParallelConfig::with_threads(1));
    assert!(single.all_met(), "missed: {:?}", single.missed);
    for threads in [2usize, 8] {
        let multi = sim.run_with(horizon, &ParallelConfig::with_threads(threads));
        assert_eq!(single, multi, "simulation diverged at {threads} threads");
    }
    // The arena engine's determinism contract covers both resolution
    // modes and both row layouts: forced pair-major, forced bucket scan,
    // bit-plane and slotwise rows, and the per-pair reference engine must
    // all reproduce the single-thread report at every thread count.
    for mode in [ResolveMode::PairMajor, ResolveMode::BucketScan] {
        for plane in [PlanePolicy::Auto, PlanePolicy::Slotwise] {
            for threads in [1usize, 2, 8] {
                let report = sim.run_engine(
                    horizon,
                    &EngineConfig {
                        parallel: ParallelConfig::with_threads(threads),
                        mode,
                        plane,
                        faults: None,
                    },
                );
                assert_eq!(
                    single, report,
                    "{mode:?}/{plane:?} diverged at {threads} threads"
                );
            }
        }
    }
    for threads in [1usize, 2, 8] {
        let per_pair = sim.run_per_pair_reference(horizon, &ParallelConfig::with_threads(threads));
        assert_eq!(
            single, per_pair,
            "per-pair reference diverged at {threads} threads"
        );
    }
}

#[test]
fn task_indexed_streams_do_not_collide() {
    // All agent-seed streams a sweep can derive across 8192 seed slots —
    // stream 0 (agent A) and stream 1 (agent B) of each slot — must be
    // pairwise distinct, or two "independent" agents would hop identically.
    let mut seen = HashSet::new();
    for seed_slot in 0..8192u64 {
        for stream in 0..2u64 {
            assert!(
                seen.insert(pool::stream_seed(seed_slot, stream)),
                "stream collision at seed slot {seed_slot}, stream {stream}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn stream_seed_is_injective_in_the_task_index(
        base in any::<u64>(),
        i in 0u64..100_000,
        j in 0u64..100_000,
    ) {
        if i != j {
            prop_assert_ne!(
                pool::stream_seed(base, i),
                pool::stream_seed(base, j),
                "collision under base {}", base
            );
        }
    }

    #[test]
    fn random_sweeps_stay_deterministic_across_thread_counts(
        n in 8u64..24,
        threads in 2usize..9,
    ) {
        let scenario = workload::adversarial_overlap_one(n, 3, 3).expect("fits");
        let single = sweep_json(Algorithm::Random, n, &scenario, 1);
        let multi = sweep_json(Algorithm::Random, n, &scenario, threads);
        prop_assert_eq!(single, multi);
    }
}
