//! Determinism and correctness contract of the fault-injection layer: on
//! random populations under random seeded fault plans (channel outages ×
//! agent churn), every arena resolution mode at 1, 2, and 8 worker
//! threads, plus the per-pair reference engine, must reproduce a naive
//! slot-by-slot faulted reference **bit-identically** — including the
//! per-pair miss causes (`Departed` vs `HorizonExhausted`).

use blind_rendezvous::prelude::*;
use proptest::prelude::*;
use rdv_sim::algo::AgentCtx;
use rdv_sim::engine::{
    Agent, EngineConfig, MissCause, MissedPair, PlanePolicy, ResolveMode, Simulation,
};
use rdv_sim::{FaultPlan, InPlayWindow, ParallelConfig};

/// A random population description: per agent, a channel set (within a
/// shared universe) and a wake slot.
fn population() -> impl Strategy<Value = (u64, Vec<(Vec<u64>, u64)>)> {
    (6u64..18).prop_flat_map(|n| {
        let agent = (
            proptest::collection::btree_set(1..=n, 1..=5),
            0u64..700, // staggered wakes, some beyond whole blocks
        )
            .prop_map(|(set, wake)| (set.into_iter().collect::<Vec<u64>>(), wake));
        (Just(n), proptest::collection::vec(agent, 2..9))
    })
}

/// Fault plan knobs: seed, epoch length, and rates up to well past the
/// committed profiles (outage 40%, churn 50%).
fn plan_knobs() -> impl Strategy<Value = (u64, u64, u16, u16)> {
    (any::<u64>(), 1u64..128, 0u16..=400, 0u16..=500)
}

/// Builds the population, mixing oblivious and availability-aware
/// algorithms: the plan (when present) is threaded into every `AgentCtx`,
/// so the `Zos`/`AcsHopping` agents derive their hops from its sensed
/// channel sets while `Ours`/`Random` ignore it — and the naive reference
/// below must still agree bit-identically with every arena path.
fn build(n: u64, spec: &[(Vec<u64>, u64)], plan: Option<FaultPlan>) -> Vec<Agent> {
    const MIX: [Algorithm; 4] = [
        Algorithm::Ours,
        Algorithm::Zos,
        Algorithm::Random,
        Algorithm::AcsHopping,
    ];
    spec.iter()
        .enumerate()
        .map(|(i, (channels, wake))| {
            let set = ChannelSet::new(channels.iter().copied()).expect("non-empty");
            let ctx = AgentCtx {
                wake: *wake,
                agent_seed: i as u64,
                shared_seed: 5,
                faults: plan,
            };
            let algo = MIX[i % MIX.len()];
            Agent {
                schedule: algo.make(n, &set, &ctx).expect("valid agent"),
                set,
                wake: *wake,
                share_key: None,
            }
        })
        .collect()
}

type MetEntries = Vec<((usize, usize), u64)>;

/// The naive slot-by-slot faulted reference: a pair meets the first slot
/// `t` where both are in play (woken, arrived, not yet departed), hop the
/// same channel, and that channel is not blacked out at `t`. A missed
/// pair departed if some endpoint's departure (not the horizon) is what
/// ended its joint window.
fn faulted_reference(
    agents: &[Agent],
    horizon: u64,
    plan: &FaultPlan,
) -> (MetEntries, Vec<MissedPair>) {
    let mut met = Vec::new();
    let mut missed = Vec::new();
    for i in 0..agents.len() {
        for j in i + 1..agents.len() {
            if !agents[i].set.overlaps(&agents[j].set) {
                continue;
            }
            let (wi, wj) = (plan.agent_window(i), plan.agent_window(j));
            let start = agents[i]
                .wake
                .max(agents[j].wake)
                .max(wi.arrive)
                .max(wj.arrive);
            let end = horizon.min(wi.depart).min(wj.depart);
            let first = (start..end).find(|&t| {
                let c = agents[i].schedule.channel_at(t - agents[i].wake);
                c == agents[j].schedule.channel_at(t - agents[j].wake)
                    && plan.channel_available(c.into(), t)
            });
            match first {
                Some(t) => met.push(((i, j), t)),
                None => missed.push(MissedPair {
                    pair: (i, j),
                    cause: if wi.depart.min(wj.depart) < horizon {
                        MissCause::Departed
                    } else {
                        MissCause::HorizonExhausted
                    },
                }),
            }
        }
    }
    (met, missed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn faulted_arena_matches_naive_reference_at_every_thread_count(
        (n, spec) in population(),
        (seed, epoch, outage, churn) in plan_knobs(),
        horizon in 600u64..1500,
    ) {
        let plan = FaultPlan::new(seed, epoch, outage, churn, horizon);
        let agents = build(n, &spec, Some(plan));
        let sim = Simulation::new(agents);
        let (expected_met, expected_missed) = faulted_reference(sim.agents(), horizon, &plan);
        for mode in [ResolveMode::Auto, ResolveMode::PairMajor, ResolveMode::BucketScan] {
            for threads in [1usize, 2, 8] {
                // Both row layouts: the bit-plane kernel sees faulted
                // (zeroed) slots only through the shared masked-fill
                // helper, so it must agree with slotwise under any plan.
                for plane in [PlanePolicy::Auto, PlanePolicy::Slotwise] {
                    let cfg = EngineConfig {
                        parallel: ParallelConfig::with_threads(threads),
                        mode,
                        plane,
                        faults: Some(plan),
                    };
                    let report = sim.run_engine(horizon, &cfg);
                    prop_assert_eq!(
                        report.first_meeting.as_slice(),
                        expected_met.as_slice(),
                        "faulted meetings diverged: mode {:?}, {} threads, {:?}",
                        mode, threads, plane
                    );
                    prop_assert_eq!(
                        &report.missed,
                        &expected_missed,
                        "faulted misses diverged: mode {:?}, {} threads, {:?}",
                        mode, threads, plane
                    );
                }
            }
        }
    }

    #[test]
    fn faulted_per_pair_reference_engine_agrees_with_arena(
        (n, spec) in population(),
        (seed, epoch, outage, churn) in plan_knobs(),
        horizon in 600u64..1500,
    ) {
        let plan = FaultPlan::new(seed, epoch, outage, churn, horizon);
        let agents = build(n, &spec, Some(plan));
        let sim = Simulation::new(agents);
        let arena = sim.run_engine(
            horizon,
            &EngineConfig { faults: Some(plan), ..EngineConfig::default() },
        );
        for threads in [1usize, 2, 8] {
            let cfg = EngineConfig {
                parallel: ParallelConfig::with_threads(threads),
                mode: ResolveMode::Auto,
                plane: PlanePolicy::Auto,
                faults: Some(plan),
            };
            let per_pair = sim.run_per_pair_reference_with(horizon, &cfg);
            prop_assert_eq!(
                &arena, &per_pair,
                "faulted per-pair engine diverged at {} threads", threads
            );
        }
    }

    #[test]
    fn pre_arrival_slots_are_masked_on_every_fill_path(
        (n, spec) in population(),
        seed in any::<u64>(),
        epoch in 1u64..128,
        outage in 0u16..=400,
        horizon in 600u64..1500,
    ) {
        // Regression pin for the fill-path guard audit: the masked-row
        // fill zeroes departure and outage slots explicitly but relies on
        // the leading `[0, max(wake, arrive))` prefix being zeroed
        // *upstream* (the `lead` fill). Force heavy churn so late-arrival
        // windows (`arrive > 0`) are common, and assert on every resolve
        // mode × plane policy × thread count that no reported meeting
        // predates either endpoint's arrival — plus full agreement with
        // the naive reference, which starts each pair at
        // `max(wakes, arrivals)` by construction.
        let churn = 900u16;
        let plan = FaultPlan::new(seed, epoch, outage, churn, horizon);
        let agents = build(n, &spec, Some(plan));
        let sim = Simulation::new(agents);
        let late_arrivals = (0..sim.agents().len())
            .filter(|&a| plan.agent_window(a).arrive > 0)
            .count();
        let (expected_met, expected_missed) = faulted_reference(sim.agents(), horizon, &plan);
        for mode in [ResolveMode::Auto, ResolveMode::PairMajor, ResolveMode::BucketScan] {
            for plane in [PlanePolicy::Auto, PlanePolicy::Slotwise] {
                for threads in [1usize, 2, 8] {
                    let cfg = EngineConfig {
                        parallel: ParallelConfig::with_threads(threads),
                        mode,
                        plane,
                        faults: Some(plan),
                    };
                    let report = sim.run_engine(horizon, &cfg);
                    for &((i, j), t) in report.first_meeting.as_slice() {
                        let earliest = sim.agents()[i]
                            .wake
                            .max(sim.agents()[j].wake)
                            .max(plan.agent_window(i).arrive)
                            .max(plan.agent_window(j).arrive);
                        prop_assert!(
                            t >= earliest,
                            "pair ({i},{j}) met at {t} before arrival {earliest} \
                             (mode {:?}, {:?}, {} threads; {} late arrivals)",
                            mode, plane, threads, late_arrivals
                        );
                    }
                    prop_assert_eq!(
                        report.first_meeting.as_slice(),
                        expected_met.as_slice(),
                        "pre-arrival masking diverged: mode {:?}, {:?}, {} threads",
                        mode, plane, threads
                    );
                    prop_assert_eq!(&report.missed, &expected_missed);
                }
            }
        }
    }

    #[test]
    fn windows_and_masks_are_pure_functions_of_the_plan(
        (seed, epoch, outage, churn) in plan_knobs(),
        agent in 0usize..64,
        channel in 1u64..64,
        slot in 0u64..10_000,
    ) {
        let a = FaultPlan::new(seed, epoch, outage, churn, 4_096);
        let b = FaultPlan::new(seed, epoch, outage, churn, 4_096);
        prop_assert_eq!(a.agent_window(agent), b.agent_window(agent));
        prop_assert_eq!(
            a.channel_available(channel, slot),
            b.channel_available(channel, slot)
        );
        // Outage masks are epoch-constant: every slot of one epoch agrees.
        let epoch_start = (slot / epoch) * epoch;
        prop_assert_eq!(
            a.channel_available(channel, slot),
            a.channel_available(channel, epoch_start)
        );
        // Windows are well-formed half-open intervals.
        let w = a.agent_window(agent);
        prop_assert!(w.arrive < w.depart);
        if churn == 0 {
            prop_assert_eq!(w, InPlayWindow::ALWAYS);
        }
    }
}
