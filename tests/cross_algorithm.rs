//! Cross-crate integration: every algorithm on shared scenarios, plus the
//! model invariants (anonymity, determinism, set-confinement) enforced
//! uniformly across the whole workspace.

use blind_rendezvous::prelude::*;
use blind_rendezvous::sim::algo::AgentCtx;
use blind_rendezvous::sim::workload;
use rdv_core::schedule::fingerprint;

const ALL_ALGOS: [Algorithm; 8] = [
    Algorithm::Ours,
    Algorithm::OursSymmetric,
    Algorithm::Crseq,
    Algorithm::JumpStay,
    Algorithm::Drds,
    Algorithm::Random,
    Algorithm::BeaconA,
    Algorithm::BeaconB,
];

#[test]
fn every_algorithm_rendezvouses_on_a_shared_scenario() {
    let n = 16u64;
    let scenario = workload::adversarial_overlap_one(n, 3, 3).unwrap();
    for algo in ALL_ALGOS {
        let ctx_a = AgentCtx {
            wake: 0,
            agent_seed: 1,
            shared_seed: 5,
            faults: None,
        };
        let ctx_b = AgentCtx {
            wake: 17,
            agent_seed: 2,
            shared_seed: 5,
            faults: None,
        };
        let sa = algo.make(n, &scenario.a, &ctx_a).expect("instantiates");
        let sb = algo.make(n, &scenario.b, &ctx_b).expect("instantiates");
        let horizon = algo.horizon(n, 3, 3);
        assert!(
            async_ttr(&sa, &sb, 17, horizon).is_some(),
            "{algo} failed to rendezvous within {horizon}"
        );
    }
}

#[test]
fn schedules_never_leave_their_sets() {
    let n = 24u64;
    let set = ChannelSet::new(vec![3, 9, 14, 22]).unwrap();
    let ctx = AgentCtx {
        wake: 5,
        agent_seed: 9,
        shared_seed: 1,
        faults: None,
    };
    for algo in ALL_ALGOS {
        let s = algo.make(n, &set, &ctx).expect("instantiates");
        for t in 0..2_000 {
            let c = s.channel_at(t).get();
            assert!(set.contains(c), "{algo} hopped on {c} ∉ {set} at t={t}");
        }
    }
}

#[test]
fn anonymity_schedule_depends_only_on_set() {
    // Two agents presenting the same set in different orders must produce
    // identical schedules for every deterministic, beacon-free algorithm.
    let n = 32u64;
    let ctx = AgentCtx::default();
    for algo in Algorithm::TABLE1 {
        let a = algo
            .make(n, &ChannelSet::new(vec![4, 19, 27]).unwrap(), &ctx)
            .expect("instantiates");
        let b = algo
            .make(n, &ChannelSet::new(vec![27, 4, 19]).unwrap(), &ctx)
            .expect("instantiates");
        assert_eq!(
            fingerprint(&a, 5_000),
            fingerprint(&b, 5_000),
            "{algo} violates anonymity"
        );
    }
}

#[test]
fn determinism_across_rebuilds() {
    let n = 20u64;
    let set = ChannelSet::new(vec![1, 10, 20]).unwrap();
    let ctx = AgentCtx {
        wake: 3,
        agent_seed: 7,
        shared_seed: 11,
        faults: None,
    };
    for algo in ALL_ALGOS {
        let a = algo.make(n, &set, &ctx).expect("instantiates");
        let b = algo.make(n, &set, &ctx).expect("instantiates");
        assert_eq!(
            fingerprint(&a, 3_000),
            fingerprint(&b, 3_000),
            "{algo} is not deterministic"
        );
    }
}

#[test]
fn disjoint_sets_never_rendezvous_under_any_algorithm() {
    let n = 16u64;
    let a = ChannelSet::new(vec![1, 2, 3]).unwrap();
    let b = ChannelSet::new(vec![10, 11]).unwrap();
    let ctx = AgentCtx::default();
    for algo in ALL_ALGOS {
        let sa = algo.make(n, &a, &ctx).expect("instantiates");
        let sb = algo.make(n, &b, &ctx).expect("instantiates");
        assert_eq!(
            async_ttr(&sa, &sb, 0, 5_000),
            None,
            "{algo} reported an impossible rendezvous"
        );
    }
}

#[test]
fn symmetric_wrapper_beats_every_baseline_on_symmetric_instances() {
    // O(1) vs growing: the wrapper's worst case over many shifts must stay
    // below every baseline's on the same symmetric instance.
    let n = 64u64;
    let scenario = workload::symmetric_pair(n, 5, 99).unwrap();
    let ctx = AgentCtx::default();
    let wrapped = Algorithm::OursSymmetric
        .make(n, &scenario.a, &ctx)
        .expect("instantiates");
    let mut wrapped_worst = 0;
    for shift in 0..200u64 {
        let ttr = async_ttr(&wrapped, &wrapped, shift, 100).expect("O(1) rendezvous");
        wrapped_worst = wrapped_worst.max(ttr);
    }
    assert!(wrapped_worst < 12, "wrapper worst {wrapped_worst}");
}
