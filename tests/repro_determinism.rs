//! Golden-artifact determinism of the reproduction pipelines, as a
//! `cargo test` twin of CI's byte-for-byte artifact diff: each pipeline
//! runs three times in-process — on 1, 2, and 8 worker threads — and
//! must serialize to identical JSON; the 1-thread run must additionally
//! match the committed artifact exactly.

use blind_rendezvous::pipelines;
use blind_rendezvous::report::Tier;

fn pretty(out: &blind_rendezvous::report::PipelineOutput) -> String {
    serde_json::to_string_pretty(&out.json) + "\n"
}

fn committed(name: &str) -> String {
    let path = format!("{}/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

#[test]
fn lower_pipeline_is_thread_count_invariant_and_matches_committed() {
    let single = pipelines::lower::run(Tier::Smoke, 1);
    let two = pipelines::lower::run(Tier::Smoke, 2);
    let multi = pipelines::lower::run(Tier::Smoke, 8);
    assert!(
        single.violations.is_empty(),
        "smoke lower pipeline violated a bound: {:?}",
        single.violations
    );
    assert_eq!(
        pretty(&single),
        pretty(&multi),
        "lower artifact diverged between 1 and 8 worker threads"
    );
    assert_eq!(
        pretty(&single),
        pretty(&two),
        "lower artifact diverged between 1 and 2 worker threads"
    );
    assert_eq!(single.markdown, multi.markdown);
    assert_eq!(single.markdown, two.markdown);
    assert_eq!(
        pretty(&single),
        committed("REPRO_lower.json"),
        "regenerate with: cargo run --release --bin repro -- --smoke lower"
    );
}

#[test]
fn sdp_pipeline_is_thread_count_invariant_and_matches_committed() {
    let single = pipelines::sdp::run(Tier::Smoke, 1);
    let two = pipelines::sdp::run(Tier::Smoke, 2);
    let multi = pipelines::sdp::run(Tier::Smoke, 8);
    assert!(
        single.violations.is_empty(),
        "smoke sdp pipeline violated a bound: {:?}",
        single.violations
    );
    assert_eq!(
        pretty(&single),
        pretty(&multi),
        "sdp artifact diverged between 1 and 8 worker threads"
    );
    assert_eq!(
        pretty(&single),
        pretty(&two),
        "sdp artifact diverged between 1 and 2 worker threads"
    );
    assert_eq!(single.markdown, multi.markdown);
    assert_eq!(single.markdown, two.markdown);
    assert_eq!(
        pretty(&single),
        committed("REPRO_sdp.json"),
        "regenerate with: cargo run --release --bin repro -- --smoke sdp"
    );
}

#[test]
fn table1_pipeline_is_thread_count_invariant_and_matches_committed() {
    // The whole grid now routes through one task-tree submission
    // (`sweep_pair_grid`): the 1-thread run is the literal sequential
    // nested loop, the 8-thread run steals chunks across cells — both
    // must serialize byte-identically, and match the committed artifact,
    // pinning that the tree refactor changed scheduling, not results.
    let single = pipelines::table1::run(Tier::Smoke, 1);
    let two = pipelines::table1::run(Tier::Smoke, 2);
    let multi = pipelines::table1::run(Tier::Smoke, 8);
    assert!(
        single.violations.is_empty(),
        "smoke table1 pipeline violated a bound: {:?}",
        single.violations
    );
    assert_eq!(
        pretty(&single),
        pretty(&multi),
        "table1 artifact diverged between 1 and 8 worker threads"
    );
    assert_eq!(
        pretty(&single),
        pretty(&two),
        "table1 artifact diverged between 1 and 2 worker threads"
    );
    assert_eq!(single.markdown, multi.markdown);
    assert_eq!(single.markdown, two.markdown);
    assert_eq!(
        pretty(&single),
        committed("REPRO_table1.json"),
        "regenerate with: cargo run --release --bin repro -- --smoke table1"
    );
}

#[test]
fn faults_pipeline_is_thread_count_invariant_and_matches_committed() {
    // The fault-injection grid runs on the quarantined orchestrator and
    // its fault plans are pure functions of seeded SplitMix64 streams, so
    // the degraded-robustness artifact carries the same byte-for-byte
    // contract as the fault-free pipelines.
    let profile = rdv_core::fault::FaultProfile::named("light").expect("committed profile");
    let sabotage = pipelines::faults::Sabotage::NONE;
    let single = pipelines::faults::run(Tier::Smoke, 1, profile, sabotage);
    let two = pipelines::faults::run(Tier::Smoke, 2, profile, sabotage);
    let multi = pipelines::faults::run(Tier::Smoke, 8, profile, sabotage);
    assert!(
        single.failed_cells.is_empty(),
        "unsabotaged smoke faults pipeline lost cells: {:?}",
        single.failed_cells
    );
    assert_eq!(
        pretty(&single),
        pretty(&multi),
        "faults artifact diverged between 1 and 8 worker threads"
    );
    assert_eq!(
        pretty(&single),
        pretty(&two),
        "faults artifact diverged between 1 and 2 worker threads"
    );
    assert_eq!(single.markdown, multi.markdown);
    assert_eq!(single.markdown, two.markdown);
    assert_eq!(
        pretty(&single),
        committed("REPRO_table1_faults.json"),
        "regenerate with: cargo run --release --bin repro -- --smoke table1 --faults light"
    );
    assert_eq!(
        single.markdown,
        committed("REPRO_table1_faults.md"),
        "regenerate with: cargo run --release --bin repro -- --smoke table1 --faults light"
    );
}

#[test]
fn trend_reports_movement_between_generations() {
    // A pipeline diffed against itself is all-flat; against a perturbed
    // clone it reports exactly the touched row.
    let out = pipelines::sdp::run(Tier::Smoke, 1);
    let t = blind_rendezvous::report::trend(&out.json, &out.json).expect("rows exist");
    assert!(t.rows.iter().all(|r| r.movement().abs() < 1e-12));
    assert!(t.only_old.is_empty() && t.only_new.is_empty());
}
