//! Graceful-degradation contract of the fault-injection pipeline: a grid
//! with one deliberately panicking cell and one deliberately
//! sampling-exhausted cell must still complete, emit a partial artifact
//! whose `failed_cells` section lists exactly those two cells sorted by
//! row id (with cause, retry count, and seed), keep every other row — and
//! stay byte-identical across worker thread counts.

use blind_rendezvous::pipelines::faults::{self, Sabotage};
use blind_rendezvous::report::Tier;
use rdv_core::fault::FaultProfile;

/// The sabotage configuration `repro --sabotage` and CI use: cell 1
/// panics, cell 2 exhausts its sampler.
const SABOTAGE: Sabotage = Sabotage {
    poison_cell: Some(1),
    exhaust_cell: Some(2),
};

#[test]
fn sabotaged_grid_degrades_to_a_partial_artifact() {
    let profile = FaultProfile::named("light").expect("committed profile");
    let out = faults::run(Tier::Smoke, 1, profile, SABOTAGE);

    // Exactly the two sabotaged cells failed, sorted by row id. At smoke
    // tier the grid opens with the CRSEQ rows over the axes
    // (0,0), (o,0), (0,c), (o,c) at n=16, so cells 1 and 2 are the o=50
    // and c=150 rows — and "o=0" sorts before "o=50".
    assert_eq!(out.failed_cells.len(), 2, "{:?}", out.failed_cells);
    let exhausted = &out.failed_cells[0];
    let poisoned = &out.failed_cells[1];
    assert_eq!(exhausted.id, "CRSEQ [21]/async/faults[o=0,c=150]/n=16");
    assert_eq!(poisoned.id, "CRSEQ [21]/async/faults[o=50,c=0]/n=16");
    assert!(
        exhausted.cause.contains("gave up after 0 draws"),
        "{}",
        exhausted.cause
    );
    assert_eq!(exhausted.retries, faults::CELL_RETRY_ROUNDS);
    assert_eq!(
        poisoned.cause,
        format!("panic: deliberately poisoned cell: {}", poisoned.id)
    );
    assert_eq!(poisoned.retries, 0);

    // The JSON twin carries the same section, already sorted.
    let failed = out.json.get("failed_cells").expect("tracked section");
    let ids: Vec<&str> = failed
        .as_array()
        .expect("array")
        .iter()
        .map(|c| c.get("id").and_then(|v| v.as_str()).expect("id"))
        .collect();
    assert_eq!(
        ids,
        vec![exhausted.id.as_str(), poisoned.id.as_str()],
        "JSON failed_cells must be row-id-sorted"
    );

    // Every healthy cell still produced its row: 6 algorithms × 4 fault
    // axes × 1 population size at smoke tier, minus the two sabotaged.
    let rows = out
        .json
        .get("rows")
        .and_then(|r| r.as_array())
        .expect("rows");
    assert_eq!(rows.len(), 24 - 2);
    assert!(
        !out.markdown.contains("None — every grid cell completed."),
        "the markdown must flag the partial artifact"
    );
    assert!(out.markdown.contains("faults[o=50,c=0]"));

    // Bound violations and failed cells are independent channels.
    assert!(out.violations.is_empty());
}

#[test]
fn sabotaged_artifact_is_byte_identical_across_thread_counts() {
    let profile = FaultProfile::named("light").expect("committed profile");
    let one = faults::run(Tier::Smoke, 1, profile, SABOTAGE);
    let eight = faults::run(Tier::Smoke, 8, profile, SABOTAGE);
    assert_eq!(
        serde_json::to_string_pretty(&one.json),
        serde_json::to_string_pretty(&eight.json),
        "degraded JSON artifact diverged across thread counts"
    );
    assert_eq!(
        one.markdown, eight.markdown,
        "degraded markdown artifact diverged across thread counts"
    );
    assert_eq!(one.failed_cells, eight.failed_cells);
}

#[test]
fn clean_grid_has_no_failed_cells_and_keeps_every_row() {
    let profile = FaultProfile::named("light").expect("committed profile");
    let out = faults::run(Tier::Smoke, 1, profile, Sabotage::NONE);
    assert!(out.failed_cells.is_empty());
    let rows = out
        .json
        .get("rows")
        .and_then(|r| r.as_array())
        .expect("rows");
    assert_eq!(rows.len(), 24);
    assert!(out.markdown.contains("None — every grid cell completed."));
    // The tracked section is present (and empty) even on clean runs, so
    // consumers can rely on the schema.
    let failed = out.json.get("failed_cells").and_then(|f| f.as_array());
    assert_eq!(failed.map(|f| f.len()), Some(0));
}
