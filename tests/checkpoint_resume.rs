//! Crash-safety contract of the checkpoint layer: the journal
//! round-trips arbitrary cell records (surviving a torn final line and
//! rejecting a stale fingerprint), and a pipeline interrupted after any
//! cell prefix resumes to an artifact **byte-identical** to an
//! uninterrupted run — including a sabotaged, degraded (exit-code-3
//! class) faults grid, whose `FailedCell` retries and causes ride the
//! journal too. Verified at 1 and 8 worker threads, the `cargo test`
//! twin of CI's `resume-smoke` job.

use blind_rendezvous::checkpoint::{CellRecord, Fingerprint, Journal, JournalError};
use blind_rendezvous::pipelines::faults::{self, Sabotage};
use blind_rendezvous::report::{FailedCell, PipelineOutput, Tier};
use proptest::prelude::*;
use rdv_core::fault::FaultProfile;
use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The sabotage configuration `repro --sabotage` and CI use: cell 1
/// panics, cell 2 exhausts its sampler.
const SABOTAGE: Sabotage = Sabotage {
    poison_cell: Some(1),
    exhaust_cell: Some(2),
};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdv_ckpt_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn fp(pipeline: &str) -> Fingerprint {
    Fingerprint {
        pipeline: pipeline.to_string(),
        tier: "smoke".to_string(),
        commit: "cafe1234".to_string(),
        config: "profile=light".to_string(),
    }
}

// ------------------------------------------------ proptest: the journal

/// One arbitrary JSON scalar from the value domains the pipelines
/// actually journal: u64 counters, bools, shortest-round-trip floats,
/// and strings (including quotes/backslashes that exercise escaping).
fn scalar() -> impl Strategy<Value = Value> {
    (0u64..4, any::<u64>(), 1u64..1 << 20).prop_map(|(kind, raw, den)| match kind {
        0 => Value::from(raw >> 12),
        1 => Value::from(raw & 1 == 1),
        2 => Value::from((raw % (1 << 30)) as f64 / den as f64),
        _ => Value::from(format!("s\"{}\\{}", raw % 1000, raw % 7)),
    })
}

/// An arbitrary journaled cell: either a finished row (id + a JSON
/// object payload) or a failed cell with cause/retries/seed.
fn record_strategy() -> impl Strategy<Value = CellRecord> {
    (
        0u64..4,
        any::<u64>(),
        proptest::collection::vec((0u64..1000, scalar()), 1..8),
        0u32..16,
    )
        .prop_map(|(kind, raw, fields, retries)| {
            let id = format!("cell-{}/axis={}/n={}", raw % 37, raw % 5, raw % 500);
            if kind == 0 {
                CellRecord::Failed(FailedCell {
                    id,
                    cause: format!("probe gave up ({raw:#x})"),
                    retries,
                    seed: raw,
                })
            } else {
                let mut obj = BTreeMap::new();
                for (i, (key, value)) in fields.into_iter().enumerate() {
                    obj.insert(format!("k{key}_{i}"), value);
                }
                CellRecord::Row {
                    id,
                    row: Value::Object(obj),
                }
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Create → record* → resume round-trips every record exactly, with
    /// nothing skipped. Duplicate ids resolve last-wins, mirroring how a
    /// resumed run re-journals a cell whose record was lost to a crash.
    #[test]
    fn journal_round_trips_arbitrary_records(
        records in proptest::collection::vec(record_strategy(), 0..12),
    ) {
        let path = scratch("prop_round.ckpt");
        let journal = Journal::create(&path, &fp("REPRO_prop")).expect("create");
        for rec in &records {
            journal.record(rec);
        }
        drop(journal);
        let resumed = Journal::resume(&path, &fp("REPRO_prop")).expect("resume");
        prop_assert!(resumed.skipped.is_empty());
        for rec in &records {
            let last = records.iter().rev().find(|r| r.id() == rec.id());
            prop_assert_eq!(resumed.lookup(rec.id()), last);
        }
    }

    /// Truncating the journal at ANY byte past the header — torn final
    /// line included — still resumes: the complete prefix of records is
    /// replayed, the torn tail is dropped, and nothing is fatal.
    #[test]
    fn torn_final_line_replays_the_complete_prefix(
        records in proptest::collection::vec(record_strategy(), 1..8),
        cut_raw in any::<u64>(),
    ) {
        let path = scratch("prop_torn.ckpt");
        let journal = Journal::create(&path, &fp("REPRO_prop")).expect("create");
        for rec in &records {
            journal.record(rec);
        }
        drop(journal);
        let full = std::fs::read(&path).expect("read");
        let header_len = full.iter().position(|&b| b == b'\n').expect("header") + 1;
        let cut = header_len + (cut_raw as usize) % (full.len() - header_len + 1);
        std::fs::write(&path, &full[..cut]).expect("truncate");
        let resumed = Journal::resume(&path, &fp("REPRO_prop")).expect("torn journal resumes");
        // Whatever survived was genuinely written...
        for rec in resumed.replayed().values() {
            prop_assert!(records.iter().any(|r| r == rec), "foreign record {rec:?}");
        }
        // ...and every record whose framed line survived the cut intact
        // replays (last-wins over the surviving prefix).
        let mut offset = header_len;
        let mut expected: BTreeMap<String, CellRecord> = BTreeMap::new();
        for (line, rec) in String::from_utf8_lossy(&full[header_len..])
            .lines()
            .zip(&records)
        {
            offset += line.len() + 1;
            if offset <= cut {
                expected.insert(rec.id().to_string(), rec.clone());
            }
        }
        for (id, rec) in &expected {
            prop_assert_eq!(resumed.lookup(id), Some(rec));
        }
    }

    /// Any single-field fingerprint mutation is rejected by the strict
    /// resume with `Stale` naming that field, while the lenient open
    /// starts a fresh journal instead.
    #[test]
    fn stale_fingerprint_is_rejected_field_by_field(field in 0usize..4) {
        let path = scratch("prop_stale.ckpt");
        let journal = Journal::create(&path, &fp("REPRO_prop")).expect("create");
        journal.record(&CellRecord::Failed(FailedCell {
            id: "a/n=8".to_string(),
            cause: "probe".to_string(),
            retries: 1,
            seed: 7,
        }));
        drop(journal);
        let mut other = fp("REPRO_prop");
        let (name, slot) = match field {
            0 => ("pipeline", &mut other.pipeline),
            1 => ("tier", &mut other.tier),
            2 => ("commit", &mut other.commit),
            _ => ("config", &mut other.config),
        };
        *slot = format!("{slot}-mutated");
        match Journal::resume(&path, &other) {
            Err(JournalError::Stale { field: f, .. }) => prop_assert_eq!(f, name),
            out => prop_assert!(false, "expected Stale, got {:?}", out.err()),
        }
        let fresh = Journal::open(&path, &other).expect("lenient open recovers");
        prop_assert!(fresh.replayed().is_empty());
    }
}

// ------------------------------- kill-style: the sabotaged faults grid

/// Runs the sabotaged smoke faults grid with a journal at `path`
/// (creating it fresh or strictly resuming it).
fn checkpointed_run(path: &Path, threads: usize, create: bool) -> PipelineOutput {
    let profile = FaultProfile::named("light").expect("committed profile");
    let fingerprint = faults::fingerprint(Tier::Smoke, profile, SABOTAGE);
    let journal = if create {
        Journal::create(path, &fingerprint).expect("create journal")
    } else {
        Journal::resume(path, &fingerprint).expect("resume journal")
    };
    faults::run_with(Tier::Smoke, threads, profile, SABOTAGE, Some(&journal))
}

fn artifact_bytes(out: &PipelineOutput) -> (String, String) {
    (
        serde_json::to_string_pretty(&out.json) + "\n",
        out.markdown.clone(),
    )
}

/// The kill-style resume test: run the sabotaged (degraded) faults grid
/// to completion under a journal, then simulate a crash after K cells by
/// truncating the journal to its first K records, resume, and demand the
/// resumed artifact byte-identical to the uninterrupted one — failed
/// cells, retry counts, and causes included. At 1 and 8 threads.
#[test]
fn truncated_journal_resumes_byte_identical() {
    for threads in [1usize, 8] {
        let path = scratch(&format!("kill_{threads}.ckpt"));
        let baseline = checkpointed_run(&path, threads, true);
        let (base_json, base_md) = artifact_bytes(&baseline);
        assert_eq!(baseline.failed_cells.len(), 2, "sabotage must degrade");

        let full = std::fs::read_to_string(&path).expect("journal");
        let lines: Vec<&str> = full.lines().collect();
        assert_eq!(lines.len(), 1 + 24, "header + every smoke cell");
        // Crash after K = 0, 1, 5, and 11 completed cells (journal keeps
        // header + K records), plus a torn final line on top of K = 5.
        for keep in [0usize, 1, 5, 11] {
            let mut prefix: String = lines[..=keep].iter().map(|l| format!("{l}\n")).collect();
            if keep == 5 {
                let torn = lines[6];
                prefix.push_str(&torn[..torn.len() / 2]);
            }
            std::fs::write(&path, &prefix).expect("truncate");
            let resumed = checkpointed_run(&path, threads, false);
            let (json, md) = artifact_bytes(&resumed);
            assert_eq!(
                json, base_json,
                "resume after {keep} cells at {threads} threads diverged (JSON)"
            );
            assert_eq!(
                md, base_md,
                "resume after {keep} cells at {threads} threads diverged (markdown)"
            );
            assert_eq!(resumed.failed_cells, baseline.failed_cells);
        }
        std::fs::remove_file(&path).ok();
    }
}

/// A fully-journaled grid resumes without recomputing anything: the
/// journal replays all 24 cells and the artifact still matches.
#[test]
fn complete_journal_replays_every_cell() {
    let path = scratch("complete.ckpt");
    let baseline = checkpointed_run(&path, 1, true);
    let profile = FaultProfile::named("light").expect("committed profile");
    let fingerprint = faults::fingerprint(Tier::Smoke, profile, SABOTAGE);
    let journal = Journal::resume(&path, &fingerprint).expect("resume");
    assert_eq!(journal.replayed().len(), 24);
    let resumed = faults::run_with(Tier::Smoke, 1, profile, SABOTAGE, Some(&journal));
    assert_eq!(artifact_bytes(&baseline), artifact_bytes(&resumed));
    std::fs::remove_file(&path).ok();
}

/// A journal from a different sabotage configuration is stale: a clean
/// grid must never splice in rows measured under sabotage.
#[test]
fn sabotage_config_is_part_of_the_fingerprint() {
    let path = scratch("sabotage_fp.ckpt");
    let profile = FaultProfile::named("light").expect("committed profile");
    let sabotaged = faults::fingerprint(Tier::Smoke, profile, SABOTAGE);
    let clean = faults::fingerprint(Tier::Smoke, profile, Sabotage::NONE);
    drop(Journal::create(&path, &sabotaged).expect("create"));
    assert!(matches!(
        Journal::resume(&path, &clean),
        Err(JournalError::Stale {
            field: "config",
            ..
        })
    ));
    std::fs::remove_file(&path).ok();
}
