//! The perf-trend ledger contract, end to end: append/parse round-trips
//! (unit + property), corrupt-line isolation, N-generation regression
//! detection through the real `repro` binary (exit codes included), the
//! dashboard's byte-determinism, the committed `HISTORY.jsonl` →
//! `DASHBOARD.md` regeneration pin, and the typed missing-vs-mismatch
//! split of the two-artifact trend mode.

use blind_rendezvous::history::{
    self, analyze, EntryKind, HostFingerprint, LedgerEntry, SeriesClass, SeriesPoint, TrendOptions,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::Command;

/// A unique scratch path per test (the suite runs tests concurrently).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdv_history_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn host(threads: u64) -> HostFingerprint {
    HostFingerprint {
        os: "linux".to_string(),
        arch: "x86_64".to_string(),
        threads,
    }
}

/// One bench generation with the given `(id, value)` points.
fn generation(source: &str, points: &[(&str, f64)]) -> LedgerEntry {
    LedgerEntry {
        kind: EntryKind::Bench,
        source: source.to_string(),
        tier: "smoke".to_string(),
        commit: "deadbeef".to_string(),
        host: host(1),
        utc: "2026-08-08T00:00:00Z".to_string(),
        rows: points
            .iter()
            .map(|(id, v)| SeriesPoint {
                id: id.to_string(),
                value: *v,
                bound: None,
            })
            .collect(),
    }
}

/// Builds the synthetic 5-generation ledger of the acceptance criterion:
/// two healthy series plus one (`kernel/n=16`) regressed in the latest
/// generation, and a pipeline-style headroom series that stays flat.
fn synthetic_regression_ledger(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    for g in 0..5u32 {
        let kernel_16 = if g == 4 { 40.0 } else { 100.0 + f64::from(g) };
        let mut entry = generation(
            "kernel",
            &[("n=16", kernel_16), ("n=64", 500.0 + f64::from(g))],
        );
        entry.commit = format!("commit{g}");
        history::append(path, &entry).expect("append");
        let mut pipeline = LedgerEntry {
            kind: EntryKind::Pipeline,
            source: "table1".to_string(),
            tier: "smoke".to_string(),
            commit: format!("commit{g}"),
            host: host(1),
            utc: format!("2026-08-0{}T00:00:00Z", g + 1),
            rows: vec![SeriesPoint {
                id: "ours/async/symmetric/n=8".to_string(),
                value: 258.0,
                bound: Some(2368.0),
            }],
        };
        pipeline.rows.push(SeriesPoint {
            id: "ours/async/asymmetric/n=8".to_string(),
            value: 644.0,
            bound: Some(2368.0),
        });
        history::append(path, &pipeline).expect("append");
    }
}

#[test]
fn ledger_file_round_trips() {
    let path = scratch("round_trip.jsonl");
    let _ = std::fs::remove_file(&path);
    let a = generation("kernel", &[("n=16", 1.5), ("n=64", 2.25)]);
    let mut b = generation("multiuser", &[("n_agents=512", 8e9)]);
    b.host = host(8);
    b.rows.push(SeriesPoint {
        id: "bounded".to_string(),
        value: 100.0,
        bound: Some(350.0),
    });
    history::append(&path, &a).expect("append a");
    history::append(&path, &b).expect("append b");
    let ledger = history::read(&path).expect("read");
    assert_eq!(ledger.entries, vec![a, b]);
    assert!(ledger.skipped.is_empty());
}

#[test]
fn corrupt_lines_are_isolated_not_fatal() {
    let path = scratch("corrupt.jsonl");
    let _ = std::fs::remove_file(&path);
    history::append(&path, &generation("kernel", &[("n=16", 1.0)])).expect("append");
    // Simulate a torn write plus a wrong-schema line between two good
    // generations.
    let mut text = std::fs::read_to_string(&path).expect("read back");
    text.push_str("{\"kind\":\"bench\",\"trunc\n");
    text.push_str("{\"kind\":\"martian\"}\n");
    std::fs::write(&path, text).expect("rewrite");
    history::append(&path, &generation("kernel", &[("n=16", 2.0)])).expect("append");
    let ledger = history::read(&path).expect("read");
    assert_eq!(ledger.entries.len(), 2, "both good generations survive");
    assert_eq!(
        ledger
            .skipped
            .iter()
            .map(|s| s.line)
            .collect::<Vec<usize>>(),
        vec![2, 3],
        "corrupt lines reported by line number"
    );
    // The analysis still runs over the surviving generations.
    let trend = analyze(&ledger.entries, &TrendOptions::default());
    assert_eq!(trend.generations, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary ledgers round-trip exactly: values are dyadic rationals
    /// (exactly representable through the f64-only JSON shim), ids and
    /// hosts vary, bounds are present on some rows.
    #[test]
    fn ledger_round_trip_property(
        shape in proptest::collection::vec(
            (0u32..1000, 1usize..6, 1u64..16, 0u8..2),
            1..5,
        ),
    ) {
        let path = scratch(&format!(
            "prop_{}.jsonl",
            shape
                .iter()
                .map(|(v, r, t, k)| format!("{v}_{r}_{t}_{k}"))
                .collect::<Vec<_>>()
                .join("-")
        ));
        let _ = std::fs::remove_file(&path);
        let entries: Vec<LedgerEntry> = shape
            .iter()
            .enumerate()
            .map(|(g, &(v, rows, threads, kind))| LedgerEntry {
                kind: if kind == 0 { EntryKind::Bench } else { EntryKind::Pipeline },
                source: format!("suite{}", v % 3),
                tier: "smoke".to_string(),
                commit: format!("c{g}"),
                host: host(threads),
                utc: history::format_utc(u64::from(v) * 86_401),
                rows: (0..rows)
                    .map(|r| SeriesPoint {
                        id: format!("id={r}"),
                        value: f64::from(v) + (r as f64) / 16.0,
                        bound: (kind == 1).then(|| f64::from(v) * 2.0 + 8.0),
                    })
                    .collect(),
            })
            .collect();
        for e in &entries {
            history::append(&path, e).expect("append");
        }
        let ledger = history::read(&path).expect("read");
        prop_assert_eq!(&ledger.entries, &entries);
        prop_assert!(ledger.skipped.is_empty());
        std::fs::remove_file(&path).expect("cleanup");
    }
}

#[test]
fn synthetic_regression_is_detected_in_process() {
    let path = scratch("synthetic_inproc.jsonl");
    synthetic_regression_ledger(&path);
    let ledger = history::read(&path).expect("read");
    assert_eq!(ledger.entries.len(), 10, "5 bench + 5 pipeline generations");
    let trend = analyze(&ledger.entries, &TrendOptions::default());
    let regressed = trend.regressed();
    assert_eq!(regressed.len(), 1, "exactly the injected series");
    assert_eq!(regressed[0].key, "kernel/n=16");
    // Latest 40 vs median-of-window 101: −60.4%.
    assert!(regressed[0].delta_pct.unwrap() < -55.0);
    // The headroom series tracks bound/measured and stays flat.
    let headroom = trend
        .series
        .iter()
        .find(|s| s.key == "table1@smoke/ours/async/symmetric/n=8")
        .expect("pipeline series present");
    assert_eq!(headroom.class, SeriesClass::Flat);
    assert!((headroom.latest - 2368.0 / 258.0).abs() < 1e-12);
}

#[test]
fn repro_trend_history_exits_nonzero_and_names_the_regression() {
    let path = scratch("synthetic_cli.jsonl");
    synthetic_regression_ledger(&path);
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["trend", "--history"])
        .arg(&path)
        .output()
        .expect("run repro");
    assert_eq!(
        out.status.code(),
        Some(1),
        "regression must exit 1: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("kernel/n=16"), "table names it: {stdout}");
    assert!(stdout.contains("REGRESSED"), "classified: {stdout}");
    assert!(
        stderr.contains("PERF REGRESSION: kernel/n=16"),
        "gate line names the offending series: {stderr}"
    );
    assert!(stdout.contains("1 regressed"), "summary: {stdout}");

    // A window confined to the post-regression generation is flat — and
    // the exit goes green, proving the flag reaches the analysis.
    let healthy = scratch("synthetic_cli_healthy.jsonl");
    let _ = std::fs::remove_file(&healthy);
    for v in [100.0, 101.0, 99.0] {
        history::append(&healthy, &generation("kernel", &[("n=16", v)])).expect("append");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["trend", "--history"])
        .arg(&healthy)
        .args(["--window", "2", "--max-regression-pct", "10"])
        .output()
        .expect("run repro");
    assert_eq!(
        out.status.code(),
        Some(0),
        "healthy ledger must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn repro_dashboard_is_byte_deterministic() {
    let ledger = scratch("dash.jsonl");
    synthetic_regression_ledger(&ledger);
    let render = |out: &PathBuf| {
        let status = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["dashboard", "--history"])
            .arg(&ledger)
            .arg("--out")
            .arg(out)
            .status()
            .expect("run repro dashboard");
        assert!(status.success());
        std::fs::read_to_string(out).expect("dashboard written")
    };
    let a = render(&scratch("dash_a.md"));
    let b = render(&scratch("dash_b.md"));
    assert_eq!(a, b, "two renders of the same ledger diverged");
    assert!(a.contains("## Generations"));
    assert!(a.contains("Pipeline headroom — table1 (smoke tier)"));
    assert!(a.contains("Bench throughput — kernel"));
    assert!(
        a.contains('▁') && a.contains('█'),
        "sparklines rendered: {a}"
    );
    assert!(
        !a.contains("render clock error"),
        "timestamps come from ledger lines"
    );
}

#[test]
fn committed_dashboard_regenerates_from_committed_ledger() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let regenerated = scratch("committed_dash.md");
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["dashboard", "--history"])
        .arg(root.join("HISTORY.jsonl"))
        .arg("--out")
        .arg(&regenerated)
        .status()
        .expect("run repro dashboard");
    assert!(status.success());
    let fresh = std::fs::read_to_string(&regenerated).expect("regenerated dashboard");
    let committed = std::fs::read_to_string(root.join("DASHBOARD.md")).expect("committed copy");
    assert_eq!(
        fresh, committed,
        "committed DASHBOARD.md is stale — regenerate with: \
         cargo run --release --bin repro -- dashboard"
    );
}

#[test]
fn two_artifact_trend_distinguishes_missing_from_mismatch() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let committed = root.join("REPRO_table1.json");
    // Missing artifact: a skip, not a failure (exit 0 with a note).
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("trend")
        .arg(&committed)
        .arg(scratch("definitely_absent.json"))
        .output()
        .expect("run repro trend");
    assert_eq!(out.status.code(), Some(0));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("trend skipped"),
        "skip is explicit"
    );
    // Present but schema-mismatched artifact: a hard failure (exit 2).
    let rowless = scratch("rowless.json");
    std::fs::write(&rowless, "{\"pipeline\": \"table1\", \"rows\": []}\n").expect("write");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("trend")
        .arg(&committed)
        .arg(&rowless)
        .output()
        .expect("run repro trend");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("schema mismatch"),
        "mismatch is loud"
    );
}

#[test]
fn pipeline_run_appends_a_ledger_generation() {
    let dir = scratch("pipeline_append");
    let _ = std::fs::remove_dir_all(&dir);
    let ledger = dir.join("HISTORY.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--smoke", "sdp", "--out-dir"])
        .arg(&dir)
        .arg("--history")
        .arg(&ledger)
        .env("RDV_COMMIT", "test-sha")
        .env("RDV_EPOCH", "1786147200")
        .output()
        .expect("run repro sdp");
    assert!(
        out.status.success(),
        "sdp pipeline failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let parsed = history::read(&ledger).expect("ledger written");
    assert_eq!(parsed.entries.len(), 1);
    let entry = &parsed.entries[0];
    assert_eq!(entry.kind, EntryKind::Pipeline);
    assert_eq!(entry.source, "sdp");
    assert_eq!(entry.tier, "smoke");
    assert_eq!(entry.commit, "test-sha");
    assert_eq!(entry.utc, "2026-08-08T00:00:00Z");
    assert!(entry.host.threads >= 1);
    assert!(
        !entry.rows.is_empty() && entry.rows.iter().all(|r| r.bound.is_some()),
        "pipeline rows carry bounds"
    );
}

#[test]
fn bench_speedup_gates_skip_loudly_on_single_core_hosts() {
    let dir = scratch("bench_single_core");
    let _ = std::fs::remove_dir_all(&dir);
    let ledger = dir.join("HISTORY.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_bench_report"))
        .args([
            "--suite",
            "kernel",
            "--smoke",
            "--min-tree-speedup",
            "999",
            "--min-arena-speedup",
            "999",
            "--out-dir",
        ])
        .arg(&dir)
        .arg("--history")
        .arg(&ledger)
        .env("RDV_COMMIT", "bench-sha")
        .env("RDV_EPOCH", "1786147260")
        .output()
        .expect("run bench_report");
    // Absurd floors: on a single-core host both gates must be skipped
    // (with the explicit honesty log line); on multi-core hosts the
    // gated suites were not measured (--suite kernel), so the floors
    // have nothing to fail either way.
    assert!(
        out.status.success(),
        "bench_report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let single_core = std::thread::available_parallelism()
        .map(|v| v.get() == 1)
        .unwrap_or(true);
    if single_core {
        assert!(
            stdout.contains("skipping --min-tree-speedup gate: host_threads == 1"),
            "tree gate skip is explicit: {stdout}"
        );
        assert!(
            stdout.contains("skipping --min-arena-speedup gate: host_threads == 1"),
            "arena gate skip is explicit: {stdout}"
        );
    }
    // The ledger gained the kernel suite generation either way.
    let parsed = history::read(&ledger).expect("ledger written");
    assert_eq!(parsed.entries.len(), 1);
    assert_eq!(parsed.entries[0].source, "worst_async_ttr_exhaustive");
    assert_eq!(parsed.entries[0].kind, EntryKind::Bench);
    assert_eq!(parsed.entries[0].commit, "bench-sha");
    assert_eq!(
        parsed.entries[0]
            .rows
            .iter()
            .map(|r| r.id.as_str())
            .collect::<Vec<_>>(),
        vec!["n=16", "n=64", "n=256"],
        "gate points keyed by bench id column"
    );
}
