//! Correctness contract of the shared-arena multi-user engine: on random
//! populations with staggered wakes and off-block horizons, both
//! resolution modes — pair-major and bucket scan — and both row layouts
//! — bit-plane and slotwise — must reproduce a naive per-slot reference
//! **bit-identically**, at 1, 2, and 8 worker threads, including the
//! universes whose channel ids exceed the plane budget (where the auto
//! layout must fall back to slotwise rows).

use blind_rendezvous::prelude::*;
use proptest::prelude::*;
use rdv_core::schedule::CyclicSchedule;
use rdv_sim::algo::AgentCtx;
use rdv_sim::engine::{
    Agent, EngineConfig, MissCause, MissedPair, PlanePolicy, ResolveMode, Simulation,
};
use rdv_sim::ParallelConfig;

/// A random population description: per agent, a channel set (within a
/// shared universe) and a wake slot.
fn population() -> impl Strategy<Value = (u64, Vec<(Vec<u64>, u64)>)> {
    (6u64..18).prop_flat_map(|n| {
        let agent = (
            proptest::collection::btree_set(1..=n, 1..=5),
            0u64..700, // staggered wakes, some beyond whole blocks
        )
            .prop_map(|(set, wake)| (set.into_iter().collect::<Vec<u64>>(), wake));
        (Just(n), proptest::collection::vec(agent, 2..9))
    })
}

fn build(n: u64, spec: &[(Vec<u64>, u64)]) -> Vec<Agent> {
    spec.iter()
        .enumerate()
        .map(|(i, (channels, wake))| {
            let set = ChannelSet::new(channels.iter().copied()).expect("non-empty");
            let ctx = AgentCtx {
                wake: *wake,
                agent_seed: i as u64,
                shared_seed: 5,
                faults: None,
            };
            // Mix a deterministic and a seeded-random algorithm across the
            // population so schedules differ in period structure.
            let algo = if i % 3 == 2 {
                Algorithm::Random
            } else {
                Algorithm::Ours
            };
            Agent {
                schedule: algo.make(n, &set, &ctx).expect("valid agent"),
                set,
                wake: *wake,
                share_key: None,
            }
        })
        .collect()
}

/// The same population shapes with every channel id shifted far above
/// the plane budget (`plane_bits > PLANE_BITS_BUDGET`), on cheap cyclic
/// schedules — the universe where the bit-plane layout must fall back to
/// slotwise rows.
fn build_above_plane_budget(spec: &[(Vec<u64>, u64)]) -> Vec<Agent> {
    const BASE: u64 = 1u64 << rdv_core::bitplane::PLANE_BITS_BUDGET;
    spec.iter()
        .enumerate()
        .map(|(i, (channels, wake))| {
            let shifted: Vec<u64> = channels.iter().map(|c| BASE + c).collect();
            let set = ChannelSet::new(shifted.iter().copied()).expect("non-empty");
            let mut period: Vec<Channel> = shifted.iter().map(|&c| Channel::new(c)).collect();
            let rot = i % period.len();
            period.rotate_left(rot);
            Agent {
                schedule: Box::new(CyclicSchedule::new(period).expect("non-empty")),
                set,
                wake: *wake,
                share_key: None,
            }
        })
        .collect()
}

/// Sorted `(pair, first-meeting slot)` entries, as `MeetingMap::as_slice`
/// lays them out.
type MetEntries = Vec<((usize, usize), u64)>;

/// The naive slot-by-slot reference: first co-channel slot of every
/// overlapping pair, scanned through `channel_at` one slot at a time.
fn reference(agents: &[Agent], horizon: u64) -> (MetEntries, Vec<MissedPair>) {
    let mut met = Vec::new();
    let mut missed = Vec::new();
    for i in 0..agents.len() {
        for j in i + 1..agents.len() {
            if !agents[i].set.overlaps(&agents[j].set) {
                continue;
            }
            let start = agents[i].wake.max(agents[j].wake);
            let first = (start..horizon).find(|&t| {
                agents[i].schedule.channel_at(t - agents[i].wake)
                    == agents[j].schedule.channel_at(t - agents[j].wake)
            });
            match first {
                Some(t) => met.push(((i, j), t)),
                // Fault-free runs can only miss by running out of horizon.
                None => missed.push(MissedPair {
                    pair: (i, j),
                    cause: MissCause::HorizonExhausted,
                }),
            }
        }
    }
    (met, missed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arena_modes_match_naive_reference_at_every_thread_count(
        (n, spec) in population(),
        horizon in 600u64..1500, // off-block horizons straddle 1–3 blocks
    ) {
        let agents = build(n, &spec);
        let sim = Simulation::new(agents);
        let (expected_met, expected_missed) = reference(sim.agents(), horizon);
        for mode in [ResolveMode::Auto, ResolveMode::PairMajor, ResolveMode::BucketScan] {
            for threads in [1usize, 2, 8] {
                for plane in [PlanePolicy::Auto, PlanePolicy::Slotwise] {
                    let cfg = EngineConfig {
                        parallel: ParallelConfig::with_threads(threads),
                        mode,
                        plane,
                        faults: None,
                    };
                    let report = sim.run_engine(horizon, &cfg);
                    prop_assert_eq!(
                        report.first_meeting.as_slice(),
                        expected_met.as_slice(),
                        "meetings diverged: mode {:?}, {} threads, {:?}", mode, threads, plane
                    );
                    prop_assert_eq!(
                        &report.missed,
                        &expected_missed,
                        "missed diverged: mode {:?}, {} threads, {:?}", mode, threads, plane
                    );
                    prop_assert_eq!(report.horizon, horizon);
                }
            }
        }
    }

    #[test]
    fn auto_layout_falls_back_bit_identically_above_the_plane_budget(
        (_n, spec) in population(),
        horizon in 600u64..1500,
    ) {
        // Same population shapes, but every channel id shifted above
        // 2^PLANE_BITS_BUDGET: the auto layout must decline to pack
        // planes (rather than widen past the budget) and still match
        // both the naive reference and the forced-slotwise engine.
        let agents = build_above_plane_budget(&spec);
        let sim = Simulation::new(agents);
        let (expected_met, expected_missed) = reference(sim.agents(), horizon);
        for mode in [ResolveMode::Auto, ResolveMode::PairMajor] {
            for plane in [PlanePolicy::Auto, PlanePolicy::Slotwise] {
                for threads in [1usize, 2, 8] {
                    let cfg = EngineConfig {
                        parallel: ParallelConfig::with_threads(threads),
                        mode,
                        plane,
                        faults: None,
                    };
                    let report = sim.run_engine(horizon, &cfg);
                    prop_assert_eq!(
                        report.first_meeting.as_slice(),
                        expected_met.as_slice(),
                        "meetings diverged: mode {:?}, {} threads, {:?}", mode, threads, plane
                    );
                    prop_assert_eq!(
                        &report.missed,
                        &expected_missed,
                        "missed diverged: mode {:?}, {} threads, {:?}", mode, threads, plane
                    );
                }
            }
        }
    }

    #[test]
    fn per_pair_reference_engine_agrees_with_arena(
        (n, spec) in population(),
        horizon in 600u64..1500,
    ) {
        let agents = build(n, &spec);
        let sim = Simulation::new(agents);
        let arena = sim.run(horizon);
        for threads in [1usize, 2, 8] {
            let per_pair = sim.run_per_pair_reference(horizon, &ParallelConfig::with_threads(threads));
            prop_assert_eq!(&arena, &per_pair, "per-pair engine diverged at {} threads", threads);
        }
    }
}
