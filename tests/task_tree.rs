//! The task-tree orchestrator contract (`pool::run_tree`): parallel tree
//! submissions must be **indistinguishable** from the sequential
//! two-nested-loops reference for every tree shape — including empty
//! parents, single-child parents, and whole sweep grids — at every thread
//! count, and a panicking task must propagate instead of deadlocking the
//! pool.

use blind_rendezvous::sim::pool::{self, ParallelConfig, TreePath};
use blind_rendezvous::sim::sweep::{sweep_pair_grid, sweep_pair_ttr, SweepCell};
use blind_rendezvous::sim::workload::{self, PairScenario};
use blind_rendezvous::sim::{Algorithm, SweepConfig, SweepError};
use proptest::prelude::*;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The sequential two-nested-loops reference: what a tree submission of
/// `shape` (each parent a list of child payloads) must produce, computed
/// with plain loops and no orchestrator.
fn reference(shape: &[Vec<u64>]) -> Vec<(u64, Vec<u64>)> {
    shape
        .iter()
        .enumerate()
        .map(|(pi, kids)| {
            let pr = kids.iter().fold(0u64, |a, &b| a.wrapping_add(b)) ^ pi as u64;
            let rs = kids
                .iter()
                .enumerate()
                .map(|(ci, &c)| c.wrapping_mul(3) ^ pool::tree_seed(42, pi as u64, ci as u64))
                .collect();
            (pr, rs)
        })
        .collect()
}

/// The same computation as [`reference`], submitted as a task tree.
fn via_tree(shape: Vec<Vec<u64>>, threads: usize) -> Vec<(u64, Vec<u64>)> {
    pool::run_tree(
        shape,
        &ParallelConfig::with_threads(threads),
        |pi, kids: Vec<u64>| {
            (
                kids.iter().fold(0u64, |a, &b| a.wrapping_add(b)) ^ pi as u64,
                kids,
            )
        },
        |path: TreePath, c: u64| c.wrapping_mul(3) ^ path.stream_seed(42),
    )
}

#[test]
fn empty_single_child_and_mixed_shapes_match_reference() {
    let shapes: Vec<Vec<Vec<u64>>> = vec![
        vec![],                       // empty forest
        vec![vec![], vec![], vec![]], // only empty parents
        vec![vec![7]],                // one single-child parent
        vec![
            vec![9],
            vec![],
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            vec![],
            vec![42],
            vec![0],
        ],
    ];
    for shape in shapes {
        let expected = reference(&shape);
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(
                via_tree(shape.clone(), threads),
                expected,
                "shape {shape:?} diverged at {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn run_tree_equals_the_nested_loop_reference_for_random_shapes(
        shape in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..7), 0..14),
        threads in 1usize..9,
    ) {
        prop_assert_eq!(via_tree(shape.clone(), threads), reference(&shape));
    }
}

#[test]
fn child_panic_propagates_without_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool::run_tree(
            (0..16u64).collect::<Vec<_>>(),
            &ParallelConfig::with_threads(4),
            |_, p| ((), vec![p; 4]),
            |path: TreePath, c: u64| {
                if path.parent == 7 && path.child == 2 {
                    panic!("child bomb");
                }
                c
            },
        );
    }));
    assert!(
        result.is_err(),
        "the child panic must propagate to the caller"
    );
}

#[test]
fn expand_panic_propagates_without_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool::run_tree(
            (0..16u64).collect::<Vec<_>>(),
            &ParallelConfig::with_threads(4),
            |pi, p| {
                if pi == 11 {
                    panic!("expansion bomb");
                }
                ((), vec![p])
            },
            |_path: TreePath, c: u64| c,
        );
    }));
    assert!(
        result.is_err(),
        "the expansion panic must propagate to the caller"
    );
}

#[test]
fn two_phase_phase_a_panic_releases_the_barrier() {
    // Mirrors the barrier tests in `pool`: a phase-a worker dying must
    // release the arrival barrier (drop-guard arrival) so its siblings
    // finish and the panic surfaces at join instead of a deadlock.
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool::run_two_phase(
            &ParallelConfig::with_threads(4),
            (0..8u64).collect::<Vec<_>>(),
            (0..8u64).collect::<Vec<_>>(),
            |i, _t| {
                if i == 3 {
                    panic!("phase-a bomb");
                }
            },
            |_i, t: u64| t,
        );
    }));
    assert!(
        result.is_err(),
        "the phase-a panic must propagate to the caller"
    );
}

#[test]
fn tree_seeds_are_distinct_across_grid_paths() {
    for base in [0u64, 42, u64::MAX] {
        let mut seen = HashSet::new();
        for parent in 0..64u64 {
            for child in 0..64u64 {
                assert!(
                    seen.insert(pool::tree_seed(base, parent, child)),
                    "path seed collision at ({parent}, {child}) under base {base}"
                );
            }
        }
    }
}

/// The grid cells the pipeline-shaped equivalence tests submit: several
/// algorithm classes (compiled-deterministic, long-period, randomized,
/// wake-sensitive) across two universes.
fn grid_cells() -> Vec<SweepCell> {
    let cfg = SweepConfig {
        shifts: 12,
        shift_stride: 7,
        spread_over_period: true,
        seeds: 3,
        horizon_override: 0,
        threads: 1,
    };
    let mut cells = Vec::new();
    for algo in [
        Algorithm::Ours,
        Algorithm::JumpStay,
        Algorithm::Random,
        Algorithm::BeaconB,
    ] {
        for n in [12u64, 16] {
            cells.push(SweepCell {
                algorithm: algo,
                n,
                scenario: workload::adversarial_overlap_one(n, 3, 3).expect("fits"),
                cfg,
            });
        }
    }
    cells
}

#[test]
fn grid_submission_matches_per_cell_sweeps_at_every_thread_count() {
    let cells = grid_cells();
    let per_cell: Vec<String> = cells
        .iter()
        .map(|c| {
            let sweep = sweep_pair_ttr(c.algorithm, c.n, &c.scenario, &c.cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", c.algorithm));
            serde_json::to_string(&sweep.to_json())
        })
        .collect();
    for threads in [1usize, 2, 8] {
        let grid: Vec<String> =
            sweep_pair_grid(cells.clone(), &ParallelConfig::with_threads(threads))
                .into_iter()
                .map(|r| serde_json::to_string(&r.expect("cell sweeps").to_json()))
                .collect();
        assert_eq!(
            grid, per_cell,
            "grid diverged from per-cell sweeps at {threads} threads"
        );
    }
}

#[test]
fn one_bad_cell_does_not_poison_its_grid_neighbors() {
    let mut cells = grid_cells();
    cells.insert(
        1,
        SweepCell {
            algorithm: Algorithm::Ours,
            n: 8,
            scenario: PairScenario {
                a: blind_rendezvous::prelude::ChannelSet::new(vec![1, 2]).expect("valid"),
                b: blind_rendezvous::prelude::ChannelSet::new(vec![3, 4]).expect("valid"),
            },
            cfg: cells[0].cfg,
        },
    );
    for threads in [1usize, 8] {
        let results = sweep_pair_grid(cells.clone(), &ParallelConfig::with_threads(threads));
        assert_eq!(results.len(), cells.len());
        assert_eq!(
            results[1].as_ref().err(),
            Some(&SweepError::DisjointSets),
            "the disjoint cell must fail typed, threads = {threads}"
        );
        for (i, r) in results.iter().enumerate() {
            if i != 1 {
                assert!(
                    r.is_ok(),
                    "cell {i} poisoned by its neighbor at {threads} threads"
                );
            }
        }
    }
}
