//! The task-tree orchestrator contract (`pool::run_tree`): parallel tree
//! submissions must be **indistinguishable** from the sequential
//! two-nested-loops reference for every tree shape — including empty
//! parents, single-child parents, and whole sweep grids — at every thread
//! count, and a panicking task must propagate instead of deadlocking the
//! pool. The hardened variants invert that last clause: under
//! `run_indexed_quarantined`/`run_tree_quarantined` a panicking task is
//! *recorded* in its result slot and the rest of the grid completes;
//! `retry_with_backoff` and `CancelToken` round out the fault-tolerant
//! orchestrator surface.

use blind_rendezvous::sim::pool::{self, ParallelConfig, TaskPanic, TreePath};
use blind_rendezvous::sim::sweep::{sweep_pair_grid, sweep_pair_ttr, SweepCell};
use blind_rendezvous::sim::workload::{self, PairScenario};
use blind_rendezvous::sim::{Algorithm, SweepConfig, SweepError};
use proptest::prelude::*;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The sequential two-nested-loops reference: what a tree submission of
/// `shape` (each parent a list of child payloads) must produce, computed
/// with plain loops and no orchestrator.
fn reference(shape: &[Vec<u64>]) -> Vec<(u64, Vec<u64>)> {
    shape
        .iter()
        .enumerate()
        .map(|(pi, kids)| {
            let pr = kids.iter().fold(0u64, |a, &b| a.wrapping_add(b)) ^ pi as u64;
            let rs = kids
                .iter()
                .enumerate()
                .map(|(ci, &c)| c.wrapping_mul(3) ^ pool::tree_seed(42, pi as u64, ci as u64))
                .collect();
            (pr, rs)
        })
        .collect()
}

/// The same computation as [`reference`], submitted as a task tree.
fn via_tree(shape: Vec<Vec<u64>>, threads: usize) -> Vec<(u64, Vec<u64>)> {
    pool::run_tree(
        shape,
        &ParallelConfig::with_threads(threads),
        |pi, kids: Vec<u64>| {
            (
                kids.iter().fold(0u64, |a, &b| a.wrapping_add(b)) ^ pi as u64,
                kids,
            )
        },
        |path: TreePath, c: u64| c.wrapping_mul(3) ^ path.stream_seed(42),
    )
}

#[test]
fn empty_single_child_and_mixed_shapes_match_reference() {
    let shapes: Vec<Vec<Vec<u64>>> = vec![
        vec![],                       // empty forest
        vec![vec![], vec![], vec![]], // only empty parents
        vec![vec![7]],                // one single-child parent
        vec![
            vec![9],
            vec![],
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            vec![],
            vec![42],
            vec![0],
        ],
    ];
    for shape in shapes {
        let expected = reference(&shape);
        for threads in [1usize, 2, 3, 8] {
            assert_eq!(
                via_tree(shape.clone(), threads),
                expected,
                "shape {shape:?} diverged at {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn run_tree_equals_the_nested_loop_reference_for_random_shapes(
        shape in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..7), 0..14),
        threads in 1usize..9,
    ) {
        prop_assert_eq!(via_tree(shape.clone(), threads), reference(&shape));
    }
}

#[test]
fn child_panic_propagates_without_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool::run_tree(
            (0..16u64).collect::<Vec<_>>(),
            &ParallelConfig::with_threads(4),
            |_, p| ((), vec![p; 4]),
            |path: TreePath, c: u64| {
                if path.parent == 7 && path.child == 2 {
                    panic!("child bomb");
                }
                c
            },
        );
    }));
    assert!(
        result.is_err(),
        "the child panic must propagate to the caller"
    );
}

#[test]
fn expand_panic_propagates_without_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool::run_tree(
            (0..16u64).collect::<Vec<_>>(),
            &ParallelConfig::with_threads(4),
            |pi, p| {
                if pi == 11 {
                    panic!("expansion bomb");
                }
                ((), vec![p])
            },
            |_path: TreePath, c: u64| c,
        );
    }));
    assert!(
        result.is_err(),
        "the expansion panic must propagate to the caller"
    );
}

#[test]
fn barrier_expansion_panic_releases_the_barrier() {
    // Mirrors the barrier tests in `pool`: a fill-phase worker dying must
    // release the arrival barrier (drop-guard arrival) so its siblings
    // finish and the panic surfaces at join instead of a deadlock.
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool::run_tree_barrier(
            (0..8u64).collect::<Vec<_>>(),
            &ParallelConfig::with_threads(4),
            |pi, p| {
                if pi == 3 {
                    panic!("fill bomb");
                }
                (p, vec![p])
            },
            |_path: TreePath, c: u64, _outputs: pool::ParentOutputs<'_, u64>| c,
        );
    }));
    assert!(
        result.is_err(),
        "the fill-phase panic must propagate to the caller"
    );
}

#[test]
fn barrier_children_see_every_parent_output_at_every_thread_count() {
    // The pinning contract the engine's fill/resolve split rides on:
    // by the time any child runs, *all* parent outputs are published and
    // readable through `ParentOutputs`, regardless of thread count.
    for threads in [1usize, 2, 8] {
        let out = pool::run_tree_barrier(
            (0..10u64).collect::<Vec<_>>(),
            &ParallelConfig::with_threads(threads),
            |_pi, p| (p * p, vec![p]),
            |path: TreePath, c: u64, outputs: pool::ParentOutputs<'_, u64>| {
                let total: u64 = (0..outputs.len()).map(|i| *outputs.get(i)).sum();
                total + c + path.parent as u64
            },
        );
        // Sum of squares over 0..10 is 285; each parent carries one child.
        for (p, (square, kids)) in out.iter().enumerate() {
            assert_eq!(*square, (p * p) as u64, "at {threads} threads");
            assert_eq!(
                kids.as_slice(),
                &[285 + 2 * p as u64],
                "at {threads} threads"
            );
        }
    }
}

#[test]
fn tree_seeds_are_distinct_across_grid_paths() {
    for base in [0u64, 42, u64::MAX] {
        let mut seen = HashSet::new();
        for parent in 0..64u64 {
            for child in 0..64u64 {
                assert!(
                    seen.insert(pool::tree_seed(base, parent, child)),
                    "path seed collision at ({parent}, {child}) under base {base}"
                );
            }
        }
    }
}

/// The grid cells the pipeline-shaped equivalence tests submit: several
/// algorithm classes (compiled-deterministic, long-period, randomized,
/// wake-sensitive) across two universes.
fn grid_cells() -> Vec<SweepCell> {
    let cfg = SweepConfig {
        shifts: 12,
        shift_stride: 7,
        spread_over_period: true,
        seeds: 3,
        horizon_override: 0,
        threads: 1,
    };
    let mut cells = Vec::new();
    for algo in [
        Algorithm::Ours,
        Algorithm::JumpStay,
        Algorithm::Random,
        Algorithm::BeaconB,
    ] {
        for n in [12u64, 16] {
            cells.push(SweepCell {
                algorithm: algo,
                n,
                scenario: workload::adversarial_overlap_one(n, 3, 3).expect("fits"),
                cfg,
            });
        }
    }
    cells
}

#[test]
fn grid_submission_matches_per_cell_sweeps_at_every_thread_count() {
    let cells = grid_cells();
    let per_cell: Vec<String> = cells
        .iter()
        .map(|c| {
            let sweep = sweep_pair_ttr(c.algorithm, c.n, &c.scenario, &c.cfg)
                .unwrap_or_else(|e| panic!("{}: {e}", c.algorithm));
            serde_json::to_string(&sweep.to_json())
        })
        .collect();
    for threads in [1usize, 2, 8] {
        let grid: Vec<String> =
            sweep_pair_grid(cells.clone(), &ParallelConfig::with_threads(threads))
                .into_iter()
                .map(|r| serde_json::to_string(&r.expect("cell sweeps").to_json()))
                .collect();
        assert_eq!(
            grid, per_cell,
            "grid diverged from per-cell sweeps at {threads} threads"
        );
    }
}

#[test]
fn one_bad_cell_does_not_poison_its_grid_neighbors() {
    let mut cells = grid_cells();
    cells.insert(
        1,
        SweepCell {
            algorithm: Algorithm::Ours,
            n: 8,
            scenario: PairScenario {
                a: blind_rendezvous::prelude::ChannelSet::new(vec![1, 2]).expect("valid"),
                b: blind_rendezvous::prelude::ChannelSet::new(vec![3, 4]).expect("valid"),
            },
            cfg: cells[0].cfg,
        },
    );
    for threads in [1usize, 8] {
        let results = sweep_pair_grid(cells.clone(), &ParallelConfig::with_threads(threads));
        assert_eq!(results.len(), cells.len());
        assert_eq!(
            results[1].as_ref().err(),
            Some(&SweepError::DisjointSets),
            "the disjoint cell must fail typed, threads = {threads}"
        );
        for (i, r) in results.iter().enumerate() {
            if i != 1 {
                assert!(
                    r.is_ok(),
                    "cell {i} poisoned by its neighbor at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn quarantined_task_panics_are_recorded_not_propagated() {
    for threads in [1usize, 2, 8] {
        let results = pool::run_indexed_quarantined(
            (0..16u64).collect::<Vec<_>>(),
            &ParallelConfig::with_threads(threads),
            |i, v| {
                if i == 5 {
                    panic!("cell bomb {i}");
                }
                v * 2
            },
        );
        assert_eq!(results.len(), 16, "grid truncated at {threads} threads");
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                assert_eq!(
                    r.as_ref().err(),
                    Some(&TaskPanic {
                        message: "cell bomb 5".to_string()
                    }),
                    "poisoned cell not recorded at {threads} threads"
                );
            } else {
                assert_eq!(
                    r.as_ref().ok(),
                    Some(&(i as u64 * 2)),
                    "cell {i} poisoned by its neighbor at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn quarantined_tree_isolates_expansion_and_child_panics() {
    for threads in [1usize, 2, 8] {
        let results = pool::run_tree_quarantined(
            (0..8u64).collect::<Vec<_>>(),
            &ParallelConfig::with_threads(threads),
            |pi, p| {
                if pi == 2 {
                    panic!("expansion bomb");
                }
                (p, vec![p; 3])
            },
            |path: TreePath, c: u64| {
                if path.parent == 4 && path.child == 1 {
                    panic!("child bomb");
                }
                c + 1
            },
        );
        assert_eq!(results.len(), 8);
        for (pi, (parent, children)) in results.iter().enumerate() {
            if pi == 2 {
                // A quarantined expansion contributes no children.
                assert!(parent.is_err(), "expansion bomb lost at {threads} threads");
                assert!(children.is_empty());
                continue;
            }
            assert_eq!(parent.as_ref().ok(), Some(&(pi as u64)));
            assert_eq!(children.len(), 3);
            for (ci, child) in children.iter().enumerate() {
                if pi == 4 && ci == 1 {
                    assert_eq!(
                        child.as_ref().err(),
                        Some(&TaskPanic {
                            message: "child bomb".to_string()
                        })
                    );
                } else {
                    assert_eq!(child.as_ref().ok(), Some(&(pi as u64 + 1)));
                }
            }
        }
    }
}

#[test]
fn retry_backoff_doubles_budgets_and_stops_on_first_ok() {
    // Budgets must follow base · 2^round, and success must short-circuit.
    let mut seen = Vec::new();
    let out = pool::retry_with_backoff(5, 3, |round, budget| {
        seen.push((round, budget));
        if round == 2 {
            Ok(budget)
        } else {
            Err("not yet")
        }
    });
    assert_eq!(out, Ok(12));
    assert_eq!(seen, vec![(0, 3), (1, 6), (2, 12)]);

    // Exhaustion returns the last error with the number of rounds used.
    let out: Result<(), _> = pool::retry_with_backoff(3, 1, |round, _| Err(round));
    assert_eq!(out, Err((2, 3)));

    // A zero base budget stays zero through every doubling — the
    // deterministic exhaustion seam the sabotaged pipeline cells rely on.
    let mut budgets = Vec::new();
    let out: Result<(), _> = pool::retry_with_backoff(4, 0, |_, budget| {
        budgets.push(budget);
        Err(())
    });
    assert_eq!(out, Err(((), 4)));
    assert_eq!(budgets, vec![0, 0, 0, 0]);
}

#[test]
fn cancel_token_latches_and_is_shared_across_clones() {
    let token = pool::CancelToken::new();
    let clone = token.clone();
    assert!(!token.is_cancelled());
    assert!(!clone.is_cancelled());
    clone.cancel();
    assert!(token.is_cancelled(), "cancellation must reach every clone");
    assert!(token.is_cancelled(), "cancellation must latch");

    // An already-elapsed soft deadline trips on first poll.
    let expired = pool::CancelToken::with_deadline(std::time::Duration::ZERO);
    assert!(expired.is_cancelled());
    assert!(expired.is_cancelled(), "deadline cancellation must latch");
}

#[test]
fn cancelled_grid_cells_quarantine_without_deadlock() {
    // The cooperative-cancellation idiom under the quarantined runner: a
    // cancelled cell winds down by panicking, which is recorded in its
    // slot; the submission still joins at every thread count.
    let token = pool::CancelToken::new();
    token.cancel();
    for threads in [1usize, 8] {
        let token = token.clone();
        let results = pool::run_indexed_quarantined(
            (0..12u64).collect::<Vec<_>>(),
            &ParallelConfig::with_threads(threads),
            move |i, v| {
                if token.is_cancelled() && i % 2 == 1 {
                    panic!("cell {i} cancelled");
                }
                v
            },
        );
        assert_eq!(results.len(), 12);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                r.is_err(),
                i % 2 == 1,
                "cell {i} wrong way at {threads} threads"
            );
        }
    }
}
