//! Workspace-level property-based tests: random channel-set geometries,
//! shifts and universes against the paper's guarantees.

use blind_rendezvous::prelude::*;
use proptest::prelude::*;
use rdv_core::verify;

/// Strategy: a universe size and a pair of overlapping subsets.
fn overlapping_instance() -> impl Strategy<Value = (u64, ChannelSet, ChannelSet)> {
    (6u64..40).prop_flat_map(|n| {
        let subset = proptest::collection::btree_set(1..=n, 1..=6);
        (Just(n), subset.clone(), subset, 1..=n).prop_map(|(n, mut a, mut b, shared)| {
            a.insert(shared);
            b.insert(shared);
            (
                n,
                ChannelSet::new(a).expect("non-empty"),
                ChannelSet::new(b).expect("non-empty"),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn general_schedule_always_meets_within_bound(
        (n, a, b) in overlapping_instance(),
        shift in 0u64..10_000,
    ) {
        let sa = GeneralSchedule::asynchronous(n, a.clone()).expect("valid");
        let sb = GeneralSchedule::asynchronous(n, b.clone()).expect("valid");
        let bound = sa.ttr_bound(b.len());
        let ttr = verify::async_ttr(&sa, &sb, shift, bound + 1);
        prop_assert!(ttr.is_some(), "A={a}, B={b}, n={n}, shift={shift}");
        prop_assert!(ttr.expect("checked") <= bound);
    }

    #[test]
    fn rendezvous_lands_on_a_common_channel(
        (n, a, b) in overlapping_instance(),
        shift in 0u64..5_000,
    ) {
        let sa = GeneralSchedule::asynchronous(n, a.clone()).expect("valid");
        let sb = GeneralSchedule::asynchronous(n, b.clone()).expect("valid");
        let bound = sa.ttr_bound(b.len());
        if let Some(ttr) = verify::async_ttr(&sa, &sb, shift, bound + 1) {
            let c = sb.channel_at(ttr).get();
            prop_assert!(a.contains(c) && b.contains(c), "met on {c} ∉ A∩B");
        }
    }

    #[test]
    fn schedules_confined_to_their_sets(
        (n, a, _) in overlapping_instance(),
        t in 0u64..50_000,
    ) {
        let s = GeneralSchedule::asynchronous(n, a.clone()).expect("valid");
        prop_assert!(a.contains(s.channel_at(t).get()));
    }

    #[test]
    fn symmetric_wrapper_constant_regardless_of_instance(
        (n, a, _) in overlapping_instance(),
        shift in 0u64..100_000,
    ) {
        let base = GeneralSchedule::asynchronous(n, a.clone()).expect("valid");
        let w = SymmetricWrapped::new(base, &a);
        let ttr = verify::async_ttr(&w, &w, shift, 13);
        prop_assert!(ttr.is_some_and(|t| t < 12));
    }

    #[test]
    fn pair_family_schedules_are_valid_codewords(n in 2u64..(1 << 24)) {
        use rdv_strings::walk::Walk;
        let fam = PairFamily::new(n).expect("n ≥ 2");
        let s = fam.schedule(1, 2).expect("pair in range");
        let w = Walk::new(s.word());
        prop_assert!(w.is_balanced());
        prop_assert!(w.is_strictly_catalan());
        prop_assert_eq!(w.maximal_count(), 2);
    }

    #[test]
    fn kernel_equivalence_all_algorithms(
        (n, a, b) in overlapping_instance(),
        shift in 0u64..5_000,
        seed in 0u64..4,
    ) {
        // The block/compiled kernels must return bit-identical TTRs and
        // fingerprints to the naive per-slot channel_at path, for every
        // algorithm in the workspace.
        use blind_rendezvous::sim::algo::AgentCtx;
        use rdv_core::compiled::CompiledSchedule;
        use rdv_core::schedule::fingerprint;
        let algos = [
            Algorithm::Ours,
            Algorithm::OursSymmetric,
            Algorithm::Crseq,
            Algorithm::JumpStay,
            Algorithm::Drds,
            Algorithm::Random,
            Algorithm::BeaconA,
            Algorithm::BeaconB,
        ];
        for algo in algos {
            let ctx_a = AgentCtx { wake: 0, agent_seed: seed * 2, shared_seed: seed, faults: None };
            let ctx_b = AgentCtx { wake: shift, agent_seed: seed * 2 + 1, shared_seed: seed, faults: None };
            let (Some(sa), Some(sb)) = (algo.make(n, &a, &ctx_a), algo.make(n, &b, &ctx_b))
            else {
                continue;
            };
            let horizon = algo.horizon(n, a.len(), b.len()).min(20_000);
            let reference = verify::naive::async_ttr(&sa, &sb, shift, horizon);
            prop_assert_eq!(
                verify::async_ttr(&sa, &sb, shift, horizon),
                reference,
                "{} chunked kernel diverged (n={}, shift={})", algo, n, shift
            );
            if let (Some(ca), Some(cb)) =
                (CompiledSchedule::compile(&sa), CompiledSchedule::compile(&sb))
            {
                prop_assert_eq!(
                    verify::async_ttr_tables(ca.table(), cb.table(), shift, horizon),
                    reference,
                    "{} table kernel diverged (n={}, shift={})", algo, n, shift
                );
            }
            // Fingerprints consume fill_channels; compare against a direct
            // per-slot FNV-1a of channel_at.
            let span = 1_500u64;
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for t in 0..span {
                for byte in sa.channel_at(t).get().to_le_bytes() {
                    h ^= u64::from(byte);
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
            }
            prop_assert_eq!(
                fingerprint(&sa, span), h,
                "{} fill_channels fingerprint diverged (n={})", algo, n
            );
        }
    }

    #[test]
    fn exhaustive_sweep_equivalence(
        (n, a, b) in overlapping_instance(),
    ) {
        // The compile-once sliding sweep must match the naive exhaustive
        // sweep exactly — same worst shift, same worst TTR.
        let sa = GeneralSchedule::asynchronous(n, a.clone()).expect("valid");
        let sb = GeneralSchedule::asynchronous(n, b.clone()).expect("valid");
        let horizon = sa.ttr_bound(b.len()) + 1;
        // The naive path costs O(period × TTR); cap the sweep size to keep
        // the reference tractable while still crossing chunk boundaries.
        if sa.period_hint().expect("periodic") <= 4_096 {
            prop_assert_eq!(
                verify::worst_async_ttr_exhaustive(&sa, &sb, horizon),
                verify::naive::worst_async_ttr_exhaustive(&sa, &sb, horizon),
                "exhaustive sweep diverged (A={}, B={}, n={})", a, b, n
            );
        }
    }

    #[test]
    fn baselines_meet_on_random_small_instances(
        seed in 0u64..500,
        shift in 0u64..2_000,
    ) {
        // Jump-Stay and CRSEQ on random overlapping pairs of [8]: the
        // reconstructions must meet within their (generous) horizons.
        let n = 8u64;
        let scenario = blind_rendezvous::sim::workload::random_overlapping_pair(n, 3, 3, seed)
            .expect("fits");
        let js_a = JumpStay::new(n, scenario.a.clone()).expect("valid");
        let js_b = JumpStay::new(n, scenario.b.clone()).expect("valid");
        prop_assert!(verify::async_ttr(&js_a, &js_b, shift, 40_000).is_some());
        let cr_a = Crseq::new(n, scenario.a.clone()).expect("valid");
        let cr_b = Crseq::new(n, scenario.b.clone()).expect("valid");
        prop_assert!(verify::async_ttr(&cr_a, &cr_b, shift, 40_000).is_some());
    }
}
