//! Error-path coverage of the typed sweep failures: the scenario
//! generators and sweep entry points must surface
//! `SweepError::{InvalidScenario, SamplingExhausted, DisjointSets}` (and
//! friends) as typed, displayable errors rather than panics or hangs —
//! previously only their happy paths were exercised by integration tests.

use blind_rendezvous::prelude::*;
use blind_rendezvous::sim::workload::{self, PairScenario};
use blind_rendezvous::sim::{
    sweep_lower_bound, sweep_pair_ttr, LowerSweepConfig, SweepConfig, SweepError,
};

#[test]
fn coalition_parameter_errors_are_invalid_scenario() {
    // band > k, band == 0, and 2k > n can never produce a coalition: each
    // must be caught before any sampling, with an explanatory message.
    for (n, k, band) in [(10u64, 3usize, 4usize), (10, 3, 0), (10, 6, 2)] {
        let err = workload::coalition_pair(n, k, band, 0)
            .expect_err("infeasible coalition parameters must not sample");
        assert!(
            matches!(err, SweepError::InvalidScenario { .. }),
            "({n}, {k}, {band}) produced {err:?}"
        );
        let msg = err.to_string();
        assert!(msg.contains("invalid scenario parameters"), "{msg}");
        assert!(msg.contains("coalition needs"), "{msg}");
    }
}

#[test]
fn exhausted_sampler_is_a_typed_error_not_a_hang() {
    // Sparse regime (4 · private-per-side < usable spectrum) with a zero
    // attempt budget: the budget stays zero through every backoff
    // doubling, so the bounded sampler must give up after its fixed round
    // count with the typed error — the regression fence against the
    // former unbounded resample loop.
    let err = workload::coalition_pair_with_budget(1 << 16, 5, 2, 11, Some(0))
        .expect_err("a zero budget cannot sample anything");
    assert_eq!(
        err,
        SweepError::SamplingExhausted {
            attempts: 0,
            rounds: workload::SAMPLER_BACKOFF_ROUNDS,
        }
    );
    assert!(err.to_string().contains("gave up after 0 draws"), "{err}");
    // A generous budget on the same parameters succeeds — the error above
    // came from the budget, not from infeasibility.
    let ok = workload::coalition_pair_with_budget(1 << 16, 5, 2, 11, Some(10_000))
        .expect("feasible parameters with a real budget");
    assert_eq!(
        ok,
        workload::coalition_pair(1 << 16, 5, 2, 11).expect("same scenario")
    );
}

#[test]
fn disjoint_sets_surface_from_every_entry_point() {
    // Scenario validation…
    assert_eq!(
        PairScenario::try_new(vec![1u64, 2], vec![3, 4]),
        Err(SweepError::DisjointSets)
    );
    // …and both sweep entry points, before any sampling happens.
    let disjoint = PairScenario {
        a: ChannelSet::new(vec![1, 2]).expect("valid"),
        b: ChannelSet::new(vec![3, 4]).expect("valid"),
    };
    assert_eq!(
        sweep_pair_ttr(Algorithm::Ours, 8, &disjoint, &SweepConfig::default())
            .expect_err("disjoint sets cannot sweep"),
        SweepError::DisjointSets
    );
    assert_eq!(
        sweep_lower_bound(Algorithm::Ours, 8, &disjoint, &LowerSweepConfig::default())
            .expect_err("disjoint sets cannot sweep"),
        SweepError::DisjointSets
    );
}

#[test]
fn every_variant_displays_and_is_a_std_error() {
    let variants: Vec<(SweepError, &str)> = vec![
        (
            SweepError::InvalidSet(blind_rendezvous::core::channel::ChannelSetError::Empty),
            "invalid channel set",
        ),
        (SweepError::DisjointSets, "disjoint"),
        (
            SweepError::Unsupported {
                algorithm: Algorithm::Ours,
                n: 8,
            },
            "cannot be instantiated",
        ),
        (SweepError::NoSamples { failures: 3 }, "all 3 samples"),
        (
            SweepError::InvalidScenario { reason: "test" },
            "invalid scenario parameters: test",
        ),
        (
            SweepError::SamplingExhausted {
                attempts: 7,
                rounds: 2,
            },
            "gave up after 7 draws across 2 backoff rounds",
        ),
    ];
    for (err, needle) in variants {
        let msg = err.to_string();
        assert!(msg.contains(needle), "{err:?} displayed as {msg:?}");
        // Each variant must also travel as a boxed std error.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains(needle));
    }
}
