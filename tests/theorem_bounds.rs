//! End-to-end verification of every quantitative claim the reproduction
//! relies on: the Theorem 1 period shape, the Theorem 3 bound, the §3.2
//! constant, and the lower-bound orderings of Section 4.

use blind_rendezvous::prelude::*;
use blind_rendezvous::sim::workload;
use rdv_core::verify;
use rdv_lower::exact::{exact_ra_n2_cyclic, exact_rs_n2, SearchOutcome};

#[test]
fn theorem1_period_is_doubly_logarithmic() {
    // Period at n = 2^62 must be within a small additive constant of the
    // period at n = 16 — the log log shape made concrete.
    let small = PairFamily::new(16).unwrap().period();
    let huge = PairFamily::new(1 << 62).unwrap().period();
    assert!(huge <= small + 16, "period {small} → {huge}");
    assert!(huge <= 72, "absolute budget blown: {huge}");
}

#[test]
fn theorem1_all_pairs_all_shifts_n6() {
    // Fully exhaustive: every overlapping pair of 2-sets of [6], every
    // relative shift, must meet within one period.
    let n = 6u64;
    let fam = PairFamily::new(n).unwrap();
    let period = fam.period();
    let mut pairs = Vec::new();
    for a in 1..=n {
        for b in a + 1..=n {
            pairs.push((a, b));
        }
    }
    for &(a1, b1) in &pairs {
        for &(a2, b2) in &pairs {
            if [a2, b2].iter().any(|c| *c == a1 || *c == b1) {
                let sa = fam.schedule(a1, b1).unwrap();
                let sb = fam.schedule(a2, b2).unwrap();
                for shift in 0..period {
                    let ttr = verify::async_ttr(&sa, &sb, shift, period);
                    assert!(ttr.is_some(), "({a1},{b1}) vs ({a2},{b2}) at shift {shift}");
                }
            }
        }
    }
}

#[test]
fn theorem3_bound_holds_on_random_instances() {
    let n = 48u64;
    for seed in 0..25u64 {
        let scenario = workload::random_overlapping_pair(n, 4, 5, seed).unwrap();
        let sa = GeneralSchedule::asynchronous(n, scenario.a.clone()).unwrap();
        let sb = GeneralSchedule::asynchronous(n, scenario.b.clone()).unwrap();
        let bound = sa.ttr_bound(scenario.b.len());
        for shift in [0u64, 1, 97, 1234, 55_555] {
            let ttr = verify::async_ttr(&sa, &sb, shift, bound + 1)
                .unwrap_or_else(|| panic!("seed {seed} shift {shift}: no rendezvous"));
            assert!(ttr <= bound);
        }
    }
}

#[test]
fn theorem3_bound_scales_with_kl_not_n() {
    // Fix k, l; grow n by 256x; the bound grows only via the pair period.
    let b1 = GeneralSchedule::asynchronous(64, ChannelSet::new(vec![1, 2, 3]).unwrap())
        .unwrap()
        .ttr_bound(3);
    let b2 = GeneralSchedule::asynchronous(1 << 14, ChannelSet::new(vec![1, 2, 3]).unwrap())
        .unwrap()
        .ttr_bound(3);
    assert!(
        b2 < 2 * b1,
        "bound exploded with n: {b1} → {b2} (should be log log growth)"
    );
}

#[test]
fn section32_symmetric_constant_is_twelve() {
    let n = 32u64;
    for seed in 0..10u64 {
        let scenario = workload::symmetric_pair(n, 4, seed).unwrap();
        let base = GeneralSchedule::asynchronous(n, scenario.a.clone()).unwrap();
        let w = SymmetricWrapped::new(base, &scenario.a);
        for shift in 0..100u64 {
            let ttr = verify::async_ttr(&w, &w, shift, 13).expect("O(1) rendezvous");
            assert!(ttr < 12, "seed {seed} shift {shift}: ttr {ttr}");
        }
    }
}

#[test]
fn exact_lower_bounds_bracket_our_construction() {
    // R_s(n,2) from exhaustive search lower-bounds what any (n,2)-schedule
    // can do — including ours. Our pair schedules are cyclic, so compare
    // against the cyclic optimum too.
    let n = 6u64;
    let rs = match exact_rs_n2(n, 5, 1 << 24) {
        SearchOutcome::Optimal(t) => t,
        other => panic!("search failed: {other:?}"),
    };
    // Cyclic schedules face all-rotation constraints, so the optimum jumps
    // sharply: already at n = 3 a period of 6 is needed (and n = 4 exceeds
    // the 2⁶-value search domain entirely) — the asynchronous model is
    // strictly harder, as Theorem 7 predicts.
    let ra = match exact_ra_n2_cyclic(3, 6, 1 << 24) {
        SearchOutcome::Optimal(t) => t,
        other => panic!("search failed: {other:?}"),
    };
    assert_eq!(ra, 6, "cyclic optimum at n=3");
    assert_eq!(
        exact_ra_n2_cyclic(4, 6, 1 << 26),
        SearchOutcome::ExceedsMax,
        "n=4 cyclic needs period > 6"
    );
    // Our measured worst case at n=6 must respect the sync optimum.
    let fam = PairFamily::new(n).unwrap();
    let sa = fam.schedule(1, 2).unwrap();
    let sb = fam.schedule(2, 3).unwrap();
    let worst = verify::worst_async_ttr_exhaustive(&sa, &sb, 4 * fam.period()).expect("rendezvous");
    assert!(
        worst.ttr + 1 >= u64::from(rs),
        "measured {} beats the provable sync optimum {rs}",
        worst.ttr
    );
}

#[test]
fn randomized_baseline_obeys_its_whp_bound_statistically() {
    // O(kl log n): with k=l=3, n=64 → scale ~54; 99% of trials should land
    // within a small multiple.
    let n = 64u64;
    let scenario = workload::adversarial_overlap_one(n, 3, 3).unwrap();
    let mut over = 0;
    let trials = 200;
    for seed in 0..trials {
        let a = RandomHopping::new(scenario.a.clone(), seed * 2);
        let b = RandomHopping::new(scenario.b.clone(), seed * 2 + 1);
        let ttr = verify::async_ttr(&a, &b, seed % 17, 100_000).expect("whp");
        if ttr > 540 {
            over += 1;
        }
    }
    assert!(
        over < trials / 10,
        "{over}/{trials} trials exceeded 10x the expected scale"
    );
}
