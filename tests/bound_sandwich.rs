//! The sandwich invariant, as a property suite: for every cell of the
//! smoke-tier reproduction grids,
//!
//! ```text
//! lower::best_bound(scenario) ≤ measured worst TTR ≤ upper bound,
//! ```
//!
//! where the lower slice is the Theorem 7 covering bound (certified
//! whenever the shift sweep is exhaustive), and the upper slice is the
//! Theorem 3 / §3.2 bound on the proven rows and the guarantee horizon on
//! the reconstructed baselines. Proptest-generated channel sets feed the
//! same scenarios to `crates/lower` (the bound) and to
//! `rdv_sim::sweep_pair_ttr` / `sweep_lower_bound` (the measurement), so
//! the two sides can never drift apart silently.

use blind_rendezvous::pipelines::{self, cell_bound, grid_dimensions, grid_scenario};
use blind_rendezvous::report::Tier;
use proptest::prelude::*;
use rdv_core::general::GeneralSchedule;
use rdv_core::schedule::Schedule;
use rdv_sim::sweep::{sweep_lower_bound, sweep_pair_ttr, LowerSweepConfig, SweepConfig};
use rdv_sim::workload;
use rdv_sim::Algorithm;

/// Every cell of the smoke-tier grid — all eight algorithms × sync/async
/// × sym/asym × the universe ladder — respects the sandwich invariant,
/// the exact check the `repro lower` pipeline gates in CI.
#[test]
fn smoke_grid_cells_are_sandwiched() {
    let (ns, _, _) = grid_dimensions(Tier::Smoke);
    let k = pipelines::GRID_K;
    for algo in pipelines::PIPELINE_ALGOS {
        for kind in ["asymmetric", "symmetric"] {
            for &n in ns {
                let scenario = grid_scenario(kind, n, k);
                let (upper, _, gated) = cell_bound(algo, n, &scenario);
                for sync in [true, false] {
                    let cfg = LowerSweepConfig {
                        sync,
                        max_exhaustive_shifts: 256,
                        sampled_shifts: 16,
                        horizon_override: 0,
                        threads: 0,
                    };
                    let cell = sweep_lower_bound(algo, n, &scenario, &cfg)
                        .unwrap_or_else(|e| panic!("{algo}/{kind}/n={n}/sync={sync}: {e}"));
                    assert!(
                        cell.lower_slice_ok(),
                        "{algo}/{kind}/n={n}/sync={sync}: certified lower {} > measured {}",
                        cell.certified_bound,
                        cell.witness_ttr
                    );
                    if gated {
                        assert_eq!(cell.failures, 0, "{algo}/{kind}/n={n}: horizon misses");
                        assert!(
                            cell.witness_ttr <= upper,
                            "{algo}/{kind}/n={n}/sync={sync}: measured {} > upper bound {upper}",
                            cell.witness_ttr
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Proptest-generated overlapping channel sets: the full sandwich
    /// chain on Theorem 3 schedules —
    /// `best_bound ≤ sampled max ≤ exhaustive max ≤ ttr_bound`.
    #[test]
    fn random_scenarios_are_sandwiched(
        n in 8u64..=20,
        k in 2usize..=4,
        ell in 2usize..=4,
        seed in 0u64..1000,
    ) {
        let scenario = workload::random_overlapping_pair(n, k, ell, seed).expect("k, ell ≤ n");
        // The upper slice: Theorem 3's proven bound for this scenario.
        let sa = GeneralSchedule::asynchronous(n, scenario.a.clone()).expect("valid");
        let upper = sa.ttr_bound(ell);

        // The measured middle: exhaustive worst case over all shifts in
        // [0, period_A), through the sweep harness.
        let cell = sweep_lower_bound(
            Algorithm::Ours,
            n,
            &scenario,
            &LowerSweepConfig {
                max_exhaustive_shifts: 1 << 14,
                ..LowerSweepConfig::default()
            },
        )
        .expect("overlapping scenario sweeps");
        if !cell.exhaustive {
            // Period beyond the cap: the certified-vs-witness comparison
            // is only meaningful on exhaustive sweeps; skip this case.
            continue;
        }
        prop_assert_eq!(cell.failures, 0);

        // The lower slice, computed directly from crates/lower on the
        // same schedules the sweep measured.
        let sb = GeneralSchedule::asynchronous(n, scenario.b.clone()).expect("valid");
        let lower = rdv_lower::best_bound(&sa, &sb);
        prop_assert_eq!(lower, cell.certified_bound, "sweep must use the same bound");
        prop_assert!(
            lower <= cell.witness_ttr,
            "certified lower {} > exhaustive worst {}", lower, cell.witness_ttr
        );
        prop_assert!(
            cell.witness_ttr <= upper,
            "exhaustive worst {} > Theorem 3 bound {}", cell.witness_ttr, upper
        );

        // A sampled sweep of the same cell can only see a subset of the
        // shifts, so its max is below the exhaustive witness.
        let sampled = sweep_pair_ttr(
            Algorithm::Ours,
            n,
            &scenario,
            &SweepConfig {
                shifts: 8,
                shift_stride: 3,
                spread_over_period: true,
                seeds: 1,
                horizon_override: 0,
                threads: 0,
            },
        )
        .expect("sampled sweep");
        prop_assert!(
            sampled.summary.max <= cell.witness_ttr,
            "sampled max {} > exhaustive worst {}", sampled.summary.max, cell.witness_ttr
        );
    }

    /// The covering bound is sound against *any* pair of periodic
    /// schedules, not just the paper's: the exhaustively measured worst
    /// case of the round-robin family never undercuts it.
    #[test]
    fn covering_bound_sound_for_round_robin(
        k in 1usize..=5,
        ell in 1usize..=5,
        offset in 0u64..4,
    ) {
        use rdv_core::channel::{Channel, ChannelSet};
        // A = {1..k+1}, B = {k+offset+1−min.., ...}: overlap not required —
        // disjoint pairs simply never reach coverage and saturate the cap.
        let a: Vec<Channel> = (1..=k as u64).map(Channel::new).collect();
        let b: Vec<Channel> = (k as u64 + offset..k as u64 + offset + ell as u64)
            .map(Channel::new)
            .collect();
        let sa = rdv_core::schedule::CyclicSchedule::new(a.clone()).expect("non-empty");
        let sb = rdv_core::schedule::CyclicSchedule::new(b.clone()).expect("non-empty");
        let cap = 4096u64;
        let bound = rdv_lower::coverage_bound(&sa, &sb, cap);
        let overlap = ChannelSet::new(a.iter().map(|c| c.get()))
            .unwrap()
            .overlaps(&ChannelSet::new(b.iter().map(|c| c.get())).unwrap());
        if overlap {
            let pa = sa.period_hint().expect("cyclic");
            let horizon = 1u64 << 16;
            let mut worst = 0u64;
            for d in 0..pa {
                // Round-robins of even periods can parity-trap (e.g.
                // {1,2} vs {2,3} at even shift, never aligned on 2); a
                // missed horizon means the true worst case is at least
                // the horizon, far above any bound the cap allows.
                let ttr = rdv_core::verify::async_ttr(&sa, &sb, d, horizon).unwrap_or(horizon);
                worst = worst.max(ttr);
            }
            prop_assert!(bound <= worst, "bound {} > exhaustive worst {}", bound, worst);
        } else {
            prop_assert_eq!(bound, cap, "disjoint pairs must saturate the scan cap");
        }
    }
}
