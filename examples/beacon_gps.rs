//! Section 5's scenario: radios within reach of a common random beacon
//! (GPS is the paper's example) rendezvous dramatically faster — from
//! `Ω(|A||B|)` without the beacon to `O(|A| + |B| + log n)` with it.
//!
//! Compares protocol A (fresh `Θ(log n)` beacon bits per permutation) with
//! protocol B (expander-walk amplification, `O(1)` bits per step) and the
//! deterministic Theorem 3 schedule on the same instance.
//!
//! ```text
//! cargo run --release --example beacon_gps
//! ```

use blind_rendezvous::prelude::*;

fn median(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn main() {
    let n = 512u64;
    let a = ChannelSet::new((1..=24).collect::<Vec<u64>>()).expect("valid");
    let b = ChannelSet::new((24..=47).collect::<Vec<u64>>()).expect("valid");
    println!("universe [{n}]; |A| = |B| = 24, overlap = 1 channel (ch24)");
    println!();

    // Deterministic baseline: Theorem 3.
    let sa = GeneralSchedule::asynchronous(n, a.clone()).expect("valid");
    let sb = GeneralSchedule::asynchronous(n, b.clone()).expect("valid");
    let det_ttr = async_ttr(&sa, &sb, 100, sa.ttr_bound(24) + 1).expect("guaranteed");

    // Beacon protocols, over 50 seeded beacon streams.
    let trials = 50u64;
    let horizon = 200_000;
    let mut ttrs_a = Vec::new();
    let mut ttrs_b = Vec::new();
    for seed in 0..trials {
        let beacon = BeaconStream::new(seed);
        let pa1 = BeaconProtocolA::new(beacon, n, a.clone(), 0);
        let pa2 = BeaconProtocolA::new(beacon, n, b.clone(), 100);
        ttrs_a.push(async_ttr(&pa1, &pa2, 100, horizon).unwrap_or(horizon));
        let pb1 = BeaconProtocolB::new(beacon, n, a.clone(), 0);
        let pb2 = BeaconProtocolB::new(beacon, n, b.clone(), 100);
        ttrs_b.push(async_ttr(&pb1, &pb2, 100, horizon).unwrap_or(horizon));
    }

    println!("{:<34}{:>12}", "scheme", "TTR (slots)");
    println!("{:<34}{:>12}", "Theorem 3 (no beacon, worst-case)", det_ttr);
    println!(
        "{:<34}{:>12}",
        "protocol A (median over beacons)",
        median(ttrs_a)
    );
    println!(
        "{:<34}{:>12}",
        "protocol B (median over beacons)",
        median(ttrs_b)
    );
    println!();
    println!(
        "k+l+log2(n) = {} — protocol B's additive scale",
        24 + 24 + 9
    );
    println!("kl = 576 — the Theorem 7 barrier no beacon-free scheme can beat");
}
