//! Quickstart: two radios with different channel sets and different
//! wake-up times discover each other, deterministically.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use blind_rendezvous::prelude::*;

fn main() {
    let n = 128; // the spectrum: channels 1..=128

    // Alice and Bob each sense a different set of free channels. They know
    // nothing about each other — not even that the other exists.
    let alice = ChannelSet::new(vec![7, 42, 99]).expect("valid set");
    let bob = ChannelSet::new(vec![13, 42, 81, 100]).expect("valid set");

    // Each builds its schedule from its own set alone (anonymity).
    let sched_a = GeneralSchedule::asynchronous(n, alice.clone()).expect("valid universe");
    let sched_b = GeneralSchedule::asynchronous(n, bob.clone()).expect("valid universe");

    // Bob wakes up 1_000 slots after Alice (asynchrony).
    let shift = 1_000;
    let bound = sched_a.ttr_bound(bob.len());
    let ttr = async_ttr(&sched_a, &sched_b, shift, bound + 1)
        .expect("Theorem 3 guarantees rendezvous within the bound");

    let meeting_channel = sched_b.channel_at(ttr);
    println!("universe         : [{n}]");
    println!("alice            : {alice}");
    println!("bob              : {bob} (wakes {shift} slots later)");
    println!("met after        : {ttr} slots (both awake)");
    println!("guaranteed bound : {bound} slots (O(|A||B| log log n))");
    println!("meeting channel  : {meeting_channel}");

    assert_eq!(
        sched_a.channel_at(shift + ttr),
        sched_b.channel_at(ttr),
        "both radios are on the same channel at the meeting slot"
    );
    assert!(alice.contains(meeting_channel.get()) && bob.contains(meeting_channel.get()));
}
