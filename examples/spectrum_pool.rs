//! A multi-agent dynamic-spectrum scenario: a population of radios camped
//! on clustered bands (TV-white-space style) all discovering each other.
//!
//! Runs the discrete-time simulator over every pair simultaneously and
//! prints per-pair first-meeting statistics, comparing the paper's
//! construction with the Jump-Stay baseline on the *same* population.
//!
//! ```text
//! cargo run --release --example spectrum_pool
//! ```

use blind_rendezvous::prelude::*;
use blind_rendezvous::sim::engine::{Agent, Simulation};
use blind_rendezvous::sim::workload;
use rdv_sim::algo::AgentCtx;

fn run(algo: Algorithm, n: u64, sets: &[ChannelSet]) -> (usize, usize, u64, f64) {
    let agents: Vec<Agent> = sets
        .iter()
        .enumerate()
        .map(|(i, set)| {
            let wake = (i as u64) * 37 % 301; // staggered wake-ups
            let ctx = AgentCtx {
                wake,
                agent_seed: i as u64,
                shared_seed: 7,
                faults: None,
            };
            Agent {
                schedule: algo.make(n, set, &ctx).expect("valid agent"),
                set: set.clone(),
                wake,
                share_key: None,
            }
        })
        .collect();
    let sim = Simulation::new(agents);
    let horizon = algo.horizon(n, 8, 8).max(1 << 18);
    let report = sim.run(horizon);
    let met = report.first_meeting.len();
    let missed = report.missed.len();
    let ttrs: Vec<u64> = report
        .first_meeting
        .iter()
        .filter_map(|((i, j), _)| report.ttr(i, j, sim.agents()))
        .collect();
    let max = ttrs.iter().copied().max().unwrap_or(0);
    let mean = if ttrs.is_empty() {
        0.0
    } else {
        ttrs.iter().sum::<u64>() as f64 / ttrs.len() as f64
    };
    (met, missed, max, mean)
}

fn main() {
    let n = 96u64;
    let population = workload::clustered_population(n, 6, 12, 4242);
    println!("population: 12 radios, 6-channel contiguous bands, universe [{n}]");
    for (i, set) in population.iter().enumerate() {
        println!("  radio {i:>2}: {set}");
    }
    println!();
    println!(
        "{:<18}{:>10}{:>10}{:>12}{:>12}",
        "algorithm", "pairs met", "missed", "max TTR", "mean TTR"
    );
    for algo in [Algorithm::Ours, Algorithm::JumpStay, Algorithm::Crseq] {
        let (met, missed, max, mean) = run(algo, n, &population);
        println!(
            "{:<18}{:>10}{:>10}{:>12}{:>12.1}",
            algo.to_string(),
            met,
            missed,
            max,
            mean
        );
    }
    println!();
    println!("every overlapping pair must meet; 'missed' must be 0 for ours (guaranteed).");
}
