//! The "military coalition" scenario from the paper's introduction: a huge
//! pooled hyperspace (here `n = 2⁴⁰` channels) in which each coalition
//! member operates on a *small* subset that is guaranteed to overlap with
//! allies in a designated band.
//!
//! This is where the `O(|A||B| log log n)` result shines: the prior-art
//! `O(n²)`/`O(n³)` schedules are unusable at `n = 2⁴⁰` (periods beyond
//! `2⁸⁰` slots), while Theorem 3's rendezvous time depends on `n` only
//! through a `log log n ≤ 6`-bit color.
//!
//! ```text
//! cargo run --release --example coalition
//! ```

use blind_rendezvous::prelude::*;
use blind_rendezvous::sim::workload;

fn main() {
    let n: u64 = 1 << 40; // a trillion-channel pooled hyperspace

    // Two allies: 5 channels each, 2 shared band channels near mid-spectrum.
    let scenario = workload::coalition_pair(n, 5, 2, 2026).expect("parameters fit");
    let (a, b) = (scenario.a.clone(), scenario.b.clone());
    println!("universe  : 2^40 = {n} channels");
    println!("ally A    : {a}");
    println!("ally B    : {b}");
    println!(
        "shared    : {:?}",
        a.intersection(&b)
            .iter()
            .map(|c| c.get())
            .collect::<Vec<_>>()
    );

    let sa = GeneralSchedule::asynchronous(n, a.clone()).expect("valid");
    let sb = GeneralSchedule::asynchronous(n, b.clone()).expect("valid");
    let bound = sa.ttr_bound(b.len());

    // Sweep a few adversarial wake-up offsets.
    let mut worst = 0;
    for shift in [0u64, 1, 313, 9_999, 123_456] {
        let ttr = async_ttr(&sa, &sb, shift, bound + 1).expect("guaranteed");
        worst = worst.max(ttr);
        println!("wake offset {shift:>7}: rendezvous after {ttr:>5} slots");
    }

    // The punchline: the bound is independent of n in any practical sense.
    let fam = PairFamily::new(n).expect("n ≥ 2");
    println!();
    println!("pair-schedule period at n=2^40 : {} slots", fam.period());
    println!("Theorem 3 bound for this pair  : {bound} slots");
    println!(
        "prior art (O(n^2)) period scale: ~{:e} slots",
        (n as f64).powi(2)
    );
    assert!(worst <= bound);
}
