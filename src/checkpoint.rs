//! Crash-safe execution for the reproduction pipelines: the per-cell
//! **checkpoint journal** behind `repro --checkpoint` / `--resume`, and
//! the **atomic commit** path every artifact writer goes through.
//!
//! # The journal
//!
//! A journal is an append-only JSONL file. Its first line is a *header*
//! pinning the run's [`Fingerprint`] — pipeline stem, tier, commit, and a
//! pipeline-specific config string — so a journal written by a different
//! grid shape (or a different build) is rejected as stale instead of
//! silently splicing foreign rows into an artifact. Every subsequent line
//! records one completed grid cell ([`CellRecord`]): either its finished
//! artifact row, or the [`FailedCell`] (cause, retry count, seed) of a
//! quarantined failure — so even a degraded exit-code-3 run resumes to
//! the byte-identical artifact.
//!
//! Each line is **length-prefixed** (`<byte-len> <compact-json>`): a
//! crash mid-append leaves a torn final line whose payload is shorter
//! than its prefix claims, which the reader detects and drops — the cell
//! simply re-runs. Corrupt interior lines are likewise isolated into
//! [`Journal::skipped`] and never fatal, the same philosophy as
//! [`crate::history`]'s ledger parser.
//!
//! Because every cell is a pure function of its path-derived seed, a
//! resumed run may replay journaled cells in any order and compute only
//! the missing ones: the resulting artifact is **byte-identical** to an
//! uninterrupted run. (The JSON shim's number domain is `f64` with
//! shortest-round-trip formatting, so a serialized row re-parses to the
//! exact same value and re-serializes to the exact same bytes.)
//!
//! # Atomic commits
//!
//! [`commit_bytes`] writes through a same-directory temporary file,
//! fsyncs, then renames over the destination — so a crash at any point
//! leaves either the old complete file or the new complete file, never a
//! partial `REPRO_*`/`DASHBOARD.md`/`BENCH_*`. `repro history fsck
//! --repair` rewrites corrupt ledgers through the same path.

use crate::history::{self, SkippedLine};
use crate::report::{FailedCell, Tier};
use serde_json::Value;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The identity a journal header pins: a journal resumes a run only when
/// every field matches the resuming process exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    /// The pipeline's artifact stem (e.g. `"REPRO_table1_faults"`).
    pub pipeline: String,
    /// The tier name (`"smoke"` / `"quick"` / `"full"`) — grid shapes
    /// differ per tier, so cross-tier replay would corrupt the artifact.
    pub tier: String,
    /// The writer's commit (see [`history::writer_context`]) — cells are
    /// pure functions of the *code*, so a journal from another commit is
    /// stale by definition.
    pub commit: String,
    /// A pipeline-specific configuration string (fault profile, sabotage
    /// indices, …) covering everything else the rows depend on.
    pub config: String,
}

impl Fingerprint {
    /// The fingerprint of the current process for `pipeline` at `tier`
    /// under `config`, stamping the commit from
    /// [`history::writer_context`].
    pub fn new(pipeline: &str, tier: Tier, config: &str) -> Self {
        let (commit, _) = history::writer_context();
        Fingerprint {
            pipeline: pipeline.to_string(),
            tier: tier.name().to_string(),
            commit,
            config: config.to_string(),
        }
    }

    fn to_json(&self) -> Value {
        Value::object([
            ("commit", Value::from(self.commit.as_str())),
            ("config", Value::from(self.config.as_str())),
            ("kind", Value::from("header")),
            ("pipeline", Value::from(self.pipeline.as_str())),
            ("tier", Value::from(self.tier.as_str())),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        if v.get("kind").and_then(Value::as_str) != Some("header") {
            return Err("first journal line is not a header".to_string());
        }
        let field = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("header without string {k:?}"))
        };
        Ok(Fingerprint {
            pipeline: field("pipeline")?,
            tier: field("tier")?,
            commit: field("commit")?,
            config: field("config")?,
        })
    }

    /// The first field on which `self` (the expected identity) and
    /// `found` (a journal header) disagree, if any.
    fn mismatch(&self, found: &Fingerprint) -> Option<(&'static str, String, String)> {
        let fields: [(&'static str, &str, &str); 4] = [
            ("pipeline", &self.pipeline, &found.pipeline),
            ("tier", &self.tier, &found.tier),
            ("commit", &self.commit, &found.commit),
            ("config", &self.config, &found.config),
        ];
        fields
            .into_iter()
            .find(|(_, a, b)| a != b)
            .map(|(name, a, b)| (name, a.to_string(), b.to_string()))
    }
}

/// One journaled grid cell: the unit a resumed run replays by row id.
#[derive(Debug, Clone, PartialEq)]
pub enum CellRecord {
    /// The cell completed and produced this artifact row (verbatim — a
    /// resumed run splices it back byte-identically).
    Row {
        /// The canonical row id ([`crate::report::cell_id`]).
        id: String,
        /// The finished row exactly as the artifact carries it.
        row: Value,
    },
    /// The cell failed and was quarantined; the full [`FailedCell`]
    /// (cause, retries, seed) is journaled so a degraded artifact
    /// resumes faithfully, retry counts included.
    Failed(FailedCell),
}

impl CellRecord {
    /// The row id this record replays under.
    pub fn id(&self) -> &str {
        match self {
            CellRecord::Row { id, .. } => id,
            CellRecord::Failed(cell) => &cell.id,
        }
    }

    fn to_json(&self) -> Value {
        match self {
            CellRecord::Row { id, row } => Value::object([
                ("id", Value::from(id.as_str())),
                ("kind", Value::from("row")),
                ("row", row.clone()),
            ]),
            CellRecord::Failed(cell) => Value::object([
                ("cause", Value::from(cell.cause.as_str())),
                ("id", Value::from(cell.id.as_str())),
                ("kind", Value::from("failed")),
                ("retries", Value::from(u64::from(cell.retries))),
                // Full 64-bit seed as hex — the shim's numbers are f64.
                ("seed", Value::from(format!("{:#018x}", cell.seed))),
            ]),
        }
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let str_field = |k: &str| {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("cell record without string {k:?}"))
        };
        match v.get("kind").and_then(Value::as_str) {
            Some("row") => Ok(CellRecord::Row {
                id: str_field("id")?,
                row: v.get("row").cloned().ok_or("row record without \"row\"")?,
            }),
            Some("failed") => {
                let seed_hex = str_field("seed")?;
                let seed = seed_hex
                    .strip_prefix("0x")
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                    .ok_or_else(|| format!("unparseable seed {seed_hex:?}"))?;
                Ok(CellRecord::Failed(FailedCell {
                    id: str_field("id")?,
                    cause: str_field("cause")?,
                    retries: v
                        .get("retries")
                        .and_then(Value::as_u64)
                        .ok_or("failed record without numeric \"retries\"")?
                        as u32,
                    seed,
                }))
            }
            other => Err(format!("unknown cell record kind {other:?}")),
        }
    }
}

/// Why a journal could not be opened for resume.
#[derive(Debug)]
pub enum JournalError {
    /// I/O failure touching the journal file.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying error.
        error: std::io::Error,
    },
    /// `--resume` named a journal that does not exist.
    Missing(PathBuf),
    /// The journal's first line is not a readable header (e.g. the
    /// process crashed while writing it).
    NoHeader(PathBuf),
    /// The journal was written by a different run configuration.
    Stale {
        /// The journal path.
        path: PathBuf,
        /// The first mismatching header field.
        field: &'static str,
        /// What this process expected.
        expected: String,
        /// What the journal header carries.
        found: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, error } => {
                write!(f, "journal {}: {error}", path.display())
            }
            JournalError::Missing(path) => {
                write!(f, "journal {} does not exist", path.display())
            }
            JournalError::NoHeader(path) => {
                write!(f, "journal {} has no readable header line", path.display())
            }
            JournalError::Stale {
                path,
                field,
                expected,
                found,
            } => write!(
                f,
                "stale journal {}: {field} is {found:?}, this run is {expected:?}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// An open checkpoint journal: the replayed cells of a prior run (empty
/// for a fresh journal) plus an append handle new completions are
/// recorded through.
///
/// [`Journal::record`] is callable from any worker thread (the file
/// handle is mutex-guarded and each record is a single `write_all` of one
/// framed line), which is what lets the pool's completion sinks journal
/// cells the moment they finish.
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
    replayed: BTreeMap<String, CellRecord>,
    /// Corrupt or torn lines isolated during resume (1-based line
    /// numbers) — reported, never fatal; the affected cells re-run.
    pub skipped: Vec<SkippedLine>,
}

/// Frames one record as a length-prefixed journal line.
fn frame(v: &Value) -> String {
    let body = serde_json::to_string(v);
    format!("{} {body}\n", body.len())
}

/// Validates one journal line's length prefix and parses its payload.
fn unframe(line: &str) -> Result<Value, String> {
    let (len, body) = line.split_once(' ').ok_or("line without a length prefix")?;
    let len: usize = len
        .parse()
        .map_err(|_| format!("unparseable length prefix {len:?}"))?;
    if body.len() != len {
        return Err(format!(
            "length prefix claims {len} bytes but the line carries {} (torn write?)",
            body.len()
        ));
    }
    serde_json::from_str(body).map_err(|e| e.to_string())
}

impl Journal {
    /// Starts a fresh journal at `path` (truncating any previous file),
    /// writing the header line for `fp`.
    pub fn create(path: &Path, fp: &Fingerprint) -> Result<Journal, JournalError> {
        let io_err = |error| JournalError::Io {
            path: path.to_path_buf(),
            error,
        };
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).map_err(io_err)?;
        }
        let mut file = File::create(path).map_err(io_err)?;
        file.write_all(frame(&fp.to_json()).as_bytes())
            .map_err(io_err)?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            replayed: BTreeMap::new(),
            skipped: Vec::new(),
        })
    }

    /// Resumes from an existing journal at `path`: verifies the header
    /// matches `fp` exactly, loads every readable cell record (dropping a
    /// torn final line and isolating corrupt ones into
    /// [`Journal::skipped`]), and reopens the file for appending.
    ///
    /// # Errors
    ///
    /// [`JournalError::Missing`] when the file does not exist,
    /// [`JournalError::NoHeader`] when its first line is unreadable, and
    /// [`JournalError::Stale`] on any fingerprint mismatch.
    pub fn resume(path: &Path, fp: &Fingerprint) -> Result<Journal, JournalError> {
        let text = std::fs::read_to_string(path).map_err(|error| {
            if error.kind() == std::io::ErrorKind::NotFound {
                JournalError::Missing(path.to_path_buf())
            } else {
                JournalError::Io {
                    path: path.to_path_buf(),
                    error,
                }
            }
        })?;
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let header = lines
            .next()
            .and_then(|(_, line)| unframe(line).ok())
            .and_then(|v| Fingerprint::from_json(&v).ok())
            .ok_or_else(|| JournalError::NoHeader(path.to_path_buf()))?;
        if let Some((field, expected, found)) = fp.mismatch(&header) {
            return Err(JournalError::Stale {
                path: path.to_path_buf(),
                field,
                expected,
                found,
            });
        }
        let mut replayed = BTreeMap::new();
        let mut skipped = Vec::new();
        for (i, line) in lines {
            match unframe(line).and_then(|v| CellRecord::from_json(&v)) {
                Ok(rec) => {
                    // Duplicate ids can only come from a cell journaled on
                    // one run and re-run on the next before its record was
                    // observed; the records are identical, last wins.
                    replayed.insert(rec.id().to_string(), rec);
                }
                Err(error) => skipped.push(SkippedLine { line: i + 1, error }),
            }
        }
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|error| JournalError::Io {
                path: path.to_path_buf(),
                error,
            })?;
        Ok(Journal {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            replayed,
            skipped,
        })
    }

    /// The lenient `--checkpoint` open: resume when a compatible journal
    /// already exists at `path`, start fresh when it is missing, headerless,
    /// or stale (an evicted cron resumes; a new commit restarts cleanly).
    /// Only real I/O failure is an error.
    pub fn open(path: &Path, fp: &Fingerprint) -> Result<Journal, JournalError> {
        match Journal::resume(path, fp) {
            Ok(journal) => Ok(journal),
            Err(JournalError::Missing(_))
            | Err(JournalError::NoHeader(_))
            | Err(JournalError::Stale { .. }) => Journal::create(path, fp),
            Err(io) => Err(io),
        }
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The cells replayed from a prior run, keyed by row id.
    pub fn replayed(&self) -> &BTreeMap<String, CellRecord> {
        &self.replayed
    }

    /// The replayed record for `id`, if the prior run completed that cell.
    pub fn lookup(&self, id: &str) -> Option<&CellRecord> {
        self.replayed.get(id)
    }

    /// Appends one completed cell as a single framed line (one
    /// `write_all`, so a crash tears at most this line — which the next
    /// resume detects by its length prefix and drops).
    ///
    /// # Panics
    ///
    /// Panics on I/O failure: an unwritable journal voids the crash-safety
    /// the caller asked for, so it is fatal like an unwritable artifact.
    pub fn record(&self, rec: &CellRecord) {
        let line = frame(&rec.to_json());
        let mut file = self.file.lock().expect("journal mutex");
        file.write_all(line.as_bytes())
            .unwrap_or_else(|e| panic!("appending to journal {}: {e}", self.path.display()));
    }
}

/// Atomically commits `bytes` as the complete contents of `path`: writes
/// a same-directory temporary file, fsyncs it, and renames it over the
/// destination. A crash at any point leaves either the old file or the
/// new one — never a partial artifact.
///
/// # Errors
///
/// Propagates I/O failures (the temporary file is cleaned up on a failed
/// commit where possible).
pub fn commit_bytes(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artifact");
    let tmp = dir.join(format!(".{name}.{}.tmp", std::process::id()));
    let commit = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        // Flush file contents to disk before the rename publishes them,
        // so the rename can never expose an empty or partial file.
        file.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if commit.is_err() {
        let _ = std::fs::remove_file(&tmp);
    } else {
        // Durability of the rename itself: fsync the directory entry.
        // Best-effort — not every platform lets a directory be opened.
        let _ = File::open(&dir).and_then(|d| d.sync_all());
    }
    commit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rdv_checkpoint_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(name)
    }

    fn fp() -> Fingerprint {
        Fingerprint {
            pipeline: "REPRO_test".to_string(),
            tier: "smoke".to_string(),
            commit: "deadbeef".to_string(),
            config: "profile=light".to_string(),
        }
    }

    fn sample_records() -> Vec<CellRecord> {
        vec![
            CellRecord::Row {
                id: "a/sync/sym/n=8".to_string(),
                row: Value::object([
                    ("id", Value::from("a/sync/sym/n=8")),
                    ("measured", Value::from(12u64)),
                    ("ratio", Value::from(0.4375f64)),
                    ("gated", Value::from(true)),
                ]),
            },
            CellRecord::Failed(FailedCell {
                id: "b/async/asym/n=16".to_string(),
                cause: "panic: deliberately poisoned".to_string(),
                retries: 3,
                seed: 0xFA01_7ED5_0000_0001,
            }),
        ]
    }

    #[test]
    fn journal_round_trips_records_and_fingerprint() {
        let path = scratch("round_trip.ckpt");
        let journal = Journal::create(&path, &fp()).expect("create");
        for rec in sample_records() {
            journal.record(&rec);
        }
        drop(journal);
        let resumed = Journal::resume(&path, &fp()).expect("resume");
        assert!(resumed.skipped.is_empty());
        assert_eq!(resumed.replayed().len(), 2);
        for rec in sample_records() {
            assert_eq!(resumed.lookup(rec.id()), Some(&rec));
        }
    }

    #[test]
    fn torn_final_line_is_dropped_not_fatal() {
        let path = scratch("torn.ckpt");
        let journal = Journal::create(&path, &fp()).expect("create");
        for rec in sample_records() {
            journal.record(&rec);
        }
        drop(journal);
        let full = std::fs::read_to_string(&path).expect("read");
        // Every proper prefix that still contains the header must resume
        // with at most the complete records, never an error.
        let header_len = full.lines().next().expect("header").len() + 1;
        for cut in header_len..full.len() {
            std::fs::write(&path, &full.as_bytes()[..cut]).expect("truncate");
            let resumed = Journal::resume(&path, &fp()).expect("torn journal must resume");
            assert!(resumed.replayed().len() <= 2, "cut at {cut}");
            for rec in resumed.replayed().values() {
                assert!(sample_records().contains(rec), "cut at {cut}");
            }
        }
    }

    #[test]
    fn stale_fingerprint_is_rejected_and_open_starts_fresh() {
        let path = scratch("stale.ckpt");
        let journal = Journal::create(&path, &fp()).expect("create");
        journal.record(&sample_records()[0]);
        drop(journal);
        let mut other = fp();
        other.tier = "full".to_string();
        match Journal::resume(&path, &other) {
            Err(JournalError::Stale {
                field, expected, ..
            }) => {
                assert_eq!(field, "tier");
                assert_eq!(expected, "full");
            }
            other => panic!("expected Stale, got {:?}", other.err()),
        }
        // The lenient open truncates the stale journal and starts over.
        let fresh = Journal::open(&path, &other).expect("open");
        assert!(fresh.replayed().is_empty());
        drop(fresh);
        let resumed = Journal::resume(&path, &other).expect("fresh journal resumes");
        assert!(resumed.replayed().is_empty());
    }

    #[test]
    fn corrupt_interior_line_is_isolated() {
        let path = scratch("interior.ckpt");
        let journal = Journal::create(&path, &fp()).expect("create");
        journal.record(&sample_records()[0]);
        drop(journal);
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("7 {oops}\n");
        std::fs::write(&path, &text).expect("write");
        let journal = Journal::resume(&path, &fp()).expect("resume");
        journal.record(&sample_records()[1]);
        drop(journal);
        let resumed = Journal::resume(&path, &fp()).expect("resume");
        assert_eq!(resumed.replayed().len(), 2);
        assert_eq!(resumed.skipped.len(), 1);
        assert_eq!(resumed.skipped[0].line, 3);
    }

    #[test]
    fn missing_and_headerless_journals() {
        let path = scratch("missing.ckpt");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            Journal::resume(&path, &fp()),
            Err(JournalError::Missing(_))
        ));
        std::fs::write(&path, "garbage, no header\n").expect("write");
        assert!(matches!(
            Journal::resume(&path, &fp()),
            Err(JournalError::NoHeader(_))
        ));
        let fresh = Journal::open(&path, &fp()).expect("open recovers");
        assert!(fresh.replayed().is_empty());
    }

    #[test]
    fn commit_bytes_replaces_contents_atomically() {
        let path = scratch("commit.txt");
        commit_bytes(&path, b"first generation\n").expect("commit");
        assert_eq!(
            std::fs::read_to_string(&path).expect("read"),
            "first generation\n"
        );
        commit_bytes(&path, b"second generation\n").expect("commit");
        assert_eq!(
            std::fs::read_to_string(&path).expect("read"),
            "second generation\n"
        );
        // No temporary droppings left behind.
        let dir = path.parent().expect("dir");
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("commit.txt."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }
}
