//! The artifact-emitting reproduction pipelines behind the `repro`
//! driver: [`table1`] (measured TTR vs proven upper bounds), [`lower`]
//! (the Section 4 lower-bound harnesses and the sandwich invariant), and
//! [`sdp`] (the appendix's one-round SDP relaxation) — all three sharing
//! the [`crate::report`] artifact schema and the work-stealing
//! orchestrator, so every artifact is bit-identical at any worker thread
//! count.
//!
//! The `table1` and `lower` measurement grids are each **one task-tree
//! submission** (`rdv_sim::sweep_pair_grid` / `sweep_lower_grid`): every
//! (algorithm × timing × scenario × n) cell is a parent task, its
//! `(shift × seed)` chunks are children, and the chunks of *all* cells
//! work-steal on one pool — so a slow cell no longer serializes an
//! artifact run the way the former sequential per-cell loop did.
//!
//! Living in the library (not the `repro` binary) so the test suite can
//! run the pipelines in-process: `tests/repro_determinism.rs` executes
//! each one at 1 and 8 threads and asserts byte-identical JSON, the
//! `cargo test` twin of CI's artifact diff.

use crate::checkpoint::{self, CellRecord, Journal};
use crate::report::{self, Artifact, PipelineOutput, Tier};
use rdv_core::channel::ChannelSet;
use rdv_core::general::GeneralSchedule;
use rdv_core::symmetric::SymmetricWrapped;
use rdv_sim::sweep::{
    sweep_lower_grid, sweep_pair_grid, LowerCell, LowerSweepConfig, SweepCell, SweepConfig,
};
use rdv_sim::workload::{self, PairScenario};
use rdv_sim::{Algorithm, ParallelConfig};
use serde_json::Value;

/// Every algorithm the pipelines reproduce — the Table 1 rows plus the
/// randomized strawman and the two beacon protocols.
pub const PIPELINE_ALGOS: [Algorithm; 8] = [
    Algorithm::Ours,
    Algorithm::OursSymmetric,
    Algorithm::Crseq,
    Algorithm::JumpStay,
    Algorithm::Drds,
    Algorithm::Random,
    Algorithm::BeaconA,
    Algorithm::BeaconB,
];

/// The channel-set size of every measurement-grid scenario — shared (like
/// [`grid_dimensions`]) by the `table1` and `lower` pipelines and the
/// sandwich test suite so their cells line up one-to-one.
pub const GRID_K: usize = 4;

/// The universe ladder, shift count, and seed count of the measurement
/// grids at each tier — shared by the `table1` and `lower` pipelines so
/// their cells line up one-to-one.
pub fn grid_dimensions(tier: Tier) -> (&'static [u64], u64, u64) {
    match tier {
        Tier::Smoke => (&[8, 16], 16, 3),
        Tier::Quick => (&[8, 16, 32], 48, 4),
        Tier::Full => (&[8, 16, 32, 64, 128], 256, 6),
    }
}

/// The pipeline grid's scenario for one (kind, n) cell: the Theorem 7
/// adversarial overlap-one pair, or the seed-0 symmetric pair.
pub fn grid_scenario(kind: &str, n: u64, k: usize) -> PairScenario {
    if kind == "asymmetric" {
        workload::adversarial_overlap_one(n, k, k).expect("n ≥ 2k−1")
    } else {
        workload::symmetric_pair(n, k, 0).expect("n ≥ k")
    }
}

/// The upper bound a pipeline cell is measured against: the slot count, a
/// label for the artifact, and whether the row is *gated* (a proven bound
/// whose violation fails the pipeline) or merely recorded.
pub fn cell_bound(algo: Algorithm, n: u64, scenario: &PairScenario) -> (u64, &'static str, bool) {
    let (k, ell) = (scenario.a.len(), scenario.b.len());
    match algo {
        Algorithm::Ours => {
            let s = GeneralSchedule::asynchronous(n, scenario.a.clone()).expect("valid scenario");
            (s.ttr_bound(ell), "Theorem 3: O(|A||B| log log n)", true)
        }
        Algorithm::OursSymmetric => {
            if scenario.a == scenario.b {
                (
                    SymmetricWrapped::<GeneralSchedule>::SYMMETRIC_TTR_BOUND,
                    "§3.2: O(1) symmetric",
                    true,
                )
            } else {
                let base =
                    GeneralSchedule::asynchronous(n, scenario.a.clone()).expect("valid scenario");
                (
                    rdv_core::symmetric::BLOWUP * base.ttr_bound(ell)
                        + 2 * rdv_core::symmetric::BLOWUP,
                    "§3.2 wrap: 12× Theorem 3 + O(1)",
                    true,
                )
            }
        }
        // The baseline reconstructions are faithful in period structure but
        // their paywalled proofs could not be transcribed (see
        // rdv-baselines); their generous guarantee horizons are recorded and
        // *reported* against, not gated.
        Algorithm::Crseq | Algorithm::JumpStay | Algorithm::Drds => (
            algo.horizon(n, k, ell),
            "guarantee horizon (reconstruction, empirical)",
            false,
        ),
        Algorithm::Random | Algorithm::BeaconA | Algorithm::BeaconB => {
            (algo.horizon(n, k, ell), "w.h.p. horizon (not gated)", false)
        }
        // The availability-aware family (arXiv 1506.00744 / 1506.01136)
        // carries no proven asymmetric guarantee at all in this
        // reconstruction — even fault-free, its rows are recorded against
        // the generous empirical horizon, never gated.
        Algorithm::Zos | Algorithm::AcsHopping => (
            algo.horizon(n, k, ell),
            "empirical horizon (availability-aware, not gated)",
            false,
        ),
    }
}

fn header(title: &str) {
    println!();
    println!("==== {title} ====");
    println!();
}

/// The replayed artifact row for `id`, when a checkpoint journal carries
/// one. Because cells are pure functions of their path-derived seeds, a
/// replayed row is byte-identical to what re-running the cell would
/// produce — which is the resume invariant the whole layer rests on.
/// (`Failed` records are only consulted by the faults pipeline, which
/// replays them separately.)
fn replay_row(ckpt: Option<&Journal>, id: &str) -> Option<Value> {
    match ckpt?.lookup(id)? {
        CellRecord::Row { row, .. } => Some(row.clone()),
        CellRecord::Failed(_) => None,
    }
}

/// Journals one freshly computed artifact row, when a journal is attached.
fn journal_row(ckpt: Option<&Journal>, id: &str, row: &Value) {
    if let Some(journal) = ckpt {
        journal.record(&CellRecord::Row {
            id: id.to_string(),
            row: row.clone(),
        });
    }
}

/// The `table1` measurement grid as task-tree parents, in artifact row
/// order (algorithm → scenario kind → n → timing) — one [`SweepCell`] per
/// artifact row. Shared by [`table1::run`] and the `BENCH_tree.json`
/// orchestration bench (`bench_report --suite tree`) so both submit the
/// identical tree.
pub fn table1_cells(tier: Tier, threads: usize) -> Vec<SweepCell> {
    let (ns, shifts, seeds) = grid_dimensions(tier);
    let mut cells = Vec::new();
    for algo in PIPELINE_ALGOS {
        for kind in ["asymmetric", "symmetric"] {
            for &n in ns {
                let scenario = grid_scenario(kind, n, GRID_K);
                for timing in ["sync", "async"] {
                    cells.push(SweepCell {
                        algorithm: algo,
                        n,
                        scenario: scenario.clone(),
                        cfg: SweepConfig {
                            shifts: if timing == "sync" { 1 } else { shifts },
                            shift_stride: 13,
                            spread_over_period: timing == "async",
                            seeds,
                            horizon_override: 0,
                            threads,
                        },
                    });
                }
            }
        }
    }
    cells
}

/// E0 — the Table 1 reproduction pipeline: all eight algorithms ×
/// sync/async × symmetric/asymmetric across a universe-size ladder, every
/// cell swept on the work-stealing orchestrator and its measured worst
/// case checked against the Theorem 3 / §3.2 bounds.
pub mod table1 {
    use super::*;

    /// Artifact file stem: the `repro` driver writes `REPRO_table1.{json,md}`
    /// and the history ledger records runs under it.
    pub const STEM: &str = "REPRO_table1";

    /// One pipeline row as JSON: the sweep's own fields plus the cell
    /// context and the schema's `id`/`measured` trend keys.
    #[allow(clippy::too_many_arguments)]
    fn row_json(
        sweep: &rdv_sim::PairSweep,
        timing: &str,
        kind: &str,
        bound: u64,
        bound_kind: &'static str,
        gated: bool,
        ok: bool,
    ) -> Value {
        let Value::Object(mut m) = sweep.to_json() else {
            unreachable!("PairSweep::to_json returns an object");
        };
        m.insert(
            "id".to_string(),
            Value::from(report::cell_id(
                &sweep.algorithm.to_string(),
                timing,
                kind,
                sweep.n,
            )),
        );
        m.insert("measured".to_string(), Value::from(sweep.summary.max));
        m.insert("timing".to_string(), Value::from(timing));
        m.insert("scenario".to_string(), Value::from(kind));
        m.insert("bound".to_string(), Value::from(bound));
        m.insert("bound_kind".to_string(), Value::from(bound_kind));
        m.insert("gated".to_string(), Value::from(gated));
        m.insert("bound_ok".to_string(), Value::from(ok));
        Value::Object(m)
    }

    /// The checkpoint-journal identity of a `table1` run: the grid is
    /// fully determined by the tier and the commit, so the config slot is
    /// empty.
    pub fn fingerprint(tier: Tier) -> checkpoint::Fingerprint {
        checkpoint::Fingerprint::new(STEM, tier, "")
    }

    /// Runs the pipeline at `tier` on `threads` workers (0 = auto) and
    /// returns the artifact pair; the caller writes and gates it.
    pub fn run(tier: Tier, threads: usize) -> PipelineOutput {
        run_with(tier, threads, None)
    }

    /// [`run`], with an optional checkpoint journal: cells the journal
    /// replays are spliced back by row id without re-running, freshly
    /// computed rows are journaled as they are built, and the resulting
    /// artifact is byte-identical to an uninterrupted run either way.
    pub fn run_with(tier: Tier, threads: usize, ckpt: Option<&Journal>) -> PipelineOutput {
        header(&format!(
            "E0: reproduction pipeline — 8 algorithms × sync/async × asym/sym (tier: {})",
            tier.name()
        ));
        let (ns, shifts, seeds) = grid_dimensions(tier);
        let k = GRID_K;
        // Which cells the journal already carries, in grid (artifact row)
        // order — only the missing ones are submitted to the pool.
        let cells = table1_cells(tier, threads);
        let mut replayed: Vec<Option<Value>> = Vec::with_capacity(cells.len());
        for algo in PIPELINE_ALGOS {
            for kind in ["asymmetric", "symmetric"] {
                for &n in ns {
                    for timing in ["sync", "async"] {
                        let id = report::cell_id(&algo.to_string(), timing, kind, n);
                        replayed.push(replay_row(ckpt, &id));
                    }
                }
            }
        }
        // The remaining grid is ONE task-tree submission: cells are
        // parents, their (shift × seed) chunks are children, and the
        // chunks of all cells steal from one another on the shared pool.
        let to_run: Vec<SweepCell> = cells
            .into_iter()
            .zip(&replayed)
            .filter_map(|(cell, replay)| replay.is_none().then_some(cell))
            .collect();
        let mut sweeps = sweep_pair_grid(to_run, &ParallelConfig { threads }).into_iter();
        let mut artifact = Artifact::new("table1", tier);
        let mut rows = Vec::new();
        let mut curves = Vec::new();
        let mut md_rows = String::new();
        let mut pos = 0usize;
        println!(
            "{:<16}{:<7}{:<11}{:>6}{:>12}{:>12}{:>12}  ok",
            "algorithm", "timing", "scenario", "n", "maxTTR", "bound", "ratio"
        );
        for algo in PIPELINE_ALGOS {
            for kind in ["asymmetric", "symmetric"] {
                let mut points = Vec::new();
                for &n in ns {
                    let scenario = grid_scenario(kind, n, k);
                    let (bound, bound_kind, gated) = cell_bound(algo, n, &scenario);
                    for timing in ["sync", "async"] {
                        let row = match replayed[pos].take() {
                            Some(row) => row,
                            None => {
                                let sweep = sweeps
                                    .next()
                                    .expect("cell list and consumption loop are aligned")
                                    .unwrap_or_else(|e| {
                                        panic!("pipeline cell {algo}/{timing}/{kind}/n={n}: {e}")
                                    });
                                // The builder (table1_cells) and this
                                // consumption nest must walk the grid in
                                // lock-step; catch a mispairing at the
                                // cell, not at the artifact diff.
                                assert_eq!(
                                    (sweep.algorithm, sweep.n),
                                    (algo, n),
                                    "grid misaligned"
                                );
                                let ok = sweep.failures == 0 && sweep.summary.max <= bound;
                                let row =
                                    row_json(&sweep, timing, kind, bound, bound_kind, gated, ok);
                                let id = report::cell_id(&algo.to_string(), timing, kind, n);
                                journal_row(ckpt, &id, &row);
                                row
                            }
                        };
                        pos += 1;
                        // Everything below derives from the row JSON alone,
                        // so replayed and fresh cells walk one code path.
                        let get = |key: &str| row.get(key).and_then(Value::as_u64).unwrap_or(0);
                        let (measured, failures, count) =
                            (get("measured"), get("failures"), get("count"));
                        let ok = row.get("bound_ok") == Some(&Value::Bool(true));
                        if gated && !ok {
                            artifact.violation(format!(
                                "{algo} ({timing}, {kind}, n={n}): max TTR {measured} vs bound \
                                 {bound} ({failures} horizon misses)"
                            ));
                        }
                        let ratio = measured as f64 / bound.max(1) as f64;
                        println!(
                            "{:<16}{:<7}{:<11}{:>6}{:>12}{:>12}{:>12.3}  {}",
                            algo.to_string(),
                            timing,
                            kind,
                            n,
                            measured,
                            bound,
                            ratio,
                            if ok { "yes" } else { "NO" }
                        );
                        md_rows.push_str(&format!(
                            "| {algo} | {timing} | {kind} | {n} | {measured} | {bound} | {ratio:.3} \
                             | {count} | {failures} | {} |\n",
                            if ok { "✓" } else { "✗" },
                        ));
                        if timing == "async" {
                            points.push(Value::object([
                                ("n", Value::from(n)),
                                ("measured_max", Value::from(measured)),
                                ("bound", Value::from(bound)),
                            ]));
                        }
                        rows.push(row);
                    }
                }
                curves.push(Value::object([
                    ("algorithm", Value::from(algo.to_string())),
                    ("scenario", Value::from(kind)),
                    ("timing", Value::from("async")),
                    ("points", Value::Array(points)),
                ]));
            }
        }
        assert!(sweeps.next().is_none(), "grid cells left unconsumed");

        artifact.section(
            "config",
            Value::object([
                (
                    "ns",
                    Value::Array(ns.iter().map(|&n| Value::from(n)).collect()),
                ),
                ("shifts", Value::from(shifts)),
                ("seeds", Value::from(seeds)),
                ("k", Value::from(k)),
            ]),
        );
        artifact.section("rows", Value::Array(rows));
        artifact.section("curves", Value::Array(curves));

        let md = format!(
            "{}| algorithm | timing | scenario | n | max TTR | bound | max/bound | samples | misses | ok |\n\
             |---|---|---|---|---|---|---|---|---|---|\n\
             {md_rows}\n\
             {}\n",
            artifact.preamble_markdown(
                "Paper reproduction — Table 1 comparison",
                "REPRO_table1",
                "Cells marked *gated* carry a proven bound\n\
                 (Theorem 3, §3.2); a gated ✗ fails the pipeline, and CI runs it on\n\
                 every push.",
            ),
            artifact.verdict_markdown()
        );
        artifact.finish(md)
    }
}

/// The lower-bound pipeline: the Section 4 harnesses (covering/density,
/// exact small-case, pigeonhole, Ramsey bridge) wired into the same grid
/// and artifact schema as `table1`, checking the *sandwich invariant*
/// `certified lower ≤ measured ≤ proven upper` on every gridded cell.
pub mod lower {
    use super::*;
    use rdv_lower::{density, exact, pigeonhole, ramsey_bridge};

    /// Artifact file stem (see [`super::table1::STEM`]).
    pub const STEM: &str = "REPRO_lower";

    /// Exhaustive-shift cap and sampled-shift count per tier.
    fn shift_dimensions(tier: Tier) -> (u64, u64) {
        match tier {
            Tier::Smoke => (256, 16),
            Tier::Quick => (1024, 48),
            Tier::Full => (4096, 256),
        }
    }

    /// The checkpoint-journal identity of a `lower` run (see
    /// [`super::table1::fingerprint`]).
    pub fn fingerprint(tier: Tier) -> checkpoint::Fingerprint {
        checkpoint::Fingerprint::new(STEM, tier, "")
    }

    /// The measurement grid: one lower-bound cell per `table1` cell, the
    /// whole grid one task-tree submission (cells are parents, shift
    /// chunks are children, stealing crosses cells). Cells a checkpoint
    /// journal replays are spliced back by row id without re-running; the
    /// (deterministic, recomputed) non-grid sections are never journaled.
    fn grid_cells(artifact: &mut Artifact, threads: usize, ckpt: Option<&Journal>) -> Vec<Value> {
        let (ns, _, _) = grid_dimensions(artifact.tier());
        let (max_exhaustive, sampled) = shift_dimensions(artifact.tier());
        let k = GRID_K;
        let mut cells = Vec::new();
        let mut replayed = Vec::new();
        for algo in PIPELINE_ALGOS {
            for kind in ["asymmetric", "symmetric"] {
                for &n in ns {
                    let scenario = grid_scenario(kind, n, k);
                    for timing in ["sync", "async"] {
                        replayed.push(replay_row(
                            ckpt,
                            &report::cell_id(&algo.to_string(), timing, kind, n),
                        ));
                        cells.push(LowerCell {
                            algorithm: algo,
                            n,
                            scenario: scenario.clone(),
                            cfg: LowerSweepConfig {
                                sync: timing == "sync",
                                max_exhaustive_shifts: max_exhaustive,
                                sampled_shifts: sampled,
                                horizon_override: 0,
                                threads,
                            },
                        });
                    }
                }
            }
        }
        let to_run: Vec<LowerCell> = cells
            .into_iter()
            .zip(&replayed)
            .filter_map(|(cell, replay)| replay.is_none().then_some(cell))
            .collect();
        let mut swept = sweep_lower_grid(to_run, &ParallelConfig { threads }).into_iter();
        let mut rows = Vec::new();
        let mut pos = 0usize;
        println!(
            "{:<16}{:<7}{:<11}{:>6}{:>10}{:>12}{:>12}  sandwich",
            "algorithm", "timing", "scenario", "n", "lower", "measured", "upper"
        );
        for algo in PIPELINE_ALGOS {
            for kind in ["asymmetric", "symmetric"] {
                for &n in ns {
                    let scenario = grid_scenario(kind, n, k);
                    let (upper, upper_kind, gated) = cell_bound(algo, n, &scenario);
                    for timing in ["sync", "async"] {
                        let row = match replayed[pos].take() {
                            Some(row) => row,
                            None => {
                                let cell = swept
                                    .next()
                                    .expect("cell list and consumption loop are aligned")
                                    .unwrap_or_else(|e| {
                                        panic!("lower cell {algo}/{timing}/{kind}/n={n}: {e}")
                                    });
                                // Builder/consumer lock-step guard, as in
                                // table1.
                                assert_eq!((cell.algorithm, cell.n), (algo, n), "grid misaligned");
                                let ok = cell.lower_slice_ok()
                                    && (!gated
                                        || (cell.failures == 0 && cell.witness_ttr <= upper));
                                let Value::Object(mut m) = cell.to_json() else {
                                    unreachable!("LowerBoundSweep::to_json returns an object");
                                };
                                let id = report::cell_id(&algo.to_string(), timing, kind, n);
                                m.insert("id".to_string(), Value::from(id.clone()));
                                m.insert("timing".to_string(), Value::from(timing));
                                m.insert("scenario".to_string(), Value::from(kind));
                                m.insert("bound".to_string(), Value::from(upper));
                                m.insert("bound_kind".to_string(), Value::from(upper_kind));
                                m.insert("gated".to_string(), Value::from(gated));
                                m.insert("sandwich_ok".to_string(), Value::from(ok));
                                let row = Value::Object(m);
                                journal_row(ckpt, &id, &row);
                                row
                            }
                        };
                        pos += 1;
                        // Sandwich checks re-derived from the row JSON so
                        // replayed and fresh cells walk one code path
                        // (`lower_slice_ok` is a pure function of these
                        // three fields).
                        let get = |key: &str| row.get(key).and_then(Value::as_u64).unwrap_or(0);
                        let (lower, measured, failures) =
                            (get("lower"), get("measured"), get("failures"));
                        let exhaustive = row.get("exhaustive") == Some(&Value::Bool(true));
                        let lower_ok = !exhaustive || failures > 0 || lower <= measured;
                        let upper_ok = failures == 0 && measured <= upper;
                        let ok = lower_ok && (!gated || upper_ok);
                        if !lower_ok {
                            artifact.violation(format!(
                                "{algo} ({timing}, {kind}, n={n}): certified lower bound {lower} \
                                 exceeds the exhaustively measured worst case {measured}"
                            ));
                        }
                        if gated && !upper_ok {
                            artifact.violation(format!(
                                "{algo} ({timing}, {kind}, n={n}): measured {measured} vs upper \
                                 bound {upper} ({failures} horizon misses)"
                            ));
                        }
                        println!(
                            "{:<16}{:<7}{:<11}{:>6}{:>10}{:>12}{:>12}  {}",
                            algo.to_string(),
                            timing,
                            kind,
                            n,
                            lower,
                            measured,
                            upper,
                            if ok { "yes" } else { "NO" }
                        );
                        rows.push(row);
                    }
                }
            }
        }
        assert!(swept.next().is_none(), "grid cells left unconsumed");
        rows
    }

    /// Exact `R_s(n,2)` / cyclic `R_a(n,2)` optima by exhaustive search —
    /// Theorem 4's empirical companion, gated on monotone growth.
    fn exact_section(artifact: &mut Artifact) -> Vec<Value> {
        let (max_n_sync, budget) = match artifact.tier() {
            Tier::Smoke => (5u64, 1u64 << 22),
            Tier::Quick => (6, 1 << 24),
            Tier::Full => (8, 1 << 26),
        };
        let max_n_cyclic = 3; // n = 4 already needs a cyclic period > 2^6
        let mut rows = Vec::new();
        let mut last_optimal = 0u32;
        println!();
        println!("{:<6}{:>12}{:>18}", "n", "R_s(n,2)", "cyclic R_a(n,2)");
        for n in 2..=max_n_sync {
            let outcome_str = |o: exact::SearchOutcome| match o {
                exact::SearchOutcome::Optimal(t) => t.to_string(),
                other => format!("{other:?}"),
            };
            let rs = exact::exact_rs_n2(n, 5, budget);
            if let exact::SearchOutcome::Optimal(t) = rs {
                if t < last_optimal {
                    artifact.violation(format!(
                        "exact R_s({n},2) = {t} dropped below R_s({},2) = {last_optimal} — \
                         Theorem 4 demands monotone growth",
                        n - 1
                    ));
                }
                last_optimal = t;
            }
            let ra = if n <= max_n_cyclic {
                Some(exact::exact_ra_n2_cyclic(n, 6, budget))
            } else {
                None
            };
            println!(
                "{:<6}{:>12}{:>18}",
                n,
                outcome_str(rs),
                ra.map_or("-".to_string(), outcome_str)
            );
            rows.push(Value::object([
                ("id", Value::from(format!("exact/rs/n={n}"))),
                ("n", Value::from(n)),
                ("rs", Value::from(outcome_str(rs))),
                (
                    "ra_cyclic",
                    ra.map_or(Value::Null, |o| Value::from(outcome_str(o))),
                ),
            ]));
        }
        rows
    }

    /// Theorem 6 pigeonhole certificates against concrete families; the
    /// deliberately weak round-robin family must be certified slow.
    fn pigeonhole_section(artifact: &mut Artifact) -> Vec<Value> {
        let n = match artifact.tier() {
            Tier::Smoke => 16u64,
            Tier::Quick => 32,
            Tier::Full => 64,
        };
        let mut rows = Vec::new();
        println!();
        println!(
            "{:<26}{:>4}{:>4}{:>18}",
            "pigeonhole family", "k", "α", "certified bound"
        );
        let round_robin = |set: &ChannelSet| {
            rdv_core::schedule::CyclicSchedule::new(set.iter().collect()).expect("non-empty")
        };
        let ours =
            |set: &ChannelSet| GeneralSchedule::synchronous(n, set.clone()).expect("valid set");
        let mut run_family = |name: &str, grid: &[(usize, usize)], is_round_robin: bool| {
            for &(k, alpha) in grid {
                let witness = if is_round_robin {
                    pigeonhole::certify(&round_robin, n, k, alpha)
                } else {
                    pigeonhole::certify(&ours, n, k, alpha)
                };
                let certified = witness.as_ref().map(|w| w.certified_bound);
                if is_round_robin && witness.is_none() {
                    artifact.violation(format!(
                        "pigeonhole: round-robin family dodged the k={k}, α={alpha} witness at \
                         n={n} — the construction must certify it"
                    ));
                }
                println!(
                    "{:<26}{:>4}{:>4}{:>18}",
                    name,
                    k,
                    alpha,
                    certified.map_or("no witness".to_string(), |b| b.to_string())
                );
                rows.push(Value::object([
                    (
                        "id",
                        Value::from(format!("pigeonhole/{name}/k={k}/alpha={alpha}")),
                    ),
                    ("family", Value::from(name.to_string())),
                    ("n", Value::from(n)),
                    ("k", Value::from(k)),
                    ("alpha", Value::from(alpha)),
                    ("certified", certified.map_or(Value::Null, Value::from)),
                    (
                        "s_hat",
                        witness.map_or(Value::Null, |w| {
                            Value::Array(
                                w.s_hat.as_slice().iter().map(|&c| Value::from(c)).collect(),
                            )
                        }),
                    ),
                ]));
            }
        };
        run_family("round-robin", &[(2, 2), (3, 2), (4, 2)], true);
        run_family("ours-sync", &[(2, 2), (3, 2)], false);
        rows
    }

    /// Theorem 7 density witnesses against the paper's construction:
    /// worst overlap-one pairs must sit between the `Ω(kℓ)` barrier and
    /// the Theorem 3 bound.
    fn density_section(artifact: &mut Artifact) -> Vec<Value> {
        let n = 24u64;
        let grid: &[(usize, usize)] = match artifact.tier() {
            Tier::Smoke => &[(2, 2), (3, 3)],
            Tier::Quick => &[(2, 2), (2, 4), (3, 3), (4, 4)],
            Tier::Full => &[(2, 2), (2, 4), (3, 3), (4, 4), (4, 6), (6, 6)],
        };
        let family =
            move |set: &ChannelSet| GeneralSchedule::asynchronous(n, set.clone()).expect("valid");
        let mut rows = Vec::new();
        println!();
        println!(
            "{:<14}{:>6}{:>10}{:>12}{:>14}",
            "density k,l", "k*l", "worstTTR", "TTR/(k*l)", "Thm3 bound"
        );
        for &(k, l) in grid {
            let w = density::worst_overlap_one_pair(&family, n, k, l, 1 << 22, 5, 128)
                .expect("witness");
            let bound = family(&w.a).ttr_bound(l);
            if w.ttr > bound {
                artifact.violation(format!(
                    "density witness k={k}, l={l}: TTR {} exceeds the Theorem 3 bound {bound}",
                    w.ttr
                ));
            }
            println!(
                "{:<14}{:>6}{:>10}{:>12.2}{:>14}",
                format!("{k},{l}"),
                k * l,
                w.ttr,
                w.barrier_ratio,
                bound
            );
            rows.push(Value::object([
                ("id", Value::from(format!("density/k={k}/l={l}"))),
                ("n", Value::from(n)),
                ("k", Value::from(k)),
                ("ell", Value::from(l)),
                ("measured", Value::from(w.ttr)),
                ("bound", Value::from(bound)),
                ("witness_shift", Value::from(w.shift)),
                ("barrier_ratio", Value::from(w.barrier_ratio)),
                ("h", Value::from(w.h)),
            ]));
        }
        rows
    }

    /// Theorem 4's Ramsey attack: the oblivious alternation family must
    /// produce a verified monochromatic 2-path certificate; the paper's
    /// pair family must survive the attack at its full period.
    fn ramsey_section(artifact: &mut Artifact) -> Vec<Value> {
        let mut rows = Vec::new();
        println!();
        println!(
            "{:<26}{:>6}{:>10}{:>12}",
            "ramsey family", "n", "horizon", "outcome"
        );
        // The family Theorem 4 demolishes: every pair alternates.
        let oblivious = |a: u64, b: u64| {
            rdv_core::schedule::CyclicSchedule::new(vec![
                rdv_core::channel::Channel::new(a),
                rdv_core::channel::Channel::new(b),
            ])
            .expect("non-empty")
        };
        let horizon = 8u64;
        let attack = ramsey_bridge::monochromatic_failure(&oblivious, 4, horizon);
        let verified = attack
            .as_ref()
            .is_some_and(|w| ramsey_bridge::verify_failure(&oblivious, w, horizon));
        if !verified {
            artifact.violation(
                "ramsey: the oblivious family escaped the Theorem 4 attack it cannot escape"
                    .to_string(),
            );
        }
        println!(
            "{:<26}{:>6}{:>10}{:>12}",
            "oblivious (alternating)",
            4,
            horizon,
            if verified { "doomed" } else { "ESCAPED" }
        );
        rows.push(Value::object([
            ("id", Value::from("ramsey/oblivious/n=4")),
            ("family", Value::from("oblivious")),
            ("n", Value::from(4u64)),
            ("horizon", Value::from(horizon)),
            ("witness_verified", Value::from(verified)),
        ]));
        let ns: &[u64] = match artifact.tier() {
            Tier::Smoke => &[4, 8],
            Tier::Quick => &[4, 8, 16],
            Tier::Full => &[4, 8, 16, 32],
        };
        for &n in ns {
            let fam = rdv_core::pair::PairFamily::new(n).expect("n ≥ 2");
            let period = fam.period();
            let family = move |a: u64, b: u64| fam.schedule(a, b).expect("valid pair");
            let attack = ramsey_bridge::monochromatic_failure(&family, n, period);
            let survived = match &attack {
                None => true,
                Some(w) => !ramsey_bridge::verify_failure(&family, w, period),
            };
            if !survived {
                artifact.violation(format!(
                    "ramsey: a Theorem 4 witness verified against the paper's pair family at n={n}"
                ));
            }
            println!(
                "{:<26}{:>6}{:>10}{:>12}",
                "ours (PairFamily)",
                n,
                period,
                if survived { "survives" } else { "DOOMED" }
            );
            rows.push(Value::object([
                ("id", Value::from(format!("ramsey/pair-family/n={n}"))),
                ("family", Value::from("pair-family")),
                ("n", Value::from(n)),
                ("horizon", Value::from(period)),
                ("survives", Value::from(survived)),
            ]));
        }
        rows
    }

    /// Runs the pipeline at `tier` on `threads` workers (0 = auto) and
    /// returns the artifact pair; the caller writes and gates it.
    pub fn run(tier: Tier, threads: usize) -> PipelineOutput {
        run_with(tier, threads, None)
    }

    /// [`run`], with an optional checkpoint journal (grid cells only —
    /// see [`super::table1::run_with`] for the replay semantics).
    pub fn run_with(tier: Tier, threads: usize, ckpt: Option<&Journal>) -> PipelineOutput {
        header(&format!(
            "lower-bound pipeline — sandwich invariant over the table1 grid (tier: {})",
            tier.name()
        ));
        let (ns, _, _) = grid_dimensions(tier);
        let (max_exhaustive, sampled) = shift_dimensions(tier);
        let mut artifact = Artifact::new("lower", tier);
        artifact.section(
            "config",
            Value::object([
                (
                    "ns",
                    Value::Array(ns.iter().map(|&n| Value::from(n)).collect()),
                ),
                ("max_exhaustive_shifts", Value::from(max_exhaustive)),
                ("sampled_shifts", Value::from(sampled)),
                ("k", Value::from(GRID_K)),
            ]),
        );
        let cells = grid_cells(&mut artifact, threads, ckpt);
        let exact = exact_section(&mut artifact);
        let pigeonhole = pigeonhole_section(&mut artifact);
        let density = density_section(&mut artifact);
        let ramsey = ramsey_section(&mut artifact);

        let mut md_rows = String::new();
        for cell in &cells {
            let g = |k: &str| cell.get(k).cloned().unwrap_or(Value::Null);
            md_rows.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                g("id").as_str().unwrap_or("?"),
                g("lower").as_u64().unwrap_or(0),
                g("measured").as_u64().unwrap_or(0),
                g("bound").as_u64().unwrap_or(0),
                if g("exhaustive") == Value::Bool(true) {
                    "exhaustive"
                } else {
                    "sampled"
                },
                if g("sandwich_ok") == Value::Bool(true) {
                    "✓"
                } else {
                    "✗"
                },
            ));
        }
        artifact.section("cells", Value::Array(cells));
        artifact.section("exact", Value::Array(exact));
        artifact.section("pigeonhole", Value::Array(pigeonhole));
        artifact.section("density", Value::Array(density));
        artifact.section("ramsey", Value::Array(ramsey));

        let md = format!(
            "{}Every gridded cell checks the **sandwich invariant**\n\
             `certified lower ≤ measured worst TTR ≤ proven upper bound`: the lower\n\
             slice is the Theorem 7 covering bound (certified only on cells whose\n\
             shift sweep is exhaustive), the upper slice the Theorem 3 / §3.2 bound\n\
             on gated rows. The artifact also carries the exact `R_s(n,2)` optima\n\
             (Theorem 4), pigeonhole certificates (Theorem 6), density witnesses\n\
             (Theorem 7), and the Ramsey-bridge attack (Theorem 4).\n\n\
             | cell | lower | measured | upper | shifts | sandwich |\n\
             |---|---|---|---|---|---|\n\
             {md_rows}\n\
             {}\n",
            artifact.preamble_markdown(
                "Paper reproduction — Section 4 lower bounds",
                "REPRO_lower",
                "A sandwich violation on any cell, or a failed Theorem 4/6/7\n\
                 certificate, fails the pipeline.",
            ),
            artifact.verdict_markdown()
        );
        artifact.finish(md)
    }
}

/// The SDP pipeline: the appendix's one-round 0.439-approximation,
/// re-solved on the named graph families plus seeded random instances,
/// with exact optima and the 0.25 random baseline — instances sharded
/// onto the work-stealing orchestrator.
pub mod sdp {
    use super::*;
    use rdv_sdp::{exact_max_in_pairs, random_orientation_value, solve, OrientGraph, SdpConfig};
    use rdv_sim::{pool, ParallelConfig};

    /// Artifact file stem (see [`super::table1::STEM`]).
    pub const STEM: &str = "REPRO_sdp";

    /// The appendix's approximation guarantee: `0.878 / 2`.
    pub const GUARANTEE: f64 = 0.439;

    /// The instance families at `tier`: stable-named small graphs plus
    /// seeded random multigraphs (more of them at bigger tiers).
    fn instances(tier: Tier) -> Vec<(String, OrientGraph)> {
        let mut out: Vec<(String, OrientGraph)> = vec![
            (
                "star-6".into(),
                OrientGraph::new(7, (1..=6).map(|v| (v, 0)).collect()).expect("valid"),
            ),
            (
                "cycle-7".into(),
                OrientGraph::new(7, (0..7).map(|i| (i, (i + 1) % 7)).collect()).expect("valid"),
            ),
            (
                "K4".into(),
                OrientGraph::new(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
                    .expect("valid"),
            ),
            (
                "path-6".into(),
                OrientGraph::new(6, (0..5).map(|i| (i, i + 1)).collect()).expect("valid"),
            ),
        ];
        let extra = match tier {
            Tier::Smoke => 2,
            Tier::Quick => 4,
            Tier::Full => 6,
        };
        for i in 0..extra {
            out.push((
                format!("random-{i}"),
                OrientGraph::seeded_random(1000 + i, 5..9, 6..13),
            ));
        }
        out
    }

    /// The checkpoint-journal identity of an `sdp` run (see
    /// [`super::table1::fingerprint`]).
    pub fn fingerprint(tier: Tier) -> checkpoint::Fingerprint {
        checkpoint::Fingerprint::new(STEM, tier, "")
    }

    /// Runs the pipeline at `tier` on `threads` workers (0 = auto) and
    /// returns the artifact pair; the caller writes and gates it.
    pub fn run(tier: Tier, threads: usize) -> PipelineOutput {
        run_with(tier, threads, None)
    }

    /// [`run`], with an optional checkpoint journal (see
    /// [`super::table1::run_with`] for the replay semantics).
    pub fn run_with(tier: Tier, threads: usize, ckpt: Option<&Journal>) -> PipelineOutput {
        header(&format!(
            "SDP pipeline — one-round 0.439-approximation vs exact optimum (tier: {})",
            tier.name()
        ));
        let mut artifact = Artifact::new("sdp", tier);
        let instances = instances(tier);
        artifact.section(
            "config",
            Value::object([
                ("instances", Value::from(instances.len())),
                ("guarantee", Value::from(GUARANTEE)),
                (
                    "solver",
                    Value::from("Burer–Monteiro projected gradient + hyperplane rounding"),
                ),
            ]),
        );
        let mut replayed: Vec<Option<Value>> = instances
            .iter()
            .map(|(name, _)| replay_row(ckpt, &format!("sdp/{name}")))
            .collect();
        // One task per missing instance on the orchestrator; results merge
        // back in instance order, so the artifact is thread-count invariant.
        let solved: Vec<(usize, f64, usize, usize, f64, usize)> = pool::run_indexed(
            instances
                .iter()
                .zip(&replayed)
                .filter_map(|((_, g), replay)| replay.is_none().then_some(g))
                .collect(),
            &ParallelConfig { threads },
            |_idx, g| {
                let opt = exact_max_in_pairs(g);
                let res = solve(g, &SdpConfig::default());
                let (rand_expected, rand_best) = random_orientation_value(g, 64, 7);
                (
                    opt,
                    res.sdp_value,
                    res.in_pairs,
                    res.in_plus_out,
                    rand_expected,
                    rand_best,
                )
            },
        );
        let mut solved = solved.into_iter();

        let mut rows = Vec::new();
        let mut md_rows = String::new();
        let mut min_ratio = f64::INFINITY;
        println!(
            "{:<12}{:>6}{:>8}{:>10}{:>10}{:>10}{:>8}",
            "instance", "m", "exact", "sdp val", "rounded", "rand E", "ratio"
        );
        for (i, (name, g)) in instances.iter().enumerate() {
            let row = match replayed[i].take() {
                Some(row) => row,
                None => {
                    let (opt, sdp_value, in_pairs, in_plus_out, rand_expected, rand_best) = solved
                        .next()
                        .expect("instance list and consumption loop are aligned");
                    let ratio = if opt > 0 {
                        in_pairs as f64 / opt as f64
                    } else {
                        1.0
                    };
                    let id = format!("sdp/{name}");
                    let row = Value::object([
                        ("id", Value::from(id.clone())),
                        ("instance", Value::from(name.to_string())),
                        ("vertices", Value::from(g.n_vertices())),
                        ("edges", Value::from(g.n_edges())),
                        ("measured", Value::from(in_pairs)),
                        ("bound", Value::from(opt)),
                        ("sdp_value", Value::from(sdp_value)),
                        ("in_plus_out", Value::from(in_plus_out)),
                        ("random_expected", Value::from(rand_expected)),
                        ("random_best", Value::from(rand_best)),
                        ("ratio", Value::from(ratio)),
                        ("ratio_ok", Value::from(ratio >= GUARANTEE)),
                    ]);
                    journal_row(ckpt, &id, &row);
                    row
                }
            };
            // Gates, console, and markdown all derive from the row JSON,
            // so replayed and fresh instances walk one code path (the
            // JSON shim's float round-trip is exact, keeping every
            // formatted digit identical).
            let opt = row.get("bound").and_then(Value::as_u64).unwrap_or(0);
            let in_pairs = row.get("measured").and_then(Value::as_u64).unwrap_or(0);
            let sdp_value = row.get("sdp_value").and_then(Value::as_f64).unwrap_or(0.0);
            let rand_expected = row
                .get("random_expected")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            let ratio = row.get("ratio").and_then(Value::as_f64).unwrap_or(0.0);
            let ok = row.get("ratio_ok") == Some(&Value::Bool(true));
            min_ratio = min_ratio.min(ratio);
            if !ok {
                artifact.violation(format!(
                    "sdp {name}: rounded {in_pairs} in-pairs vs optimum {opt} \
                     (ratio {ratio:.3} < {GUARANTEE})"
                ));
            }
            if sdp_value + 1e-6 < opt as f64 * 0.99 {
                artifact.violation(format!(
                    "sdp {name}: relaxation value {sdp_value:.3} sits below the integral \
                     optimum {opt} — the ascent failed to converge"
                ));
            }
            println!(
                "{:<12}{:>6}{:>8}{:>10.2}{:>10}{:>10.2}{:>8.3}",
                name,
                g.n_edges(),
                opt,
                sdp_value,
                in_pairs,
                rand_expected,
                ratio
            );
            md_rows.push_str(&format!(
                "| {name} | {} | {} | {opt} | {sdp_value:.3} | {in_pairs} | {rand_expected:.2} | \
                 {ratio:.3} | {} |\n",
                g.n_vertices(),
                g.n_edges(),
                if ok { "✓" } else { "✗" },
            ));
            rows.push(row);
        }
        assert!(solved.next().is_none(), "instance cells left unconsumed");
        println!();
        println!(
            "min ratio {:.3} vs the appendix guarantee {GUARANTEE}; random baseline ≈ optimum/4",
            min_ratio
        );
        artifact.section("rows", Value::Array(rows));
        artifact.section("min_ratio", Value::from(min_ratio));

        let md = format!(
            "{}For every instance the pipeline compares the exact optimum (exhaustive\n\
             over all orientations), the SDP relaxation value, the hyperplane-rounded\n\
             orientation (with the flip trick), and the 0.25 random baseline. Here\n\
             `measured` is the rounded in-pair count and `bound` the exact optimum,\n\
             so the trend headroom tracks how much rounding leaves on the table.\n\n\
             | instance | vertices | edges | exact | sdp value | rounded | rand E | ratio | ok |\n\
             |---|---|---|---|---|---|---|---|---|\n\
             {md_rows}\n\
             {}\n",
            artifact.preamble_markdown(
                "Paper reproduction — appendix one-round SDP",
                "REPRO_sdp",
                "A rounded orientation below the 0.439 guarantee, or a relaxation\n\
                 value below the integral optimum, fails the pipeline.",
            ),
            artifact.verdict_markdown()
        );
        artifact.finish(md)
    }
}

/// The fault-injection pipeline behind `repro table1 --faults <profile>`:
/// the arena engine re-run over clustered multi-agent populations with a
/// deterministic [`rdv_sim::FaultPlan`] sweeping outage-rate × churn-rate
/// axes — genuinely new cells under degraded spectra — on the *hardened*
/// orchestrator: every cell is panic-quarantined, transient sampling
/// failures are retried with exponential backoff, and a failing cell
/// degrades the artifact (row-id-sorted `failed_cells` section, distinct
/// exit code) instead of killing the grid.
pub mod faults {
    use super::*;
    use crate::report::FailedCell;
    use rdv_sim::engine::{EngineConfig, MissCause, Simulation};
    use rdv_sim::{pool, FaultPlan, FaultProfile};

    /// Artifact file stem (see [`super::table1::STEM`]).
    pub const STEM: &str = "REPRO_table1_faults";

    /// The deterministic base seed every cell seed is streamed from.
    pub const PIPELINE_SEED: u64 = 0xFA01_7ED5;

    /// Pipeline-level retry rounds for transient sampling failures: the
    /// scenario-probe budget doubles each round
    /// (see [`pool::retry_with_backoff`]).
    pub const CELL_RETRY_ROUNDS: u32 = 3;

    /// The channel universe and per-agent set size of every fault cell.
    const UNIVERSE: u64 = 32;
    const SET_K: usize = 4;
    /// Wake staggering window of the clustered populations.
    const MAX_WAKE: u64 = 128;

    /// The algorithms the fault axes sweep: the four oblivious Table 1
    /// rows, then the availability-aware family — the algorithms actually
    /// designed for a faulted spectrum, whose schedules consult the
    /// plan's sensed channel sets (arXiv 1506.00744 / 1506.01136).
    pub const FAULT_ALGOS: [Algorithm; 6] = [
        Algorithm::Crseq,
        Algorithm::JumpStay,
        Algorithm::Drds,
        Algorithm::Ours,
        Algorithm::Zos,
        Algorithm::AcsHopping,
    ];

    /// Deliberate failures injected by CI and the degradation tests:
    /// `poison_cell` panics (exercising panic quarantine), `exhaust_cell`
    /// runs its scenario probe with a zero draw budget, which stays zero
    /// through every backoff doubling (exercising bounded retry). Cell
    /// indices are positions in grid (artifact row) order.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Sabotage {
        /// Cell index that panics mid-evaluation.
        pub poison_cell: Option<usize>,
        /// Cell index whose sampler deterministically exhausts.
        pub exhaust_cell: Option<usize>,
    }

    impl Sabotage {
        /// No injected failures — the committed-artifact configuration.
        pub const NONE: Sabotage = Sabotage {
            poison_cell: None,
            exhaust_cell: None,
        };
    }

    /// One cell of the fault grid.
    struct FaultCell {
        algo: Algorithm,
        outage_per_mille: u16,
        churn_per_mille: u16,
        agents: usize,
        seed: u64,
        id: String,
    }

    /// Population sizes and horizon per tier.
    fn fault_dimensions(tier: Tier) -> (&'static [usize], u64) {
        match tier {
            Tier::Smoke => (&[16], 4_096),
            Tier::Quick => (&[16, 32], 8_192),
            Tier::Full => (&[16, 32, 64], 16_384),
        }
    }

    /// The fault grid in artifact row order (algorithm → fault axis →
    /// population size): the profile's outage/churn rates are swept as
    /// the axes `(0,0)`, `(o,0)`, `(0,c)`, `(o,c)`, so every artifact
    /// contains its own fault-free control rows. The population seed
    /// depends only on (algorithm, population size) — the four axis rows
    /// of one (algorithm, size) pair run the *same* agents under
    /// different fault plans, so `met` degrades against a fixed control.
    fn cells(tier: Tier, profile: &FaultProfile) -> Vec<FaultCell> {
        let (counts, _) = fault_dimensions(tier);
        let (o, c) = (profile.outage_per_mille, profile.churn_per_mille);
        let axes = [(0, 0), (o, 0), (0, c), (o, c)];
        let mut out = Vec::new();
        for (algo_idx, algo) in FAULT_ALGOS.into_iter().enumerate() {
            for (outage, churn) in axes {
                for (count_idx, &agents) in counts.iter().enumerate() {
                    let population = (algo_idx * counts.len() + count_idx) as u64;
                    out.push(FaultCell {
                        algo,
                        outage_per_mille: outage,
                        churn_per_mille: churn,
                        agents,
                        seed: pool::stream_seed(PIPELINE_SEED, population),
                        id: report::cell_id(
                            &algo.to_string(),
                            "async",
                            &format!("faults[o={outage},c={churn}]"),
                            agents as u64,
                        ),
                    });
                }
            }
        }
        out
    }

    /// Evaluates one cell: probe the scenario sampler (the one transient
    /// failure mode, retried with exponential backoff), build the
    /// clustered population, and run the arena engine twice — fault-free
    /// control and faulted — recording how gracefully rendezvous degrades.
    /// Cells run single-threaded inside the quarantined grid; the engine's
    /// own determinism contract makes the rows thread-count invariant.
    fn eval_cell(
        cell: &FaultCell,
        profile: &FaultProfile,
        horizon: u64,
        exhaust: bool,
    ) -> Result<Value, (rdv_sim::SweepError, u32)> {
        // The scenario feasibility probe: under heavy outage profiles the
        // pipeline verifies a coalition control pair is drawable for this
        // cell's seed. Sampling is the only transient failure mode a cell
        // has, so it carries the bounded retry-with-backoff contract; a
        // sabotaged cell's zero base budget stays zero through every
        // doubling and exhausts deterministically.
        let base_budget = if exhaust { 0 } else { 64 };
        pool::retry_with_backoff(CELL_RETRY_ROUNDS, base_budget, |_round, budget| {
            workload::coalition_pair_with_budget(1 << 16, 5, 2, cell.seed, Some(budget)).map(|_| ())
        })?;
        let plan = FaultPlan::new(
            pool::stream_seed(cell.seed, 1),
            profile.epoch_slots,
            cell.outage_per_mille,
            cell.churn_per_mille,
            horizon,
        );
        let sim = Simulation::new(workload::clustered_agents(
            cell.algo,
            UNIVERSE,
            SET_K,
            cell.agents,
            cell.seed,
            MAX_WAKE,
        ));
        let clean_cfg = EngineConfig {
            parallel: ParallelConfig::with_threads(1),
            ..EngineConfig::default()
        };
        let clean = sim.run_engine(horizon, &clean_cfg);
        // The faulted twin: availability-aware algorithms sense the plan,
        // so their faulted population is *rebuilt* with the plan threaded
        // into every AgentCtx (same channel sets and wakes — the clean
        // run above stays their fault-free control); oblivious algorithms
        // run the very same agents under the plan's masks.
        let faulted_sim = if cell.algo.availability_aware() {
            Simulation::new(workload::clustered_agents_with_faults(
                cell.algo,
                UNIVERSE,
                SET_K,
                cell.agents,
                cell.seed,
                MAX_WAKE,
                Some(plan),
            ))
        } else {
            sim
        };
        let faulted = faulted_sim.run_engine(
            horizon,
            &EngineConfig {
                faults: Some(plan),
                ..clean_cfg
            },
        );
        let pairs = faulted.first_meeting.len() + faulted.missed.len();
        let worst_ttr = faulted
            .first_meeting
            .iter()
            .filter_map(|((i, j), _)| faulted.ttr(i, j, faulted_sim.agents()))
            .max()
            .unwrap_or(0);
        Ok(Value::object([
            ("id", Value::from(cell.id.clone())),
            ("algorithm", Value::from(cell.algo.to_string())),
            (
                "availability_aware",
                Value::from(cell.algo.availability_aware()),
            ),
            (
                "outage_per_mille",
                Value::from(u64::from(cell.outage_per_mille)),
            ),
            (
                "churn_per_mille",
                Value::from(u64::from(cell.churn_per_mille)),
            ),
            ("agents", Value::from(cell.agents)),
            // Full 64-bit stream seed; hex string because the JSON shim's
            // number domain is f64 (exact only below 2^53).
            ("seed", Value::from(format!("{:#018x}", cell.seed))),
            ("overlapping_pairs", Value::from(pairs)),
            ("met", Value::from(faulted.first_meeting.len())),
            ("met_clean", Value::from(clean.first_meeting.len())),
            (
                "missed_horizon",
                Value::from(faulted.missed_with_cause(MissCause::HorizonExhausted)),
            ),
            (
                "departed",
                Value::from(faulted.missed_with_cause(MissCause::Departed)),
            ),
            ("measured", Value::from(worst_ttr)),
            ("bound", Value::from(horizon)),
            ("bound_kind", Value::from("run horizon (not gated)")),
            ("gated", Value::from(false)),
        ]))
    }

    /// The checkpoint-journal identity of a faults run: the profile and
    /// the sabotage indices both shape the rows, so both are pinned —
    /// a journal from a sabotaged CI run can never resume a clean one.
    pub fn fingerprint(
        tier: Tier,
        profile: &FaultProfile,
        sabotage: Sabotage,
    ) -> checkpoint::Fingerprint {
        checkpoint::Fingerprint::new(
            STEM,
            tier,
            &format!(
                "profile={};poison={:?};exhaust={:?}",
                profile.name, sabotage.poison_cell, sabotage.exhaust_cell
            ),
        )
    }

    /// Runs the pipeline at `tier` on `threads` workers (0 = auto) with
    /// deliberate `sabotage` failures (use [`Sabotage::NONE`] for real
    /// runs) and returns the artifact pair; the caller writes it and maps
    /// a non-empty `failed_cells` to the degraded exit code.
    pub fn run(
        tier: Tier,
        threads: usize,
        profile: &FaultProfile,
        sabotage: Sabotage,
    ) -> PipelineOutput {
        run_with(tier, threads, profile, sabotage, None)
    }

    /// [`run`], with an optional checkpoint journal. Unlike the other
    /// pipelines (which journal rows as the finished grid is consumed),
    /// every fault cell — including a quarantined [`FailedCell`], retry
    /// count and all — is journaled from the pool's completion sink the
    /// moment it finishes on its worker thread, so a SIGKILL mid-grid
    /// loses at most the cells still in flight.
    pub fn run_with(
        tier: Tier,
        threads: usize,
        profile: &FaultProfile,
        sabotage: Sabotage,
        ckpt: Option<&Journal>,
    ) -> PipelineOutput {
        header(&format!(
            "Fault injection — outage × churn axes, profile '{}' (tier: {})",
            profile.name,
            tier.name()
        ));
        let (_, horizon) = fault_dimensions(tier);
        let grid = cells(tier, profile);
        let mut artifact = Artifact::new("table1_faults", tier);
        artifact.track_failed_cells();
        artifact.section(
            "config",
            Value::object([
                ("profile", Value::from(profile.name)),
                ("epoch_slots", Value::from(profile.epoch_slots)),
                (
                    "outage_per_mille",
                    Value::from(u64::from(profile.outage_per_mille)),
                ),
                (
                    "churn_per_mille",
                    Value::from(u64::from(profile.churn_per_mille)),
                ),
                ("universe", Value::from(UNIVERSE)),
                ("k", Value::from(SET_K)),
                ("horizon", Value::from(horizon)),
                ("max_wake", Value::from(MAX_WAKE)),
                ("base_seed", Value::from(PIPELINE_SEED)),
            ]),
        );
        // Which cells the journal already carries (rows AND failed cells
        // — a degraded run resumes with the same retries/causes); only
        // the missing ones are submitted, by their original grid index so
        // the sabotage indices stay grid-relative across a resume.
        let replayed: Vec<Option<CellRecord>> = grid
            .iter()
            .map(|cell| ckpt.and_then(|j| j.lookup(&cell.id)).cloned())
            .collect();
        let todo: Vec<usize> = (0..grid.len()).filter(|&i| replayed[i].is_none()).collect();
        // Converts one quarantined outcome into the record the journal
        // and the artifact share: a finished row, or the FailedCell that
        // degrades the artifact.
        let outcome_record = |idx: usize,
                              outcome: &Result<
            Result<Value, (rdv_sim::SweepError, u32)>,
            pool::TaskPanic,
        >| {
            let cell = &grid[idx];
            match outcome {
                Ok(Ok(row)) => CellRecord::Row {
                    id: cell.id.clone(),
                    row: row.clone(),
                },
                Ok(Err((e, rounds))) => CellRecord::Failed(FailedCell {
                    id: cell.id.clone(),
                    cause: e.to_string(),
                    retries: *rounds,
                    seed: cell.seed,
                }),
                Err(panic) => CellRecord::Failed(FailedCell {
                    id: cell.id.clone(),
                    cause: panic.to_string(),
                    retries: 0,
                    seed: cell.seed,
                }),
            }
        };
        // The remaining grid goes through the quarantined orchestrator
        // (a panicking cell is recorded and released, never propagated),
        // with a completion sink journaling each cell the moment its
        // worker finishes it — the pipeline's actual crash-safety point.
        let results = pool::run_indexed_quarantined_sink(
            todo.clone(),
            &ParallelConfig { threads },
            |_task, idx| {
                let cell = &grid[idx];
                if sabotage.poison_cell == Some(idx) {
                    panic!("deliberately poisoned cell: {}", cell.id);
                }
                eval_cell(cell, profile, horizon, sabotage.exhaust_cell == Some(idx))
            },
            |task, outcome| {
                if let Some(journal) = ckpt {
                    journal.record(&outcome_record(todo[task], outcome));
                }
            },
        );
        let mut fresh = results.into_iter();
        let mut rows = Vec::new();
        let mut md_rows = String::new();
        println!(
            "{:<16}{:>7}{:>7}{:>7}{:>7}{:>9}{:>9}{:>10}{:>12}",
            "algorithm", "o‰", "c‰", "agents", "pairs", "met", "clean", "departed", "worstTTR"
        );
        for (idx, cell) in grid.iter().enumerate() {
            let record = match replayed[idx].clone() {
                Some(record) => record,
                None => outcome_record(
                    idx,
                    &fresh
                        .next()
                        .expect("todo list and consumption loop are aligned"),
                ),
            };
            let row = match record {
                CellRecord::Row { row, .. } => row,
                CellRecord::Failed(failed) => {
                    artifact.failed_cell(failed);
                    continue;
                }
            };
            let get = |key: &str| row.get(key).and_then(Value::as_u64).unwrap_or(0);
            println!(
                "{:<16}{:>7}{:>7}{:>7}{:>7}{:>9}{:>9}{:>10}{:>12}",
                cell.algo.to_string(),
                cell.outage_per_mille,
                cell.churn_per_mille,
                cell.agents,
                get("overlapping_pairs"),
                get("met"),
                get("met_clean"),
                get("departed"),
                get("measured"),
            );
            md_rows.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |\n",
                cell.algo,
                cell.outage_per_mille,
                cell.churn_per_mille,
                cell.agents,
                get("overlapping_pairs"),
                get("met"),
                get("met_clean"),
                get("missed_horizon"),
                get("departed"),
                get("measured"),
            ));
            rows.push(row);
        }
        assert!(fresh.next().is_none(), "grid cells left unconsumed");
        artifact.section("rows", Value::Array(rows));

        let failed_md = artifact.failed_cells_markdown();
        let tier_name = tier.name();
        let profile_name = profile.name;
        let md = format!(
            "# Fault injection — Table 1 algorithms under channel outages & agent churn \
             (tier: {tier_name})\n\n\
             Regenerate with `cargo run --release --bin repro -- --{tier_name} table1 \
             --faults {profile_name}`. Machine-readable twin:\n\
             `REPRO_table1_faults.json`. Rows are *recorded*, not gated — the paper's\n\
             bounds assume a fault-free spectrum, so under faults the interesting\n\
             quantity is how gracefully rendezvous degrades (`met` vs `met_clean`,\n\
             and `departed` misses no horizon could fix).\n\n\
             Faults are drawn from seeded SplitMix64 streams (profile '{profile_name}':\n\
             epoch {epoch} slots, outage {o}‰, churn {c}‰) and sweeps ran on the\n\
             quarantined work-stealing orchestrator; results (and this file) are\n\
             bit-identical at any worker thread count.\n\n\
             | algorithm | outage ‰ | churn ‰ | agents | pairs | met | met clean | \
             missed@horizon | departed | worst TTR |\n\
             |---|---|---|---|---|---|---|---|---|---|\n\
             {md_rows}\n\
             {failed_md}",
            epoch = profile.epoch_slots,
            o = profile.outage_per_mille,
            c = profile.churn_per_mille,
        );
        artifact.finish(md)
    }
}
