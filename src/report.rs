//! The shared artifact schema of the reproduction pipelines.
//!
//! Every pipeline (`table1`, `lower`, `sdp`) emits a pair of artifacts —
//! `REPRO_<name>.json` (machine-readable) and `REPRO_<name>.md` (human
//! summary) — through this module, so ids, provenance, tiering, gating,
//! and on-disk layout stay identical across pipelines:
//!
//! * **Provenance** — every JSON artifact carries the `pipeline` name, the
//!   [`PAPER`] citation, and the [`Tier`] it was produced at.
//! * **Ids** — every gridded row carries an `id` (see [`cell_id`]) plus
//!   numeric `measured` and `bound` fields; [`trend`] matches rows across
//!   two artifact generations by `id` and reports how much headroom
//!   (`bound / measured`) moved.
//! * **Gating** — proven-bound violations accumulate in the builder; the
//!   driver exits non-zero if any remain, which is the CI contract.
//!
//! Artifacts are bit-identical across worker thread counts (the parallel
//! orchestrator's determinism contract) and across runs (no timestamps,
//! no machine identifiers, sorted object keys), so CI can diff them
//! byte-for-byte against the committed copies.

use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The source paper, cited in every artifact.
pub const PAPER: &str = "Chen, Russell, Samanta, Sundaram — Deterministic Blind Rendezvous in \
                         Cognitive Radio Networks (ICDCS 2014)";

/// Experiment size tiers shared by every pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The full paper-scale grids.
    Full,
    /// Smaller grids, same shapes.
    Quick,
    /// The minutes-scale CI tier: the smallest grids that still cross
    /// every algorithm × timing × scenario cell.
    Smoke,
}

impl Tier {
    /// The lowercase name recorded in artifacts and used in CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::Quick => "quick",
            Tier::Smoke => "smoke",
        }
    }
}

/// The canonical id of one measurement-grid cell:
/// `"<algorithm>/<timing>/<scenario>/n=<n>"`.
pub fn cell_id(algorithm: &str, timing: &str, scenario: &str, n: u64) -> String {
    format!("{algorithm}/{timing}/{scenario}/n={n}")
}

/// Bound headroom of a row: how many times the measurement fits under
/// its bound (`bound / max(measured, 1)`), the quantity [`trend`] tracks
/// across pipeline generations.
pub fn headroom(measured: f64, bound: f64) -> f64 {
    bound / measured.max(1.0)
}

/// One grid cell that failed and was quarantined instead of aborting the
/// run — the unit of the graceful-degradation contract. Every field is
/// deterministic (panic messages in this workspace are fixed strings,
/// retry counts are attempt-based, seeds are derived), so a degraded
/// artifact is still byte-identical across thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedCell {
    /// The canonical row id of the cell (see [`cell_id`]).
    pub id: String,
    /// Why it failed: a quarantined panic message or a typed sweep error
    /// rendered via `Display`.
    pub cause: String,
    /// Retry rounds spent before giving up (0 when the failure was not
    /// retryable, e.g. a panic).
    pub retries: u32,
    /// The cell's derived seed, for offline reproduction.
    pub seed: u64,
}

/// A finished pipeline run, ready to write and gate.
pub struct PipelineOutput {
    /// The pipeline name (`"table1"`, `"lower"`, `"sdp"`).
    pub pipeline: &'static str,
    /// The machine-readable artifact.
    pub json: Value,
    /// The human-readable artifact.
    pub markdown: String,
    /// Violated proven bounds — non-empty fails the run.
    pub violations: Vec<String>,
    /// Cells that failed and were quarantined — non-empty marks the
    /// artifact *partial* and makes `repro` exit with the distinct
    /// degraded code (3) instead of aborting mid-grid.
    pub failed_cells: Vec<FailedCell>,
}

/// Incremental builder for one pipeline's artifact pair.
pub struct Artifact {
    pipeline: &'static str,
    tier: Tier,
    top: BTreeMap<String, Value>,
    violations: Vec<String>,
    failed: Vec<FailedCell>,
    track_failed_cells: bool,
}

impl Artifact {
    /// Starts an artifact for `pipeline` at `tier`.
    pub fn new(pipeline: &'static str, tier: Tier) -> Self {
        Artifact {
            pipeline,
            tier,
            top: BTreeMap::new(),
            violations: Vec::new(),
            failed: Vec::new(),
            track_failed_cells: false,
        }
    }

    /// Opts the artifact into the graceful-degradation schema: the JSON
    /// gains a `failed_cells` section (present even when empty, so the
    /// schema is stable across clean and degraded runs). Pipelines that
    /// never quarantine cells — whose committed artifacts are diffed
    /// bit-for-bit by CI — simply never call this and keep their exact
    /// historical layout.
    pub fn track_failed_cells(&mut self) {
        self.track_failed_cells = true;
    }

    /// Records a quarantined cell failure (implies
    /// [`Self::track_failed_cells`]).
    pub fn failed_cell(&mut self, cell: FailedCell) {
        self.track_failed_cells = true;
        self.failed.push(cell);
    }

    /// The quarantined failures recorded so far, row-id-sorted.
    pub fn failed_cells(&mut self) -> &[FailedCell] {
        self.failed.sort_by(|a, b| a.id.cmp(&b.id));
        &self.failed
    }

    /// The standard markdown section for quarantined failures, or a
    /// one-line all-clear. Row-id-sorted, like the JSON section.
    pub fn failed_cells_markdown(&mut self) -> String {
        self.failed.sort_by(|a, b| a.id.cmp(&b.id));
        if self.failed.is_empty() {
            return "## Failed cells\n\nNone — every grid cell completed.\n".to_string();
        }
        let mut md = String::from(
            "## Failed cells\n\nThe grid degraded gracefully: the cells below were\n\
             quarantined (cause recorded, neighbors unaffected) and this artifact is\n\
             **partial** — `repro` exits with the degraded code 3.\n\n\
             | row id | cause | retries | seed |\n|---|---|---:|---:|\n",
        );
        for c in &self.failed {
            md.push_str(&format!(
                "| `{}` | {} | {} | {:#018x} |\n",
                c.id, c.cause, c.retries, c.seed
            ));
        }
        md
    }

    /// The tier the artifact is being produced at.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Adds a top-level section (e.g. `"config"`, `"cells"`, `"rows"`).
    pub fn section(&mut self, key: &'static str, value: Value) {
        self.top.insert(key.to_string(), value);
    }

    /// Records a proven-bound violation (fails the pipeline at the end).
    pub fn violation(&mut self, message: String) {
        self.violations.push(message);
    }

    /// The violations recorded so far.
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// The standard markdown verdict block.
    pub fn verdict_markdown(&self) -> String {
        if self.violations.is_empty() {
            "**All gated rows respect their proven bounds.**".to_string()
        } else {
            format!(
                "**{} bound violation(s):**\n\n{}",
                self.violations.len(),
                self.violations
                    .iter()
                    .map(|v| format!("- {v}"))
                    .collect::<Vec<_>>()
                    .join("\n")
            )
        }
    }

    /// The standard markdown preamble: regeneration command, twin-file
    /// pointer, and the determinism note shared by every pipeline.
    pub fn preamble_markdown(&self, title: &str, stem: &str, gate_note: &str) -> String {
        let tier = self.tier.name();
        let pipeline = self.pipeline;
        format!(
            "# {title} (tier: {tier})\n\n\
             Regenerate with `cargo run --release --bin repro -- --{tier} {pipeline}`\n\
             (drop the tier flag for the full paper-scale grid). Machine-readable\n\
             twin: `{stem}.json`. {gate_note}\n\n\
             Sweeps ran on the work-stealing orchestrator; results (and this\n\
             file) are bit-identical at any worker thread count.\n\n"
        )
    }

    /// Seals the artifact: merges provenance, tier, violations — and, for
    /// degradation-aware pipelines, the row-id-sorted `failed_cells`
    /// section — into the JSON tree and pairs it with the rendered
    /// markdown.
    pub fn finish(mut self, markdown: String) -> PipelineOutput {
        self.top
            .insert("pipeline".to_string(), Value::from(self.pipeline));
        self.top.insert("paper".to_string(), Value::from(PAPER));
        self.top
            .insert("tier".to_string(), Value::from(self.tier.name()));
        self.top.insert(
            "violations".to_string(),
            Value::Array(
                self.violations
                    .iter()
                    .map(|v| Value::from(v.as_str()))
                    .collect(),
            ),
        );
        if self.track_failed_cells {
            self.failed.sort_by(|a, b| a.id.cmp(&b.id));
            self.top.insert(
                "failed_cells".to_string(),
                Value::Array(
                    self.failed
                        .iter()
                        .map(|c| {
                            let mut obj = BTreeMap::new();
                            obj.insert("id".to_string(), Value::from(c.id.as_str()));
                            obj.insert("cause".to_string(), Value::from(c.cause.as_str()));
                            obj.insert("retries".to_string(), Value::from(c.retries as u64));
                            // Seeds are full 64-bit stream values; hex
                            // strings dodge the shim's f64 number domain.
                            obj.insert(
                                "seed".to_string(),
                                Value::from(format!("{:#018x}", c.seed)),
                            );
                            Value::Object(obj)
                        })
                        .collect(),
                ),
            );
        }
        PipelineOutput {
            pipeline: self.pipeline,
            json: Value::Object(self.top),
            markdown,
            violations: self.violations,
            failed_cells: self.failed,
        }
    }
}

/// Writes the artifact pair as `<out_dir>/<stem>.json` and
/// `<out_dir>/<stem>.md`, returning both paths. Each file is committed
/// atomically ([`crate::checkpoint::commit_bytes`]): a crash mid-write
/// leaves the previous artifact intact, never a partial one.
///
/// # Panics
///
/// Panics on I/O failure — the pipelines treat an unwritable artifact as
/// fatal, matching the CI contract.
pub fn write_artifacts(out_dir: &Path, stem: &str, out: &PipelineOutput) -> (PathBuf, PathBuf) {
    std::fs::create_dir_all(out_dir)
        .unwrap_or_else(|e| panic!("creating {}: {e}", out_dir.display()));
    let json_path = out_dir.join(format!("{stem}.json"));
    let json_bytes = serde_json::to_string_pretty(&out.json) + "\n";
    crate::checkpoint::commit_bytes(&json_path, json_bytes.as_bytes())
        .unwrap_or_else(|e| panic!("writing {}: {e}", json_path.display()));
    let md_path = out_dir.join(format!("{stem}.md"));
    crate::checkpoint::commit_bytes(&md_path, out.markdown.as_bytes())
        .unwrap_or_else(|e| panic!("writing {}: {e}", md_path.display()));
    (json_path, md_path)
}

/// One id matched across two artifact generations by [`trend`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    /// The shared row id.
    pub id: String,
    /// `measured` in the (old, new) artifacts.
    pub measured: (f64, f64),
    /// `bound` in the (old, new) artifacts.
    pub bound: (f64, f64),
    /// [`headroom`] in the (old, new) artifacts.
    pub headroom: (f64, f64),
}

impl TrendRow {
    /// Relative headroom movement: `new/old − 1` (positive = the bound
    /// got *more* comfortable).
    pub fn movement(&self) -> f64 {
        if self.headroom.0 > 0.0 {
            self.headroom.1 / self.headroom.0 - 1.0
        } else {
            0.0
        }
    }
}

/// The outcome of diffing two artifact generations.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// The artifacts' pipeline names (old, new).
    pub pipelines: (String, String),
    /// Rows present in both artifacts, in id order.
    pub rows: Vec<TrendRow>,
    /// Ids only the old artifact has (grid shrank / tier changed).
    pub only_old: Vec<String>,
    /// Ids only the new artifact has.
    pub only_new: Vec<String>,
}

/// Collects every `(id, measured, bound)` row of an artifact: any object
/// inside a top-level array carrying a string `"id"` plus numeric
/// `"measured"` and `"bound"` members — the schema every pipeline's
/// gridded rows follow. Shared by [`trend`] and the history ledger
/// (`crate::history::entry_from_artifact`), so a row diffable between two
/// generations is exactly a row the trajectory tracks.
pub fn collect_rows(artifact: &Value) -> BTreeMap<String, (f64, f64)> {
    let mut rows = BTreeMap::new();
    let Value::Object(top) = artifact else {
        return rows;
    };
    for section in top.values() {
        let Value::Array(items) = section else {
            continue;
        };
        for item in items {
            if let (Some(id), Some(measured), Some(bound)) = (
                item.get("id").and_then(Value::as_str),
                item.get("measured").and_then(Value::as_f64),
                item.get("bound").and_then(Value::as_f64),
            ) {
                rows.insert(id.to_string(), (measured, bound));
            }
        }
    }
    rows
}

/// Why two artifact generations could not be diffed — typed so callers
/// (the nightly trend loop in particular) can tell a schema mismatch,
/// which should fail the run, from a merely missing artifact, which the
/// driver detects before calling in and skips.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrendError {
    /// An artifact parsed as JSON but carries no rows with
    /// `id`/`measured`/`bound` — the schema every gridded pipeline row
    /// follows. `generation` names which side (`"old"` / `"new"`).
    NoRows {
        /// Which artifact lacked rows: `"old"` or `"new"`.
        generation: &'static str,
    },
}

impl std::fmt::Display for TrendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrendError::NoRows { generation } => write!(
                f,
                "schema mismatch: the {generation} artifact has no rows with id/measured/bound"
            ),
        }
    }
}

impl std::error::Error for TrendError {}

/// Diffs two artifact generations (of the same pipeline, typically the
/// committed copy vs a fresh run), matching gridded rows by id and
/// reporting how the bound headroom moved — the `repro trend` machinery.
///
/// # Errors
///
/// [`TrendError::NoRows`] when either artifact carries no matchable rows.
pub fn trend(old: &Value, new: &Value) -> Result<TrendReport, TrendError> {
    let pipeline_of = |v: &Value| {
        v.get("pipeline")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let old_rows = collect_rows(old);
    let new_rows = collect_rows(new);
    if old_rows.is_empty() {
        return Err(TrendError::NoRows { generation: "old" });
    }
    if new_rows.is_empty() {
        return Err(TrendError::NoRows { generation: "new" });
    }
    let mut rows = Vec::new();
    let mut only_old = Vec::new();
    for (id, &(om, ob)) in &old_rows {
        match new_rows.get(id) {
            Some(&(nm, nb)) => rows.push(TrendRow {
                id: id.clone(),
                measured: (om, nm),
                bound: (ob, nb),
                headroom: (headroom(om, ob), headroom(nm, nb)),
            }),
            None => only_old.push(id.clone()),
        }
    }
    let only_new = new_rows
        .keys()
        .filter(|id| !old_rows.contains_key(*id))
        .cloned()
        .collect();
    Ok(TrendReport {
        pipelines: (pipeline_of(old), pipeline_of(new)),
        rows,
        only_old,
        only_new,
    })
}

impl TrendReport {
    /// Renders the movement table (sorted by |movement| descending, ties
    /// by id) plus the coverage summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trend: {} (old) vs {} (new), {} matched row(s)\n",
            self.pipelines.0,
            self.pipelines.1,
            self.rows.len()
        ));
        if self.pipelines.0 != self.pipelines.1 {
            out.push_str("WARNING: the artifacts come from different pipelines\n");
        }
        out.push_str(&format!(
            "{:<44}{:>12}{:>12}{:>11}{:>11}{:>9}\n",
            "id", "measured", "bound", "headroom", "was", "move"
        ));
        let mut sorted: Vec<&TrendRow> = self.rows.iter().collect();
        sorted.sort_by(|a, b| {
            b.movement()
                .abs()
                .partial_cmp(&a.movement().abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        for row in sorted {
            out.push_str(&format!(
                "{:<44}{:>12}{:>12}{:>10.2}x{:>10.2}x{:>+8.1}%\n",
                row.id,
                row.measured.1,
                row.bound.1,
                row.headroom.1,
                row.headroom.0,
                row.movement() * 100.0
            ));
        }
        let (better, worse): (Vec<_>, Vec<_>) = self
            .rows
            .iter()
            .filter(|r| r.movement().abs() > 1e-9)
            .partition(|r| r.movement() > 0.0);
        out.push_str(&format!(
            "headroom widened on {} row(s), narrowed on {}, flat on {}\n",
            better.len(),
            worse.len(),
            self.rows.len() - better.len() - worse.len()
        ));
        if !self.only_old.is_empty() || !self.only_new.is_empty() {
            out.push_str(&format!(
                "unmatched ids: {} only in old, {} only in new (tier or grid changed)\n",
                self.only_old.len(),
                self.only_new.len()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: &str, measured: u64, bound: u64) -> Value {
        Value::object([
            ("id", Value::from(id.to_string())),
            ("measured", Value::from(measured)),
            ("bound", Value::from(bound)),
        ])
    }

    fn artifact(pipeline: &'static str, rows: Vec<Value>) -> Value {
        let mut a = Artifact::new(pipeline, Tier::Smoke);
        a.section("rows", Value::Array(rows));
        a.finish(String::new()).json
    }

    #[test]
    fn finish_merges_provenance_and_violations() {
        let mut a = Artifact::new("table1", Tier::Smoke);
        a.section("rows", Value::Array(vec![]));
        a.violation("something broke".to_string());
        let out = a.finish("md".to_string());
        assert_eq!(
            out.json.get("pipeline").and_then(Value::as_str),
            Some("table1")
        );
        assert_eq!(out.json.get("tier").and_then(Value::as_str), Some("smoke"));
        assert!(out
            .json
            .get("paper")
            .and_then(Value::as_str)
            .unwrap()
            .contains("ICDCS"));
        assert_eq!(out.violations.len(), 1);
        assert_eq!(
            out.json
                .get("violations")
                .and_then(Value::as_array)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn trend_matches_rows_by_id() {
        let old = artifact(
            "lower",
            vec![row("a/async/sym/n=8", 100, 1000), row("gone", 5, 10)],
        );
        let new = artifact(
            "lower",
            vec![row("a/async/sym/n=8", 50, 1000), row("fresh", 7, 10)],
        );
        let t = trend(&old, &new).unwrap();
        assert_eq!(t.rows.len(), 1);
        let r = &t.rows[0];
        assert_eq!(r.headroom, (10.0, 20.0));
        assert!((r.movement() - 1.0).abs() < 1e-12, "headroom doubled");
        assert_eq!(t.only_old, vec!["gone".to_string()]);
        assert_eq!(t.only_new, vec!["fresh".to_string()]);
        let rendered = t.render();
        assert!(rendered.contains("a/async/sym/n=8"));
        assert!(rendered.contains("widened on 1 row(s)"));
    }

    #[test]
    fn trend_rejects_rowless_artifacts_with_typed_errors() {
        let empty = artifact("lower", vec![]);
        let full = artifact("lower", vec![row("x", 1, 2)]);
        assert_eq!(
            trend(&empty, &full),
            Err(TrendError::NoRows { generation: "old" })
        );
        assert_eq!(
            trend(&full, &empty),
            Err(TrendError::NoRows { generation: "new" })
        );
        assert!(TrendError::NoRows { generation: "new" }
            .to_string()
            .contains("schema mismatch"));
    }

    #[test]
    fn headroom_guards_zero_measured() {
        assert_eq!(headroom(0.0, 12.0), 12.0);
        assert_eq!(headroom(4.0, 12.0), 3.0);
    }

    #[test]
    fn cell_ids_are_stable() {
        assert_eq!(
            cell_id("ours (Thm 3)", "async", "symmetric", 16),
            "ours (Thm 3)/async/symmetric/n=16"
        );
    }
}
