//! The append-only perf-trend ledger behind `repro trend --history` and
//! `repro dashboard`.
//!
//! Every artifact pipeline run (`repro --history FILE …`) and every bench
//! suite run (`bench_report --history FILE …`) appends **one JSONL line**
//! to the ledger: the commit under test, a host fingerprint (OS, CPU
//! architecture, and `host_threads` — the figure the single-core honesty
//! gate consults), the tier, a UTC timestamp, and the run's series rows —
//! pipeline headroom rows keyed by the [`crate::report`] row ids, or
//! bench throughput points keyed by bench id. The ledger is the
//! *trajectory* the committed `BENCH_*.json` / `REPRO_*.json` snapshots
//! cannot express: those files are overwritten in place, a ledger line is
//! never rewritten.
//!
//! On top of it sit two read paths:
//!
//! * [`analyze`] — the N-generation extension of [`crate::report::trend`]:
//!   series are matched across generations by key, the latest value is
//!   compared against the **median of the preceding window**, and each
//!   series is classified regressed / improved / flat with the bench
//!   gate's `--max-regression-pct` semantics. `repro trend --history`
//!   exits non-zero on any regression, which is the CI contract.
//! * [`render_dashboard`] — committed-markdown sparkline tables
//!   (`DASHBOARD.md`). Rendering is a **pure function of the ledger**:
//!   timestamps come from the ledger lines, never from the clock at
//!   render time, so the committed dashboard regenerates byte-identically
//!   and CI diffs it like the other committed artifacts.
//!
//! Tracked metrics are chosen so that **higher is always better**: a
//! pipeline row tracks its bound headroom (`bound / measured`, see
//! [`crate::report::headroom`]) and a bench point tracks its throughput.
//! One regression predicate therefore covers both kinds.

use crate::report::headroom;
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

/// What produced a ledger entry: an artifact pipeline (`repro`) or a
/// bench suite (`bench_report`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A reproduction pipeline run; rows carry `measured` + `bound` and
    /// track headroom.
    Pipeline,
    /// A bench suite run; rows carry a raw throughput value.
    Bench,
}

impl EntryKind {
    /// The lowercase name stored in ledger lines.
    pub fn name(self) -> &'static str {
        match self {
            EntryKind::Pipeline => "pipeline",
            EntryKind::Bench => "bench",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "pipeline" => Ok(EntryKind::Pipeline),
            "bench" => Ok(EntryKind::Bench),
            other => Err(format!("unknown entry kind {other:?}")),
        }
    }
}

/// The machine a ledger entry was measured on. Recorded — not part of the
/// series key — so cross-host comparisons stay visible and the honesty
/// gates (`host_threads == 1` ⇒ speedup ratios measure only the
/// spawn-amortization floor) have the figure they need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostFingerprint {
    /// `std::env::consts::OS` at measurement time.
    pub os: String,
    /// `std::env::consts::ARCH` at measurement time.
    pub arch: String,
    /// Hardware threads (`available_parallelism`), **not** the requested
    /// worker count — the number the single-core honesty gate consults.
    pub threads: u64,
}

impl HostFingerprint {
    /// Fingerprints the current machine.
    pub fn detect() -> Self {
        HostFingerprint {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            threads: std::thread::available_parallelism()
                .map(|v| v.get() as u64)
                .unwrap_or(1),
        }
    }

    /// The compact `os/arch/tN` form used in reports and for the
    /// same-host trend filter.
    pub fn key(&self) -> String {
        format!("{}/{}/t{}", self.os, self.arch, self.threads)
    }
}

/// One tracked data point of a ledger entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// The row id ([`crate::report::cell_id`] for pipelines, `key=value`
    /// for bench gate points).
    pub id: String,
    /// The raw value: `measured` for pipeline rows, throughput for bench
    /// points.
    pub value: f64,
    /// The proven bound, for pipeline rows.
    pub bound: Option<f64>,
}

impl SeriesPoint {
    /// The metric tracked across generations, oriented so **higher is
    /// better**: bound headroom when a bound is present, the raw value
    /// (throughput) otherwise.
    pub fn tracked(&self) -> f64 {
        match self.bound {
            Some(b) => headroom(self.value, b),
            None => self.value,
        }
    }
}

/// One line of the append-only ledger: one pipeline or bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Pipeline or bench.
    pub kind: EntryKind,
    /// The pipeline name (`"table1"`) or bench id
    /// (`"multiuser_arena_engine"`).
    pub source: String,
    /// The tier the run was produced at (`"smoke"` / `"quick"` /
    /// `"full"`).
    pub tier: String,
    /// The commit under test (`RDV_COMMIT` / `GITHUB_SHA`, or
    /// `"uncommitted"`).
    pub commit: String,
    /// The measuring machine.
    pub host: HostFingerprint,
    /// UTC wall-clock of the run, `YYYY-MM-DDTHH:MM:SSZ`. Stamped by the
    /// *writer*; readers (trend, dashboard) never consult the clock.
    pub utc: String,
    /// The run's series rows.
    pub rows: Vec<SeriesPoint>,
}

impl LedgerEntry {
    /// The entry as one compact JSON value (object keys sorted by the
    /// shim, so the line layout is deterministic).
    pub fn to_json(&self) -> Value {
        let rows = self
            .rows
            .iter()
            .map(|p| {
                let mut m = BTreeMap::new();
                m.insert("id".to_string(), Value::from(p.id.as_str()));
                m.insert("value".to_string(), Value::from(p.value));
                if let Some(b) = p.bound {
                    m.insert("bound".to_string(), Value::from(b));
                }
                Value::Object(m)
            })
            .collect();
        Value::object([
            ("kind", Value::from(self.kind.name())),
            ("source", Value::from(self.source.as_str())),
            ("tier", Value::from(self.tier.as_str())),
            ("commit", Value::from(self.commit.as_str())),
            (
                "host",
                Value::object([
                    ("os", Value::from(self.host.os.as_str())),
                    ("arch", Value::from(self.host.arch.as_str())),
                    ("threads", Value::from(self.host.threads)),
                ]),
            ),
            ("utc", Value::from(self.utc.as_str())),
            ("rows", Value::Array(rows)),
        ])
    }

    /// Parses one ledger line's JSON value back into an entry.
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let str_field = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let host = v.get("host").ok_or("missing object field \"host\"")?;
        let host = HostFingerprint {
            os: host
                .get("os")
                .and_then(Value::as_str)
                .ok_or("missing string field \"host.os\"")?
                .to_string(),
            arch: host
                .get("arch")
                .and_then(Value::as_str)
                .ok_or("missing string field \"host.arch\"")?
                .to_string(),
            threads: host
                .get("threads")
                .and_then(Value::as_u64)
                .ok_or("missing integer field \"host.threads\"")?,
        };
        let rows = v
            .get("rows")
            .and_then(Value::as_array)
            .ok_or("missing array field \"rows\"")?
            .iter()
            .map(|r| {
                Ok(SeriesPoint {
                    id: r
                        .get("id")
                        .and_then(Value::as_str)
                        .ok_or("row without string \"id\"")?
                        .to_string(),
                    value: r
                        .get("value")
                        .and_then(Value::as_f64)
                        .ok_or("row without numeric \"value\"")?,
                    bound: r.get("bound").and_then(Value::as_f64),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(LedgerEntry {
            kind: EntryKind::parse(&str_field("kind")?)?,
            source: str_field("source")?,
            tier: str_field("tier")?,
            commit: str_field("commit")?,
            host,
            utc: str_field("utc")?,
            rows,
        })
    }
}

/// A ledger line that failed to parse and was skipped (reported, not
/// fatal) — one corrupt line must never take the trajectory down with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedLine {
    /// 1-based line number in the ledger file.
    pub line: usize,
    /// Why the line was skipped.
    pub error: String,
}

/// A parsed ledger: the readable entries in file order, plus the corrupt
/// lines that were isolated.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ledger {
    /// Entries in append (= generation) order.
    pub entries: Vec<LedgerEntry>,
    /// Corrupt lines, skipped and reported.
    pub skipped: Vec<SkippedLine>,
}

/// Appends one entry to the ledger file as a single compact JSON line,
/// creating the file if needed. The line is committed with one
/// `write(2)` on an `O_APPEND` handle, so a crash mid-append can tear at
/// most this line — which the parser then isolates, never the ledger.
///
/// # Errors
///
/// Propagates I/O failures; the callers treat an unwritable ledger as
/// fatal, like an unwritable artifact.
pub fn append(path: &Path, entry: &LedgerEntry) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let line = format!("{}\n", serde_json::to_string(&entry.to_json()));
    file.write_all(line.as_bytes())
}

/// Rewrites the ledger file to contain exactly `entries`, through the
/// atomic tmp+fsync+rename commit path — this is what `repro history
/// fsck --repair` uses to drop corrupt lines without ever exposing a
/// half-written ledger.
///
/// # Errors
///
/// Propagates I/O failures from the atomic commit.
pub fn rewrite(path: &Path, entries: &[LedgerEntry]) -> std::io::Result<()> {
    let mut text = String::new();
    for entry in entries {
        text.push_str(&serde_json::to_string(&entry.to_json()));
        text.push('\n');
    }
    crate::checkpoint::commit_bytes(path, text.as_bytes())
}

/// Reads a ledger file: every parseable line becomes an entry, every
/// corrupt line (bad JSON or a malformed entry) is isolated into
/// [`Ledger::skipped`] with its line number. Blank lines are ignored.
///
/// # Errors
///
/// Only on I/O failure — parse failures are per-line and non-fatal.
pub fn read(path: &Path) -> std::io::Result<Ledger> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse(&text))
}

/// [`read`], on an in-memory string.
pub fn parse(text: &str) -> Ledger {
    let mut ledger = Ledger::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = serde_json::from_str(line)
            .map_err(|e| e.to_string())
            .and_then(|v| LedgerEntry::from_json(&v));
        match parsed {
            Ok(entry) => ledger.entries.push(entry),
            Err(error) => ledger.skipped.push(SkippedLine { line: i + 1, error }),
        }
    }
    ledger
}

// --------------------------------------------------------------- writers

/// The commit and UTC timestamp a writer stamps into new ledger entries:
/// `RDV_COMMIT` (falling back to `GITHUB_SHA`, then `"uncommitted"`) and
/// `RDV_EPOCH` (seconds since the Unix epoch, for reproducible seeding;
/// falling back to the system clock). Only the *writers* (`repro`,
/// `bench_report`) call this — the readers are pure functions of the
/// ledger.
pub fn writer_context() -> (String, String) {
    let commit = std::env::var("RDV_COMMIT")
        .or_else(|_| std::env::var("GITHUB_SHA"))
        .unwrap_or_else(|_| "uncommitted".to_string());
    let epoch = std::env::var("RDV_EPOCH")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| {
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0)
        });
    (commit, format_utc(epoch))
}

/// Formats seconds-since-Unix-epoch as `YYYY-MM-DDTHH:MM:SSZ` (proleptic
/// Gregorian, the civil-from-days algorithm) — no chrono dependency.
pub fn format_utc(epoch_secs: u64) -> String {
    let days = (epoch_secs / 86_400) as i64;
    let secs = epoch_secs % 86_400;
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}Z",
        y,
        m,
        d,
        secs / 3600,
        (secs % 3600) / 60,
        secs % 60
    )
}

/// Builds a pipeline entry from an artifact JSON (a fresh
/// [`crate::report::PipelineOutput::json`] or a committed `REPRO_*.json`
/// being backfilled): the `pipeline` and `tier` fields are read from the
/// artifact itself, the rows through the same extraction `repro trend`
/// uses ([`crate::report::collect_rows`]).
///
/// # Errors
///
/// When the artifact lacks the `pipeline`/`tier` provenance or carries no
/// `id`/`measured`/`bound` rows.
pub fn entry_from_artifact(
    artifact: &Value,
    commit: &str,
    host: &HostFingerprint,
    utc: &str,
) -> Result<LedgerEntry, String> {
    let source = artifact
        .get("pipeline")
        .and_then(Value::as_str)
        .ok_or("artifact has no \"pipeline\" provenance")?
        .to_string();
    let tier = artifact
        .get("tier")
        .and_then(Value::as_str)
        .ok_or("artifact has no \"tier\" provenance")?
        .to_string();
    let rows: Vec<SeriesPoint> = crate::report::collect_rows(artifact)
        .into_iter()
        .map(|(id, (measured, bound))| SeriesPoint {
            id,
            value: measured,
            bound: Some(bound),
        })
        .collect();
    if rows.is_empty() {
        return Err("artifact has no rows with id/measured/bound".to_string());
    }
    Ok(LedgerEntry {
        kind: EntryKind::Pipeline,
        source,
        tier: tier.clone(),
        commit: commit.to_string(),
        host: host.clone(),
        utc: utc.to_string(),
        rows,
    })
}

/// The gate columns of a bench suite report, by bench id: the scenario
/// key column and the gated throughput column. Shared by the
/// `bench_report` baseline gate and the ledger backfill so both read the
/// same numbers out of a `BENCH_*.json`.
pub fn bench_gate_columns(bench: &str) -> (&'static str, &'static str) {
    match bench {
        "multiuser_arena_engine" => ("n_agents", "arena_pair_slots_per_sec"),
        "multiuser_bitplane_kernel" => ("n_agents", "bitplane_pair_slots_per_sec"),
        "faults_acs_engine" => ("n_agents", "acs_pair_slots_per_sec"),
        "task_tree_grid" => ("cells", "tree_cells_per_sec"),
        _ => ("n", "block_slots_per_sec"),
    }
}

/// Builds a bench entry from a suite report JSON (fresh or a committed
/// `BENCH_*.json` being backfilled): one row per scenario, keyed
/// `key=value` (e.g. `n=64`), tracking the suite's gated throughput
/// column per [`bench_gate_columns`]. Bench reports carry no tier field,
/// so the caller supplies it.
///
/// # Errors
///
/// When the report lacks its `bench` id, its `scenarios` array, or a
/// scenario lacks the gate columns.
pub fn entry_from_bench(
    report: &Value,
    tier: &str,
    commit: &str,
    host: &HostFingerprint,
    utc: &str,
) -> Result<LedgerEntry, String> {
    let source = report
        .get("bench")
        .and_then(Value::as_str)
        .ok_or("bench report has no \"bench\" id")?
        .to_string();
    let (key, rate) = bench_gate_columns(&source);
    let rows = report
        .get("scenarios")
        .and_then(Value::as_array)
        .ok_or("bench report has no \"scenarios\" array")?
        .iter()
        .map(|s| {
            let k = s
                .get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("scenario without {key:?}"))?;
            let r = s
                .get(rate)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("scenario without {rate:?}"))?;
            Ok(SeriesPoint {
                id: format!("{key}={k}"),
                value: r,
                bound: None,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    if rows.is_empty() {
        return Err("bench report has no scenarios".to_string());
    }
    Ok(LedgerEntry {
        kind: EntryKind::Bench,
        source,
        tier: tier.to_string(),
        commit: commit.to_string(),
        host: host.clone(),
        utc: utc.to_string(),
        rows,
    })
}

// ----------------------------------------------------------------- trend

/// The key a series is matched under across generations. Pipeline grids
/// differ per tier (different `n` ladders, shift/seed counts), so the
/// tier is part of the key; bench workloads are tier-identical by
/// construction (smoke only trims repetitions), so bench series match
/// across tiers.
pub fn series_key(entry: &LedgerEntry, point_id: &str) -> String {
    match entry.kind {
        EntryKind::Pipeline => format!("{}@{}/{}", entry.source, entry.tier, point_id),
        EntryKind::Bench => format!("{}/{}", entry.source, point_id),
    }
}

/// Options of the N-generation trend analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendOptions {
    /// How many prior generations the baseline median is taken over.
    pub window: usize,
    /// The regression tolerance in percent — the bench gate's
    /// `--max-regression-pct` semantics, applied symmetrically for the
    /// improved classification.
    pub max_regression_pct: f64,
    /// Restrict the baseline window to generations measured on the same
    /// host fingerprint as the latest one (strict like-for-like; off by
    /// default to match the committed-baseline gate's cross-host norm).
    pub same_host: bool,
}

impl Default for TrendOptions {
    fn default() -> Self {
        TrendOptions {
            window: 5,
            max_regression_pct: 30.0,
            same_host: false,
        }
    }
}

/// The classification of one series after [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesClass {
    /// Latest is more than the tolerance *below* the window median.
    Regressed,
    /// Latest is more than the tolerance *above* the window median.
    Improved,
    /// Within tolerance of the window median.
    Flat,
    /// No prior generations to compare against (first appearance, or no
    /// same-host history under [`TrendOptions::same_host`]).
    New,
}

impl SeriesClass {
    /// The label rendered in reports.
    pub fn label(self) -> &'static str {
        match self {
            SeriesClass::Regressed => "REGRESSED",
            SeriesClass::Improved => "improved",
            SeriesClass::Flat => "flat",
            SeriesClass::New => "new",
        }
    }
}

/// One series matched across ledger generations.
#[derive(Debug, Clone, PartialEq)]
pub struct HistorySeries {
    /// The [`series_key`].
    pub key: String,
    /// The tracked values, generation-ordered (every generation the
    /// series appears in, unfiltered).
    pub values: Vec<f64>,
    /// The latest tracked value.
    pub latest: f64,
    /// The median of the baseline window, when one exists.
    pub baseline: Option<f64>,
    /// `latest / baseline − 1`, in percent.
    pub delta_pct: Option<f64>,
    /// The verdict.
    pub class: SeriesClass,
}

/// The outcome of the N-generation analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryTrend {
    /// Ledger generations analyzed.
    pub generations: usize,
    /// Every series, key-ordered.
    pub series: Vec<HistorySeries>,
}

/// The median of a non-empty slice (mean of the middle two for even
/// lengths).
fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Matches series across the ledger's generations and classifies each
/// one: the latest tracked value against the median of the up-to-`window`
/// preceding generations, regressed/improved beyond
/// `max_regression_pct`, flat within it — the N-generation extension of
/// the two-artifact [`crate::report::trend`].
pub fn analyze(entries: &[LedgerEntry], opts: &TrendOptions) -> HistoryTrend {
    // Generation-ordered (host_key, tracked) observations per series key.
    let mut observed: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
    for entry in entries {
        let host_key = entry.host.key();
        for point in &entry.rows {
            observed
                .entry(series_key(entry, &point.id))
                .or_default()
                .push((host_key.clone(), point.tracked()));
        }
    }
    let series = observed
        .into_iter()
        .map(|(key, obs)| {
            let values: Vec<f64> = obs.iter().map(|(_, v)| *v).collect();
            let (latest_host, latest) = obs.last().expect("series observed at least once").clone();
            let prior: Vec<f64> = obs[..obs.len() - 1]
                .iter()
                .filter(|(host, _)| !opts.same_host || *host == latest_host)
                .map(|(_, v)| *v)
                .collect();
            let window: &[f64] = &prior[prior.len().saturating_sub(opts.window.max(1))..];
            let baseline = (!window.is_empty()).then(|| median(window));
            let delta_pct = baseline
                .filter(|b| *b > 0.0)
                .map(|b| (latest / b - 1.0) * 100.0);
            let class = match delta_pct {
                None => SeriesClass::New,
                Some(d) if d < -opts.max_regression_pct => SeriesClass::Regressed,
                Some(d) if d > opts.max_regression_pct => SeriesClass::Improved,
                Some(_) => SeriesClass::Flat,
            };
            HistorySeries {
                key,
                values,
                latest,
                baseline,
                delta_pct,
                class,
            }
        })
        .collect();
    HistoryTrend {
        generations: entries.len(),
        series,
    }
}

impl HistoryTrend {
    /// The regressed series — non-empty fails `repro trend --history`.
    pub fn regressed(&self) -> Vec<&HistorySeries> {
        self.series
            .iter()
            .filter(|s| s.class == SeriesClass::Regressed)
            .collect()
    }

    /// Renders the analysis: regressions first, then by |delta|
    /// descending, ties by key; plus the classification summary line.
    pub fn render(&self, opts: &TrendOptions) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "history trend: {} generation(s), {} series, window {}, tolerance {}%{}\n",
            self.generations,
            self.series.len(),
            opts.window,
            opts.max_regression_pct,
            if opts.same_host {
                " (same-host baselines only)"
            } else {
                ""
            }
        ));
        out.push_str(&format!(
            "{:<52}{:>12}{:>12}{:>9}  {:<10}{}\n",
            "series", "latest", "median", "delta", "class", "trend"
        ));
        let mut sorted: Vec<&HistorySeries> = self.series.iter().collect();
        sorted.sort_by(|a, b| {
            let sev = |s: &HistorySeries| match s.class {
                SeriesClass::Regressed => 0,
                _ => 1,
            };
            sev(a)
                .cmp(&sev(b))
                .then_with(|| {
                    b.delta_pct
                        .unwrap_or(0.0)
                        .abs()
                        .partial_cmp(&a.delta_pct.unwrap_or(0.0).abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| a.key.cmp(&b.key))
        });
        for s in sorted {
            out.push_str(&format!(
                "{:<52}{:>12}{:>12}{:>9}  {:<10}{}\n",
                s.key,
                format_metric(s.latest),
                s.baseline.map(format_metric).unwrap_or_else(|| "-".into()),
                s.delta_pct
                    .map(|d| format!("{d:+.1}%"))
                    .unwrap_or_else(|| "-".into()),
                s.class.label(),
                sparkline(&s.values),
            ));
        }
        let count = |c: SeriesClass| self.series.iter().filter(|s| s.class == c).count();
        out.push_str(&format!(
            "{} regressed, {} improved, {} flat, {} new\n",
            count(SeriesClass::Regressed),
            count(SeriesClass::Improved),
            count(SeriesClass::Flat),
            count(SeriesClass::New),
        ));
        out
    }
}

// ------------------------------------------------------------- dashboard

/// The eight-level unicode block sparkline of a series, min–max
/// normalized (a constant series renders mid-level). No plotting
/// dependencies — the dashboard stays committed markdown.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return '?';
            }
            if max <= min {
                return LEVELS[3];
            }
            let t = (v - min) / (max - min);
            LEVELS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

/// Deterministic metric formatting for reports and the dashboard:
/// scientific with three significant digits at ≥ 1e6 (throughputs),
/// integers at ≥ 100, two decimals below (headrooms).
pub fn format_metric(v: f64) -> String {
    if !v.is_finite() {
        "nan".to_string()
    } else if v.abs() >= 1e6 {
        format!("{v:.2e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Renders the ledger into the committed dashboard markdown: the
/// generation log, then one sparkline table per pipeline (headroom) and
/// per bench suite (throughput). A pure function of the ledger — given
/// the same `HISTORY.jsonl` the output is byte-identical, which is the
/// CI diff contract for the committed `DASHBOARD.md`.
pub fn render_dashboard(ledger: &Ledger) -> String {
    let mut md = String::from(
        "# Perf trajectory\n\n\
         Rendered from the append-only run ledger `HISTORY.jsonl` — regenerate with\n\
         `cargo run --release --bin repro -- dashboard` (byte-identical given the same\n\
         ledger; timestamps come from the ledger lines, never from the render clock).\n\
         Pipeline tables track **bound headroom** (`bound / measured`, higher = more\n\
         comfortable); bench tables track **throughput**. Sparklines are min–max\n\
         normalized per series, oldest generation leftmost.\n",
    );
    if !ledger.skipped.is_empty() {
        md.push_str(&format!(
            "\n> **Warning:** {} corrupt ledger line(s) were skipped: {}.\n",
            ledger.skipped.len(),
            ledger
                .skipped
                .iter()
                .map(|s| format!("line {} ({})", s.line, s.error))
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }

    md.push_str("\n## Generations\n\n");
    md.push_str("| # | utc | commit | kind | source | tier | host | rows |\n");
    md.push_str("|--:|---|---|---|---|---|---|--:|\n");
    for (i, e) in ledger.entries.iter().enumerate() {
        let short: String = e.commit.chars().take(9).collect();
        md.push_str(&format!(
            "| {} | {} | `{}` | {} | {} | {} | `{}` | {} |\n",
            i + 1,
            e.utc,
            short,
            e.kind.name(),
            e.source,
            e.tier,
            e.host.key(),
            e.rows.len()
        ));
    }

    // Series grouped per (kind, source, tier-for-pipelines) section, in
    // first-appearance order within the group: id -> tracked values.
    type SeriesInGroup = Vec<(String, Vec<f64>)>;
    let mut groups: BTreeMap<(u8, String), SeriesInGroup> = BTreeMap::new();
    for entry in &ledger.entries {
        let group_key = match entry.kind {
            EntryKind::Pipeline => (0u8, format!("{} ({} tier)", entry.source, entry.tier)),
            EntryKind::Bench => (1u8, entry.source.clone()),
        };
        let group = groups.entry(group_key).or_default();
        for point in &entry.rows {
            match group.iter_mut().find(|(id, _)| *id == point.id) {
                Some((_, values)) => values.push(point.tracked()),
                None => group.push((point.id.clone(), vec![point.tracked()])),
            }
        }
    }
    for ((kind_rank, title), series) in groups {
        let (heading, value_col) = if kind_rank == 0 {
            ("Pipeline headroom", "latest headroom")
        } else {
            ("Bench throughput", "latest throughput")
        };
        md.push_str(&format!("\n## {heading} — {title}\n\n"));
        md.push_str(&format!(
            "| series | gens | {value_col} | min | max | trend |\n"
        ));
        md.push_str("|---|--:|--:|--:|--:|---|\n");
        for (id, values) in series {
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            md.push_str(&format!(
                "| `{}` | {} | {} | {} | {} | {} |\n",
                id,
                values.len(),
                format_metric(*values.last().expect("non-empty series")),
                format_metric(min),
                format_metric(max),
                sparkline(&values)
            ));
        }
    }
    md
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(threads: u64) -> HostFingerprint {
        HostFingerprint {
            os: "linux".to_string(),
            arch: "x86_64".to_string(),
            threads,
        }
    }

    fn bench_entry(source: &str, values: &[(&str, f64)], threads: u64) -> LedgerEntry {
        LedgerEntry {
            kind: EntryKind::Bench,
            source: source.to_string(),
            tier: "smoke".to_string(),
            commit: "abc123".to_string(),
            host: host(threads),
            utc: "2026-08-08T00:00:00Z".to_string(),
            rows: values
                .iter()
                .map(|(id, v)| SeriesPoint {
                    id: id.to_string(),
                    value: *v,
                    bound: None,
                })
                .collect(),
        }
    }

    #[test]
    fn entry_round_trips_through_json() {
        let mut entry = bench_entry("kernel", &[("n=16", 1.5), ("n=64", 2.25)], 8);
        entry.rows.push(SeriesPoint {
            id: "pipe-row".to_string(),
            value: 644.0,
            bound: Some(2368.0),
        });
        let line = serde_json::to_string(&entry.to_json());
        let back = LedgerEntry::from_json(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(back, entry);
    }

    #[test]
    fn parse_isolates_corrupt_lines() {
        let good = serde_json::to_string(&bench_entry("kernel", &[("n=16", 1.0)], 1).to_json());
        let text = format!("{good}\nnot json at all\n{{\"kind\":\"bench\"}}\n\n{good}\n");
        let ledger = parse(&text);
        assert_eq!(ledger.entries.len(), 2, "good lines survive");
        assert_eq!(ledger.skipped.len(), 2, "both corrupt lines isolated");
        assert_eq!(ledger.skipped[0].line, 2);
        assert_eq!(ledger.skipped[1].line, 3);
        assert!(ledger.skipped[1].error.contains("host"));
    }

    #[test]
    fn tracked_metric_is_headroom_when_bounded() {
        let p = SeriesPoint {
            id: "x".to_string(),
            value: 4.0,
            bound: Some(12.0),
        };
        assert_eq!(p.tracked(), 3.0);
        let b = SeriesPoint {
            id: "x".to_string(),
            value: 4.0,
            bound: None,
        };
        assert_eq!(b.tracked(), 4.0);
    }

    #[test]
    fn utc_formatting_matches_known_dates() {
        assert_eq!(format_utc(0), "1970-01-01T00:00:00Z");
        assert_eq!(format_utc(86_399), "1970-01-01T23:59:59Z");
        assert_eq!(format_utc(1_786_147_200), "2026-08-08T00:00:00Z");
        assert_eq!(format_utc(951_827_696), "2000-02-29T12:34:56Z");
    }

    #[test]
    fn analyze_classifies_against_window_median() {
        // Five generations; "n=16" regresses in the latest, "n=64" stays
        // flat, "n=99" only ever appears once.
        let mut entries: Vec<LedgerEntry> = (0..4)
            .map(|_| bench_entry("kernel", &[("n=16", 100.0), ("n=64", 50.0)], 1))
            .collect();
        entries.push(bench_entry("kernel", &[("n=16", 60.0), ("n=64", 51.0)], 1));
        entries.push(bench_entry("other", &[("n=99", 1.0)], 1));
        let trend = analyze(&entries, &TrendOptions::default());
        let by_key = |k: &str| {
            trend
                .series
                .iter()
                .find(|s| s.key == k)
                .unwrap_or_else(|| panic!("series {k} missing"))
        };
        let regressed = by_key("kernel/n=16");
        assert_eq!(regressed.class, SeriesClass::Regressed);
        assert_eq!(regressed.baseline, Some(100.0));
        assert!((regressed.delta_pct.unwrap() + 40.0).abs() < 1e-9);
        assert_eq!(by_key("kernel/n=64").class, SeriesClass::Flat);
        assert_eq!(by_key("other/n=99").class, SeriesClass::New);
        assert_eq!(trend.regressed().len(), 1);
        let rendered = trend.render(&TrendOptions::default());
        assert!(rendered.contains("kernel/n=16"));
        assert!(rendered.contains("REGRESSED"));
        assert!(rendered.contains("1 regressed"));
    }

    #[test]
    fn analyze_window_limits_the_baseline() {
        // Ancient fast generations fall out of a window of 2: the median
        // baseline is taken over the recent slow ones, so latest is flat.
        let mut entries: Vec<LedgerEntry> = (0..3)
            .map(|_| bench_entry("kernel", &[("n=16", 1000.0)], 1))
            .collect();
        entries.extend((0..3).map(|_| bench_entry("kernel", &[("n=16", 100.0)], 1)));
        let opts = TrendOptions {
            window: 2,
            ..TrendOptions::default()
        };
        let trend = analyze(&entries, &opts);
        assert_eq!(trend.series[0].class, SeriesClass::Flat);
        assert_eq!(trend.series[0].baseline, Some(100.0));
        // The full-history window sees the fast era and flags the drop.
        let wide = analyze(&entries, &TrendOptions::default());
        assert_eq!(wide.series[0].class, SeriesClass::Regressed);
    }

    #[test]
    fn same_host_filter_restricts_baselines() {
        let entries = vec![
            bench_entry("kernel", &[("n=16", 1000.0)], 8),
            bench_entry("kernel", &[("n=16", 100.0)], 1),
        ];
        let strict = TrendOptions {
            same_host: true,
            ..TrendOptions::default()
        };
        // Same-host: the 8-thread generation is not a comparable baseline.
        assert_eq!(analyze(&entries, &strict).series[0].class, SeriesClass::New);
        // Cross-host default: it is, and the drop is flagged.
        assert_eq!(
            analyze(&entries, &TrendOptions::default()).series[0].class,
            SeriesClass::Regressed
        );
    }

    #[test]
    fn pipeline_series_keys_carry_the_tier() {
        let mut entry = bench_entry("table1", &[("row", 1.0)], 1);
        entry.kind = EntryKind::Pipeline;
        assert_eq!(series_key(&entry, "row"), "table1@smoke/row");
        entry.kind = EntryKind::Bench;
        assert_eq!(series_key(&entry, "row"), "table1/row");
    }

    #[test]
    fn sparklines_span_the_levels() {
        assert_eq!(sparkline(&[1.0, 2.0, 3.0]), "▁▅█");
        assert_eq!(sparkline(&[5.0, 5.0]), "▄▄");
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[f64::NAN, 1.0, 2.0]), "?▁█");
    }

    #[test]
    fn metric_formatting_is_scale_aware() {
        assert_eq!(format_metric(958_861_317.5), "9.59e8");
        assert_eq!(format_metric(2368.0), "2368");
        assert_eq!(format_metric(3.677), "3.68");
        assert_eq!(format_metric(f64::NAN), "nan");
    }

    #[test]
    fn dashboard_renders_deterministically() {
        let ledger = Ledger {
            entries: vec![
                bench_entry("kernel", &[("n=16", 100.0)], 1),
                bench_entry("kernel", &[("n=16", 200.0)], 1),
            ],
            skipped: vec![SkippedLine {
                line: 3,
                error: "bad".to_string(),
            }],
        };
        let a = render_dashboard(&ledger);
        let b = render_dashboard(&ledger);
        assert_eq!(a, b);
        assert!(a.contains("▁█"), "sparkline rendered: {a}");
        assert!(a.contains("corrupt ledger line"));
        assert!(a.contains("| `n=16` | 2 |"));
    }

    #[test]
    fn sparkline_renders_constant_series_flat_mid_level() {
        // A constant series makes the min–max normalizer 0/0; without the
        // guard that NaN saturates to level 0 and the series renders as a
        // misleading all-time-low. Pinned: every glyph is the mid level.
        assert_eq!(sparkline(&[7.5, 7.5, 7.5, 7.5]), "▄▄▄▄");
        assert_eq!(sparkline(&[0.0]), "▄");
        // Non-finite points render as '?' and are excluded from the
        // normalization, so a constant-plus-NaN series stays flat too.
        assert_eq!(sparkline(&[2.0, f64::NAN, 2.0]), "▄?▄");
        // And a genuinely varying series still spans the full range.
        assert_eq!(sparkline(&[0.0, 1.0]), "▁█");
    }

    #[test]
    fn bench_gate_columns_cover_every_suite() {
        assert_eq!(
            bench_gate_columns("multiuser_arena_engine"),
            ("n_agents", "arena_pair_slots_per_sec")
        );
        assert_eq!(
            bench_gate_columns("multiuser_bitplane_kernel"),
            ("n_agents", "bitplane_pair_slots_per_sec")
        );
        assert_eq!(
            bench_gate_columns("task_tree_grid"),
            ("cells", "tree_cells_per_sec")
        );
        assert_eq!(
            bench_gate_columns("worst_async_ttr_exhaustive"),
            ("n", "block_slots_per_sec")
        );
    }
}
