//! # blind-rendezvous
//!
//! A complete Rust reproduction of *Deterministic Blind Rendezvous in
//! Cognitive Radio Networks* (Chen, Russell, Samanta, Sundaram; ICDCS
//! 2014): deterministic channel-hopping schedules that guarantee any two
//! anonymous, asynchronous radios with overlapping channel sets `A, B ⊆ [n]`
//! rendezvous within `O(|A|·|B|·log log n)` slots — plus everything the
//! paper measures itself against: the CRSEQ / Jump-Stay / DRDS baselines,
//! the `Ω(log log n)`, `Ω(αk)` and `Ω(kℓ)` lower-bound harnesses, the
//! one-bit-beacon protocols, and the one-round SDP approximation from the
//! appendix.
//!
//! ## Crate map
//!
//! | need | crate (re-exported module) |
//! |------|----------------------------|
//! | build schedules, measure rendezvous | [`core`] (`rdv-core`) |
//! | binary-string substrate of Theorem 1 | [`strings`] (`rdv-strings`) |
//! | primes / CRT / fields | [`numtheory`] (`rdv-numtheory`) |
//! | the 2-Ramsey coloring | [`ramsey`] (`rdv-ramsey`) |
//! | prior-art baselines | [`baselines`] (`rdv-baselines`) |
//! | beacon protocols | [`beacon`] (`rdv-beacon`) |
//! | lower-bound searches | [`lower`] (`rdv-lower`) |
//! | one-round SDP | [`sdp`] (`rdv-sdp`) |
//! | simulator & sweeps | [`sim`] (`rdv-sim`) |
//!
//! ## Quickstart
//!
//! ```
//! use blind_rendezvous::prelude::*;
//!
//! let n = 128; // channel universe [n]
//! let alice = ChannelSet::new(vec![7, 42, 99]).unwrap();
//! let bob = ChannelSet::new(vec![13, 42, 81, 100]).unwrap();
//!
//! let sa = GeneralSchedule::asynchronous(n, alice).unwrap();
//! let sb = GeneralSchedule::asynchronous(n, bob).unwrap();
//!
//! // Bob wakes 1000 slots after Alice; they still meet, fast:
//! let ttr = async_ttr(&sa, &sb, 1000, 1_000_000).unwrap();
//! assert!(ttr <= sa.ttr_bound(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod history;
pub mod pipelines;
pub mod report;

pub use rdv_baselines as baselines;
pub use rdv_beacon as beacon;
pub use rdv_core as core;
pub use rdv_lower as lower;
pub use rdv_numtheory as numtheory;
pub use rdv_ramsey as ramsey;
pub use rdv_sdp as sdp;
pub use rdv_sim as sim;
pub use rdv_strings as strings;

/// The most common imports, in one place.
pub mod prelude {
    pub use rdv_baselines::{Crseq, Drds, JumpStay, RandomHopping};
    pub use rdv_beacon::{BeaconProtocolA, BeaconProtocolB, BeaconStream};
    pub use rdv_core::channel::{Channel, ChannelSet};
    pub use rdv_core::general::GeneralSchedule;
    pub use rdv_core::pair::PairFamily;
    pub use rdv_core::schedule::Schedule;
    pub use rdv_core::symmetric::SymmetricWrapped;
    pub use rdv_core::verify::{async_ttr, sync_ttr, worst_async_ttr};
    pub use rdv_sim::{Algorithm, Simulation};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let set = ChannelSet::new(vec![1, 2, 3]).unwrap();
        let s = GeneralSchedule::asynchronous(8, set).unwrap();
        assert!(sync_ttr(&s, &s, 4).is_some());
    }
}
