//! The experiment driver: regenerates every table and figure of the paper,
//! plus the one-command machine-readable reproduction pipeline.
//!
//! ```text
//! repro [--quick | --smoke] [--out-dir DIR] <experiment>
//!
//! experiments:
//!   table1         E0  the reproduction pipeline: all eight algorithms ×
//!                      sync/async × symmetric/asymmetric, measured against
//!                      the Theorems 3–5 bounds; writes REPRO_table1.json
//!                      and REPRO_table1.md, exits non-zero on a violation
//!   table1-asym    E1  Table 1, asymmetric column (TTR vs n, fitted exponents)
//!   table1-sym     E2  Table 1, symmetric column
//!   thm3-scaling   E3  O(|A||B| log log n) headline scaling
//!   pair-loglog    E7  Theorem 1 period/TTR vs n (doubly logarithmic)
//!   figures        E4-E6  Figures 1, 2, 3 (ASCII renderings)
//!   lb-exact       E8  exact R_s(n,2) / cyclic R_a(n,2) by exhaustive search
//!   lb-sync        E9  Theorem 6 pigeonhole certificates
//!   lb-async       E10 Theorem 7 density witnesses (Ω(kℓ))
//!   beacon         E11/E12  one-bit beacon protocols A and B
//!   sdp            E13 one-round 0.439-approximation
//!   all            everything, in order
//!
//! tiers:
//!   (default)      full paper-scale grids
//!   --quick        smaller grids, same shapes
//!   --smoke        minutes-scale CI tier: smallest grids that still cross
//!                  every algorithm × timing × scenario cell
//! ```

use blind_rendezvous::prelude::*;
use rdv_core::channel::ChannelSet;
use rdv_core::symmetric::SymmetricWrapped;
use rdv_lower::{density, exact, pigeonhole};
use rdv_sdp::{exact_max_in_pairs, random_orientation_value, solve, OrientGraph, SdpConfig};
use rdv_sim::stats::growth_exponent;
use rdv_sim::sweep::{sweep_pair_ttr, PairSweep, SweepConfig};
use rdv_sim::workload::PairScenario;
use rdv_sim::{workload, Algorithm, ParallelConfig};
use rdv_strings::{rmap::RCode, Bits};
use serde_json::Value;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tier = if args.iter().any(|a| a == "--smoke") {
        Tier::Smoke
    } else if args.iter().any(|a| a == "--quick") {
        Tier::Quick
    } else {
        Tier::Full
    };
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let mut skip_next = false;
    let cmd = args
        .iter()
        .find(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--out-dir" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .unwrap_or("all");
    let ctx = Ctx { tier, out_dir };
    match cmd {
        "table1" => table1_pipeline(&ctx),
        "table1-asym" => table1_asym(&ctx),
        "table1-sym" => table1_sym(&ctx),
        "thm3-scaling" => thm3_scaling(&ctx),
        "pair-loglog" => pair_loglog(&ctx),
        "figures" => figures(),
        "lb-exact" => lb_exact(&ctx),
        "lb-sync" => lb_sync(&ctx),
        "lb-async" => lb_async(&ctx),
        "beacon" => beacon(&ctx),
        "sdp" => sdp_experiment(&ctx),
        "all" => {
            table1_pipeline(&ctx);
            table1_asym(&ctx);
            table1_sym(&ctx);
            thm3_scaling(&ctx);
            pair_loglog(&ctx);
            figures();
            lb_exact(&ctx);
            lb_sync(&ctx);
            lb_async(&ctx);
            beacon(&ctx);
            sdp_experiment(&ctx);
        }
        other => {
            eprintln!("unknown experiment {other:?}; see the module docs");
            std::process::exit(2);
        }
    }
}

/// Experiment size tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Full,
    Quick,
    Smoke,
}

struct Ctx {
    tier: Tier,
    out_dir: PathBuf,
}

impl Ctx {
    /// Whether the classic experiments should use their reduced grids
    /// (both `--quick` and `--smoke` do).
    fn quick(&self) -> bool {
        self.tier != Tier::Full
    }
}

fn header(title: &str) {
    println!();
    println!("==== {title} ====");
    println!();
}

/// Every algorithm the pipeline reproduces — the Table 1 rows plus the
/// randomized strawman and the two beacon protocols.
const PIPELINE_ALGOS: [Algorithm; 8] = [
    Algorithm::Ours,
    Algorithm::OursSymmetric,
    Algorithm::Crseq,
    Algorithm::JumpStay,
    Algorithm::Drds,
    Algorithm::Random,
    Algorithm::BeaconA,
    Algorithm::BeaconB,
];

/// The bound a pipeline cell is measured against: the slot count, a label
/// for the artifact, and whether the row is *gated* (a proven bound whose
/// violation fails the pipeline) or merely recorded.
fn cell_bound(algo: Algorithm, n: u64, scenario: &PairScenario) -> (u64, &'static str, bool) {
    let (k, ell) = (scenario.a.len(), scenario.b.len());
    match algo {
        Algorithm::Ours => {
            let s = GeneralSchedule::asynchronous(n, scenario.a.clone()).expect("valid scenario");
            (s.ttr_bound(ell), "Theorem 3: O(|A||B| log log n)", true)
        }
        Algorithm::OursSymmetric => {
            if scenario.a == scenario.b {
                (
                    SymmetricWrapped::<GeneralSchedule>::SYMMETRIC_TTR_BOUND,
                    "§3.2: O(1) symmetric",
                    true,
                )
            } else {
                let base =
                    GeneralSchedule::asynchronous(n, scenario.a.clone()).expect("valid scenario");
                (
                    rdv_core::symmetric::BLOWUP * base.ttr_bound(ell)
                        + 2 * rdv_core::symmetric::BLOWUP,
                    "§3.2 wrap: 12× Theorem 3 + O(1)",
                    true,
                )
            }
        }
        // The baseline reconstructions are faithful in period structure but
        // their paywalled proofs could not be transcribed (see
        // rdv-baselines); their generous guarantee horizons are recorded and
        // *reported* against, not gated.
        Algorithm::Crseq | Algorithm::JumpStay | Algorithm::Drds => (
            algo.horizon(n, k, ell),
            "guarantee horizon (reconstruction, empirical)",
            false,
        ),
        Algorithm::Random | Algorithm::BeaconA | Algorithm::BeaconB => {
            (algo.horizon(n, k, ell), "w.h.p. horizon (not gated)", false)
        }
    }
}

/// One pipeline row as JSON: the sweep's own fields plus the cell context.
fn row_json(
    sweep: &PairSweep,
    timing: &str,
    kind: &str,
    bound: u64,
    bound_kind: &str,
    gated: bool,
    ok: bool,
) -> Value {
    let Value::Object(mut m) = sweep.to_json() else {
        unreachable!("PairSweep::to_json returns an object");
    };
    m.insert("timing".to_string(), Value::from(timing));
    m.insert("scenario".to_string(), Value::from(kind));
    m.insert("bound".to_string(), Value::from(bound));
    m.insert("bound_kind".to_string(), Value::from(bound_kind));
    m.insert("gated".to_string(), Value::from(gated));
    m.insert("bound_ok".to_string(), Value::from(ok));
    Value::Object(m)
}

/// E0 — the one-command reproduction pipeline: all eight algorithms ×
/// sync/async × symmetric/asymmetric across a universe-size ladder, every
/// cell swept on the work-stealing orchestrator, measured worst cases
/// checked against the Theorem 3 / §3.2 bounds, and the whole grid written
/// to `REPRO_table1.json` + `REPRO_table1.md`.
///
/// Exits non-zero if any *gated* cell (a cell with a proven bound) missed
/// its horizon or exceeded its bound — the CI contract.
fn table1_pipeline(ctx: &Ctx) {
    header(&format!(
        "E0: reproduction pipeline — 8 algorithms × sync/async × asym/sym (tier: {:?})",
        ctx.tier
    ));
    let (ns, shifts, seeds): (&[u64], u64, u64) = match ctx.tier {
        Tier::Smoke => (&[8, 16], 16, 3),
        Tier::Quick => (&[8, 16, 32], 48, 4),
        Tier::Full => (&[8, 16, 32, 64, 128], 256, 6),
    };
    let k = 4usize;
    // Printed for the operator but deliberately kept OUT of the artifacts:
    // the parallel orchestrator's results are bit-identical at any thread
    // count, and CI diffs the artifacts across machines to prove it.
    println!(
        "orchestrator: {} worker thread(s) detected; artifacts are thread-count invariant",
        ParallelConfig::default().effective_threads(usize::MAX)
    );
    println!();

    let mut rows = Vec::new();
    let mut curves = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    let mut md_rows = String::new();
    println!(
        "{:<16}{:<7}{:<11}{:>6}{:>12}{:>12}{:>12}  ok",
        "algorithm", "timing", "scenario", "n", "maxTTR", "bound", "ratio"
    );
    for algo in PIPELINE_ALGOS {
        for kind in ["asymmetric", "symmetric"] {
            let mut points = Vec::new();
            for &n in ns {
                let scenario = if kind == "asymmetric" {
                    workload::adversarial_overlap_one(n, k, k).expect("n ≥ 2k−1")
                } else {
                    workload::symmetric_pair(n, k, 0).expect("n ≥ k")
                };
                let (bound, bound_kind, gated) = cell_bound(algo, n, &scenario);
                for timing in ["sync", "async"] {
                    let cfg = SweepConfig {
                        shifts: if timing == "sync" { 1 } else { shifts },
                        shift_stride: 13,
                        spread_over_period: timing == "async",
                        seeds,
                        horizon_override: 0,
                        threads: 0,
                    };
                    let sweep = sweep_pair_ttr(algo, n, &scenario, &cfg).unwrap_or_else(|e| {
                        panic!("pipeline cell {algo}/{timing}/{kind}/n={n}: {e}")
                    });
                    let ok = sweep.failures == 0 && sweep.summary.max <= bound;
                    if gated && !ok {
                        violations.push(format!(
                            "{algo} ({timing}, {kind}, n={n}): max TTR {} vs bound {bound} \
                             ({} horizon misses)",
                            sweep.summary.max, sweep.failures
                        ));
                    }
                    let ratio = sweep.summary.max as f64 / bound.max(1) as f64;
                    println!(
                        "{:<16}{:<7}{:<11}{:>6}{:>12}{:>12}{:>12.3}  {}",
                        algo.to_string(),
                        timing,
                        kind,
                        n,
                        sweep.summary.max,
                        bound,
                        ratio,
                        if ok { "yes" } else { "NO" }
                    );
                    md_rows.push_str(&format!(
                        "| {algo} | {timing} | {kind} | {n} | {} | {} | {:.3} | {} | {} | {} |\n",
                        sweep.summary.max,
                        bound,
                        ratio,
                        sweep.summary.count,
                        sweep.failures,
                        if ok { "✓" } else { "✗" },
                    ));
                    if timing == "async" {
                        points.push(Value::object([
                            ("n", Value::from(n)),
                            ("measured_max", Value::from(sweep.summary.max)),
                            ("bound", Value::from(bound)),
                        ]));
                    }
                    rows.push(row_json(&sweep, timing, kind, bound, bound_kind, gated, ok));
                }
            }
            curves.push(Value::object([
                ("algorithm", Value::from(algo.to_string())),
                ("scenario", Value::from(kind)),
                ("timing", Value::from("async")),
                ("points", Value::Array(points)),
            ]));
        }
    }

    let tier_name = format!("{:?}", ctx.tier).to_lowercase();
    let report = Value::object([
        ("pipeline", Value::from("table1")),
        (
            "paper",
            Value::from(
                "Chen, Russell, Samanta, Sundaram — Deterministic Blind Rendezvous in \
                 Cognitive Radio Networks (ICDCS 2014)",
            ),
        ),
        ("tier", Value::from(tier_name.clone())),
        (
            "config",
            Value::object([
                (
                    "ns",
                    Value::Array(ns.iter().map(|&n| Value::from(n)).collect()),
                ),
                ("shifts", Value::from(shifts)),
                ("seeds", Value::from(seeds)),
                ("k", Value::from(k)),
            ]),
        ),
        ("rows", Value::Array(rows)),
        ("curves", Value::Array(curves)),
        (
            "violations",
            Value::Array(violations.iter().map(|v| Value::from(v.as_str())).collect()),
        ),
    ]);

    std::fs::create_dir_all(&ctx.out_dir)
        .unwrap_or_else(|e| panic!("creating {}: {e}", ctx.out_dir.display()));
    let json_path = ctx.out_dir.join("REPRO_table1.json");
    std::fs::write(&json_path, serde_json::to_string_pretty(&report) + "\n")
        .unwrap_or_else(|e| panic!("writing {}: {e}", json_path.display()));

    let md_path = ctx.out_dir.join("REPRO_table1.md");
    let verdict = if violations.is_empty() {
        "**All gated cells respect their proven bounds.**".to_string()
    } else {
        format!(
            "**{} bound violation(s):**\n\n{}",
            violations.len(),
            violations
                .iter()
                .map(|v| format!("- {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        )
    };
    let md = format!(
        "# Paper reproduction — Table 1 comparison (tier: {tier_name})\n\n\
         Regenerate with `cargo run --release --bin repro -- --{tier_name} table1`\n\
         (drop the tier flag for the full paper-scale grid). Machine-readable\n\
         twin: `REPRO_table1.json`. Cells marked *gated* carry a proven bound\n\
         (Theorem 3, §3.2); a gated ✗ fails the pipeline, and CI runs it on\n\
         every push.\n\n\
         Sweeps ran on the work-stealing orchestrator; results (and this\n\
         file) are bit-identical at any worker thread count.\n\n\
         | algorithm | timing | scenario | n | max TTR | bound | max/bound | samples | misses | ok |\n\
         |---|---|---|---|---|---|---|---|---|---|\n\
         {md_rows}\n\
         {verdict}\n"
    );
    std::fs::write(&md_path, md).unwrap_or_else(|e| panic!("writing {}: {e}", md_path.display()));

    println!();
    println!(
        "wrote {} and {} ({} gated violations)",
        json_path.display(),
        md_path.display(),
        violations.len()
    );
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("BOUND VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}

/// E1 — Table 1, asymmetric column: worst/mean TTR vs n per algorithm,
/// adversarial overlap-one pairs, plus fitted growth exponents.
fn table1_asym(ctx: &Ctx) {
    header("E1: Table 1 (asymmetric) — max TTR over wake-up shifts, |A|=|B|=4, |A∩B|=1");
    let ns: &[u64] = if ctx.quick() {
        &[8, 16, 32]
    } else {
        &[8, 16, 32, 64, 128]
    };
    let cfg = SweepConfig {
        shifts: if ctx.quick() { 64 } else { 1024 },
        shift_stride: 13,
        spread_over_period: true,
        seeds: 6,
        horizon_override: 0,
        threads: 0,
    };
    let algos = [
        Algorithm::Crseq,
        Algorithm::JumpStay,
        Algorithm::Drds,
        Algorithm::Ours,
        Algorithm::Random,
    ];
    print!("{:<16}", "algorithm");
    for n in ns {
        print!("{:>10}", format!("n={n}"));
    }
    println!("{:>9}{:>9}", "exp(n)", "paper");
    let paper_exp = [
        "2 (n^2)",
        "3 (n^3)",
        "2 (n^2)",
        "~0 (kl loglog n)",
        "~0 (kl log n)",
    ];
    let geometries = if ctx.quick() { 3 } else { 8 };
    for (algo, paper) in algos.iter().zip(paper_exp) {
        let mut points = Vec::new();
        print!("{:<16}", algo.to_string());
        for &n in ns {
            // Worst case over several overlap geometries × many shifts:
            // the adversarial boundary pair plus seeded random overlaps.
            let mut scenarios = vec![workload::adversarial_overlap_one(n, 4, 4).expect("fits")];
            for seed in 0..geometries {
                scenarios.push(workload::random_overlapping_pair(n, 4, 4, seed).expect("fits"));
            }
            let mut worst = 0u64;
            let mut failures = 0usize;
            for scenario in &scenarios {
                let s = sweep_pair_ttr(*algo, n, scenario, &cfg)
                    .unwrap_or_else(|e| panic!("{algo} failed at n={n}: {e}"));
                if algo.proven_asymmetric_guarantee() {
                    assert_eq!(s.failures, 0, "{algo} missed its horizon at n={n}");
                }
                if s.failures > 0 {
                    // Horizon misses lower-bound the worst case.
                    worst = worst.max(s.horizon);
                }
                failures += s.failures;
                worst = worst.max(s.summary.max);
            }
            if failures == 0 {
                points.push((n, worst));
            }
            if failures > 0 {
                print!("{:>10}", format!("≥{worst}"));
            } else {
                print!("{:>10}", worst);
            }
        }
        let e = growth_exponent(&points).unwrap_or(f64::NAN);
        println!("{:>9.2}  {}", e, paper);
    }
    println!();
    println!("reproduction check: exponent ordering ours < DRDS/CRSEQ < JS; ours ≈ flat in n.");
    println!("(≥ marks cells where a reconstruction missed its horizon for some geometry+shift;");
    println!(" the true worst case is at least the shown value — see rdv-baselines docs.)");
}

/// E2 — Table 1, symmetric column: A = B.
fn table1_sym(ctx: &Ctx) {
    header("E2: Table 1 (symmetric) — max TTR over wake-up shifts, A = B, |A|=4");
    let ns: &[u64] = if ctx.quick() {
        &[8, 16, 32]
    } else {
        &[8, 16, 32, 64, 128]
    };
    let cfg = SweepConfig {
        shifts: if ctx.quick() { 64 } else { 1024 },
        shift_stride: 13,
        spread_over_period: true,
        seeds: 6,
        horizon_override: 0,
        threads: 0,
    };
    let algos = [
        Algorithm::Crseq,
        Algorithm::JumpStay,
        Algorithm::Drds,
        Algorithm::Ours,
        Algorithm::OursSymmetric,
    ];
    let paper_exp = [
        "2 (n^2)",
        "1 (n)",
        "n/a (reconstr.)",
        "kl loglog n",
        "0 (O(1))",
    ];
    print!("{:<16}", "algorithm");
    for n in ns {
        print!("{:>10}", format!("n={n}"));
    }
    println!("{:>9}{:>14}", "exp(n)", "paper");
    let geometries = if ctx.quick() { 3 } else { 8 };
    for (algo, paper) in algos.iter().zip(paper_exp) {
        let mut points = Vec::new();
        print!("{:<16}", algo.to_string());
        for &n in ns {
            let mut worst = 0u64;
            let mut failures = 0usize;
            for seed in 0..geometries {
                let scenario = workload::symmetric_pair(n, 4, seed).expect("fits");
                let s = sweep_pair_ttr(*algo, n, &scenario, &cfg)
                    .unwrap_or_else(|e| panic!("{algo} failed at n={n}: {e}"));
                if algo.proven_asymmetric_guarantee() {
                    assert_eq!(s.failures, 0, "{algo} missed at n={n}");
                }
                if s.failures > 0 {
                    worst = worst.max(s.horizon);
                }
                failures += s.failures;
                worst = worst.max(s.summary.max);
            }
            if failures == 0 {
                points.push((n, worst));
            }
            if failures > 0 {
                print!("{:>10}", format!("≥{worst}"));
            } else {
                print!("{:>10}", worst);
            }
        }
        let e = growth_exponent(&points).unwrap_or(f64::NAN);
        println!("{:>9.2}  {}", e, paper);
    }
    println!();
    println!("reproduction check: ours+sym row is flat (O(1), ≤ 12 slots) at every n.");
}

/// E3 — the headline O(|A||B| log log n) scaling.
fn thm3_scaling(ctx: &Ctx) {
    header("E3: Theorem 3 scaling — max TTR vs |A||B| (n=256) and vs n (|A|=|B|=4)");
    let cfg = SweepConfig {
        shifts: if ctx.quick() { 64 } else { 512 },
        shift_stride: 19,
        spread_over_period: true,
        seeds: 1,
        horizon_override: 0,
        threads: 0,
    };
    println!(
        "{:<8}{:>8}{:>10}{:>12}{:>12}",
        "k=l", "k*l", "maxTTR", "TTR/(k*l)", "bound"
    );
    let ks: &[usize] = if ctx.quick() {
        &[2, 3, 4, 6]
    } else {
        &[2, 3, 4, 6, 8, 12]
    };
    for &k in ks {
        let n = 256u64;
        let scenario = workload::adversarial_overlap_one(n, k, k).expect("fits");
        let s = sweep_pair_ttr(Algorithm::Ours, n, &scenario, &cfg).expect("sweep");
        assert_eq!(s.failures, 0);
        let sched = GeneralSchedule::asynchronous(n, scenario.a.clone()).expect("valid");
        println!(
            "{:<8}{:>8}{:>10}{:>12.1}{:>12}",
            k,
            k * k,
            s.summary.max,
            s.summary.max as f64 / (k * k) as f64,
            sched.ttr_bound(k)
        );
    }
    println!();
    println!("{:<10}{:>10}{:>12}", "n", "maxTTR", "pair period");
    let ns: &[u64] = if ctx.quick() {
        &[16, 64, 256]
    } else {
        &[16, 64, 256, 1024, 4096]
    };
    for &n in ns {
        let scenario = workload::adversarial_overlap_one(n, 4, 4).expect("fits");
        let s = sweep_pair_ttr(Algorithm::Ours, n, &scenario, &cfg).expect("sweep");
        assert_eq!(s.failures, 0);
        let fam = PairFamily::new(n).expect("n ≥ 2");
        println!("{:<10}{:>10}{:>12}", n, s.summary.max, fam.period());
    }
    println!();
    println!("reproduction check: TTR/(k*l) column ~constant; TTR vs n grows only via the pair period (log log n).");
}

/// E7 — Theorem 1: the pair-schedule period is doubly logarithmic in n.
fn pair_loglog(ctx: &Ctx) {
    header("E7: Theorem 1 — pair schedule period and worst TTR vs n (k=2)");
    println!(
        "{:<22}{:>10}{:>12}{:>12}",
        "n", "period", "worst TTR", "log2 log2 n"
    );
    let ns: &[u64] = if ctx.quick() {
        &[4, 256, 65536]
    } else {
        &[4, 16, 256, 65536, 1 << 32, 1 << 62]
    };
    for &n in ns {
        let fam = PairFamily::new(n).expect("n ≥ 2");
        // Worst asynchronous TTR between the 2-path pair {1,2} vs {2,3}
        // over every relative shift — the configuration the Ramsey
        // coloring exists for.
        let sa = fam.schedule(1, 2).expect("pair");
        let sb = fam.schedule(2, 3).expect("pair");
        let worst = rdv_core::verify::worst_async_ttr_exhaustive(&sa, &sb, 4 * fam.period())
            .expect("pairs rendezvous");
        let loglog = (n.max(4) as f64).log2().log2();
        println!(
            "{:<22}{:>10}{:>12}{:>12.2}",
            format!("2^{}", 64 - n.leading_zeros() - 1),
            fam.period(),
            worst.ttr,
            loglog
        );
    }
    println!();
    println!("reproduction check: period grows ~4x while n grows 2^58x (log log n shape).");
}

/// E4–E6 — the paper's figures as ASCII.
fn figures() {
    header("E4: Figure 1 — walks and balanced strings");
    let fig1a: Bits = "11010".parse().expect("literal");
    let fig1b: Bits = "110001".parse().expect("literal");
    println!(
        "(a) the graph of 11010 ({}):",
        rdv_strings::render::describe(&fig1a)
    );
    print!("{}", rdv_strings::render::render_walk(&fig1a));
    println!();
    println!(
        "(b) the graph of 110001 ({}):",
        rdv_strings::render::describe(&fig1b)
    );
    print!("{}", rdv_strings::render::render_walk(&fig1b));

    header("E5: Figure 2 — a strictly Catalan codeword and a shift of it");
    let code = RCode::new(3);
    let word = code.encode(&Bits::encode_int(0b101, 3)).into_bits();
    println!("R(101) ({}):", rdv_strings::render::describe(&word));
    print!("{}", rdv_strings::render::render_walk(&word));
    println!();
    let shifted = word.cyclic_shift(5);
    println!("S^5 R(101) ({}):", rdv_strings::render::describe(&shifted));
    print!("{}", rdv_strings::render::render_walk(&shifted));

    header("E6: Figure 3 — the 2-maximality transform");
    let z: Bits = "110100".parse().expect("literal");
    print!("{}", rdv_strings::render::render_maximality_transform(&z));
}

/// E8 — exact small-n optima: the Ω(log log n) companion.
fn lb_exact(ctx: &Ctx) {
    header("E8: Theorem 4 companion — exact R_s(n,2) and cyclic R_a(n,2) by exhaustive search");
    let max_n_sync = if ctx.quick() { 8 } else { 10 };
    let max_n_cyc = 3; // n = 4 already needs a cyclic period > 6 (beyond the 2^6 domain)
    println!(
        "{:<6}{:>12}{:>16}{:>22}",
        "n", "R_s(n,2)", "cyclic R_a(n,2)", "Ramsey threshold m"
    );
    for n in 2..=max_n_sync {
        let rs = match exact::exact_rs_n2(n, 5, 1 << 26) {
            exact::SearchOutcome::Optimal(t) => t.to_string(),
            other => format!("{other:?}"),
        };
        let ra = if n <= max_n_cyc {
            match exact::exact_ra_n2_cyclic(n, 6, 1 << 26) {
                exact::SearchOutcome::Optimal(t) => t.to_string(),
                other => format!("{other:?}"),
            }
        } else {
            "-".to_string()
        };
        // Smallest palette size m with e·m! ≥ n (i.e. T = log2 m forced).
        let m = (1..=12u32)
            .find(|&m| rdv_ramsey::triangle::ramsey_triangle_threshold(m) >= n)
            .unwrap_or(12);
        println!("{:<6}{:>12}{:>16}{:>22}", n, rs, ra, m);
    }
    println!();
    println!("reproduction check: R_s grows with n (Theorem 4's Ω(log log n)); cyclic ≥ sync.");
}

/// E9 — Theorem 6 pigeonhole certificates.
fn lb_sync(ctx: &Ctx) {
    header("E9: Theorem 6 — pigeonhole certificates (R_s ≥ αk for concrete families)");
    let n = if ctx.quick() { 16 } else { 64 };
    println!(
        "{:<26}{:>4}{:>4}{:>18}",
        "family", "k", "α", "certified bound"
    );
    let round_robin = |set: &ChannelSet| {
        rdv_core::schedule::CyclicSchedule::new(set.iter().collect()).expect("non-empty")
    };
    for (k, alpha) in [(2usize, 2usize), (3, 2), (4, 2)] {
        match pigeonhole::certify(&round_robin, n, k, alpha) {
            Some(w) => println!(
                "{:<26}{:>4}{:>4}{:>18}",
                "round-robin", k, alpha, w.certified_bound
            ),
            None => println!(
                "{:<26}{:>4}{:>4}{:>18}",
                "round-robin", k, alpha, "no witness"
            ),
        }
    }
    let ours = |set: &ChannelSet| {
        rdv_core::general::GeneralSchedule::synchronous(n, set.clone()).expect("valid")
    };
    for (k, alpha) in [(2usize, 2usize), (3, 2)] {
        match pigeonhole::certify(&ours, n, k, alpha) {
            Some(w) => println!(
                "{:<26}{:>4}{:>4}{:>18}",
                "ours (sync, Thm 3)", k, alpha, w.certified_bound
            ),
            None => println!(
                "{:<26}{:>4}{:>4}{:>18}",
                "ours (sync, Thm 3)", k, alpha, "no witness"
            ),
        }
    }
    println!();
    println!("reproduction check: witnesses certify R_s ≥ αk, matching Theorem 6's pigeonhole.");
}

/// E10 — Theorem 7 density witnesses.
fn lb_async(ctx: &Ctx) {
    header("E10: Theorem 7 — Ω(kl) density witnesses against Theorem 3 schedules");
    let n = 24u64;
    println!(
        "{:<6}{:<6}{:>8}{:>10}{:>12}{:>14}",
        "k", "l", "k*l", "worstTTR", "TTR/(k*l)", "Thm3 bound"
    );
    let family = move |set: &ChannelSet| {
        rdv_core::general::GeneralSchedule::asynchronous(n, set.clone()).expect("valid")
    };
    let grid: &[(usize, usize)] = if ctx.quick() {
        &[(2, 2), (3, 3)]
    } else {
        &[(2, 2), (2, 4), (3, 3), (4, 4), (4, 6), (6, 6)]
    };
    for &(k, l) in grid {
        let w =
            density::worst_overlap_one_pair(&family, n, k, l, 1 << 22, 5, 128).expect("witness");
        let bound = family(&w.a).ttr_bound(l);
        println!(
            "{:<6}{:<6}{:>8}{:>10}{:>12.2}{:>14}",
            k,
            l,
            k * l,
            w.ttr,
            w.barrier_ratio,
            bound
        );
    }
    println!();
    println!("reproduction check: worst TTR ≥ Ω(k·l) (ratio column bounded below), and ≤ the O(kl loglog n) bound.");
}

/// E11/E12 — the beacon protocols.
fn beacon(ctx: &Ctx) {
    header("E11/E12: one-bit beacon — protocol A O(logn·(k+l)) vs protocol B O(k+l+logn)");
    let cfg = SweepConfig {
        shifts: 4,
        shift_stride: 9,
        spread_over_period: true,
        seeds: if ctx.quick() { 12 } else { 32 },
        horizon_override: 0,
        threads: 0,
    };
    println!("-- vs n (k = l = 4) --");
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>12}",
        "n", "A p50", "A p95", "B p50", "B p95"
    );
    let ns: &[u64] = if ctx.quick() {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024]
    };
    for &n in ns {
        let scenario = workload::adversarial_overlap_one(n, 4, 4).expect("fits");
        let a = sweep_pair_ttr(Algorithm::BeaconA, n, &scenario, &cfg).expect("sweep A");
        let b = sweep_pair_ttr(Algorithm::BeaconB, n, &scenario, &cfg).expect("sweep B");
        println!(
            "{:<8}{:>12}{:>12}{:>12}{:>12}",
            n, a.summary.p50, a.summary.p95, b.summary.p50, b.summary.p95
        );
    }
    println!();
    println!("-- vs k (n = 256, l = k) --");
    println!("{:<8}{:>12}{:>12}", "k", "A p50", "B p50");
    let ks: &[usize] = if ctx.quick() { &[2, 8] } else { &[2, 4, 8, 16] };
    for &k in ks {
        let scenario = workload::adversarial_overlap_one(256, k, k).expect("fits");
        let a = sweep_pair_ttr(Algorithm::BeaconA, 256, &scenario, &cfg).expect("sweep A");
        let b = sweep_pair_ttr(Algorithm::BeaconB, 256, &scenario, &cfg).expect("sweep B");
        println!("{:<8}{:>12}{:>12}", k, a.summary.p50, b.summary.p50);
    }
    println!();
    println!("reproduction check: both grow mildly with k; B's dependence on n is additive, A's multiplicative.");
}

/// E13 — the appendix's one-round SDP.
fn sdp_experiment(ctx: &Ctx) {
    header("E13: one-round SDP — 0.439-approximation vs exact optimum vs 0.25 random baseline");
    println!(
        "{:<22}{:>6}{:>8}{:>10}{:>10}{:>10}{:>8}",
        "instance", "m", "exact", "sdp val", "rounded", "rand E", "ratio"
    );
    let mut instances: Vec<(String, OrientGraph)> = vec![
        (
            "star-6".into(),
            OrientGraph::new(7, (1..=6).map(|v| (v, 0)).collect()).expect("valid"),
        ),
        (
            "cycle-7".into(),
            OrientGraph::new(7, (0..7).map(|i| (i, (i + 1) % 7)).collect()).expect("valid"),
        ),
        (
            "K4".into(),
            OrientGraph::new(4, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
                .expect("valid"),
        ),
    ];
    let extra = if ctx.quick() { 2 } else { 5 };
    for i in 0..extra {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + i);
        let nv = rng.gen_range(5..9usize);
        let ne = rng.gen_range(6..13usize);
        let edges: Vec<(u32, u32)> = (0..ne)
            .map(|_| {
                let u = rng.gen_range(0..nv as u32);
                let mut v = rng.gen_range(0..nv as u32);
                while v == u {
                    v = rng.gen_range(0..nv as u32);
                }
                (u, v)
            })
            .collect();
        instances.push((
            format!("random-{i}"),
            OrientGraph::new(nv, edges).expect("valid"),
        ));
    }
    let mut min_ratio = f64::INFINITY;
    for (name, g) in &instances {
        let opt = exact_max_in_pairs(g);
        let res = solve(g, &SdpConfig::default());
        let (rand_e, _) = random_orientation_value(g, 64, 7);
        let ratio = if opt > 0 {
            res.in_pairs as f64 / opt as f64
        } else {
            1.0
        };
        min_ratio = min_ratio.min(ratio);
        println!(
            "{:<22}{:>6}{:>8}{:>10.2}{:>10}{:>10.2}{:>8.3}",
            name,
            g.n_edges(),
            opt,
            res.sdp_value,
            res.in_pairs,
            rand_e,
            ratio
        );
    }
    println!();
    println!(
        "reproduction check: min ratio {:.3} ≥ 0.439 (appendix guarantee); random baseline sits near optimum/4.",
        min_ratio
    );
    assert!(min_ratio >= 0.439, "approximation guarantee violated");
}
