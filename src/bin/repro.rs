//! The experiment driver: regenerates every table and figure of the paper,
//! plus the one-command machine-readable reproduction pipelines.
//!
//! ```text
//! repro [--quick | --smoke] [--out-dir DIR] <experiment> [args...]
//!
//! artifact pipelines (JSON + markdown, gated, CI-diffed bit-for-bit):
//!   table1         E0  all eight algorithms × sync/async × sym/asym,
//!                      measured against the Theorems 3–5 bounds; writes
//!                      REPRO_table1.{json,md}, exits non-zero on a violation
//!   table1 --faults P  the fault-injection variant: the arena engine under
//!                      the named fault profile ('light' or 'heavy'),
//!                      sweeping outage × churn axes on the quarantined
//!                      orchestrator; writes REPRO_table1_faults.{json,md}.
//!                      With --sabotage, two cells are deliberately failed
//!                      (one panic, one sampler exhaustion) to exercise the
//!                      graceful-degradation contract end to end
//!   lower              the Section 4 lower bounds on the same grid: the
//!                      covering/density sandwich invariant per cell, exact
//!                      R_s(n,2) optima, pigeonhole certificates, density
//!                      witnesses, Ramsey-bridge attack; writes
//!                      REPRO_lower.{json,md}
//!   sdp                the appendix one-round SDP relaxation on the graph
//!                      families vs exact optima; writes REPRO_sdp.{json,md}
//!   trend OLD NEW      diffs two artifact JSONs (any pipeline), matching
//!                      rows by id and reporting bound-headroom movement.
//!                      A missing artifact file prints a skip note and
//!                      exits 0; a present-but-schema-mismatched artifact
//!                      exits 2 — so CI loops can skip absent generations
//!                      without swallowing real schema errors
//!
//! perf-trend history (the append-only run ledger, see the
//! `blind_rendezvous::history` module docs):
//!   --history FILE     with any pipeline run: append the run (commit,
//!                      host fingerprint incl. host_threads, tier, UTC
//!                      timestamp, headroom rows by row id) as one JSONL
//!                      line to FILE after the artifacts are written.
//!                      `bench_report --history` is the bench twin
//!   trend --history FILE [--window N] [--max-regression-pct P]
//!                      [--same-host]
//!                      N-generation analysis over the ledger: every
//!                      series (pipeline headroom row / bench throughput
//!                      point) is matched across generations, the latest
//!                      value compared against the median of the
//!                      preceding N-generation window (default 5), and
//!                      classified regressed / improved / flat at the
//!                      bench gate's tolerance semantics (default 30%).
//!                      Exits 1 on any regression — the CI gate
//!   dashboard [--history FILE] [--out FILE]
//!                      renders the ledger (default HISTORY.jsonl) into
//!                      committed markdown sparkline tables (default
//!                      DASHBOARD.md); byte-identical given the same
//!                      ledger, so CI diffs it against the committed copy
//!   history-import ARTIFACT.json...  --history FILE
//!                      backfills ledger entries from committed
//!                      REPRO_*.json / BENCH_*.json snapshots (the seed
//!                      generation); bench entries record the CLI tier
//!   history fsck [--repair] [--history FILE]
//!                      checks the ledger (default HISTORY.jsonl) for
//!                      corrupt lines: reports each with its line number
//!                      and exits 1 if any are found; with --repair the
//!                      ledger is rewritten without them through the
//!                      atomic-commit path (exit 0)
//!
//! crash safety (see the `blind_rendezvous::checkpoint` module docs):
//!   <pipeline> --checkpoint FILE
//!                      journal every completed grid cell to FILE; if a
//!                      compatible journal is already there (same
//!                      pipeline/tier/commit/config fingerprint), resume
//!                      it — replay its cells and run only the missing
//!                      ones. A stale or torn journal starts fresh, so
//!                      evicted cron runs self-heal
//!   <pipeline> --resume FILE
//!                      strict resume: like --checkpoint, but a missing,
//!                      headerless, or stale journal is an error (exit 4)
//!                      instead of a fresh start
//!                      Either way the resumed artifact is byte-identical
//!                      to an uninterrupted run, failed cells included
//!
//! console experiments:
//!   table1-asym    E1  Table 1, asymmetric column (TTR vs n, fitted exponents)
//!   table1-sym     E2  Table 1, symmetric column
//!   thm3-scaling   E3  O(|A||B| log log n) headline scaling
//!   pair-loglog    E7  Theorem 1 period/TTR vs n (doubly logarithmic)
//!   figures        E4-E6  Figures 1, 2, 3 (ASCII renderings)
//!   lb-exact       E8  exact R_s(n,2) / cyclic R_a(n,2) by exhaustive search
//!   lb-sync        E9  Theorem 6 pigeonhole certificates
//!   lb-async       E10 Theorem 7 density witnesses (Ω(kℓ))
//!   beacon         E11/E12  one-bit beacon protocols A and B
//!   all            everything, in order
//!
//! tiers:
//!   (default)      full paper-scale grids
//!   --quick        smaller grids, same shapes
//!   --smoke        minutes-scale CI tier: smallest grids that still cross
//!                  every algorithm × timing × scenario cell
//!
//! exit codes:
//!   0  success — every cell completed and every gated bound held
//!   1  a gated bound violation (the CI contract for committed artifacts),
//!      or `history fsck` found corruption without --repair
//!   2  usage error (unknown experiment, bad arguments)
//!   3  degraded partial artifact — some grid cells failed (panic or
//!      sampling exhaustion); the artifact's failed_cells section lists
//!      them. Takes precedence over 1.
//!   4  checkpoint-resume rejection — `--resume` named a journal that is
//!      missing, headerless, or stale (written by a different
//!      pipeline/tier/commit/config), or the journal file is unreadable
//! ```

use blind_rendezvous::checkpoint::{self, Journal};
use blind_rendezvous::history::{self, HostFingerprint, TrendOptions};
use blind_rendezvous::pipelines;
use blind_rendezvous::prelude::*;
use blind_rendezvous::report::{self, PipelineOutput, Tier};
use rdv_core::channel::ChannelSet;
use rdv_core::fault::FaultProfile;
use rdv_lower::{density, exact, pigeonhole};
use rdv_sim::stats::growth_exponent;
use rdv_sim::sweep::{sweep_pair_ttr, SweepConfig};
use rdv_sim::workload;
use rdv_strings::{rmap::RCode, Bits};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tier = if args.iter().any(|a| a == "--smoke") {
        Tier::Smoke
    } else if args.iter().any(|a| a == "--quick") {
        Tier::Quick
    } else {
        Tier::Full
    };
    let out_dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let faults = args.iter().position(|a| a == "--faults").map(|i| {
        match args.get(i + 1).map(String::as_str) {
            Some(name) if !name.starts_with("--") => {
                FaultProfile::named(name).unwrap_or_else(|| {
                    eprintln!("unknown fault profile {name:?}; known: light, heavy");
                    std::process::exit(2);
                })
            }
            _ => {
                eprintln!("usage: repro table1 --faults <light|heavy> [--sabotage]");
                std::process::exit(2);
            }
        }
    });
    let sabotage = if args.iter().any(|a| a == "--sabotage") {
        // Fixed cell indices so the degraded artifact — and the CI
        // exit-code check against it — is deterministic.
        pipelines::faults::Sabotage {
            poison_cell: Some(1),
            exhaust_cell: Some(2),
        }
    } else {
        pipelines::faults::Sabotage::NONE
    };
    // A value-taking flag's value, with a hard usage error when the value
    // is missing or flag-shaped.
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .map(|i| match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                }
            })
    };
    let history_path = flag_value("--history").map(PathBuf::from);
    let checkpoint_path = flag_value("--checkpoint").map(PathBuf::from);
    let resume_path = flag_value("--resume").map(PathBuf::from);
    if checkpoint_path.is_some() && resume_path.is_some() {
        eprintln!("--checkpoint and --resume are mutually exclusive");
        std::process::exit(2);
    }
    // Positional arguments: everything that is neither a flag nor the
    // value of a value-taking flag.
    const VALUE_FLAGS: [&str; 8] = [
        "--out-dir",
        "--faults",
        "--history",
        "--window",
        "--max-regression-pct",
        "--out",
        "--checkpoint",
        "--resume",
    ];
    let mut positional: Vec<&str> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&a.as_str()) {
            skip_next = true;
            continue;
        }
        if !a.starts_with("--") {
            positional.push(a);
        }
    }
    let cmd = positional.first().copied().unwrap_or("all");
    if (checkpoint_path.is_some() || resume_path.is_some())
        && !matches!(cmd, "table1" | "lower" | "sdp")
    {
        eprintln!("--checkpoint/--resume only apply to the table1, lower, and sdp pipelines");
        std::process::exit(2);
    }
    // The journal for this run, under the given fingerprint:
    // `--checkpoint` opens leniently (resume a compatible journal, start
    // fresh otherwise), `--resume` strictly (a journal it cannot resume
    // exits 4). Corrupt journal lines are reported and re-run, not fatal.
    let open_journal = |fp: &checkpoint::Fingerprint| -> Option<Journal> {
        let (path, strict) = match (&checkpoint_path, &resume_path) {
            (Some(p), None) => (p, false),
            (None, Some(p)) => (p, true),
            _ => return None,
        };
        let opened = if strict {
            Journal::resume(path, fp)
        } else {
            Journal::open(path, fp)
        };
        let journal = opened.unwrap_or_else(|e| {
            eprintln!("checkpoint: {e}");
            std::process::exit(4);
        });
        for s in &journal.skipped {
            eprintln!(
                "checkpoint: skipped corrupt journal line {} of {}: {}",
                s.line,
                journal.path().display(),
                s.error
            );
        }
        println!(
            "checkpoint: journaling to {} ({} cells replayed)",
            journal.path().display(),
            journal.replayed().len()
        );
        Some(journal)
    };
    let ctx = Ctx {
        tier,
        out_dir,
        history: history_path.clone(),
    };
    match cmd {
        "table1" => match faults {
            Some(profile) => {
                let journal =
                    open_journal(&pipelines::faults::fingerprint(tier, profile, sabotage));
                run_pipeline(
                    &ctx,
                    pipelines::faults::run_with(tier, 0, profile, sabotage, journal.as_ref()),
                    pipelines::faults::STEM,
                );
            }
            None => {
                let journal = open_journal(&pipelines::table1::fingerprint(tier));
                run_pipeline(
                    &ctx,
                    pipelines::table1::run_with(tier, 0, journal.as_ref()),
                    pipelines::table1::STEM,
                );
            }
        },
        "lower" => {
            let journal = open_journal(&pipelines::lower::fingerprint(tier));
            run_pipeline(
                &ctx,
                pipelines::lower::run_with(tier, 0, journal.as_ref()),
                pipelines::lower::STEM,
            );
        }
        "sdp" => {
            let journal = open_journal(&pipelines::sdp::fingerprint(tier));
            run_pipeline(
                &ctx,
                pipelines::sdp::run_with(tier, 0, journal.as_ref()),
                pipelines::sdp::STEM,
            );
        }
        "trend" => match &history_path {
            Some(ledger) => {
                let opts = TrendOptions {
                    window: flag_value("--window")
                        .map(|v| {
                            v.parse().unwrap_or_else(|_| {
                                eprintln!("--window takes a positive integer");
                                std::process::exit(2);
                            })
                        })
                        .unwrap_or(5),
                    max_regression_pct: flag_value("--max-regression-pct")
                        .map(|v| {
                            v.parse().unwrap_or_else(|_| {
                                eprintln!("--max-regression-pct takes a number");
                                std::process::exit(2);
                            })
                        })
                        .unwrap_or(30.0),
                    same_host: args.iter().any(|a| a == "--same-host"),
                };
                trend_history(ledger, &opts);
            }
            None => {
                let (Some(old), Some(new)) = (positional.get(1), positional.get(2)) else {
                    eprintln!(
                        "usage: repro trend OLD.json NEW.json\n       repro trend --history \
                         LEDGER.jsonl [--window N] [--max-regression-pct P] [--same-host]"
                    );
                    std::process::exit(2);
                };
                trend(old, new);
            }
        },
        "dashboard" => {
            let ledger = history_path.unwrap_or_else(|| PathBuf::from("HISTORY.jsonl"));
            let out = flag_value("--out")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("DASHBOARD.md"));
            dashboard(&ledger, &out);
        }
        "history-import" => {
            let Some(ledger) = &history_path else {
                eprintln!("usage: repro history-import ARTIFACT.json... --history LEDGER.jsonl");
                std::process::exit(2);
            };
            if positional.len() < 2 {
                eprintln!("history-import: no artifact files given");
                std::process::exit(2);
            }
            history_import(ledger, &positional[1..], tier);
        }
        "history" => match positional.get(1).copied() {
            Some("fsck") => {
                let ledger = history_path.unwrap_or_else(|| PathBuf::from("HISTORY.jsonl"));
                history_fsck(&ledger, args.iter().any(|a| a == "--repair"));
            }
            _ => {
                eprintln!("usage: repro history fsck [--repair] [--history LEDGER.jsonl]");
                std::process::exit(2);
            }
        },
        "table1-asym" => table1_asym(&ctx),
        "table1-sym" => table1_sym(&ctx),
        "thm3-scaling" => thm3_scaling(&ctx),
        "pair-loglog" => pair_loglog(&ctx),
        "figures" => figures(),
        "lb-exact" => lb_exact(&ctx),
        "lb-sync" => lb_sync(&ctx),
        "lb-async" => lb_async(&ctx),
        "beacon" => beacon(&ctx),
        "all" => {
            run_pipeline(
                &ctx,
                pipelines::table1::run(tier, 0),
                pipelines::table1::STEM,
            );
            run_pipeline(&ctx, pipelines::lower::run(tier, 0), pipelines::lower::STEM);
            run_pipeline(&ctx, pipelines::sdp::run(tier, 0), pipelines::sdp::STEM);
            table1_asym(&ctx);
            table1_sym(&ctx);
            thm3_scaling(&ctx);
            pair_loglog(&ctx);
            figures();
            lb_exact(&ctx);
            lb_sync(&ctx);
            lb_async(&ctx);
            beacon(&ctx);
        }
        other => {
            eprintln!("unknown experiment {other:?}; see the module docs");
            std::process::exit(2);
        }
    }
}

struct Ctx {
    tier: Tier,
    out_dir: PathBuf,
    /// The run ledger pipeline runs append to (`--history`).
    history: Option<PathBuf>,
}

impl Ctx {
    /// Whether the classic experiments should use their reduced grids
    /// (both `--quick` and `--smoke` do).
    fn quick(&self) -> bool {
        self.tier != Tier::Full
    }
}

/// Writes one pipeline's artifact pair and enforces its gates: failed grid
/// cells exit 3 (degraded partial artifact — it takes precedence so CI
/// never mistakes an incomplete grid for a bound verdict), any proven
/// bound violation exits 1 — the CI contract.
fn run_pipeline(ctx: &Ctx, out: PipelineOutput, stem: &str) {
    let (json_path, md_path) = report::write_artifacts(&ctx.out_dir, stem, &out);
    println!();
    println!(
        "wrote {} and {} ({} gated violations, {} failed cells)",
        json_path.display(),
        md_path.display(),
        out.violations.len(),
        out.failed_cells.len()
    );
    // Append the generation to the run ledger before any gate exits —
    // degraded and violating runs are part of the trajectory too.
    if let Some(ledger) = &ctx.history {
        let (commit, utc) = history::writer_context();
        let entry =
            history::entry_from_artifact(&out.json, &commit, &HostFingerprint::detect(), &utc)
                .unwrap_or_else(|e| {
                    eprintln!("history: cannot build a ledger entry from {stem}: {e}");
                    std::process::exit(2);
                });
        history::append(ledger, &entry).unwrap_or_else(|e| {
            eprintln!("history: appending to {}: {e}", ledger.display());
            std::process::exit(2);
        });
        println!(
            "appended {} generation ({} rows) to {}",
            entry.source,
            entry.rows.len(),
            ledger.display()
        );
    }
    for v in &out.violations {
        eprintln!("BOUND VIOLATION: {v}");
    }
    if !out.failed_cells.is_empty() {
        for cell in &out.failed_cells {
            eprintln!(
                "FAILED CELL: {} ({}; retries={}, seed={:#018x})",
                cell.id, cell.cause, cell.retries, cell.seed
            );
        }
        eprintln!("partial artifact: {} cells failed", out.failed_cells.len());
        std::process::exit(3);
    }
    if !out.violations.is_empty() {
        std::process::exit(1);
    }
}

/// `repro trend OLD NEW`: loads two artifact JSONs and reports how much
/// bound headroom moved per matched row id.
///
/// A *missing* artifact file is a skip (exit 0, with a note): scheduled
/// trend loops legitimately compare against generations that may not
/// exist yet. A file that exists but fails to parse, or parses without
/// trend rows ([`report::TrendError`]), is a real schema problem and
/// exits 2 — CI must not swallow those.
fn trend(old_path: &str, new_path: &str) {
    let load = |path: &str| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                println!("trend skipped: artifact {path} missing");
                std::process::exit(0);
            }
            eprintln!("reading {path}: {e}");
            std::process::exit(2);
        });
        serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("trend: schema mismatch parsing {path}: {e}");
            std::process::exit(2);
        })
    };
    let old = load(old_path);
    let new = load(new_path);
    match report::trend(&old, &new) {
        Ok(t) => print!("{}", t.render()),
        Err(e) => {
            eprintln!("trend: {e}");
            std::process::exit(2);
        }
    }
}

/// Reads a ledger, reporting (but surviving) corrupt lines; only I/O
/// failure is fatal.
fn read_ledger(path: &std::path::Path) -> blind_rendezvous::history::Ledger {
    let ledger = history::read(path).unwrap_or_else(|e| {
        eprintln!("reading {}: {e}", path.display());
        std::process::exit(2);
    });
    for s in &ledger.skipped {
        eprintln!(
            "history: skipped corrupt ledger line {} of {}: {}",
            s.line,
            path.display(),
            s.error
        );
    }
    ledger
}

/// `repro history fsck [--repair]`: reports the ledger's corrupt lines
/// with their line numbers; without `--repair` any corruption exits 1,
/// with it the ledger is rewritten without the corrupt lines through the
/// atomic-commit path.
fn history_fsck(path: &std::path::Path, repair: bool) {
    let ledger = history::read(path).unwrap_or_else(|e| {
        eprintln!("reading {}: {e}", path.display());
        std::process::exit(2);
    });
    if ledger.skipped.is_empty() {
        println!(
            "{}: clean — {} generations, no corrupt lines",
            path.display(),
            ledger.entries.len()
        );
        return;
    }
    for s in &ledger.skipped {
        eprintln!("{}: corrupt line {}: {}", path.display(), s.line, s.error);
    }
    if repair {
        history::rewrite(path, &ledger.entries).unwrap_or_else(|e| {
            eprintln!("repairing {}: {e}", path.display());
            std::process::exit(2);
        });
        println!(
            "repaired {}: kept {} generations, dropped {} corrupt lines",
            path.display(),
            ledger.entries.len(),
            ledger.skipped.len()
        );
    } else {
        eprintln!(
            "{}: {} corrupt lines (re-run with --repair to drop them)",
            path.display(),
            ledger.skipped.len()
        );
        std::process::exit(1);
    }
}

/// `repro trend --history LEDGER`: the N-generation analysis; exits 1 on
/// any regressed series — the CI gate.
fn trend_history(ledger_path: &std::path::Path, opts: &TrendOptions) {
    let ledger = read_ledger(ledger_path);
    if ledger.entries.is_empty() {
        eprintln!(
            "trend: ledger {} has no readable generations",
            ledger_path.display()
        );
        std::process::exit(2);
    }
    let analysis = history::analyze(&ledger.entries, opts);
    print!("{}", analysis.render(opts));
    let regressed = analysis.regressed();
    if !regressed.is_empty() {
        for s in &regressed {
            eprintln!(
                "PERF REGRESSION: {} at {} vs window median {} ({:+.1}%, tolerance -{}%)",
                s.key,
                history::format_metric(s.latest),
                history::format_metric(s.baseline.unwrap_or(f64::NAN)),
                s.delta_pct.unwrap_or(f64::NAN),
                opts.max_regression_pct
            );
        }
        std::process::exit(1);
    }
}

/// `repro dashboard`: renders the ledger into the committed markdown
/// dashboard — a pure function of the ledger file.
fn dashboard(ledger_path: &std::path::Path, out_path: &std::path::Path) {
    let ledger = read_ledger(ledger_path);
    let md = history::render_dashboard(&ledger);
    if let Some(dir) = out_path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
    }
    checkpoint::commit_bytes(out_path, md.as_bytes())
        .unwrap_or_else(|e| panic!("writing {}: {e}", out_path.display()));
    println!(
        "wrote {} ({} generations, {} skipped lines)",
        out_path.display(),
        ledger.entries.len(),
        ledger.skipped.len()
    );
}

/// `repro history-import`: backfills ledger entries from committed
/// artifact / bench snapshots. Pipeline artifacts carry their own
/// provenance; bench reports record the CLI `tier`.
fn history_import(ledger_path: &std::path::Path, files: &[&str], tier: Tier) {
    let (commit, utc) = history::writer_context();
    let host = HostFingerprint::detect();
    for path in files {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("reading {path}: {e}");
            std::process::exit(2);
        });
        let doc: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("parsing {path}: {e}");
            std::process::exit(2);
        });
        let entry = if doc.get("pipeline").is_some() {
            history::entry_from_artifact(&doc, &commit, &host, &utc)
        } else {
            history::entry_from_bench(&doc, tier.name(), &commit, &host, &utc)
        }
        .unwrap_or_else(|e| {
            eprintln!("history-import: {path}: {e}");
            std::process::exit(2);
        });
        history::append(ledger_path, &entry).unwrap_or_else(|e| {
            eprintln!("history: appending to {}: {e}", ledger_path.display());
            std::process::exit(2);
        });
        println!(
            "imported {} ({} {} rows) into {}",
            path,
            entry.rows.len(),
            entry.kind.name(),
            ledger_path.display()
        );
    }
}

fn header(title: &str) {
    println!();
    println!("==== {title} ====");
    println!();
}

/// E1 — Table 1, asymmetric column: worst/mean TTR vs n per algorithm,
/// adversarial overlap-one pairs, plus fitted growth exponents.
fn table1_asym(ctx: &Ctx) {
    header("E1: Table 1 (asymmetric) — max TTR over wake-up shifts, |A|=|B|=4, |A∩B|=1");
    let ns: &[u64] = if ctx.quick() {
        &[8, 16, 32]
    } else {
        &[8, 16, 32, 64, 128]
    };
    let cfg = SweepConfig {
        shifts: if ctx.quick() { 64 } else { 1024 },
        shift_stride: 13,
        spread_over_period: true,
        seeds: 6,
        horizon_override: 0,
        threads: 0,
    };
    let algos = [
        Algorithm::Crseq,
        Algorithm::JumpStay,
        Algorithm::Drds,
        Algorithm::Ours,
        Algorithm::Random,
    ];
    print!("{:<16}", "algorithm");
    for n in ns {
        print!("{:>10}", format!("n={n}"));
    }
    println!("{:>9}{:>9}", "exp(n)", "paper");
    let paper_exp = [
        "2 (n^2)",
        "3 (n^3)",
        "2 (n^2)",
        "~0 (kl loglog n)",
        "~0 (kl log n)",
    ];
    let geometries = if ctx.quick() { 3 } else { 8 };
    for (algo, paper) in algos.iter().zip(paper_exp) {
        let mut points = Vec::new();
        print!("{:<16}", algo.to_string());
        for &n in ns {
            // Worst case over several overlap geometries × many shifts:
            // the adversarial boundary pair plus seeded random overlaps.
            let mut scenarios = vec![workload::adversarial_overlap_one(n, 4, 4).expect("fits")];
            for seed in 0..geometries {
                scenarios.push(workload::random_overlapping_pair(n, 4, 4, seed).expect("fits"));
            }
            let mut worst = 0u64;
            let mut failures = 0usize;
            for scenario in &scenarios {
                let s = sweep_pair_ttr(*algo, n, scenario, &cfg)
                    .unwrap_or_else(|e| panic!("{algo} failed at n={n}: {e}"));
                if algo.proven_asymmetric_guarantee() {
                    assert_eq!(s.failures, 0, "{algo} missed its horizon at n={n}");
                }
                if s.failures > 0 {
                    // Horizon misses lower-bound the worst case.
                    worst = worst.max(s.horizon);
                }
                failures += s.failures;
                worst = worst.max(s.summary.max);
            }
            if failures == 0 {
                points.push((n, worst));
            }
            if failures > 0 {
                print!("{:>10}", format!("≥{worst}"));
            } else {
                print!("{:>10}", worst);
            }
        }
        let e = growth_exponent(&points).unwrap_or(f64::NAN);
        println!("{:>9.2}  {}", e, paper);
    }
    println!();
    println!("reproduction check: exponent ordering ours < DRDS/CRSEQ < JS; ours ≈ flat in n.");
    println!("(≥ marks cells where a reconstruction missed its horizon for some geometry+shift;");
    println!(" the true worst case is at least the shown value — see rdv-baselines docs.)");
}

/// E2 — Table 1, symmetric column: A = B.
fn table1_sym(ctx: &Ctx) {
    header("E2: Table 1 (symmetric) — max TTR over wake-up shifts, A = B, |A|=4");
    let ns: &[u64] = if ctx.quick() {
        &[8, 16, 32]
    } else {
        &[8, 16, 32, 64, 128]
    };
    let cfg = SweepConfig {
        shifts: if ctx.quick() { 64 } else { 1024 },
        shift_stride: 13,
        spread_over_period: true,
        seeds: 6,
        horizon_override: 0,
        threads: 0,
    };
    let algos = [
        Algorithm::Crseq,
        Algorithm::JumpStay,
        Algorithm::Drds,
        Algorithm::Ours,
        Algorithm::OursSymmetric,
    ];
    let paper_exp = [
        "2 (n^2)",
        "1 (n)",
        "n/a (reconstr.)",
        "kl loglog n",
        "0 (O(1))",
    ];
    print!("{:<16}", "algorithm");
    for n in ns {
        print!("{:>10}", format!("n={n}"));
    }
    println!("{:>9}{:>14}", "exp(n)", "paper");
    let geometries = if ctx.quick() { 3 } else { 8 };
    for (algo, paper) in algos.iter().zip(paper_exp) {
        let mut points = Vec::new();
        print!("{:<16}", algo.to_string());
        for &n in ns {
            let mut worst = 0u64;
            let mut failures = 0usize;
            for seed in 0..geometries {
                let scenario = workload::symmetric_pair(n, 4, seed).expect("fits");
                let s = sweep_pair_ttr(*algo, n, &scenario, &cfg)
                    .unwrap_or_else(|e| panic!("{algo} failed at n={n}: {e}"));
                if algo.proven_asymmetric_guarantee() {
                    assert_eq!(s.failures, 0, "{algo} missed at n={n}");
                }
                if s.failures > 0 {
                    worst = worst.max(s.horizon);
                }
                failures += s.failures;
                worst = worst.max(s.summary.max);
            }
            if failures == 0 {
                points.push((n, worst));
            }
            if failures > 0 {
                print!("{:>10}", format!("≥{worst}"));
            } else {
                print!("{:>10}", worst);
            }
        }
        let e = growth_exponent(&points).unwrap_or(f64::NAN);
        println!("{:>9.2}  {}", e, paper);
    }
    println!();
    println!("reproduction check: ours+sym row is flat (O(1), ≤ 12 slots) at every n.");
}

/// E3 — the headline O(|A||B| log log n) scaling.
fn thm3_scaling(ctx: &Ctx) {
    header("E3: Theorem 3 scaling — max TTR vs |A||B| (n=256) and vs n (|A|=|B|=4)");
    let cfg = SweepConfig {
        shifts: if ctx.quick() { 64 } else { 512 },
        shift_stride: 19,
        spread_over_period: true,
        seeds: 1,
        horizon_override: 0,
        threads: 0,
    };
    println!(
        "{:<8}{:>8}{:>10}{:>12}{:>12}",
        "k=l", "k*l", "maxTTR", "TTR/(k*l)", "bound"
    );
    let ks: &[usize] = if ctx.quick() {
        &[2, 3, 4, 6]
    } else {
        &[2, 3, 4, 6, 8, 12]
    };
    for &k in ks {
        let n = 256u64;
        let scenario = workload::adversarial_overlap_one(n, k, k).expect("fits");
        let s = sweep_pair_ttr(Algorithm::Ours, n, &scenario, &cfg).expect("sweep");
        assert_eq!(s.failures, 0);
        let sched = GeneralSchedule::asynchronous(n, scenario.a.clone()).expect("valid");
        println!(
            "{:<8}{:>8}{:>10}{:>12.1}{:>12}",
            k,
            k * k,
            s.summary.max,
            s.summary.max as f64 / (k * k) as f64,
            sched.ttr_bound(k)
        );
    }
    println!();
    println!("{:<10}{:>10}{:>12}", "n", "maxTTR", "pair period");
    let ns: &[u64] = if ctx.quick() {
        &[16, 64, 256]
    } else {
        &[16, 64, 256, 1024, 4096]
    };
    for &n in ns {
        let scenario = workload::adversarial_overlap_one(n, 4, 4).expect("fits");
        let s = sweep_pair_ttr(Algorithm::Ours, n, &scenario, &cfg).expect("sweep");
        assert_eq!(s.failures, 0);
        let fam = PairFamily::new(n).expect("n ≥ 2");
        println!("{:<10}{:>10}{:>12}", n, s.summary.max, fam.period());
    }
    println!();
    println!("reproduction check: TTR/(k*l) column ~constant; TTR vs n grows only via the pair period (log log n).");
}

/// E7 — Theorem 1: the pair-schedule period is doubly logarithmic in n.
fn pair_loglog(ctx: &Ctx) {
    header("E7: Theorem 1 — pair schedule period and worst TTR vs n (k=2)");
    println!(
        "{:<22}{:>10}{:>12}{:>12}",
        "n", "period", "worst TTR", "log2 log2 n"
    );
    let ns: &[u64] = if ctx.quick() {
        &[4, 256, 65536]
    } else {
        &[4, 16, 256, 65536, 1 << 32, 1 << 62]
    };
    for &n in ns {
        let fam = PairFamily::new(n).expect("n ≥ 2");
        // Worst asynchronous TTR between the 2-path pair {1,2} vs {2,3}
        // over every relative shift — the configuration the Ramsey
        // coloring exists for.
        let sa = fam.schedule(1, 2).expect("pair");
        let sb = fam.schedule(2, 3).expect("pair");
        let worst = rdv_core::verify::worst_async_ttr_exhaustive(&sa, &sb, 4 * fam.period())
            .expect("pairs rendezvous");
        let loglog = (n.max(4) as f64).log2().log2();
        println!(
            "{:<22}{:>10}{:>12}{:>12.2}",
            format!("2^{}", 64 - n.leading_zeros() - 1),
            fam.period(),
            worst.ttr,
            loglog
        );
    }
    println!();
    println!("reproduction check: period grows ~4x while n grows 2^58x (log log n shape).");
}

/// E4–E6 — the paper's figures as ASCII.
fn figures() {
    header("E4: Figure 1 — walks and balanced strings");
    let fig1a: Bits = "11010".parse().expect("literal");
    let fig1b: Bits = "110001".parse().expect("literal");
    println!(
        "(a) the graph of 11010 ({}):",
        rdv_strings::render::describe(&fig1a)
    );
    print!("{}", rdv_strings::render::render_walk(&fig1a));
    println!();
    println!(
        "(b) the graph of 110001 ({}):",
        rdv_strings::render::describe(&fig1b)
    );
    print!("{}", rdv_strings::render::render_walk(&fig1b));

    header("E5: Figure 2 — a strictly Catalan codeword and a shift of it");
    let code = RCode::new(3);
    let word = code.encode(&Bits::encode_int(0b101, 3)).into_bits();
    println!("R(101) ({}):", rdv_strings::render::describe(&word));
    print!("{}", rdv_strings::render::render_walk(&word));
    println!();
    let shifted = word.cyclic_shift(5);
    println!("S^5 R(101) ({}):", rdv_strings::render::describe(&shifted));
    print!("{}", rdv_strings::render::render_walk(&shifted));

    header("E6: Figure 3 — the 2-maximality transform");
    let z: Bits = "110100".parse().expect("literal");
    print!("{}", rdv_strings::render::render_maximality_transform(&z));
}

/// E8 — exact small-n optima: the Ω(log log n) companion.
fn lb_exact(ctx: &Ctx) {
    header("E8: Theorem 4 companion — exact R_s(n,2) and cyclic R_a(n,2) by exhaustive search");
    let max_n_sync = if ctx.quick() { 8 } else { 10 };
    let max_n_cyc = 3; // n = 4 already needs a cyclic period > 6 (beyond the 2^6 domain)
    println!(
        "{:<6}{:>12}{:>16}{:>22}",
        "n", "R_s(n,2)", "cyclic R_a(n,2)", "Ramsey threshold m"
    );
    for n in 2..=max_n_sync {
        let rs = match exact::exact_rs_n2(n, 5, 1 << 26) {
            exact::SearchOutcome::Optimal(t) => t.to_string(),
            other => format!("{other:?}"),
        };
        let ra = if n <= max_n_cyc {
            match exact::exact_ra_n2_cyclic(n, 6, 1 << 26) {
                exact::SearchOutcome::Optimal(t) => t.to_string(),
                other => format!("{other:?}"),
            }
        } else {
            "-".to_string()
        };
        // Smallest palette size m with e·m! ≥ n (i.e. T = log2 m forced).
        let m = (1..=12u32)
            .find(|&m| rdv_ramsey::triangle::ramsey_triangle_threshold(m) >= n)
            .unwrap_or(12);
        println!("{:<6}{:>12}{:>16}{:>22}", n, rs, ra, m);
    }
    println!();
    println!("reproduction check: R_s grows with n (Theorem 4's Ω(log log n)); cyclic ≥ sync.");
}

/// E9 — Theorem 6 pigeonhole certificates.
fn lb_sync(ctx: &Ctx) {
    header("E9: Theorem 6 — pigeonhole certificates (R_s ≥ αk for concrete families)");
    let n = if ctx.quick() { 16 } else { 64 };
    println!(
        "{:<26}{:>4}{:>4}{:>18}",
        "family", "k", "α", "certified bound"
    );
    let round_robin = |set: &ChannelSet| {
        rdv_core::schedule::CyclicSchedule::new(set.iter().collect()).expect("non-empty")
    };
    for (k, alpha) in [(2usize, 2usize), (3, 2), (4, 2)] {
        match pigeonhole::certify(&round_robin, n, k, alpha) {
            Some(w) => println!(
                "{:<26}{:>4}{:>4}{:>18}",
                "round-robin", k, alpha, w.certified_bound
            ),
            None => println!(
                "{:<26}{:>4}{:>4}{:>18}",
                "round-robin", k, alpha, "no witness"
            ),
        }
    }
    let ours = |set: &ChannelSet| {
        rdv_core::general::GeneralSchedule::synchronous(n, set.clone()).expect("valid")
    };
    for (k, alpha) in [(2usize, 2usize), (3, 2)] {
        match pigeonhole::certify(&ours, n, k, alpha) {
            Some(w) => println!(
                "{:<26}{:>4}{:>4}{:>18}",
                "ours (sync, Thm 3)", k, alpha, w.certified_bound
            ),
            None => println!(
                "{:<26}{:>4}{:>4}{:>18}",
                "ours (sync, Thm 3)", k, alpha, "no witness"
            ),
        }
    }
    println!();
    println!("reproduction check: witnesses certify R_s ≥ αk, matching Theorem 6's pigeonhole.");
}

/// E10 — Theorem 7 density witnesses.
fn lb_async(ctx: &Ctx) {
    header("E10: Theorem 7 — Ω(kl) density witnesses against Theorem 3 schedules");
    let n = 24u64;
    println!(
        "{:<6}{:<6}{:>8}{:>10}{:>12}{:>14}",
        "k", "l", "k*l", "worstTTR", "TTR/(k*l)", "Thm3 bound"
    );
    let family = move |set: &ChannelSet| {
        rdv_core::general::GeneralSchedule::asynchronous(n, set.clone()).expect("valid")
    };
    let grid: &[(usize, usize)] = if ctx.quick() {
        &[(2, 2), (3, 3)]
    } else {
        &[(2, 2), (2, 4), (3, 3), (4, 4), (4, 6), (6, 6)]
    };
    for &(k, l) in grid {
        let w =
            density::worst_overlap_one_pair(&family, n, k, l, 1 << 22, 5, 128).expect("witness");
        let bound = family(&w.a).ttr_bound(l);
        println!(
            "{:<6}{:<6}{:>8}{:>10}{:>12.2}{:>14}",
            k,
            l,
            k * l,
            w.ttr,
            w.barrier_ratio,
            bound
        );
    }
    println!();
    println!("reproduction check: worst TTR ≥ Ω(k·l) (ratio column bounded below), and ≤ the O(kl loglog n) bound.");
}

/// E11/E12 — the beacon protocols.
fn beacon(ctx: &Ctx) {
    header("E11/E12: one-bit beacon — protocol A O(logn·(k+l)) vs protocol B O(k+l+logn)");
    let cfg = SweepConfig {
        shifts: 4,
        shift_stride: 9,
        spread_over_period: true,
        seeds: if ctx.quick() { 12 } else { 32 },
        horizon_override: 0,
        threads: 0,
    };
    println!("-- vs n (k = l = 4) --");
    println!(
        "{:<8}{:>12}{:>12}{:>12}{:>12}",
        "n", "A p50", "A p95", "B p50", "B p95"
    );
    let ns: &[u64] = if ctx.quick() {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024]
    };
    for &n in ns {
        let scenario = workload::adversarial_overlap_one(n, 4, 4).expect("fits");
        let a = sweep_pair_ttr(Algorithm::BeaconA, n, &scenario, &cfg).expect("sweep A");
        let b = sweep_pair_ttr(Algorithm::BeaconB, n, &scenario, &cfg).expect("sweep B");
        println!(
            "{:<8}{:>12}{:>12}{:>12}{:>12}",
            n, a.summary.p50, a.summary.p95, b.summary.p50, b.summary.p95
        );
    }
    println!();
    println!("-- vs k (n = 256, l = k) --");
    println!("{:<8}{:>12}{:>12}", "k", "A p50", "B p50");
    let ks: &[usize] = if ctx.quick() { &[2, 8] } else { &[2, 4, 8, 16] };
    for &k in ks {
        let scenario = workload::adversarial_overlap_one(256, k, k).expect("fits");
        let a = sweep_pair_ttr(Algorithm::BeaconA, 256, &scenario, &cfg).expect("sweep A");
        let b = sweep_pair_ttr(Algorithm::BeaconB, 256, &scenario, &cfg).expect("sweep B");
        println!("{:<8}{:>12}{:>12}", k, a.summary.p50, b.summary.p50);
    }
    println!();
    println!("reproduction check: both grow mildly with k; B's dependence on n is additive, A's multiplicative.");
}
