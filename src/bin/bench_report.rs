//! Emits `BENCH_kernel.json`: machine-readable slots/sec of the naive
//! per-slot TTR path vs the block-compiled kernel, so successive PRs can
//! track the measurement engine's perf trajectory.
//!
//! ```text
//! cargo run --release --bin bench_report [output-path] \
//!     [--baseline BENCH_kernel.json] [--max-regression-pct 30]
//! ```
//!
//! With `--baseline`, the freshly measured block-kernel throughput is
//! diffed per scenario against the committed baseline and the process
//! exits non-zero on a regression beyond the tolerance (default 30%,
//! chosen to ride out shared-runner noise) — the CI perf gate.
//!
//! The workload is the worst-case exhaustive shift sweep
//! (`verify::worst_async_ttr_exhaustive`) on the adversarial overlap-one
//! scenario with `|A| = |B| = 4`, at `n ∈ {16, 64, 256}`. "Slots" counts
//! the schedule evaluations the sweep semantically performs (`ttr + 1`
//! slots per direction per shift) — identical for both paths, since the
//! kernels are bit-equivalent — so slots/sec is directly comparable.

use blind_rendezvous::core::general::GeneralSchedule;
use blind_rendezvous::core::verify;
use rdv_core::schedule::Schedule;
use rdv_sim::workload;
use serde_json::Value;
use std::time::Instant;

struct Cell {
    n: u64,
    swept_slots: u64,
    naive_slots_per_sec: f64,
    block_slots_per_sec: f64,
    speedup: f64,
}

fn time_reps<F: FnMut()>(mut f: F) -> f64 {
    // One warm-up, then enough reps to pass ~0.2 s.
    f();
    let mut reps = 0u32;
    let start = Instant::now();
    loop {
        f();
        reps += 1;
        if start.elapsed().as_secs_f64() > 0.2 && reps >= 3 {
            break;
        }
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

fn measure(n: u64) -> Cell {
    let k = 4usize;
    let sc = workload::adversarial_overlap_one(n, k, k).expect("parameters fit");
    let sa = GeneralSchedule::asynchronous(n, sc.a.clone()).expect("valid");
    let sb = GeneralSchedule::asynchronous(n, sc.b.clone()).expect("valid");
    let horizon = sa.ttr_bound(k) + 1;
    let period = sa.period_hint().expect("periodic");

    // Count the slots the sweep semantically evaluates (same for both
    // paths — the kernels are bit-identical; asserted below).
    let mut swept_slots = 0u64;
    for shift in 0..period {
        let later = verify::async_ttr(&sa, &sb, shift, horizon).expect("guaranteed rendezvous");
        let earlier = verify::async_ttr(&sb, &sa, shift, horizon).expect("guaranteed rendezvous");
        swept_slots += later + 1 + earlier + 1;
    }

    let naive_result = verify::naive::worst_async_ttr_exhaustive(&sa, &sb, horizon);
    let block_result = verify::worst_async_ttr_exhaustive(&sa, &sb, horizon);
    assert_eq!(naive_result, block_result, "kernel mismatch at n={n}");

    let naive_secs = time_reps(|| {
        std::hint::black_box(verify::naive::worst_async_ttr_exhaustive(&sa, &sb, horizon));
    });
    let block_secs = time_reps(|| {
        std::hint::black_box(verify::worst_async_ttr_exhaustive(&sa, &sb, horizon));
    });

    Cell {
        n,
        swept_slots,
        naive_slots_per_sec: swept_slots as f64 / naive_secs,
        block_slots_per_sec: swept_slots as f64 / block_secs,
        speedup: naive_secs / block_secs,
    }
}

/// Per-n block-kernel throughputs of a report file.
fn baseline_throughputs(path: &str) -> Vec<(u64, f64)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let doc = serde_json::from_str(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
    doc.get("scenarios")
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("{path}: no scenarios array"))
        .iter()
        .map(|s| {
            let n = s.get("n").and_then(Value::as_u64).expect("scenario n");
            let rate = s
                .get("block_slots_per_sec")
                .and_then(Value::as_f64)
                .expect("scenario block_slots_per_sec");
            (n, rate)
        })
        .collect()
}

/// Diffs fresh cells against a baseline report; returns the regressions
/// beyond `max_regression_pct`.
fn diff_against_baseline(
    cells: &[Cell],
    baseline: &[(u64, f64)],
    max_regression_pct: f64,
) -> Vec<String> {
    let mut regressions = Vec::new();
    println!();
    println!(
        "{:<8}{:>16}{:>16}{:>10}",
        "n", "baseline sl/s", "current sl/s", "delta"
    );
    for cell in cells {
        let Some(&(_, base)) = baseline.iter().find(|&&(n, _)| n == cell.n) else {
            println!(
                "{:<8}{:>16}{:>16.0}{:>10}",
                cell.n, "-", cell.block_slots_per_sec, "new"
            );
            continue;
        };
        let delta_pct = (cell.block_slots_per_sec / base - 1.0) * 100.0;
        println!(
            "{:<8}{:>16.0}{:>16.0}{:>9.1}%",
            cell.n, base, cell.block_slots_per_sec, delta_pct
        );
        if delta_pct < -max_regression_pct {
            regressions.push(format!(
                "n={}: block kernel {:.0} slots/s vs baseline {:.0} ({:+.1}%, tolerance -{}%)",
                cell.n, cell.block_slots_per_sec, base, delta_pct, max_regression_pct
            ));
        }
    }
    regressions
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // A present flag with a missing (or flag-shaped) value is a hard error:
    // silently ignoring it would turn the CI perf gate into a no-op.
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .map(|i| match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => panic!("{name} requires a value"),
            })
    };
    let baseline_path = flag_value("--baseline");
    let max_regression_pct: f64 = flag_value("--max-regression-pct")
        .map(|v| v.parse().expect("--max-regression-pct takes a number"))
        .unwrap_or(30.0);
    let mut skip_next = false;
    let out_path = args
        .iter()
        .find(|a| {
            if std::mem::take(&mut skip_next) {
                return false;
            }
            if *a == "--baseline" || *a == "--max-regression-pct" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .cloned()
        .unwrap_or_else(|| "BENCH_kernel.json".to_string());
    let mut cells = Vec::new();
    for n in [16u64, 64, 256] {
        let cell = measure(n);
        println!(
            "n={:<5} slots/sweep={:<10} naive={:>12.0} slots/s   block={:>14.0} slots/s   speedup={:.1}x",
            cell.n, cell.swept_slots, cell.naive_slots_per_sec, cell.block_slots_per_sec, cell.speedup
        );
        cells.push(cell);
    }
    let report = Value::object([
        ("bench", Value::from("worst_async_ttr_exhaustive")),
        (
            "workload",
            Value::from("adversarial overlap-one pair, |A|=|B|=4, GeneralSchedule (Thm 3)"),
        ),
        ("unit", Value::from("schedule-evaluation slots per second")),
        (
            "scenarios",
            Value::Array(
                cells
                    .iter()
                    .map(|c| {
                        Value::object([
                            ("n", Value::from(c.n)),
                            ("swept_slots", Value::from(c.swept_slots)),
                            ("naive_slots_per_sec", Value::from(c.naive_slots_per_sec)),
                            ("block_slots_per_sec", Value::from(c.block_slots_per_sec)),
                            ("speedup", Value::from(c.speedup)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&out_path, serde_json::to_string_pretty(&report) + "\n")
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");

    if let Some(baseline_path) = baseline_path {
        let baseline = baseline_throughputs(&baseline_path);
        let regressions = diff_against_baseline(&cells, &baseline, max_regression_pct);
        if regressions.is_empty() {
            println!("perf gate: within {max_regression_pct}% of {baseline_path}");
        } else {
            for r in &regressions {
                eprintln!("PERF REGRESSION: {r}");
            }
            std::process::exit(1);
        }
    }
}
