//! Emits `BENCH_kernel.json`: machine-readable slots/sec of the naive
//! per-slot TTR path vs the block-compiled kernel, so successive PRs can
//! track the measurement engine's perf trajectory.
//!
//! ```text
//! cargo run --release --bin bench_report [output-path]
//! ```
//!
//! The workload is the worst-case exhaustive shift sweep
//! (`verify::worst_async_ttr_exhaustive`) on the adversarial overlap-one
//! scenario with `|A| = |B| = 4`, at `n ∈ {16, 64, 256}`. "Slots" counts
//! the schedule evaluations the sweep semantically performs (`ttr + 1`
//! slots per direction per shift) — identical for both paths, since the
//! kernels are bit-equivalent — so slots/sec is directly comparable.

use blind_rendezvous::core::general::GeneralSchedule;
use blind_rendezvous::core::verify;
use rdv_core::schedule::Schedule;
use rdv_sim::workload;
use serde_json::Value;
use std::time::Instant;

struct Cell {
    n: u64,
    swept_slots: u64,
    naive_slots_per_sec: f64,
    block_slots_per_sec: f64,
    speedup: f64,
}

fn time_reps<F: FnMut()>(mut f: F) -> f64 {
    // One warm-up, then enough reps to pass ~0.2 s.
    f();
    let mut reps = 0u32;
    let start = Instant::now();
    loop {
        f();
        reps += 1;
        if start.elapsed().as_secs_f64() > 0.2 && reps >= 3 {
            break;
        }
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

fn measure(n: u64) -> Cell {
    let k = 4usize;
    let sc = workload::adversarial_overlap_one(n, k, k).expect("parameters fit");
    let sa = GeneralSchedule::asynchronous(n, sc.a.clone()).expect("valid");
    let sb = GeneralSchedule::asynchronous(n, sc.b.clone()).expect("valid");
    let horizon = sa.ttr_bound(k) + 1;
    let period = sa.period_hint().expect("periodic");

    // Count the slots the sweep semantically evaluates (same for both
    // paths — the kernels are bit-identical; asserted below).
    let mut swept_slots = 0u64;
    for shift in 0..period {
        let later = verify::async_ttr(&sa, &sb, shift, horizon).expect("guaranteed rendezvous");
        let earlier = verify::async_ttr(&sb, &sa, shift, horizon).expect("guaranteed rendezvous");
        swept_slots += later + 1 + earlier + 1;
    }

    let naive_result = verify::naive::worst_async_ttr_exhaustive(&sa, &sb, horizon);
    let block_result = verify::worst_async_ttr_exhaustive(&sa, &sb, horizon);
    assert_eq!(naive_result, block_result, "kernel mismatch at n={n}");

    let naive_secs = time_reps(|| {
        std::hint::black_box(verify::naive::worst_async_ttr_exhaustive(&sa, &sb, horizon));
    });
    let block_secs = time_reps(|| {
        std::hint::black_box(verify::worst_async_ttr_exhaustive(&sa, &sb, horizon));
    });

    Cell {
        n,
        swept_slots,
        naive_slots_per_sec: swept_slots as f64 / naive_secs,
        block_slots_per_sec: swept_slots as f64 / block_secs,
        speedup: naive_secs / block_secs,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernel.json".to_string());
    let mut cells = Vec::new();
    for n in [16u64, 64, 256] {
        let cell = measure(n);
        println!(
            "n={:<5} slots/sweep={:<10} naive={:>12.0} slots/s   block={:>14.0} slots/s   speedup={:.1}x",
            cell.n, cell.swept_slots, cell.naive_slots_per_sec, cell.block_slots_per_sec, cell.speedup
        );
        cells.push(cell);
    }
    let report = Value::object([
        ("bench", Value::from("worst_async_ttr_exhaustive")),
        (
            "workload",
            Value::from("adversarial overlap-one pair, |A|=|B|=4, GeneralSchedule (Thm 3)"),
        ),
        ("unit", Value::from("schedule-evaluation slots per second")),
        (
            "scenarios",
            Value::Array(
                cells
                    .iter()
                    .map(|c| {
                        Value::object([
                            ("n", Value::from(c.n)),
                            ("swept_slots", Value::from(c.swept_slots)),
                            ("naive_slots_per_sec", Value::from(c.naive_slots_per_sec)),
                            ("block_slots_per_sec", Value::from(c.block_slots_per_sec)),
                            ("speedup", Value::from(c.speedup)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&out_path, serde_json::to_string_pretty(&report) + "\n")
        .unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("wrote {out_path}");
}
