//! Emits the machine-readable perf reports tracked across PRs and gated
//! in CI:
//!
//! * **`BENCH_kernel.json`** — slots/sec of the naive per-slot TTR path
//!   vs the block-compiled kernel on the worst-case exhaustive shift
//!   sweep (`verify::worst_async_ttr_exhaustive`).
//! * **`BENCH_multiuser.json`** — pair-slots/sec of the shared-arena
//!   multi-user engine vs the seed per-pair engine on clustered
//!   populations from 64 to 10k agents.
//! * **`BENCH_tree.json`** — whole-grid wall-clock of the smoke-tier
//!   `table1` measurement grid run as the former sequential outer loop
//!   (one per-cell pool submission per cell) vs as **one task-tree
//!   submission** (`rdv_sim::sweep_pair_grid`), at 8 requested worker
//!   threads.
//! * **`BENCH_faults.json`** — pair-slots/sec of the arena engine on the
//!   faulted grid (committed `light` profile), availability-aware
//!   ACS-hopping population vs the oblivious Thm-3 population under the
//!   same plan, with the worst faulted TTR of each side recorded as the
//!   speed/TTR trade. The gated column is the availability-aware
//!   throughput (`acs_pair_slots_per_sec`) — sensed-projection must not
//!   silently fall off the block-compiled path.
//!
//! ```text
//! cargo run --release --bin bench_report -- \
//!     [--suite kernel|multiuser|tree|faults|all] [--out-dir DIR] [--smoke] \
//!     [--baseline FILE]... [--max-regression-pct 30] \
//!     [--min-arena-speedup X] [--min-tree-speedup X] \
//!     [--min-bitplane-speedup X] [--history LEDGER.jsonl]
//! ```
//!
//! `--baseline` may be given multiple times; each file names its suite
//! through its `bench` field and is diffed against the freshly measured
//! suite of the same name, the process exiting non-zero on any
//! throughput regression beyond the tolerance (default 30%, sized to
//! ride out shared-runner noise) — the CI perf gate. `--smoke` trims
//! repetitions for CI; the workloads are identical, so smoke runs gate
//! against full-tier baselines. `--min-arena-speedup` additionally fails
//! the gate if the dense-population arena-vs-per-pair speedup falls
//! below the given factor, and `--min-tree-speedup` if the
//! whole-grid-tree-vs-sequential-outer-loop speedup does (the latter is
//! machine-portable — both sides run on the same pool configuration — so
//! CI gates the ratio rather than a raw-throughput baseline).
//! `--min-bitplane-speedup` gates the bit-plane-vs-slotwise pair-kernel
//! ratio on the dense multiuser cells (both sides forced pair-major, so
//! the ratio isolates the row layout).
//!
//! **Single-core honesty:** the speedup-ratio gates
//! (`--min-arena-speedup`, `--min-tree-speedup`) compare parallel
//! engines against sequential references, so on a single-hardware-thread
//! host they can only measure the spawn-amortization floor (the committed
//! `BENCH_tree.json` with `host_threads: 1` and speedup ≈1.07 documents
//! the trap). When `available_parallelism() == 1` both gates are
//! *skipped with an explicit log line* instead of producing a number that
//! looks like a verdict.
//!
//! `--history` appends one ledger line per measured suite (commit, host
//! fingerprint, tier, UTC timestamp, gate points by bench id) to the
//! append-only perf-trend ledger — the bench twin of `repro --history`;
//! `repro trend --history` / `repro dashboard` read it back.

use blind_rendezvous::core::general::GeneralSchedule;
use blind_rendezvous::core::verify;
use blind_rendezvous::history::{self, HostFingerprint};
use blind_rendezvous::pipelines;
use blind_rendezvous::report::Tier;
use rdv_core::schedule::Schedule;
use rdv_sim::engine::{EngineConfig, MeetingReport, PlanePolicy, ResolveMode, Simulation};
use rdv_sim::sweep::{sweep_pair_grid, sweep_pair_ttr, SweepCell};
use rdv_sim::{workload, Algorithm, FaultProfile, PairSweep, ParallelConfig};
use serde_json::Value;
use std::time::Instant;

/// Mean seconds per call: one warm-up, then at least `min_reps` reps and
/// `min_secs` of wall clock.
fn time_reps<F: FnMut()>(mut f: F, min_secs: f64, min_reps: u32) -> f64 {
    f();
    let mut reps = 0u32;
    let start = Instant::now();
    loop {
        f();
        reps += 1;
        if start.elapsed().as_secs_f64() > min_secs && reps >= min_reps {
            break;
        }
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

/// One timed call, no warm-up — for the population sizes where a single
/// run is seconds long and deterministic enough.
fn time_once<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// A freshly measured suite plus the `(key, throughput)` points its
/// baseline gate compares.
struct Suite {
    /// The `bench` id written into (and matched against) report files.
    bench: &'static str,
    /// Output file name within `--out-dir`.
    file: &'static str,
    /// Human label of the gate key column (`n`, `n_agents`).
    key_label: &'static str,
    report: Value,
    gate_points: Vec<(u64, f64)>,
}

// ---------------------------------------------------------------- kernel

struct KernelCell {
    n: u64,
    swept_slots: u64,
    naive_slots_per_sec: f64,
    block_slots_per_sec: f64,
    speedup: f64,
}

fn measure_kernel(n: u64, smoke: bool) -> KernelCell {
    let k = 4usize;
    let sc = workload::adversarial_overlap_one(n, k, k).expect("parameters fit");
    let sa = GeneralSchedule::asynchronous(n, sc.a.clone()).expect("valid");
    let sb = GeneralSchedule::asynchronous(n, sc.b.clone()).expect("valid");
    let horizon = sa.ttr_bound(k) + 1;
    let period = sa.period_hint().expect("periodic");

    // Count the slots the sweep semantically evaluates (same for both
    // paths — the kernels are bit-identical; asserted below).
    let mut swept_slots = 0u64;
    for shift in 0..period {
        let later = verify::async_ttr(&sa, &sb, shift, horizon).expect("guaranteed rendezvous");
        let earlier = verify::async_ttr(&sb, &sa, shift, horizon).expect("guaranteed rendezvous");
        swept_slots += later + 1 + earlier + 1;
    }

    let naive_result = verify::naive::worst_async_ttr_exhaustive(&sa, &sb, horizon);
    let block_result = verify::worst_async_ttr_exhaustive(&sa, &sb, horizon);
    assert_eq!(naive_result, block_result, "kernel mismatch at n={n}");

    let (min_secs, min_reps) = if smoke { (0.05, 1) } else { (0.2, 3) };
    let naive_secs = time_reps(
        || {
            std::hint::black_box(verify::naive::worst_async_ttr_exhaustive(&sa, &sb, horizon));
        },
        min_secs,
        min_reps,
    );
    let block_secs = time_reps(
        || {
            std::hint::black_box(verify::worst_async_ttr_exhaustive(&sa, &sb, horizon));
        },
        min_secs,
        min_reps,
    );

    KernelCell {
        n,
        swept_slots,
        naive_slots_per_sec: swept_slots as f64 / naive_secs,
        block_slots_per_sec: swept_slots as f64 / block_secs,
        speedup: naive_secs / block_secs,
    }
}

fn kernel_suite(smoke: bool) -> Suite {
    let mut cells = Vec::new();
    for n in [16u64, 64, 256] {
        let cell = measure_kernel(n, smoke);
        println!(
            "kernel    n={:<6} slots/sweep={:<10} naive={:>12.0} slots/s   block={:>14.0} slots/s   speedup={:.1}x",
            cell.n, cell.swept_slots, cell.naive_slots_per_sec, cell.block_slots_per_sec, cell.speedup
        );
        cells.push(cell);
    }
    let report = Value::object([
        ("bench", Value::from("worst_async_ttr_exhaustive")),
        (
            "workload",
            Value::from("adversarial overlap-one pair, |A|=|B|=4, GeneralSchedule (Thm 3)"),
        ),
        ("unit", Value::from("schedule-evaluation slots per second")),
        (
            "scenarios",
            Value::Array(
                cells
                    .iter()
                    .map(|c| {
                        Value::object([
                            ("n", Value::from(c.n)),
                            ("swept_slots", Value::from(c.swept_slots)),
                            ("naive_slots_per_sec", Value::from(c.naive_slots_per_sec)),
                            ("block_slots_per_sec", Value::from(c.block_slots_per_sec)),
                            ("speedup", Value::from(c.speedup)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Suite {
        bench: "worst_async_ttr_exhaustive",
        file: "BENCH_kernel.json",
        key_label: "n",
        gate_points: cells.iter().map(|c| (c.n, c.block_slots_per_sec)).collect(),
        report,
    }
}

// ------------------------------------------------------------- multiuser

struct MultiuserCell {
    n_agents: usize,
    universe: u64,
    k: usize,
    horizon: u64,
    overlapping_pairs: usize,
    missed_pairs: usize,
    pair_slots: u64,
    arena_secs: f64,
    arena_pair_slots_per_sec: f64,
    per_pair_slots_per_sec: Option<f64>,
    speedup: Option<f64>,
    bitplane_pair_slots_per_sec: Option<f64>,
    slotwise_pair_slots_per_sec: Option<f64>,
    bitplane_speedup: Option<f64>,
}

/// The semantic work of a run, identical for every engine: per
/// overlapping pair, the slots from the later wake to its first meeting
/// (inclusive) or to the horizon.
fn pair_slots(sim: &Simulation, report: &MeetingReport) -> u64 {
    let agents = sim.agents();
    let start = |i: usize, j: usize| agents[i].wake.max(agents[j].wake).min(report.horizon);
    let met: u64 = report
        .first_meeting
        .iter()
        .map(|((i, j), t)| t - start(i, j) + 1)
        .sum();
    let missed: u64 = report
        .missed
        .iter()
        .map(|m| {
            let (i, j) = m.pair;
            report.horizon - start(i, j)
        })
        .sum();
    met + missed
}

fn measure_multiuser(
    n_agents: usize,
    universe: u64,
    k: usize,
    horizon: u64,
    with_per_pair: bool,
    smoke: bool,
) -> MultiuserCell {
    let agents = workload::clustered_agents(Algorithm::Ours, universe, k, n_agents, 11, 256);
    let sim = Simulation::new(agents);
    let auto = EngineConfig::default();
    let report = sim.run_engine(horizon, &auto);
    // Both resolution modes must agree before anything is timed.
    for mode in [ResolveMode::PairMajor, ResolveMode::BucketScan] {
        let forced = EngineConfig {
            parallel: ParallelConfig::default(),
            mode,
            plane: PlanePolicy::Auto,
            faults: None,
        };
        assert_eq!(
            report,
            sim.run_engine(horizon, &forced),
            "arena modes diverged at n_agents={n_agents}"
        );
    }
    let slots = pair_slots(&sim, &report);

    let arena_secs = if with_per_pair {
        let (min_secs, min_reps) = if smoke { (0.05, 1) } else { (0.2, 3) };
        time_reps(
            || {
                std::hint::black_box(sim.run_engine(horizon, &auto));
            },
            min_secs,
            min_reps,
        )
    } else {
        // Large populations: one run is long and deterministic enough.
        time_once(|| {
            std::hint::black_box(sim.run_engine(horizon, &auto));
        })
    };

    let per_pair_secs = with_per_pair.then(|| {
        let cfg = ParallelConfig::default();
        assert_eq!(
            report,
            sim.run_per_pair_reference(horizon, &cfg),
            "per-pair engine diverged at n_agents={n_agents}"
        );
        if smoke {
            time_once(|| {
                std::hint::black_box(sim.run_per_pair_reference(horizon, &cfg));
            })
        } else {
            time_reps(
                || {
                    std::hint::black_box(sim.run_per_pair_reference(horizon, &cfg));
                },
                0.2,
                2,
            )
        }
    });

    // The bit-plane pair kernel vs its slotwise twin, both forced
    // pair-major so the ratio isolates the row layout (Auto mode may
    // pick the bucket scan, which is slotwise by construction). Both
    // layouts must reproduce the report before anything is timed.
    let bitplane = with_per_pair.then(|| {
        let planes = EngineConfig {
            parallel: ParallelConfig::default(),
            mode: ResolveMode::PairMajor,
            plane: PlanePolicy::Auto,
            faults: None,
        };
        let slotwise = EngineConfig {
            plane: PlanePolicy::Slotwise,
            ..planes
        };
        assert_eq!(
            report,
            sim.run_engine(horizon, &planes),
            "bit-plane layout diverged at n_agents={n_agents}"
        );
        assert_eq!(
            report,
            sim.run_engine(horizon, &slotwise),
            "slotwise layout diverged at n_agents={n_agents}"
        );
        let (min_secs, min_reps) = if smoke { (0.05, 1) } else { (0.2, 3) };
        let plane_secs = time_reps(
            || {
                std::hint::black_box(sim.run_engine(horizon, &planes));
            },
            min_secs,
            min_reps,
        );
        let slot_secs = time_reps(
            || {
                std::hint::black_box(sim.run_engine(horizon, &slotwise));
            },
            min_secs,
            min_reps,
        );
        (
            slots as f64 / plane_secs,
            slots as f64 / slot_secs,
            slot_secs / plane_secs,
        )
    });

    MultiuserCell {
        n_agents,
        universe,
        k,
        horizon,
        overlapping_pairs: report.first_meeting.len() + report.missed.len(),
        missed_pairs: report.missed.len(),
        pair_slots: slots,
        arena_secs,
        arena_pair_slots_per_sec: slots as f64 / arena_secs,
        per_pair_slots_per_sec: per_pair_secs.map(|s| slots as f64 / s),
        speedup: per_pair_secs.map(|s| s / arena_secs),
        bitplane_pair_slots_per_sec: bitplane.map(|b| b.0),
        slotwise_pair_slots_per_sec: bitplane.map(|b| b.1),
        bitplane_speedup: bitplane.map(|b| b.2),
    }
}

fn multiuser_suite(smoke: bool) -> Suite {
    // Population ladder: universes scale with the population so density
    // stays dense (dozens-to-hundreds of pending pairs per agent). The
    // per-pair baseline is only timed where its quadratic fill bill is
    // affordable; the 10k-agent cell is the CI-smoke-scale completion
    // proof.
    let grid: [(usize, u64, usize, u64, bool); 4] = [
        (64, 64, 8, 1 << 12, true),
        (512, 96, 24, 1 << 12, true),
        (4096, 512, 32, 1 << 11, false),
        (10_000, 1024, 64, 1 << 10, false),
    ];
    let mut cells = Vec::new();
    for (n_agents, universe, k, horizon, with_per_pair) in grid {
        let cell = measure_multiuser(n_agents, universe, k, horizon, with_per_pair, smoke);
        match (cell.per_pair_slots_per_sec, cell.speedup) {
            (Some(pp), Some(sp)) => println!(
                "multiuser n={:<6} pairs={:<8} per-pair={:>12.0} ps/s   arena={:>14.0} ps/s   speedup={:.1}x",
                cell.n_agents, cell.overlapping_pairs, pp, cell.arena_pair_slots_per_sec, sp
            ),
            _ => println!(
                "multiuser n={:<6} pairs={:<8} arena={:>14.0} ps/s   ({:.2}s wall)",
                cell.n_agents, cell.overlapping_pairs, cell.arena_pair_slots_per_sec, cell.arena_secs
            ),
        }
        if let (Some(bp), Some(sw), Some(sp)) = (
            cell.bitplane_pair_slots_per_sec,
            cell.slotwise_pair_slots_per_sec,
            cell.bitplane_speedup,
        ) {
            println!(
                "bitplane  n={:<6} pairs={:<8} slotwise={:>12.0} ps/s   planes={:>13.0} ps/s   speedup={:.1}x",
                cell.n_agents, cell.overlapping_pairs, sw, bp, sp
            );
        }
        cells.push(cell);
    }
    let report = Value::object([
        ("bench", Value::from("multiuser_arena_engine")),
        (
            "workload",
            Value::from(
                "clustered population (contiguous k-channel bands), GeneralSchedule (Thm 3), staggered wakes",
            ),
        ),
        (
            "unit",
            Value::from("pair-slots resolved per second (per pair: later wake to first meeting or horizon)"),
        ),
        (
            "scenarios",
            Value::Array(
                cells
                    .iter()
                    .map(|c| {
                        Value::object([
                            ("n_agents", Value::from(c.n_agents)),
                            ("universe", Value::from(c.universe)),
                            ("k", Value::from(c.k)),
                            ("horizon", Value::from(c.horizon)),
                            ("overlapping_pairs", Value::from(c.overlapping_pairs)),
                            ("missed_pairs", Value::from(c.missed_pairs)),
                            ("pair_slots", Value::from(c.pair_slots)),
                            ("arena_secs", Value::from(c.arena_secs)),
                            (
                                "arena_pair_slots_per_sec",
                                Value::from(c.arena_pair_slots_per_sec),
                            ),
                            (
                                "per_pair_slots_per_sec",
                                c.per_pair_slots_per_sec.map(Value::from).unwrap_or(Value::Null),
                            ),
                            ("speedup", c.speedup.map(Value::from).unwrap_or(Value::Null)),
                            (
                                "bitplane_pair_slots_per_sec",
                                c.bitplane_pair_slots_per_sec
                                    .map(Value::from)
                                    .unwrap_or(Value::Null),
                            ),
                            (
                                "slotwise_pair_slots_per_sec",
                                c.slotwise_pair_slots_per_sec
                                    .map(Value::from)
                                    .unwrap_or(Value::Null),
                            ),
                            (
                                "bitplane_speedup",
                                c.bitplane_speedup.map(Value::from).unwrap_or(Value::Null),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Suite {
        bench: "multiuser_arena_engine",
        file: "BENCH_multiuser.json",
        key_label: "n_agents",
        gate_points: cells
            .iter()
            .map(|c| (c.n_agents as u64, c.arena_pair_slots_per_sec))
            .collect(),
        report,
    }
}

// ------------------------------------------------------------------ tree

/// Worker threads of the tree suite — fixed (not auto-detected) so the
/// committed report is comparable across machines, and matching the
/// acceptance bar the suite gates ("speedup at 8 threads").
const TREE_THREADS: usize = 8;

/// The whole-grid orchestration suite: the smoke-tier `table1` measurement
/// grid (the same cells, in the same order, as the artifact pipeline)
/// swept twice at [`TREE_THREADS`] requested workers — once as the former
/// **sequential outer loop**, one per-cell pool submission per cell, and
/// once as **one task-tree submission** where every cell is a parent and
/// all cells' chunk children steal from one shared pool. The two drivers
/// are asserted bit-identical before anything is timed; the gated number
/// is their wall-clock ratio.
fn tree_suite(smoke: bool) -> Suite {
    let cells = pipelines::table1_cells(Tier::Smoke, TREE_THREADS);
    let parallel = ParallelConfig::with_threads(TREE_THREADS);

    let sequential = |cells: &[SweepCell]| -> Vec<PairSweep> {
        cells
            .iter()
            .map(|c| {
                sweep_pair_ttr(c.algorithm, c.n, &c.scenario, &c.cfg)
                    .expect("smoke grid cells sweep")
            })
            .collect()
    };
    let tree = |cells: &[SweepCell]| -> Vec<PairSweep> {
        sweep_pair_grid(cells.to_vec(), &parallel)
            .into_iter()
            .map(|r| r.expect("smoke grid cells sweep"))
            .collect()
    };
    let seq_sweeps = sequential(&cells);
    let tree_sweeps = tree(&cells);
    assert_eq!(seq_sweeps.len(), tree_sweeps.len());
    for (s, t) in seq_sweeps.iter().zip(&tree_sweeps) {
        assert_eq!(
            serde_json::to_string(&s.to_json()),
            serde_json::to_string(&t.to_json()),
            "tree and sequential-outer-loop grids diverged"
        );
    }

    // The gated quantity is a ratio of two ~tens-of-ms measurements, so
    // give it a longer budget than the throughput suites even at the
    // smoke tier — one extra second buys a stable gate on noisy shared
    // runners.
    let (min_secs, min_reps) = if smoke { (0.5, 8) } else { (1.5, 15) };
    let seq_secs = time_reps(
        || {
            std::hint::black_box(sequential(&cells));
        },
        min_secs,
        min_reps,
    );
    let tree_secs = time_reps(
        || {
            std::hint::black_box(tree(&cells));
        },
        min_secs,
        min_reps,
    );
    let speedup = seq_secs / tree_secs;
    let n_cells = cells.len() as u64;
    println!(
        "tree      cells={:<6} seq={:>9.1} ms/grid   tree={:>9.1} ms/grid   speedup={speedup:.1}x",
        n_cells,
        seq_secs * 1e3,
        tree_secs * 1e3
    );
    let report = Value::object([
        ("bench", Value::from("task_tree_grid")),
        (
            "workload",
            Value::from(
                "smoke-tier table1 measurement grid (8 algorithms × sync/async × sym/asym × n \
                 ladder), 8 requested worker threads",
            ),
        ),
        (
            "unit",
            Value::from("grid cells swept per second (whole-grid wall clock)"),
        ),
        // The measured ratio is hardware-dependent: the tree's wall-clock
        // win comes from cross-cell stealing, so single-core hosts only
        // see the spawn-amortization floor. `host_threads` records what
        // the machine could actually overlap.
        (
            "host_threads",
            Value::from(
                std::thread::available_parallelism()
                    .map(|v| v.get())
                    .unwrap_or(1),
            ),
        ),
        (
            "scenarios",
            Value::Array(vec![Value::object([
                ("cells", Value::from(n_cells)),
                ("threads", Value::from(TREE_THREADS)),
                ("seq_secs", Value::from(seq_secs)),
                ("tree_secs", Value::from(tree_secs)),
                ("seq_cells_per_sec", Value::from(n_cells as f64 / seq_secs)),
                (
                    "tree_cells_per_sec",
                    Value::from(n_cells as f64 / tree_secs),
                ),
                ("speedup", Value::from(speedup)),
            ])]),
        ),
    ]);
    Suite {
        bench: "task_tree_grid",
        file: "BENCH_tree.json",
        key_label: "cells",
        gate_points: vec![(n_cells, n_cells as f64 / tree_secs)],
        report,
    }
}

// ---------------------------------------------------------------- faults

struct FaultsCell {
    n_agents: usize,
    universe: u64,
    k: usize,
    horizon: u64,
    overlapping_pairs: usize,
    missed_pairs: usize,
    pair_slots: u64,
    acs_pair_slots_per_sec: f64,
    oblivious_pair_slots_per_sec: f64,
    acs_worst_ttr: u64,
    oblivious_worst_ttr: u64,
}

/// Worst faulted TTR among the pairs that met — the quality side of the
/// speed/TTR trade the faults suite records.
fn worst_ttr(sim: &Simulation, report: &MeetingReport) -> u64 {
    report
        .first_meeting
        .iter()
        .filter_map(|((i, j), _)| report.ttr(i, j, sim.agents()))
        .max()
        .unwrap_or(0)
}

fn measure_faults(
    n_agents: usize,
    universe: u64,
    k: usize,
    horizon: u64,
    smoke: bool,
) -> FaultsCell {
    // The committed `light` profile on a fixed seed: the same faulted grid
    // the repro pipeline sweeps, sized up for throughput timing. The
    // availability-aware population senses the plan (it is threaded into
    // every `AgentCtx`); the oblivious twin hops blind and only the
    // engine's meeting test sees the outage masks.
    let profile = *FaultProfile::named("light").expect("light profile is committed");
    let plan = profile.plan(11, horizon);
    let faulted = EngineConfig {
        faults: Some(plan),
        ..EngineConfig::default()
    };

    let acs_sim = Simulation::new(workload::clustered_agents_with_faults(
        Algorithm::AcsHopping,
        universe,
        k,
        n_agents,
        11,
        256,
        Some(plan),
    ));
    let acs_report = acs_sim.run_engine(horizon, &faulted);
    let oblivious_sim = Simulation::new(workload::clustered_agents(
        Algorithm::Ours,
        universe,
        k,
        n_agents,
        11,
        256,
    ));
    let oblivious_report = oblivious_sim.run_engine(horizon, &faulted);

    let slots = pair_slots(&acs_sim, &acs_report);
    let oblivious_slots = pair_slots(&oblivious_sim, &oblivious_report);
    let (min_secs, min_reps) = if smoke { (0.05, 1) } else { (0.2, 3) };
    let acs_secs = time_reps(
        || {
            std::hint::black_box(acs_sim.run_engine(horizon, &faulted));
        },
        min_secs,
        min_reps,
    );
    let oblivious_secs = time_reps(
        || {
            std::hint::black_box(oblivious_sim.run_engine(horizon, &faulted));
        },
        min_secs,
        min_reps,
    );

    FaultsCell {
        n_agents,
        universe,
        k,
        horizon,
        overlapping_pairs: acs_report.first_meeting.len() + acs_report.missed.len(),
        missed_pairs: acs_report.missed.len(),
        pair_slots: slots,
        acs_pair_slots_per_sec: slots as f64 / acs_secs,
        oblivious_pair_slots_per_sec: oblivious_slots as f64 / oblivious_secs,
        acs_worst_ttr: worst_ttr(&acs_sim, &acs_report),
        oblivious_worst_ttr: worst_ttr(&oblivious_sim, &oblivious_report),
    }
}

fn faults_suite(smoke: bool) -> Suite {
    let grid: [(usize, u64, usize, u64); 3] = [
        (64, 64, 8, 1 << 12),
        (512, 96, 24, 1 << 12),
        (2048, 256, 32, 1 << 11),
    ];
    let mut cells = Vec::new();
    for (n_agents, universe, k, horizon) in grid {
        let cell = measure_faults(n_agents, universe, k, horizon, smoke);
        println!(
            "faults    n={:<6} pairs={:<8} acs={:>14.0} ps/s   oblivious={:>13.0} ps/s   worstTTR acs={} vs obl={}",
            cell.n_agents,
            cell.overlapping_pairs,
            cell.acs_pair_slots_per_sec,
            cell.oblivious_pair_slots_per_sec,
            cell.acs_worst_ttr,
            cell.oblivious_worst_ttr
        );
        cells.push(cell);
    }
    let report = Value::object([
        ("bench", Value::from("faults_acs_engine")),
        (
            "workload",
            Value::from(
                "clustered population on the faulted grid (light profile: epoch 64, outage 50‰, \
                 churn 150‰), ACS-hopping sensed-projection vs oblivious GeneralSchedule (Thm 3) \
                 under the same plan",
            ),
        ),
        (
            "unit",
            Value::from(
                "pair-slots resolved per second (per pair: later wake to first meeting or horizon)",
            ),
        ),
        ("profile", Value::from("light")),
        (
            "scenarios",
            Value::Array(
                cells
                    .iter()
                    .map(|c| {
                        Value::object([
                            ("n_agents", Value::from(c.n_agents)),
                            ("universe", Value::from(c.universe)),
                            ("k", Value::from(c.k)),
                            ("horizon", Value::from(c.horizon)),
                            ("overlapping_pairs", Value::from(c.overlapping_pairs)),
                            ("missed_pairs", Value::from(c.missed_pairs)),
                            ("pair_slots", Value::from(c.pair_slots)),
                            (
                                "acs_pair_slots_per_sec",
                                Value::from(c.acs_pair_slots_per_sec),
                            ),
                            (
                                "oblivious_pair_slots_per_sec",
                                Value::from(c.oblivious_pair_slots_per_sec),
                            ),
                            ("acs_worst_ttr", Value::from(c.acs_worst_ttr)),
                            ("oblivious_worst_ttr", Value::from(c.oblivious_worst_ttr)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Suite {
        bench: "faults_acs_engine",
        file: "BENCH_faults.json",
        key_label: "n_agents",
        gate_points: cells
            .iter()
            .map(|c| (c.n_agents as u64, c.acs_pair_slots_per_sec))
            .collect(),
        report,
    }
}

// ------------------------------------------------------------------ gate

/// Parses a baseline report into its `bench` id and `(key, throughput)`
/// gate points, where the key column and throughput column are inferred
/// from the `bench` id.
fn baseline_points(path: &str) -> (String, Vec<(u64, f64)>) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    let doc: Value = serde_json::from_str(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"));
    let bench = doc
        .get("bench")
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("{path}: no bench id"))
        .to_string();
    let (key, rate) = history::bench_gate_columns(&bench);
    let points = doc
        .get("scenarios")
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("{path}: no scenarios array"))
        .iter()
        .map(|s| {
            let k = s
                .get(key)
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("{path}: scenario without {key}"));
            let r = s
                .get(rate)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("{path}: scenario without {rate}"));
            (k, r)
        })
        .collect();
    (bench, points)
}

/// Diffs a fresh suite against its baseline points; returns the
/// regressions beyond `max_regression_pct`.
fn diff_against_baseline(
    suite: &Suite,
    baseline: &[(u64, f64)],
    max_regression_pct: f64,
) -> Vec<String> {
    let mut regressions = Vec::new();
    println!();
    println!(
        "[{}] {:<10}{:>16}{:>16}{:>10}",
        suite.bench, suite.key_label, "baseline", "current", "delta"
    );
    for &(key, current) in &suite.gate_points {
        let Some(&(_, base)) = baseline.iter().find(|&&(k, _)| k == key) else {
            println!("{:<10}{:>16}{:>16.0}{:>10}", key, "-", current, "new");
            continue;
        };
        let delta_pct = (current / base - 1.0) * 100.0;
        println!("{key:<10}{base:>16.0}{current:>16.0}{delta_pct:>9.1}%");
        if delta_pct < -max_regression_pct {
            regressions.push(format!(
                "{} at {}={}: {:.0} vs baseline {:.0} ({:+.1}%, tolerance -{}%)",
                suite.bench, suite.key_label, key, current, base, delta_pct, max_regression_pct
            ));
        }
    }
    regressions
}

/// The dense-population arena-vs-per-pair speedups of a multiuser suite,
/// for the optional `--min-arena-speedup` gate. Only cells above the
/// engine's own bucket crossover (`rdv_sim::engine::BUCKET_CROSSOVER`
/// pending pairs per agent) are gated — below it the arena engine
/// intentionally trades its fill sharing away and sparse cells document
/// the crossover instead.
fn arena_speedups(suite: &Suite) -> Vec<(u64, f64)> {
    let Some(scenarios) = suite.report.get("scenarios").and_then(Value::as_array) else {
        return Vec::new();
    };
    scenarios
        .iter()
        .filter_map(|s| {
            let n = s.get("n_agents").and_then(Value::as_u64)?;
            let pairs = s.get("overlapping_pairs").and_then(Value::as_u64)?;
            let sp = s.get("speedup").and_then(Value::as_f64)?;
            (pairs >= rdv_sim::engine::BUCKET_CROSSOVER as u64 * n).then_some((n, sp))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // A present flag with a missing (or flag-shaped) value, and any
    // argument that is not a recognized flag, is a hard error: silently
    // ignoring either would turn the CI perf gate into a no-op (e.g. a
    // typoed `--min-arena-speed` would drop the speedup floor with a
    // green exit).
    const VALUE_FLAGS: [&str; 8] = [
        "--baseline",
        "--max-regression-pct",
        "--min-arena-speedup",
        "--min-tree-speedup",
        "--min-bitplane-speedup",
        "--suite",
        "--out-dir",
        "--history",
    ];
    let mut expect_value = false;
    for arg in &args {
        if std::mem::take(&mut expect_value) {
            continue;
        }
        if VALUE_FLAGS.contains(&arg.as_str()) {
            expect_value = true;
        } else if arg != "--smoke" {
            panic!("unrecognized argument {arg} (see the module docs for the flag list)");
        }
    }
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .map(|i| match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => panic!("{name} requires a value"),
            })
    };
    let baseline_paths: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|&(_, a)| a == "--baseline")
        .map(|(i, _)| match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => v.clone(),
            _ => panic!("--baseline requires a value"),
        })
        .collect();
    let max_regression_pct: f64 = flag_value("--max-regression-pct")
        .map(|v| v.parse().expect("--max-regression-pct takes a number"))
        .unwrap_or(30.0);
    let mut min_arena_speedup: Option<f64> = flag_value("--min-arena-speedup")
        .map(|v| v.parse().expect("--min-arena-speedup takes a number"));
    let mut min_tree_speedup: Option<f64> = flag_value("--min-tree-speedup")
        .map(|v| v.parse().expect("--min-tree-speedup takes a number"));
    let mut min_bitplane_speedup: Option<f64> = flag_value("--min-bitplane-speedup")
        .map(|v| v.parse().expect("--min-bitplane-speedup takes a number"));
    let history_path: Option<String> = flag_value("--history");
    // Single-core honesty: a 1-hardware-thread host cannot overlap work,
    // so parallel-vs-sequential speedup ratios only measure the
    // spawn-amortization floor — not the quantity the floors gate. Skip
    // those gates loudly rather than fail (or trivially pass) them on a
    // number that means something else.
    let host_threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    if host_threads == 1 {
        if min_arena_speedup.take().is_some() {
            println!(
                "skipping --min-arena-speedup gate: host_threads == 1, the arena-vs-per-pair \
                 ratio would measure the spawn-amortization floor, not parallel speedup"
            );
        }
        if min_tree_speedup.take().is_some() {
            println!(
                "skipping --min-tree-speedup gate: host_threads == 1, the tree-vs-sequential \
                 ratio would measure the spawn-amortization floor, not parallel speedup \
                 (see the committed BENCH_tree.json: host_threads 1, speedup ~1.07)"
            );
        }
        if min_bitplane_speedup.take().is_some() {
            println!(
                "skipping --min-bitplane-speedup gate: host_threads == 1, the floor is \
                 calibrated for multi-core CI where the parallel fill/resolve pipeline runs; \
                 the committed BENCH_multiuser.json records the single-core honest floor"
            );
        }
    }
    let suite_filter = flag_value("--suite").unwrap_or_else(|| "all".to_string());
    let out_dir = flag_value("--out-dir").unwrap_or_else(|| ".".to_string());
    let smoke = args.iter().any(|a| a == "--smoke");

    let mut suites = Vec::new();
    if suite_filter == "kernel" || suite_filter == "all" {
        suites.push(kernel_suite(smoke));
    }
    if suite_filter == "multiuser" || suite_filter == "all" {
        suites.push(multiuser_suite(smoke));
    }
    if suite_filter == "tree" || suite_filter == "all" {
        suites.push(tree_suite(smoke));
    }
    if suite_filter == "faults" || suite_filter == "all" {
        suites.push(faults_suite(smoke));
    }
    if suites.is_empty() {
        panic!("--suite takes kernel, multiuser, tree, faults, or all (got {suite_filter})");
    }

    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| panic!("creating {out_dir}: {e}"));
    for suite in &suites {
        let path = format!("{}/{}", out_dir.trim_end_matches('/'), suite.file);
        // Atomic commit: a crash mid-write must never leave a partial
        // BENCH_*.json for CI's bit-for-bit diff to trip over.
        let bytes = serde_json::to_string_pretty(&suite.report) + "\n";
        blind_rendezvous::checkpoint::commit_bytes(std::path::Path::new(&path), bytes.as_bytes())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path}");
    }

    // Append every measured suite to the perf-trend ledger (one JSONL
    // line per suite) before any gate can exit — a regressing run is
    // exactly the generation the trajectory must record.
    if let Some(ledger) = &history_path {
        let ledger = std::path::Path::new(ledger);
        let (commit, utc) = history::writer_context();
        let host = HostFingerprint::detect();
        let tier = if smoke { "smoke" } else { "full" };
        for suite in &suites {
            let entry = history::entry_from_bench(&suite.report, tier, &commit, &host, &utc)
                .unwrap_or_else(|e| panic!("history: suite {}: {e}", suite.bench));
            history::append(ledger, &entry)
                .unwrap_or_else(|e| panic!("history: appending to {}: {e}", ledger.display()));
            println!(
                "appended {} generation ({} points) to {}",
                suite.bench,
                entry.rows.len(),
                ledger.display()
            );
            // The bit-plane kernel rows ride along as their own bench id
            // so the ledger (and the dashboard it feeds) tracks the
            // kernel's throughput separately from the auto-mode arena.
            if suite.bench != "multiuser_arena_engine" {
                continue;
            }
            let kernel_rows: Vec<Value> = suite
                .report
                .get("scenarios")
                .and_then(Value::as_array)
                .map(|scenarios| {
                    scenarios
                        .iter()
                        .filter(|s| {
                            s.get("bitplane_pair_slots_per_sec")
                                .and_then(Value::as_f64)
                                .is_some()
                        })
                        .cloned()
                        .collect()
                })
                .unwrap_or_default();
            if kernel_rows.is_empty() {
                continue;
            }
            let n_rows = kernel_rows.len();
            let kernel_report = Value::object([
                ("bench", Value::from("multiuser_bitplane_kernel")),
                ("scenarios", Value::Array(kernel_rows)),
            ]);
            let entry = history::entry_from_bench(&kernel_report, tier, &commit, &host, &utc)
                .unwrap_or_else(|e| panic!("history: suite multiuser_bitplane_kernel: {e}"));
            history::append(ledger, &entry)
                .unwrap_or_else(|e| panic!("history: appending to {}: {e}", ledger.display()));
            println!(
                "appended multiuser_bitplane_kernel generation ({n_rows} points) to {}",
                ledger.display()
            );
        }
    }

    let mut failures: Vec<String> = Vec::new();
    for path in &baseline_paths {
        let (bench, points) = baseline_points(path);
        let Some(suite) = suites.iter().find(|s| s.bench == bench) else {
            panic!("baseline {path} gates suite {bench}, which was not measured (see --suite)");
        };
        failures.extend(diff_against_baseline(suite, &points, max_regression_pct));
    }
    if let Some(min) = min_arena_speedup {
        for suite in suites
            .iter()
            .filter(|s| s.bench == "multiuser_arena_engine")
        {
            for (n_agents, speedup) in arena_speedups(suite) {
                println!("arena speedup at n_agents={n_agents}: {speedup:.1}x (floor {min}x)");
                if speedup < min {
                    failures.push(format!(
                        "arena speedup {speedup:.1}x at n_agents={n_agents} below the {min}x floor"
                    ));
                }
            }
        }
    }
    if let Some(min) = min_bitplane_speedup {
        for suite in suites
            .iter()
            .filter(|s| s.bench == "multiuser_arena_engine")
        {
            let scenarios = suite
                .report
                .get("scenarios")
                .and_then(Value::as_array)
                .expect("multiuser suite has scenarios");
            for sc in scenarios {
                let Some(speedup) = sc.get("bitplane_speedup").and_then(Value::as_f64) else {
                    continue; // large cells don't time the slotwise twin
                };
                let n_agents = sc.get("n_agents").and_then(Value::as_u64).unwrap_or(0);
                let pairs = sc
                    .get("overlapping_pairs")
                    .and_then(Value::as_u64)
                    .unwrap_or(0);
                // Same density cut as the arena gate: below the bucket
                // crossover the resolve loop isn't the bill being paid,
                // so sparse cells document the ratio instead of gating it.
                if pairs < rdv_sim::engine::BUCKET_CROSSOVER as u64 * n_agents {
                    continue;
                }
                println!("bitplane speedup at n_agents={n_agents}: {speedup:.1}x (floor {min}x)");
                if speedup < min {
                    failures.push(format!(
                        "bit-plane kernel speedup {speedup:.1}x at n_agents={n_agents} below \
                         the {min}x floor"
                    ));
                }
            }
        }
    }
    if let Some(min) = min_tree_speedup {
        for suite in suites.iter().filter(|s| s.bench == "task_tree_grid") {
            let scenarios = suite
                .report
                .get("scenarios")
                .and_then(Value::as_array)
                .expect("tree suite has scenarios");
            for sc in scenarios {
                let cells = sc.get("cells").and_then(Value::as_u64).unwrap_or(0);
                let speedup = sc
                    .get("speedup")
                    .and_then(Value::as_f64)
                    .expect("tree scenario has speedup");
                println!("tree speedup over {cells} cells: {speedup:.1}x (floor {min}x)");
                if speedup < min {
                    failures.push(format!(
                        "task-tree grid speedup {speedup:.1}x over the sequential outer loop \
                         below the {min}x floor"
                    ));
                }
            }
        }
    }
    if failures.is_empty() {
        if !baseline_paths.is_empty() {
            println!(
                "perf gate: within {max_regression_pct}% of {}",
                baseline_paths.join(", ")
            );
        }
    } else {
        for f in &failures {
            eprintln!("PERF REGRESSION: {f}");
        }
        std::process::exit(1);
    }
}
