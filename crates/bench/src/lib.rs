//! Shared helpers for the criterion benches.
//!
//! The benches mirror the experiment index of DESIGN.md: each bench target
//! regenerates (a timed version of) one table or figure, and `ablations`
//! covers the design-choice studies DESIGN.md calls out. The slot-count
//! tables themselves are produced by the `repro` binary; the benches
//! measure the *computational* cost of generating and evaluating schedules,
//! which is what a downstream adopter of the library pays at runtime.
//!
//! Schedule **construction** and TTR **evaluation** are separate costs with
//! very different shapes (construction is dominated by codeword/coloring
//! setup, evaluation by the sweep kernels), so the helpers keep them apart:
//! [`build`] / [`prepare_pair`] construct, [`eval_ttr`] evaluates a
//! pre-built pair, and [`measure_ttr`] composes both for end-to-end cost.
//! Timed bench closures should call [`eval_ttr`] on a pair prepared
//! *outside* the measurement loop unless they are explicitly measuring
//! construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rdv_core::channel::ChannelSet;
use rdv_sim::algo::{AgentCtx, Algorithm, DynSchedule};
use rdv_sim::workload::PairScenario;

/// The standard adversarial scenario used across benches.
pub fn scenario(n: u64, k: usize) -> PairScenario {
    rdv_sim::workload::adversarial_overlap_one(n, k, k).expect("parameters fit")
}

/// Builds a schedule for benching, panicking on invalid parameters.
pub fn build(algo: Algorithm, n: u64, set: &ChannelSet) -> DynSchedule {
    algo.make(n, set, &AgentCtx::default())
        .unwrap_or_else(|| panic!("{algo} failed to instantiate at n={n}"))
}

/// A pre-built schedule pair plus its rendezvous horizon — the input of
/// [`eval_ttr`], constructed once outside any timed closure.
pub struct PreparedPair {
    /// Agent A's schedule.
    pub sa: DynSchedule,
    /// Agent B's schedule.
    pub sb: DynSchedule,
    /// The algorithm's guarantee horizon for the scenario.
    pub horizon: u64,
}

/// Builds both schedules of a scenario once, for repeated evaluation.
pub fn prepare_pair(algo: Algorithm, n: u64, sc: &PairScenario) -> PreparedPair {
    PreparedPair {
        sa: build(algo, n, &sc.a),
        sb: build(algo, n, &sc.b),
        horizon: algo.horizon(n, sc.a.len(), sc.b.len()),
    }
}

/// Evaluates one asynchronous TTR on a pre-built pair — pure kernel cost,
/// no construction inside. Returns the horizon if the pair never meets.
pub fn eval_ttr(pair: &PreparedPair, shift: u64) -> u64 {
    rdv_core::verify::async_ttr(&pair.sa, &pair.sb, shift, pair.horizon).unwrap_or(pair.horizon)
}

/// Measures one asynchronous TTR **end-to-end**: schedule construction plus
/// evaluation. Kept for benches that deliberately track the combined cost;
/// use [`prepare_pair`] + [`eval_ttr`] to time evaluation alone.
pub fn measure_ttr(algo: Algorithm, n: u64, sc: &PairScenario, shift: u64) -> u64 {
    eval_ttr(&prepare_pair(algo, n, sc), shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_work() {
        let sc = scenario(16, 3);
        let s = build(Algorithm::Ours, 16, &sc.a);
        assert!(sc.a.contains(s.channel_at(0).get()));
        assert!(measure_ttr(Algorithm::Ours, 16, &sc, 7) < 10_000);
    }

    #[test]
    fn split_build_and_eval_agree_with_composed() {
        let sc = scenario(16, 3);
        let pair = prepare_pair(Algorithm::Ours, 16, &sc);
        for shift in [0u64, 7, 97] {
            assert_eq!(
                eval_ttr(&pair, shift),
                measure_ttr(Algorithm::Ours, 16, &sc, shift)
            );
        }
    }
}
