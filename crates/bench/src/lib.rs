//! Shared helpers for the criterion benches.
//!
//! The benches mirror the experiment index of DESIGN.md: each bench target
//! regenerates (a timed version of) one table or figure, and `ablations`
//! covers the design-choice studies DESIGN.md calls out. The slot-count
//! tables themselves are produced by the `repro` binary; the benches
//! measure the *computational* cost of generating and evaluating schedules,
//! which is what a downstream adopter of the library pays at runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rdv_core::channel::ChannelSet;
use rdv_sim::algo::{AgentCtx, Algorithm, DynSchedule};
use rdv_sim::workload::PairScenario;

/// The standard adversarial scenario used across benches.
pub fn scenario(n: u64, k: usize) -> PairScenario {
    rdv_sim::workload::adversarial_overlap_one(n, k, k).expect("parameters fit")
}

/// Builds a schedule for benching, panicking on invalid parameters.
pub fn build(algo: Algorithm, n: u64, set: &ChannelSet) -> DynSchedule {
    algo.make(n, set, &AgentCtx::default())
        .unwrap_or_else(|| panic!("{algo} failed to instantiate at n={n}"))
}

/// Measures one asynchronous TTR, panicking if the horizon is missed.
pub fn measure_ttr(algo: Algorithm, n: u64, sc: &PairScenario, shift: u64) -> u64 {
    let sa = build(algo, n, &sc.a);
    let sb = build(algo, n, &sc.b);
    let horizon = algo.horizon(n, sc.a.len(), sc.b.len());
    rdv_core::verify::async_ttr(&sa, &sb, shift, horizon)
        .unwrap_or(horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_work() {
        let sc = scenario(16, 3);
        let s = build(Algorithm::Ours, 16, &sc.a);
        assert!(sc.a.contains(s.channel_at(0).get()));
        assert!(measure_ttr(Algorithm::Ours, 16, &sc, 7) < 10_000);
    }
}
