//! The ablation studies DESIGN.md calls out:
//!
//! * **epoch doubling** — the asynchronous epochs play each codeword twice;
//!   the sync variant (single `C`-words) is roughly half the epoch length
//!   but loses the asynchronous guarantee entirely (shown by the
//!   `parity`-style failures in the unit tests); here we quantify the cost.
//! * **lean vs naive sync code** — `01∘x∘¬wt(x)₂` vs `01∘x∘x̄`.
//! * **symmetric wrapper overhead** — 12× expansion vs raw Theorem 3 on
//!   *asymmetric* instances (the price of `O(1)` symmetric rendezvous).
//! * **min-wise independence degree** — hash family degree vs argmin cost.
//! * **SDP rank** — Burer–Monteiro dimension vs solve time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_bench::scenario;
use rdv_core::channel::ChannelSet;
use rdv_core::general::{GeneralSchedule, Mode};
use rdv_core::schedule::Schedule;
use rdv_core::symmetric::SymmetricWrapped;
use rdv_strings::cmap::{naive_encode, CCode};
use rdv_strings::Bits;
use std::hint::black_box;

fn ablate_epoch_doubling(c: &mut Criterion) {
    // Epoch length ratio is structural; the bench tracks evaluation cost of
    // the doubled (async) vs single (sync) epochs.
    let mut group = c.benchmark_group("ablate_epoch_doubling");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(20);
    let set = ChannelSet::new(vec![3, 17, 40, 99]).expect("valid");
    for (label, mode) in [
        ("doubled_async", Mode::Asynchronous),
        ("single_sync", Mode::Synchronous),
    ] {
        let s = GeneralSchedule::with_mode(128, set.clone(), mode).expect("valid");
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for t in 0..512u64 {
                    acc ^= s.channel_at(black_box(t)).get();
                }
                acc
            })
        });
    }
    group.finish();
}

fn ablate_sync_code(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_sync_code");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(30);
    let x = Bits::encode_int(0b1011010, 7);
    let code = CCode::new(7);
    group.bench_function("lean_weight_tagged", |b| {
        b.iter(|| black_box(code.encode(black_box(&x))))
    });
    group.bench_function("naive_complement", |b| {
        b.iter(|| black_box(naive_encode(black_box(&x))))
    });
    // The structural payoff: codeword lengths.
    assert!(code.output_len() < 2 + 2 * 7);
    group.finish();
}

fn ablate_symmetric_wrapper(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_symmetric_wrapper");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(10);
    let n = 64u64;
    let sc = scenario(n, 4);
    let base_a = GeneralSchedule::asynchronous(n, sc.a.clone()).expect("valid");
    let base_b = GeneralSchedule::asynchronous(n, sc.b.clone()).expect("valid");
    let wrapped_a = SymmetricWrapped::new(base_a.clone(), &sc.a);
    let wrapped_b = SymmetricWrapped::new(base_b.clone(), &sc.b);
    group.bench_function("raw_thm3_ttr", |b| {
        b.iter(|| {
            rdv_core::verify::async_ttr(&base_a, &base_b, black_box(17), 1 << 20)
                .expect("guaranteed")
        })
    });
    group.bench_function("wrapped_ttr", |b| {
        b.iter(|| {
            rdv_core::verify::async_ttr(&wrapped_a, &wrapped_b, black_box(17), 1 << 24)
                .expect("guaranteed (12x slower)")
        })
    });
    group.finish();
}

fn ablate_minwise_degree(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_minwise_degree");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(30);
    let set = ChannelSet::new((1..=16u64).collect::<Vec<_>>()).expect("valid");
    for degree in [2usize, 4, 8, 16] {
        let fam = rdv_beacon::MinwiseFamily::new(256, degree);
        group.bench_with_input(BenchmarkId::from_parameter(degree), &fam, |b, fam| {
            b.iter(|| fam.argmin(black_box(999), &set))
        });
    }
    group.finish();
}

fn ablate_sdp_rank(c: &mut Criterion) {
    // Rank is internal (√(2m)+1); we ablate via iteration count, the other
    // knob controlling solution quality.
    let mut group = c.benchmark_group("ablate_sdp_iterations");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(10);
    let g = rdv_sdp::OrientGraph::new(
        8,
        (0..12u32)
            .map(|i| (i % 7, (i % 7 + 1 + i / 7) % 8))
            .collect(),
    )
    .expect("valid");
    for iters in [50usize, 200, 800] {
        let cfg = rdv_sdp::SdpConfig {
            iterations: iters,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(iters), &cfg, |b, cfg| {
            b.iter(|| black_box(rdv_sdp::solve(&g, cfg)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablate_epoch_doubling,
    ablate_sync_code,
    ablate_symmetric_wrapper,
    ablate_minwise_degree,
    ablate_sdp_rank
);
criterion_main!(benches);
