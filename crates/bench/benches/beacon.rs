//! E11/E12 timing: the beacon protocols' per-slot cost (min-wise hashing
//! for A; expander-walk replay for B) and end-to-end TTR measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_beacon::{BeaconProtocolA, BeaconProtocolB, BeaconStream, MinwiseFamily};
use rdv_bench::scenario;
use rdv_core::schedule::Schedule;
use std::hint::black_box;

fn bench_minwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("minwise_argmin");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(30);
    for k in [4usize, 16, 64] {
        let set = rdv_core::channel::ChannelSet::new((1..=k as u64).collect::<Vec<_>>())
            .expect("non-empty");
        let fam = MinwiseFamily::new(1024, 8);
        group.bench_with_input(BenchmarkId::from_parameter(k), &set, |b, set| {
            b.iter(|| fam.argmin(black_box(12345), set))
        });
    }
    group.finish();
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("beacon_slot_eval");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(20);
    let n = 256u64;
    let sc = scenario(n, 8);
    let beacon = BeaconStream::new(7);
    let a = BeaconProtocolA::new(beacon, n, sc.a.clone(), 0);
    let b_proto = BeaconProtocolB::new(beacon, n, sc.a.clone(), 0);
    group.bench_function("protocol_a", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for t in 0..64u64 {
                acc ^= a.channel_at(black_box(t)).get();
            }
            acc
        })
    });
    group.bench_function("protocol_b", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for t in 0..64u64 {
                acc ^= b_proto.channel_at(black_box(t)).get();
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(900)).sample_size(10); targets = bench_minwise, bench_protocols}
criterion_main!(benches);
