//! Timed versions of the Table 1 cells (E1/E2): TTR **evaluation** cost per
//! algorithm at growing universe sizes. Schedules are built once outside
//! the timed closures (`prepare_pair`), so these numbers are pure kernel
//! cost; `construction.rs` tracks build cost separately. Slot-count tables
//! come from `repro table1-asym` / `table1-sym`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_bench::{eval_ttr, prepare_pair, scenario};
use rdv_sim::workload;
use rdv_sim::Algorithm;
use std::hint::black_box;

fn bench_table1_asym(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_asym_cell");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(10);
    for n in [16u64, 64] {
        let sc = scenario(n, 4);
        for algo in Algorithm::TABLE1 {
            let pair = prepare_pair(algo, n, &sc);
            group.bench_with_input(BenchmarkId::new(algo.to_string(), n), &pair, |b, pair| {
                b.iter(|| {
                    let mut worst = 0;
                    for shift in [0u64, 13, 97, 513] {
                        worst = worst.max(eval_ttr(pair, black_box(shift)));
                    }
                    worst
                })
            });
        }
    }
    group.finish();
}

fn bench_table1_sym(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_sym_cell");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(10);
    let n = 64u64;
    let sc = workload::symmetric_pair(n, 4, 7).expect("fits");
    for algo in [
        Algorithm::OursSymmetric,
        Algorithm::Ours,
        Algorithm::JumpStay,
    ] {
        let pair = prepare_pair(algo, n, &sc);
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.to_string()),
            &pair,
            |b, pair| {
                b.iter(|| {
                    let mut worst = 0;
                    for shift in [0u64, 1, 17, 255] {
                        worst = worst.max(eval_ttr(pair, black_box(shift)));
                    }
                    worst
                })
            },
        );
    }
    group.finish();
}

criterion_group! {name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(900)).sample_size(10); targets = bench_table1_asym, bench_table1_sym}
criterion_main!(benches);
