//! Timed versions of the Table 1 cells (E1/E2): full TTR measurements —
//! construction + slot-by-slot evaluation until rendezvous — per algorithm
//! at growing universe sizes. Slot-count tables come from `repro
//! table1-asym` / `table1-sym`; these benches track the wall-clock cost of
//! regenerating a cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_bench::{measure_ttr, scenario};
use rdv_sim::workload;
use rdv_sim::Algorithm;
use std::hint::black_box;

fn bench_table1_asym(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_asym_cell");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(10);
    for n in [16u64, 64] {
        let sc = scenario(n, 4);
        for algo in Algorithm::TABLE1 {
            group.bench_with_input(
                BenchmarkId::new(algo.to_string(), n),
                &n,
                |b, &n| {
                    b.iter(|| {
                        let mut worst = 0;
                        for shift in [0u64, 13, 97, 513] {
                            worst = worst.max(measure_ttr(algo, n, &sc, black_box(shift)));
                        }
                        worst
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_table1_sym(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_sym_cell");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(10);
    let n = 64u64;
    let sc = workload::symmetric_pair(n, 4, 7).expect("fits");
    for algo in [Algorithm::OursSymmetric, Algorithm::Ours, Algorithm::JumpStay] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.to_string()),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut worst = 0;
                    for shift in [0u64, 1, 17, 255] {
                        worst = worst.max(measure_ttr(algo, n, &sc, black_box(shift)));
                    }
                    worst
                })
            },
        );
    }
    group.finish();
}

criterion_group!{name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(900)).sample_size(10); targets = bench_table1_asym, bench_table1_sym}
criterion_main!(benches);
