//! Whole-grid nested-sweep orchestration: a scenario grid swept as the
//! former sequential outer loop (one per-cell pool submission per cell)
//! vs as **one task-tree submission** (`rdv_sim::sweep_pair_grid`), at
//! 1, 2, and 8 worker threads, plus the raw `pool::run_tree` scheduling
//! overhead on no-op tasks.
//!
//! On a single-core runner the tree's only win is amortizing per-cell
//! pool spawns; with real cores it additionally overlaps cells, so a slow
//! cell no longer serializes the grid (the `BENCH_tree.json` gate in
//! `bench_report --suite tree` tracks that whole-grid ratio across PRs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_sim::pool::{self, ParallelConfig, TreePath};
use rdv_sim::sweep::{sweep_pair_grid, sweep_pair_ttr, SweepCell, SweepConfig};
use rdv_sim::{workload, Algorithm};
use std::hint::black_box;

/// A small but uneven scenario grid: deterministic, randomized, and
/// wake-sensitive algorithms across two universe sizes and both timing
/// models — the shape of the artifact pipelines' outer loops.
fn grid(threads: usize) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for algo in [
        Algorithm::Ours,
        Algorithm::Crseq,
        Algorithm::JumpStay,
        Algorithm::Random,
        Algorithm::BeaconB,
    ] {
        for n in [16u64, 32] {
            let scenario = workload::adversarial_overlap_one(n, 4, 4).expect("fits");
            for sync in [true, false] {
                cells.push(SweepCell {
                    algorithm: algo,
                    n,
                    scenario: scenario.clone(),
                    cfg: SweepConfig {
                        shifts: if sync { 1 } else { 16 },
                        shift_stride: 13,
                        spread_over_period: !sync,
                        seeds: 3,
                        horizon_override: 0,
                        threads,
                    },
                });
            }
        }
    }
    cells
}

fn bench_grid_drivers(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_tree_grid");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(10);
    for threads in [1usize, 2, 8] {
        let cells = grid(threads);
        group.bench_with_input(
            BenchmarkId::new("sequential_outer_loop", threads),
            &cells,
            |b, cells| {
                b.iter(|| {
                    for cell in cells {
                        black_box(
                            sweep_pair_ttr(cell.algorithm, cell.n, &cell.scenario, &cell.cfg)
                                .expect("cell sweeps"),
                        );
                    }
                })
            },
        );
        let parallel = ParallelConfig::with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("one_tree_submission", threads),
            &cells,
            |b, cells| b.iter(|| black_box(sweep_pair_grid(cells.to_vec(), &parallel))),
        );
    }
    group.finish();
}

fn bench_tree_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_tree_overhead");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(10);
    // 64 parents × 8 no-op children: pure scheduling cost of the tree —
    // expansion, child injection, pending-count upkeep, path-ordered
    // merge.
    for threads in [1usize, 8] {
        let parallel = ParallelConfig::with_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("noop_64x8", threads),
            &parallel,
            |b, parallel| {
                b.iter(|| {
                    black_box(pool::run_tree(
                        (0..64u64).collect::<Vec<_>>(),
                        parallel,
                        |_, p| (p, vec![p; 8]),
                        |path: TreePath, c: u64| c ^ path.stream_seed(7),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grid_drivers, bench_tree_overhead);
criterion_main!(benches);
