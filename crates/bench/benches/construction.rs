//! Schedule-construction cost per algorithm and universe size.
//!
//! Downstream relevance: an agent builds its schedule once per spectrum
//! scan; the paper's construction must stay cheap even for enormous `n`
//! (its state is the Ramsey color table, `O(log n)` codewords).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_bench::{build, scenario};
use rdv_core::pair::PairFamily;
use rdv_sim::Algorithm;
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(20);
    for n in [64u64, 1024, 1 << 20] {
        let sc = scenario(n, 4);
        for algo in [
            Algorithm::Ours,
            Algorithm::Crseq,
            Algorithm::JumpStay,
            Algorithm::Drds,
        ] {
            group.bench_with_input(BenchmarkId::new(algo.to_string(), n), &n, |b, &n| {
                b.iter(|| black_box(build(algo, n, &sc.a)))
            });
        }
    }
    group.finish();
}

fn bench_pair_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("pair_family_new");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(20);
    for n in [16u64, 1 << 16, 1 << 40, 1 << 62] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(PairFamily::new(n).expect("n ≥ 2")))
        });
    }
    group.finish();
}

criterion_group! {name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(900)).sample_size(10); targets = bench_construction, bench_pair_family}
criterion_main!(benches);
