//! The shared-arena multi-user engine over clustered populations, at
//! population sizes `n_agents ∈ {64, 512, 4096}`.
//!
//! Measures the arena engine in both resolution modes against the seed
//! per-pair engine (`run_per_pair_reference`), which re-fills each
//! agent's schedule once per pair per block. On dense populations —
//! hundreds of pending pairs per agent — the arena's fill-once phases
//! plus the bucket scan should win by an order of magnitude or more; the
//! committed `BENCH_multiuser.json` (see `bench_report`) tracks the exact
//! speedup over PRs. The per-pair baseline is only timed at the smaller
//! sizes (it is the quadratic cost the arena removes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_sim::engine::{EngineConfig, PlanePolicy, ResolveMode, Simulation};
use rdv_sim::{workload, Algorithm, ParallelConfig};
use std::hint::black_box;

/// Population scaled with its universe so density (pending pairs per
/// agent) stays in the regime the size is meant to exercise.
fn sim_at(n_agents: usize) -> (Simulation, u64) {
    let (universe, k, horizon) = match n_agents {
        64 => (64, 8, 1 << 12),
        512 => (128, 16, 1 << 12),
        _ => (512, 32, 1 << 11),
    };
    let agents = workload::clustered_agents(Algorithm::Ours, universe, k, n_agents, 11, 256);
    (Simulation::new(agents), horizon)
}

fn bench_arena_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiuser_arena");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.sample_size(10);
    for n_agents in [64usize, 512, 4096] {
        let (sim, horizon) = sim_at(n_agents);
        for (name, mode) in [
            ("auto", ResolveMode::Auto),
            ("pair_major", ResolveMode::PairMajor),
            ("bucket", ResolveMode::BucketScan),
        ] {
            // Forced modes only at the density where the choice matters;
            // auto everywhere.
            if name != "auto" && n_agents != 512 {
                continue;
            }
            let cfg = EngineConfig {
                parallel: ParallelConfig::with_threads(0),
                mode,
                plane: PlanePolicy::Auto,
                faults: None,
            };
            group.bench_with_input(BenchmarkId::new(name, n_agents), &cfg, |b, cfg| {
                b.iter(|| black_box(sim.run_engine(horizon, cfg)))
            });
        }
        // The bit-plane pair kernel against its slotwise baseline, both
        // forced pair-major so the comparison isolates the row layout —
        // the criterion twin of the `bitplane_speedup` column in the
        // committed BENCH_multiuser.json.
        if n_agents == 512 {
            for (name, plane) in [
                ("pair_major_bitplane", PlanePolicy::Auto),
                ("pair_major_slotwise", PlanePolicy::Slotwise),
            ] {
                let cfg = EngineConfig {
                    parallel: ParallelConfig::with_threads(0),
                    mode: ResolveMode::PairMajor,
                    plane,
                    faults: None,
                };
                group.bench_with_input(BenchmarkId::new(name, n_agents), &cfg, |b, cfg| {
                    b.iter(|| black_box(sim.run_engine(horizon, cfg)))
                });
            }
        }
    }
    group.finish();
}

fn bench_per_pair_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiuser_per_pair");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.sample_size(10);
    for n_agents in [64usize, 512] {
        let (sim, horizon) = sim_at(n_agents);
        let cfg = ParallelConfig::with_threads(0);
        group.bench_with_input(BenchmarkId::new("seed_engine", n_agents), &cfg, |b, cfg| {
            b.iter(|| black_box(sim.run_per_pair_reference(horizon, cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arena_engine, bench_per_pair_baseline);
criterion_main!(benches);
