//! The block-compiled schedule kernel vs the naive per-slot path.
//!
//! Benches `worst_async_ttr_exhaustive` — the hottest sweep in the
//! workspace — on the adversarial overlap-one scenario: the naive
//! reference re-derives every slot through virtual `channel_at` calls for
//! every (shift, direction), while the block kernel compiles each schedule
//! once and slides over the two period tables. Also benches the chunked
//! `async_ttr` against its per-slot reference, and prints the measured
//! exhaustive-sweep speedup at the end (the acceptance target is ≥ 5× at
//! n = 64).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_bench::scenario;
use rdv_core::general::GeneralSchedule;
use rdv_core::verify;
use std::hint::black_box;
use std::time::Instant;

fn adversarial_pair(n: u64, k: usize) -> (GeneralSchedule, GeneralSchedule, u64) {
    let sc = scenario(n, k);
    let sa = GeneralSchedule::asynchronous(n, sc.a.clone()).expect("valid");
    let sb = GeneralSchedule::asynchronous(n, sc.b.clone()).expect("valid");
    let horizon = sa.ttr_bound(k) + 1;
    (sa, sb, horizon)
}

fn bench_exhaustive_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("worst_async_ttr_exhaustive");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(10);
    for n in [16u64, 64] {
        let (sa, sb, horizon) = adversarial_pair(n, 4);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(verify::naive::worst_async_ttr_exhaustive(&sa, &sb, horizon)))
        });
        group.bench_with_input(BenchmarkId::new("block", n), &n, |b, _| {
            b.iter(|| black_box(verify::worst_async_ttr_exhaustive(&sa, &sb, horizon)))
        });
    }
    group.finish();
}

fn bench_single_shift(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_ttr");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(10);
    let (sa, sb, horizon) = adversarial_pair(64, 4);
    // The shift with the deepest forward scan (a→b direction), so the bench
    // exercises a long kernel run rather than a 2-slot early-out.
    let period = rdv_core::schedule::Schedule::period_hint(&sa).expect("periodic");
    let shift = (0..period)
        .max_by_key(|&s| verify::async_ttr(&sa, &sb, s, horizon).unwrap_or(horizon))
        .expect("non-empty sweep");
    group.bench_function("naive", |b| {
        b.iter(|| {
            black_box(verify::naive::async_ttr(
                &sa,
                &sb,
                black_box(shift),
                horizon,
            ))
        })
    });
    group.bench_function("block", |b| {
        b.iter(|| black_box(verify::async_ttr(&sa, &sb, black_box(shift), horizon)))
    });
    group.finish();
}

/// One-shot speedup measurement, printed so the ≥ 5× acceptance target is
/// visible directly in the bench output.
fn report_speedup(_c: &mut Criterion) {
    let (sa, sb, horizon) = adversarial_pair(64, 4);
    let reps = 3;
    let naive = {
        let start = Instant::now();
        for _ in 0..reps {
            black_box(verify::naive::worst_async_ttr_exhaustive(&sa, &sb, horizon));
        }
        start.elapsed().as_secs_f64() / reps as f64
    };
    let block = {
        let start = Instant::now();
        for _ in 0..reps {
            black_box(verify::worst_async_ttr_exhaustive(&sa, &sb, horizon));
        }
        start.elapsed().as_secs_f64() / reps as f64
    };
    println!(
        "kernel speedup (worst_async_ttr_exhaustive, n=64 adversarial): {:.1}x (naive {:.3} ms, block {:.3} ms)",
        naive / block,
        naive * 1e3,
        block * 1e3
    );
}

criterion_group! {name = benches; config = Criterion::default(); targets = bench_exhaustive_sweep, bench_single_shift, report_speedup}
criterion_main!(benches);
