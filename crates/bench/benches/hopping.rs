//! Schedule evaluation throughput — the radio's per-slot budget at
//! runtime: per-slot `channel_at` calls vs the bulk `fill_channels` kernel
//! over the same 1024 slots.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rdv_bench::{build, scenario};
use rdv_core::schedule::Schedule;
use rdv_sim::Algorithm;
use std::hint::black_box;

fn bench_hopping(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel_at");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(30);
    group.throughput(Throughput::Elements(1024));
    let n = 256u64;
    let sc = scenario(n, 4);
    for algo in [
        Algorithm::Ours,
        Algorithm::OursSymmetric,
        Algorithm::Crseq,
        Algorithm::JumpStay,
        Algorithm::Drds,
        Algorithm::Random,
        Algorithm::BeaconA,
    ] {
        let sched = build(algo, n, &sc.a);
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.to_string()),
            &sched,
            |b, sched| {
                b.iter(|| {
                    let mut acc = 0u64;
                    for t in 0..1024u64 {
                        acc ^= sched.channel_at(black_box(t)).get();
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

fn bench_block_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("fill_channels");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(30);
    group.throughput(Throughput::Elements(1024));
    let n = 256u64;
    let sc = scenario(n, 4);
    for algo in [
        Algorithm::Ours,
        Algorithm::OursSymmetric,
        Algorithm::Crseq,
        Algorithm::JumpStay,
        Algorithm::Drds,
    ] {
        let sched = build(algo, n, &sc.a);
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.to_string()),
            &sched,
            |b, sched| {
                let mut buf = [0u64; 1024];
                b.iter(|| {
                    sched.fill_channels(black_box(0), &mut buf);
                    buf[1023]
                })
            },
        );
    }
    group.finish();
}

criterion_group! {name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(900)).sample_size(10); targets = bench_hopping, bench_block_fill}
criterion_main!(benches);
