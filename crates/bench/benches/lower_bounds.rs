//! E8/E9/E13 timing: the exhaustive CSP search behind the exact
//! `R_s(n,2)` values, the pigeonhole certificate construction, and the SDP
//! solve + rounding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_core::channel::ChannelSet;
use rdv_lower::{exact, pigeonhole};
use rdv_sdp::{solve, OrientGraph, SdpConfig};
use std::hint::black_box;

fn bench_exact_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_rs_n2");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(10);
    for n in [4u64, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(exact::exact_rs_n2(n, 5, 1 << 24)))
        });
    }
    group.finish();
}

fn bench_pigeonhole(c: &mut Criterion) {
    let round_robin = |set: &ChannelSet| {
        rdv_core::schedule::CyclicSchedule::new(set.iter().collect()).expect("non-empty")
    };
    c.bench_function("pigeonhole_certify_n64_k3", |b| {
        b.iter(|| black_box(pigeonhole::certify(&round_robin, 64, 3, 2)))
    });
}

fn bench_sdp(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdp_solve");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(900));
    group.sample_size(10);
    for m in [6usize, 12, 20] {
        let edges: Vec<(u32, u32)> = (0..m as u32)
            .map(|i| (i % 7, (i % 7 + 1 + i / 7) % 8))
            .collect();
        let g = OrientGraph::new(8, edges).expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(m), &g, |b, g| {
            b.iter(|| black_box(solve(g, &SdpConfig::default())))
        });
    }
    group.finish();
}

criterion_group! {name = benches; config = Criterion::default().warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_millis(900)).sample_size(10); targets = bench_exact_search, bench_pigeonhole, bench_sdp}
criterion_main!(benches);
