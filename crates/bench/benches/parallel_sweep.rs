//! The work-stealing sweep orchestrator: full `(shift × seed)` sweep cost
//! at 1 vs N worker threads, plus the multi-agent engine's sequential
//! block path vs its per-pair parallel scan.
//!
//! On a single-core runner the thread counts collapse to the same wall
//! clock (the orchestrator clamps to available parallelism only when asked
//! for `0`); the bench's value there is tracking orchestration *overhead* —
//! the 1-thread inline path vs the deque-scheduled path must stay within
//! noise of each other, since both run the identical kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdv_bench::scenario;
use rdv_sim::algo::AgentCtx;
use rdv_sim::engine::{Agent, Simulation};
use rdv_sim::sweep::{sweep_pair_ttr, SweepConfig};
use rdv_sim::{workload, Algorithm, ParallelConfig};
use std::hint::black_box;

fn sweep_cfg(threads: usize) -> SweepConfig {
    SweepConfig {
        shifts: 256,
        shift_stride: 7,
        spread_over_period: true,
        seeds: 2,
        horizon_override: 0,
        threads,
    }
}

fn bench_parallel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_sweep");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(10);
    let n = 64u64;
    let sc = scenario(n, 4);
    for threads in [1usize, 2, 8] {
        let cfg = sweep_cfg(threads);
        group.bench_with_input(
            BenchmarkId::new("ours_256_shifts", threads),
            &cfg,
            |b, cfg| {
                b.iter(|| black_box(sweep_pair_ttr(Algorithm::Ours, n, &sc, cfg).expect("sweep")))
            },
        );
    }
    group.finish();
}

fn bench_parallel_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_engine");
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.sample_size(10);
    let n = 64u64;
    let sets = workload::clustered_population(n, 4, 24, 11);
    let agents: Vec<Agent> = sets
        .into_iter()
        .enumerate()
        .map(|(i, set)| {
            let ctx = AgentCtx {
                wake: (i as u64) * 97,
                agent_seed: i as u64,
                shared_seed: 3,
                faults: None,
            };
            Agent {
                schedule: Algorithm::Ours.make(n, &set, &ctx).expect("valid"),
                set,
                wake: ctx.wake,
                share_key: None,
            }
        })
        .collect();
    let sim = Simulation::new(agents);
    let horizon = 1 << 15;
    for threads in [1usize, 2, 8] {
        let cfg = ParallelConfig::with_threads(threads);
        group.bench_with_input(BenchmarkId::new("clustered_24", threads), &cfg, |b, cfg| {
            b.iter(|| black_box(sim.run_with(horizon, cfg)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_sweep, bench_parallel_engine);
criterion_main!(benches);
