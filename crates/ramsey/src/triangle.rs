//! Monochromatic-triangle search in edge-colored complete graphs.
//!
//! Theorem 4's lower bound argues: treat each pair schedule (a string in
//! `{0,1}^T`) as a color of the edge `{i, j}` of `K_n`; for `n ≥ e·m!`
//! (where `m = 2^T` is the number of colors) a variant of Ramsey's theorem
//! guarantees a monochromatic triangle `i < j < k`, and the identical
//! schedules on `(i, j)` and `(j, k)` can never rendezvous. This module
//! provides the search used to *exhibit* such witnesses for concrete
//! schedule families, plus the `e·m!` threshold.

/// An edge coloring of the complete graph `K_n` given by a function on
/// ordered pairs `1 ≤ a < b ≤ n`.
pub trait EdgeColoring {
    /// The number of vertices `n`.
    fn vertices(&self) -> u64;
    /// Color of the edge `{a, b}` with `a < b`. Colors are arbitrary `u64`s.
    fn edge_color(&self, a: u64, b: u64) -> u64;
}

/// A monochromatic triangle witness `i < j < k` with its color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Triangle {
    /// Smallest vertex.
    pub i: u64,
    /// Middle vertex.
    pub j: u64,
    /// Largest vertex.
    pub k: u64,
    /// The common color of the three edges.
    pub color: u64,
}

/// Finds a monochromatic triangle, if one exists, by scanning ordered
/// triples (`O(n³)` worst case; fine for the small universes the lower-bound
/// experiments explore).
pub fn find_monochromatic_triangle<C: EdgeColoring>(coloring: &C) -> Option<Triangle> {
    let n = coloring.vertices();
    for i in 1..=n {
        for j in i + 1..=n {
            let cij = coloring.edge_color(i, j);
            for k in j + 1..=n {
                if coloring.edge_color(j, k) == cij && coloring.edge_color(i, k) == cij {
                    return Some(Triangle {
                        i,
                        j,
                        k,
                        color: cij,
                    });
                }
            }
        }
    }
    None
}

/// Finds a monochromatic directed 2-path `i < j < k` with
/// `color(i,j) == color(j,k)` — the weaker structure that already dooms
/// rendezvous for identical pair schedules (the full triangle is what
/// Ramsey's theorem guarantees; the 2-path is what the argument uses).
pub fn find_monochromatic_two_path<C: EdgeColoring>(coloring: &C) -> Option<Triangle> {
    let n = coloring.vertices();
    for j in 2..n {
        for i in 1..j {
            let cij = coloring.edge_color(i, j);
            for k in j + 1..=n {
                if coloring.edge_color(j, k) == cij {
                    return Some(Triangle {
                        i,
                        j,
                        k,
                        color: cij,
                    });
                }
            }
        }
    }
    None
}

/// The Ramsey threshold `⌈e·m!⌉` above which any `m`-coloring of `K_n`
/// contains a monochromatic triangle (Graham–Rothschild–Spencer bound used
/// in Theorem 4). Saturates at `u64::MAX` for large `m`.
pub fn ramsey_triangle_threshold(m: u32) -> u64 {
    let mut fact = 1f64;
    for i in 2..=m as u64 {
        fact *= i as f64;
        if fact > u64::MAX as f64 / 4.0 {
            return u64::MAX;
        }
    }
    (std::f64::consts::E * fact).ceil() as u64
}

/// Adapter implementing [`EdgeColoring`] from a closure.
pub struct FnColoring<F> {
    n: u64,
    f: F,
}

impl<F: Fn(u64, u64) -> u64> FnColoring<F> {
    /// Wraps `f(a, b)` (`a < b`) as an edge coloring of `K_n`.
    pub fn new(n: u64, f: F) -> Self {
        FnColoring { n, f }
    }
}

impl<F: Fn(u64, u64) -> u64> EdgeColoring for FnColoring<F> {
    fn vertices(&self) -> u64 {
        self.n
    }
    fn edge_color(&self, a: u64, b: u64) -> u64 {
        (self.f)(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::PosetColoring;

    #[test]
    fn single_color_k3_has_triangle() {
        let c = FnColoring::new(3, |_, _| 0);
        let t = find_monochromatic_triangle(&c).unwrap();
        assert_eq!((t.i, t.j, t.k), (1, 2, 3));
    }

    #[test]
    fn proper_two_coloring_of_k5_has_no_triangle() {
        // K5 edges colored by parity of a+b: classic triangle-free coloring?
        // Verify by construction with an explicit known triangle-free
        // 2-coloring of K5 (the C5 + complement decomposition).
        let edges_red = [(1u64, 2u64), (2, 3), (3, 4), (4, 5), (1, 5)]; // 5-cycle
        let c = FnColoring::new(5, move |a, b| {
            u64::from(edges_red.contains(&(a, b)) || edges_red.contains(&(b, a)))
        });
        assert_eq!(find_monochromatic_triangle(&c), None);
    }

    #[test]
    fn six_vertices_two_colors_always_triangle() {
        // R(3,3) = 6: every 2-coloring of K6 has a monochromatic triangle.
        // Exhaust all 2^15 colorings of K6.
        let pairs: Vec<(u64, u64)> = (1..=6u64)
            .flat_map(|a| ((a + 1)..=6).map(move |b| (a, b)))
            .collect();
        assert_eq!(pairs.len(), 15);
        for mask in 0u32..(1 << 15) {
            let pairs = pairs.clone();
            let c = FnColoring::new(6, move |a, b| {
                let idx = pairs.iter().position(|&e| e == (a, b)).unwrap();
                u64::from(mask >> idx & 1)
            });
            assert!(
                find_monochromatic_triangle(&c).is_some(),
                "triangle-free 2-coloring of K6 found: mask {mask}"
            );
        }
    }

    #[test]
    fn poset_coloring_has_no_monochromatic_two_path() {
        // Lemma 2's coloring, viewed on the complete graph, has no
        // monochromatic directed 2-path — hence no monochromatic triangle.
        for n in [4u64, 8, 16, 31] {
            let chi = PosetColoring::new(n);
            let c = FnColoring::new(n, move |a, b| chi.color(a, b) as u64);
            assert_eq!(find_monochromatic_two_path(&c), None, "n = {n}");
            assert_eq!(find_monochromatic_triangle(&c), None, "n = {n}");
        }
    }

    #[test]
    fn two_path_weaker_than_triangle() {
        // A coloring with a monochromatic 2-path but no triangle.
        let c = FnColoring::new(3, |a, b| if (a, b) == (1, 3) { 1 } else { 0 });
        assert!(find_monochromatic_triangle(&c).is_none());
        let t = find_monochromatic_two_path(&c).unwrap();
        assert_eq!((t.i, t.j, t.k), (1, 2, 3));
    }

    #[test]
    fn threshold_values() {
        assert_eq!(ramsey_triangle_threshold(1), 3); // ⌈e⌉
        assert_eq!(ramsey_triangle_threshold(2), 6); // ⌈2e⌉
        assert_eq!(ramsey_triangle_threshold(3), 17); // ⌈6e⌉ = 17
        assert!(ramsey_triangle_threshold(30) == u64::MAX);
    }

    #[test]
    fn threshold_is_sound_for_two_colors() {
        // For m = 2 the threshold 6 matches R(3,3) = 6 exactly; combined
        // with six_vertices_two_colors_always_triangle this validates the
        // bound at the one point we can exhaust.
        assert_eq!(ramsey_triangle_threshold(2), 6);
    }
}
