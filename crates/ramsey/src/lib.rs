//! 2-Ramsey edge colorings of the linear poset and Ramsey-theoretic tools.
//!
//! Lemma 2 of the paper: the directed graph `L_n` on `[n]` with edges
//! `(a, b)` for `a < b` admits an edge coloring with only `log♯ n` colors in
//! which no directed path of length two is monochromatic. The coloring is
//! the engine of the size-two schedules: channel pairs that share an element
//! in "path position" are guaranteed *different* colors, hence different
//! codewords, hence rendezvous by the `◇₁` property.
//!
//! The [`triangle`] module provides the converse tool used by Theorem 4's
//! lower bound: searching an edge-colored complete graph for monochromatic
//! triangles (whose existence for `n ≥ e·m!` dooms any short schedule).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coloring;
pub mod triangle;

pub use coloring::PosetColoring;
