//! The 2-Ramsey edge coloring of Lemma 2.
//!
//! Associate with each channel `k ∈ [n]` the bit set `X_k` of its (0-indexed)
//! binary encoding, using the 0-indexed value `k − 1` so the palette is
//! exactly `{0, …, log♯ n − 1}`. For `a < b` the set `X_b \ X_a` is
//! non-empty (a number cannot be a strict sub-mask of a smaller number), so
//! the edge `(a, b)` may be colored with its smallest element. If `(a, b)`
//! and `(b, c)` form a directed path, `χ(a, b) ∈ X_b` while
//! `χ(b, c) ∉ X_b` — the two colors differ, which is the 2-Ramsey property.

use rdv_strings::{log_sharp, Bits};

/// The 2-Ramsey edge coloring of the linear poset `L_n`.
///
/// # Example
///
/// ```
/// use rdv_ramsey::PosetColoring;
///
/// let chi = PosetColoring::new(16);
/// assert!(chi.palette_size() <= 4);
/// // No monochromatic directed 2-path:
/// assert_ne!(chi.color(3, 7), chi.color(7, 12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PosetColoring {
    n: u64,
}

impl PosetColoring {
    /// Creates the coloring for universe `[n] = {1, …, n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (no edges exist below two channels).
    pub fn new(n: u64) -> Self {
        assert!(n >= 2, "the linear poset needs at least two channels");
        PosetColoring { n }
    }

    /// The universe size `n`.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// Size of the palette: `log♯ n` (colors are `0..palette_size`).
    pub fn palette_size(&self) -> u32 {
        log_sharp(self.n).max(1)
    }

    /// The color of the directed edge `(a, b)`.
    ///
    /// Returns the smallest bit position set in `b − 1` but not in `a − 1`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ a < b ≤ n`.
    pub fn color(&self, a: u64, b: u64) -> u32 {
        assert!(
            1 <= a && a < b && b <= self.n,
            "edge ({a}, {b}) not in L_{}",
            self.n
        );
        let xa = a - 1;
        let xb = b - 1;
        let diff = xb & !xa;
        debug_assert!(diff != 0, "X_b \\ X_a must be non-empty for a < b");
        diff.trailing_zeros()
    }

    /// The color encoded as a fixed-width bit string (width
    /// `max(1, log♯(palette_size))`), suitable as input to the pair codes.
    pub fn color_bits(&self, a: u64, b: u64) -> Bits {
        Bits::encode_int(self.color(a, b) as u64, self.color_width())
    }

    /// The fixed width of encoded colors: `max(1, log♯ log♯ n)`.
    pub fn color_width(&self) -> u32 {
        log_sharp(self.palette_size() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_monochromatic_two_path_exhaustive() {
        for n in [2u64, 3, 5, 8, 16, 33, 64] {
            let chi = PosetColoring::new(n);
            for a in 1..=n {
                for b in a + 1..=n {
                    for c in b + 1..=n {
                        assert_ne!(
                            chi.color(a, b),
                            chi.color(b, c),
                            "monochromatic path {a}→{b}→{c} in L_{n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn palette_is_log_sharp() {
        for (n, palette) in [
            (2u64, 1u32),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (16, 4),
            (17, 5),
        ] {
            let chi = PosetColoring::new(n);
            assert_eq!(chi.palette_size(), palette, "n = {n}");
            // Every used color is inside the palette.
            for a in 1..=n {
                for b in a + 1..=n {
                    assert!(chi.color(a, b) < palette, "color({a},{b}) escapes palette");
                }
            }
        }
    }

    #[test]
    fn color_is_in_xb_minus_xa() {
        let chi = PosetColoring::new(32);
        for a in 1..=32u64 {
            for b in a + 1..=32 {
                let c = chi.color(a, b);
                assert_eq!((b - 1) >> c & 1, 1, "color bit set in b-1");
                assert_eq!((a - 1) >> c & 1, 0, "color bit clear in a-1");
            }
        }
    }

    #[test]
    fn color_bits_width_fixed() {
        for n in [2u64, 16, 1 << 20, 1 << 62] {
            let chi = PosetColoring::new(n);
            let w = chi.color_width();
            assert_eq!(chi.color_bits(1, 2).len(), w as usize);
            assert_eq!(chi.color_bits(1, n).len(), w as usize);
        }
    }

    #[test]
    fn huge_universe_palette_is_tiny() {
        // The entire point of the construction: for n = 2⁶², six bits of
        // color suffice (log♯ log♯ n = 6).
        let chi = PosetColoring::new(1 << 62);
        assert_eq!(chi.palette_size(), 62);
        assert_eq!(chi.color_width(), 6);
    }

    #[test]
    #[should_panic(expected = "not in L_")]
    fn rejects_non_edges() {
        PosetColoring::new(8).color(5, 5);
    }

    #[test]
    #[should_panic(expected = "at least two channels")]
    fn rejects_tiny_universe() {
        PosetColoring::new(1);
    }
}
