//! Scenario generators.

use crate::sweep::SweepError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rdv_core::channel::ChannelSet;

/// A pair of channel sets to be rendezvoused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairScenario {
    /// First agent's set.
    pub a: ChannelSet,
    /// Second agent's set.
    pub b: ChannelSet,
}

impl PairScenario {
    /// Validates two raw channel collections into a sweepable scenario.
    ///
    /// # Errors
    ///
    /// * [`SweepError::InvalidSet`] if either collection is empty, contains
    ///   channel `0`, or contains duplicates;
    /// * [`SweepError::DisjointSets`] if the validated sets share no
    ///   channel (such a pair can never rendezvous, so sweeping it is
    ///   always a caller bug).
    pub fn try_new(
        a: impl IntoIterator<Item = u64>,
        b: impl IntoIterator<Item = u64>,
    ) -> Result<Self, SweepError> {
        let a = ChannelSet::new(a)?;
        let b = ChannelSet::new(b)?;
        if !a.overlaps(&b) {
            return Err(SweepError::DisjointSets);
        }
        Ok(PairScenario { a, b })
    }
}

/// The adversarial geometry of Theorem 7: `|A| = k`, `|B| = ℓ`,
/// `|A ∩ B| = 1`, with the shared channel placed at the boundary.
///
/// Returns `None` if `n < k + ℓ − 1`.
pub fn adversarial_overlap_one(n: u64, k: usize, ell: usize) -> Option<PairScenario> {
    if n < (k + ell - 1) as u64 {
        return None;
    }
    let h = k as u64;
    let a = ChannelSet::new(1..=h).expect("contiguous non-empty");
    let b = ChannelSet::new(h..h + ell as u64).expect("contiguous non-empty");
    Some(PairScenario { a, b })
}

/// Uniformly random size-`k` and size-`ℓ` subsets, resampled until they
/// overlap (deterministic given the seed).
///
/// Returns `None` if `k > n` or `ell > n`.
pub fn random_overlapping_pair(n: u64, k: usize, ell: usize, seed: u64) -> Option<PairScenario> {
    if k as u64 > n || ell as u64 > n {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let universe: Vec<u64> = (1..=n).collect();
    loop {
        let mut u = universe.clone();
        u.shuffle(&mut rng);
        let a = ChannelSet::new(u[..k].iter().copied()).expect("non-empty");
        u.shuffle(&mut rng);
        let b = ChannelSet::new(u[..ell].iter().copied()).expect("non-empty");
        if a.overlaps(&b) {
            return Some(PairScenario { a, b });
        }
    }
}

/// The symmetric scenario: both agents own the same set (random size-`k`).
pub fn symmetric_pair(n: u64, k: usize, seed: u64) -> Option<PairScenario> {
    if k as u64 > n {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut u: Vec<u64> = (1..=n).collect();
    u.shuffle(&mut rng);
    let a = ChannelSet::new(u[..k].iter().copied()).expect("non-empty");
    Some(PairScenario { b: a.clone(), a })
}

/// The "coalition" scenario of the paper's introduction: a huge universe
/// (`n` in the millions) with two small sets sharing a designated band.
///
/// `band` channels around the middle of the spectrum are common; each set
/// additionally gets `k − band` private channels scattered by seed.
///
/// Returns `None` if the parameters do not fit (`band > k`, or universe too
/// small).
pub fn coalition_pair(n: u64, k: usize, band: usize, seed: u64) -> Option<PairScenario> {
    if band > k || (2 * k) as u64 > n || band == 0 {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mid = n / 2;
    let shared: Vec<u64> = (0..band as u64).map(|i| mid + i).collect();
    let mut sample_private = |avoid_lo: u64, avoid_hi: u64| -> Vec<u64> {
        let mut out = Vec::new();
        while out.len() < k - band {
            let c = rng.gen_range(1..=n);
            if (c < avoid_lo || c > avoid_hi) && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    };
    let pa: Vec<u64> = sample_private(mid, mid + band as u64);
    let pb: Vec<u64> = {
        let mut v;
        loop {
            v = sample_private(mid, mid + band as u64);
            if v.iter().all(|c| !pa.contains(c)) {
                break;
            }
        }
        v
    };
    let a = ChannelSet::new(shared.iter().copied().chain(pa)).ok()?;
    let b = ChannelSet::new(shared.iter().copied().chain(pb)).ok()?;
    Some(PairScenario { a, b })
}

/// A clustered-spectrum population: `count` agents, each owning a
/// contiguous block of `k` channels starting at a seeded position — models
/// devices camped on neighboring bands (TV white space style).
pub fn clustered_population(n: u64, k: usize, count: usize, seed: u64) -> Vec<ChannelSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let start = rng.gen_range(1..=n - k as u64 + 1);
            ChannelSet::new(start..start + k as u64).expect("contiguous non-empty")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversarial_geometry() {
        let s = adversarial_overlap_one(16, 3, 4).unwrap();
        assert_eq!(s.a.len(), 3);
        assert_eq!(s.b.len(), 4);
        assert_eq!(s.a.intersection(&s.b).len(), 1);
        assert!(adversarial_overlap_one(4, 3, 4).is_none());
    }

    #[test]
    fn random_pairs_overlap_and_are_deterministic() {
        let x = random_overlapping_pair(32, 4, 5, 7).unwrap();
        let y = random_overlapping_pair(32, 4, 5, 7).unwrap();
        assert_eq!(x, y);
        assert!(x.a.overlaps(&x.b));
        assert_eq!(x.a.len(), 4);
        assert_eq!(x.b.len(), 5);
    }

    #[test]
    fn symmetric_pairs_are_equal() {
        let s = symmetric_pair(20, 6, 3).unwrap();
        assert_eq!(s.a, s.b);
        assert_eq!(s.a.len(), 6);
        assert!(symmetric_pair(4, 6, 3).is_none());
    }

    #[test]
    fn coalition_band_is_shared() {
        let s = coalition_pair(1 << 20, 5, 2, 11).unwrap();
        assert_eq!(s.a.len(), 5);
        assert_eq!(s.b.len(), 5);
        let common = s.a.intersection(&s.b);
        assert_eq!(common.len(), 2, "exactly the band is shared");
    }

    #[test]
    fn clustered_blocks_are_contiguous() {
        let pop = clustered_population(100, 4, 10, 5);
        assert_eq!(pop.len(), 10);
        for set in &pop {
            let s = set.as_slice();
            assert_eq!(s.len(), 4);
            assert!(s.windows(2).all(|w| w[1] == w[0] + 1));
        }
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(random_overlapping_pair(3, 5, 2, 0).is_none());
        assert!(coalition_pair(10, 3, 4, 0).is_none());
        assert!(coalition_pair(10, 3, 0, 0).is_none());
    }

    #[test]
    fn try_new_surfaces_typed_errors() {
        use rdv_core::channel::ChannelSetError;
        assert!(PairScenario::try_new(vec![1, 2], vec![2, 3]).is_ok());
        assert_eq!(
            PairScenario::try_new(vec![], vec![1]),
            Err(SweepError::InvalidSet(ChannelSetError::Empty))
        );
        assert_eq!(
            PairScenario::try_new(vec![1, 0], vec![1]),
            Err(SweepError::InvalidSet(ChannelSetError::ZeroChannel))
        );
        assert_eq!(
            PairScenario::try_new(vec![1, 2], vec![3, 4]),
            Err(SweepError::DisjointSets)
        );
    }
}
