//! Scenario generators.

use crate::algo::{AgentCtx, Algorithm};
use crate::engine::Agent;
use crate::sweep::SweepError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rdv_core::channel::ChannelSet;
use std::collections::HashSet;

/// A pair of channel sets to be rendezvoused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairScenario {
    /// First agent's set.
    pub a: ChannelSet,
    /// Second agent's set.
    pub b: ChannelSet,
}

impl PairScenario {
    /// Validates two raw channel collections into a sweepable scenario.
    ///
    /// # Errors
    ///
    /// * [`SweepError::InvalidSet`] if either collection is empty, contains
    ///   channel `0`, or contains duplicates;
    /// * [`SweepError::DisjointSets`] if the validated sets share no
    ///   channel (such a pair can never rendezvous, so sweeping it is
    ///   always a caller bug).
    pub fn try_new(
        a: impl IntoIterator<Item = u64>,
        b: impl IntoIterator<Item = u64>,
    ) -> Result<Self, SweepError> {
        let a = ChannelSet::new(a)?;
        let b = ChannelSet::new(b)?;
        if !a.overlaps(&b) {
            return Err(SweepError::DisjointSets);
        }
        Ok(PairScenario { a, b })
    }
}

/// The adversarial geometry of Theorem 7: `|A| = k`, `|B| = ℓ`,
/// `|A ∩ B| = 1`, with the shared channel placed at the boundary.
///
/// Returns `None` if `n < k + ℓ − 1`.
pub fn adversarial_overlap_one(n: u64, k: usize, ell: usize) -> Option<PairScenario> {
    if n < (k + ell - 1) as u64 {
        return None;
    }
    let h = k as u64;
    let a = ChannelSet::new(1..=h).expect("contiguous non-empty");
    let b = ChannelSet::new(h..h + ell as u64).expect("contiguous non-empty");
    Some(PairScenario { a, b })
}

/// Uniformly random size-`k` and size-`ℓ` subsets, resampled until they
/// overlap (deterministic given the seed).
///
/// Returns `None` if `k > n` or `ell > n`.
pub fn random_overlapping_pair(n: u64, k: usize, ell: usize, seed: u64) -> Option<PairScenario> {
    if k as u64 > n || ell as u64 > n {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let universe: Vec<u64> = (1..=n).collect();
    loop {
        let mut u = universe.clone();
        u.shuffle(&mut rng);
        let a = ChannelSet::new(u[..k].iter().copied()).expect("non-empty");
        u.shuffle(&mut rng);
        let b = ChannelSet::new(u[..ell].iter().copied()).expect("non-empty");
        if a.overlaps(&b) {
            return Some(PairScenario { a, b });
        }
    }
}

/// The symmetric scenario: both agents own the same set (random size-`k`).
pub fn symmetric_pair(n: u64, k: usize, seed: u64) -> Option<PairScenario> {
    if k as u64 > n {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut u: Vec<u64> = (1..=n).collect();
    u.shuffle(&mut rng);
    let a = ChannelSet::new(u[..k].iter().copied()).expect("non-empty");
    Some(PairScenario { b: a.clone(), a })
}

/// The "coalition" scenario of the paper's introduction: a huge universe
/// (`n` in the millions) with two small sets sharing a designated band.
///
/// `band` channels around the middle of the spectrum are common; each set
/// additionally gets `k − band` private channels scattered by seed, with
/// the two private pools kept disjoint so exactly the band is shared.
///
/// Private channels are drawn through a set-based rejection sampler
/// (`O(1)` membership instead of the former `Vec::contains` probes, which
/// made sampling `O(k²)`), and both sides draw against one `taken` set so
/// disjointness holds by construction — the former resample-until-disjoint
/// loop, which could spin indefinitely at large `k/n` ratios, is gone.
/// When the private pools would fill a quarter or more of the usable
/// spectrum, the sampler switches to an exact shuffle of the (then small)
/// usable range, so every feasible parameter set terminates.
///
/// # Errors
///
/// * [`SweepError::InvalidScenario`] if `band == 0`, `band > k`, or
///   `2k > n`;
/// * [`SweepError::SamplingExhausted`] if the (bounded) rejection sampler
///   runs out of attempts — astronomically unlikely for feasible
///   parameters, but typed rather than a hang.
pub fn coalition_pair(
    n: u64,
    k: usize,
    band: usize,
    seed: u64,
) -> Result<PairScenario, SweepError> {
    coalition_pair_with_budget(n, k, band, seed, None)
}

/// Backoff rounds of the sparse-regime rejection sampler in
/// [`coalition_pair_with_budget`]: the per-round draw budget doubles each
/// round, and [`SweepError::SamplingExhausted`] is only reported once
/// every round has failed.
pub const SAMPLER_BACKOFF_ROUNDS: u32 = 4;

/// [`coalition_pair`] with an explicit rejection-sampler base attempt
/// budget — the test seam that lets the (otherwise astronomically
/// unlikely) [`SweepError::SamplingExhausted`] path be exercised
/// deterministically. `None` uses the production base budget of 64 + 64
/// draws per needed private channel; the budget only matters in the
/// sparse sampling regime (the dense regime shuffles exactly and never
/// retries), where it doubles over [`SAMPLER_BACKOFF_ROUNDS`] exponential
/// backoff rounds — note `Some(0)` stays zero through every doubling, so
/// it exhausts deterministically.
#[doc(hidden)]
pub fn coalition_pair_with_budget(
    n: u64,
    k: usize,
    band: usize,
    seed: u64,
    budget_override: Option<u32>,
) -> Result<PairScenario, SweepError> {
    if band == 0 || band > k || (2 * k) as u64 > n {
        return Err(SweepError::InvalidScenario {
            reason: "coalition needs 0 < band ≤ k and 2k ≤ n",
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mid = n / 2;
    // The avoided region is mid..=mid+band (one more than the shared
    // band, matching the original geometry).
    let band_hi = mid + band as u64;
    let private_per_side = k - band;
    // `2k ≤ n` and `band ≥ 1` guarantee the spectrum outside the avoided
    // region can host both private pools: 2(k − band) ≤ n − 2band ≤
    // n − band − 1 = usable.
    let usable = n - (band_hi - mid + 1);
    debug_assert!((2 * private_per_side) as u64 <= usable);
    let (pa, pb): (Vec<u64>, Vec<u64>) = if (4 * private_per_side) as u64 >= usable {
        // Dense regime: the usable spectrum is at most 4 pools wide, so
        // materialize and shuffle it exactly — no retries possible.
        let mut u: Vec<u64> = (1..=n).filter(|&c| !(mid..=band_hi).contains(&c)).collect();
        u.shuffle(&mut rng);
        let pa = u[..private_per_side].to_vec();
        let pb = u[private_per_side..2 * private_per_side].to_vec();
        (pa, pb)
    } else {
        // Sparse regime (the intended huge-universe case): bounded
        // rejection sampling under the orchestrator's exponential
        // backoff-in-attempts policy ([`pool::retry_with_backoff`]).
        // Each round draws from a round-derived RNG stream against a
        // fresh `taken` set with a per-round budget that doubles
        // (base, 2·base, 4·base, …), so retries explore new draws and
        // the whole procedure stays a pure function of `(seed, round)`.
        // Each draw succeeds with probability > 1/2, so even the base
        // budget fails with probability < 2^-64 per needed channel; the
        // backoff rounds exist for the grid pipelines' transient-retry
        // contract, and a zero override stays zero through every
        // doubling — the deterministic exhaustion seam the degradation
        // tests sabotage cells with.
        let base = budget_override.unwrap_or(64 + 64 * (2 * private_per_side) as u32);
        let mut total_attempts = 0u32;
        let drawn =
            crate::pool::retry_with_backoff(SAMPLER_BACKOFF_ROUNDS, base, |round, budget| {
                let mut rng = StdRng::seed_from_u64(crate::pool::stream_seed(seed, round as u64));
                let mut taken: HashSet<u64> = HashSet::new();
                let mut attempts = 0u32;
                let sample_pool = |rng: &mut StdRng,
                                   taken: &mut HashSet<u64>,
                                   attempts: &mut u32|
                 -> Option<Vec<u64>> {
                    let mut out = Vec::with_capacity(private_per_side);
                    while out.len() < private_per_side {
                        if *attempts >= budget {
                            return None;
                        }
                        *attempts += 1;
                        let c = rng.gen_range(1..=n);
                        if !(mid..=band_hi).contains(&c) && taken.insert(c) {
                            out.push(c);
                        }
                    }
                    Some(out)
                };
                let pools = sample_pool(&mut rng, &mut taken, &mut attempts).and_then(|pa| {
                    sample_pool(&mut rng, &mut taken, &mut attempts).map(|pb| (pa, pb))
                });
                total_attempts += attempts;
                pools.ok_or(())
            });
        match drawn {
            Ok(pools) => pools,
            Err(((), rounds)) => {
                return Err(SweepError::SamplingExhausted {
                    attempts: total_attempts,
                    rounds,
                });
            }
        }
    };
    let shared = (0..band as u64).map(|i| mid + i);
    let a = ChannelSet::new(shared.clone().chain(pa)).map_err(SweepError::InvalidSet)?;
    let b = ChannelSet::new(shared.chain(pb)).map_err(SweepError::InvalidSet)?;
    Ok(PairScenario { a, b })
}

/// A clustered-spectrum population: `count` agents, each owning a
/// contiguous block of `k` channels starting at a seeded position — models
/// devices camped on neighboring bands (TV white space style).
pub fn clustered_population(n: u64, k: usize, count: usize, seed: u64) -> Vec<ChannelSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let start = rng.gen_range(1..=n - k as u64 + 1);
            ChannelSet::new(start..start + k as u64).expect("contiguous non-empty")
        })
        .collect()
}

/// The schedule-sharing key for an `(algorithm, universe, channel set)`
/// triple — a stable FNV-1a fold, safe to hand to [`Agent::share_key`]
/// exactly when the algorithm's schedule is a pure function of those
/// three: deterministic (no per-agent seed) and wake-insensitive (no
/// beacon clock). The universe size is part of the key because every
/// construction shapes its schedule around `n` (word lengths, primes,
/// periods), so equal sets in different universes must not share.
/// Returns `None` for seeded or wake-sensitive algorithms, so callers
/// can thread it through unconditionally.
pub fn share_key(algo: Algorithm, n: u64, set: &ChannelSet) -> Option<u64> {
    if !algo.is_deterministic() || algo.wake_sensitive() {
        return None;
    }
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET ^ (algo as u64).wrapping_mul(PRIME);
    h = (h ^ n).wrapping_mul(PRIME);
    for &c in set.as_slice() {
        h = (h ^ c).wrapping_mul(PRIME);
    }
    Some(h)
}

/// A ready-to-simulate clustered population: [`clustered_population`]
/// channel sets turned into agents running `algo`, with wake slots
/// staggered over `[0, max_wake)` — the standard multi-user workload of
/// the engine benches and the `BENCH_multiuser.json` report.
///
/// Deterministic wake-insensitive algorithms get [`share_key`]s, so the
/// arena engine compiles one schedule table per *distinct* channel set —
/// clustered populations repeat sets heavily (`n − k + 1` possible
/// blocks), collapsing the compile path for large `count`.
///
/// # Panics
///
/// Panics if the parameters do not fit the universe (`k > n`) or the
/// algorithm cannot be instantiated on a generated set.
pub fn clustered_agents(
    algo: Algorithm,
    n: u64,
    k: usize,
    count: usize,
    seed: u64,
    max_wake: u64,
) -> Vec<Agent> {
    clustered_agents_with_faults(algo, n, k, count, seed, max_wake, None)
}

/// [`clustered_agents`], with an optional fault plan threaded into every
/// agent's [`AgentCtx`]: the availability-aware family
/// ([`Algorithm::availability_aware`]) derives its hops from the plan's
/// sensed channel sets, so its faulted population differs from its clean
/// one; every oblivious algorithm ignores the plan, so `None` reproduces
/// [`clustered_agents`] exactly. Availability-aware algorithms are
/// wake-sensitive (sensing runs on the absolute clock), so [`share_key`]
/// already refuses to share their schedules across different wakes.
///
/// # Panics
///
/// Panics if the parameters do not fit the universe (`k > n`) or the
/// algorithm cannot be instantiated on a generated set.
pub fn clustered_agents_with_faults(
    algo: Algorithm,
    n: u64,
    k: usize,
    count: usize,
    seed: u64,
    max_wake: u64,
    faults: Option<rdv_core::fault::FaultPlan>,
) -> Vec<Agent> {
    clustered_population(n, k, count, seed)
        .into_iter()
        .enumerate()
        .map(|(i, set)| {
            let ctx = AgentCtx {
                wake: (i as u64).wrapping_mul(37) % max_wake.max(1),
                agent_seed: i as u64,
                shared_seed: seed,
                faults,
            };
            Agent {
                schedule: algo
                    .make(n, &set, &ctx)
                    .unwrap_or_else(|| panic!("{algo} cannot be instantiated at n={n}, k={k}")),
                share_key: share_key(algo, n, &set),
                set,
                wake: ctx.wake,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdv_core::schedule::Schedule;

    #[test]
    fn adversarial_geometry() {
        let s = adversarial_overlap_one(16, 3, 4).unwrap();
        assert_eq!(s.a.len(), 3);
        assert_eq!(s.b.len(), 4);
        assert_eq!(s.a.intersection(&s.b).len(), 1);
        assert!(adversarial_overlap_one(4, 3, 4).is_none());
    }

    #[test]
    fn random_pairs_overlap_and_are_deterministic() {
        let x = random_overlapping_pair(32, 4, 5, 7).unwrap();
        let y = random_overlapping_pair(32, 4, 5, 7).unwrap();
        assert_eq!(x, y);
        assert!(x.a.overlaps(&x.b));
        assert_eq!(x.a.len(), 4);
        assert_eq!(x.b.len(), 5);
    }

    #[test]
    fn symmetric_pairs_are_equal() {
        let s = symmetric_pair(20, 6, 3).unwrap();
        assert_eq!(s.a, s.b);
        assert_eq!(s.a.len(), 6);
        assert!(symmetric_pair(4, 6, 3).is_none());
    }

    #[test]
    fn coalition_band_is_shared() {
        let s = coalition_pair(1 << 20, 5, 2, 11).unwrap();
        assert_eq!(s.a.len(), 5);
        assert_eq!(s.b.len(), 5);
        let common = s.a.intersection(&s.b);
        assert_eq!(common.len(), 2, "exactly the band is shared");
        // Determinism: the same seed reproduces the scenario.
        assert_eq!(s, coalition_pair(1 << 20, 5, 2, 11).unwrap());
        assert_ne!(s, coalition_pair(1 << 20, 5, 2, 12).unwrap());
    }

    #[test]
    fn coalition_dense_parameters_terminate_exactly() {
        // 2k == n, the regime where the former resample-until-disjoint
        // loop could spin: the exact shuffle path must succeed, with the
        // band still the only shared channels.
        for seed in 0..32 {
            let s = coalition_pair(16, 8, 3, seed).expect("feasible dense coalition");
            assert_eq!(s.a.len(), 8);
            assert_eq!(s.b.len(), 8);
            assert_eq!(s.a.intersection(&s.b).len(), 3, "seed {seed}");
        }
    }

    #[test]
    fn clustered_blocks_are_contiguous() {
        let pop = clustered_population(100, 4, 10, 5);
        assert_eq!(pop.len(), 10);
        for set in &pop {
            let s = set.as_slice();
            assert_eq!(s.len(), 4);
            assert!(s.windows(2).all(|w| w[1] == w[0] + 1));
        }
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(random_overlapping_pair(3, 5, 2, 0).is_none());
        // band > k, band == 0, 2k > n: typed parameter errors.
        for (n, k, band) in [(10, 3, 4), (10, 3, 0), (10, 6, 2)] {
            assert!(matches!(
                coalition_pair(n, k, band, 0),
                Err(SweepError::InvalidScenario { .. })
            ));
        }
    }

    #[test]
    fn clustered_agents_build_and_stagger() {
        let agents = clustered_agents(Algorithm::Ours, 64, 4, 10, 3, 100);
        assert_eq!(agents.len(), 10);
        assert!(agents.iter().all(|a| a.wake < 100));
        assert!(agents.iter().any(|a| a.wake != 0));
        for a in &agents {
            assert!(a.set.contains(a.schedule.channel_at(0).get()));
        }
    }

    #[test]
    fn try_new_surfaces_typed_errors() {
        use rdv_core::channel::ChannelSetError;
        assert!(PairScenario::try_new(vec![1, 2], vec![2, 3]).is_ok());
        assert_eq!(
            PairScenario::try_new(vec![], vec![1]),
            Err(SweepError::InvalidSet(ChannelSetError::Empty))
        );
        assert_eq!(
            PairScenario::try_new(vec![1, 0], vec![1]),
            Err(SweepError::InvalidSet(ChannelSetError::ZeroChannel))
        );
        assert_eq!(
            PairScenario::try_new(vec![1, 2], vec![3, 4]),
            Err(SweepError::DisjointSets)
        );
    }
}
