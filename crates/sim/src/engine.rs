//! The multi-agent discrete-time simulator.

use crate::algo::DynSchedule;
use crate::pool::{self, ParallelConfig};
use rdv_core::channel::ChannelSet;
use std::collections::HashMap;

/// One simulated agent.
pub struct Agent {
    /// The agent's channel set.
    pub set: ChannelSet,
    /// Absolute wake slot.
    pub wake: u64,
    /// The agent's schedule (local time).
    pub schedule: DynSchedule,
}

/// First-meeting results of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeetingReport {
    /// `meetings[i][j]` (for `i < j`): absolute slot of the first meeting,
    /// if it happened within the horizon.
    pub first_meeting: HashMap<(usize, usize), u64>,
    /// Pairs with overlapping sets that failed to meet within the horizon.
    pub missed: Vec<(usize, usize)>,
    /// The horizon used.
    pub horizon: u64,
}

impl MeetingReport {
    /// Time-to-rendezvous for a pair, measured from the later wake slot.
    pub fn ttr(&self, i: usize, j: usize, agents: &[Agent]) -> Option<u64> {
        let key = if i < j { (i, j) } else { (j, i) };
        let t = *self.first_meeting.get(&key)?;
        let both_awake = agents[i].wake.max(agents[j].wake);
        Some(t - both_awake)
    }

    /// Whether every overlapping pair met.
    pub fn all_met(&self) -> bool {
        self.missed.is_empty()
    }
}

/// A configured multi-agent simulation.
pub struct Simulation {
    agents: Vec<Agent>,
}

impl Simulation {
    /// Creates a simulation over the given agents.
    pub fn new(agents: Vec<Agent>) -> Self {
        Simulation { agents }
    }

    /// The agents.
    pub fn agents(&self) -> &[Agent] {
        &self.agents
    }

    /// The overlapping (i, j) pairs, i < j — the work list of a run.
    fn overlapping_pairs(&self) -> Vec<(usize, usize)> {
        let n = self.agents.len();
        let mut pending = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                if self.agents[i].set.overlaps(&self.agents[j].set) {
                    pending.push((i, j));
                }
            }
        }
        pending
    }

    /// Runs the simulation for `horizon` absolute slots, recording the
    /// first meeting slot of every overlapping pair.
    ///
    /// Equivalent to [`Self::run_with`] under the default (auto-detected)
    /// thread count; the report is bit-identical for every thread count.
    pub fn run(&self, horizon: u64) -> MeetingReport {
        self.run_with(horizon, &ParallelConfig::default())
    }

    /// [`Self::run`] with an explicit thread-count policy.
    ///
    /// A meeting is two *awake* agents hopping on the same channel in the
    /// same slot. Agents whose sets do not overlap are ignored (they can
    /// never meet).
    ///
    /// Single-threaded, the engine advances in shared blocks (the
    /// block-fill/pair-major scan described on `run_sequential` in the
    /// source); with more threads the overlapping pairs
    /// are sharded into chunked tasks on the work-stealing orchestrator
    /// ([`pool::run_indexed`]), each pair resolved by an independent
    /// two-agent block scan over the shared read-only schedules. Both
    /// paths compute the exact per-pair first-meeting slot, so the report
    /// is identical regardless of `cfg`.
    pub fn run_with(&self, horizon: u64, cfg: &ParallelConfig) -> MeetingReport {
        let pending = self.overlapping_pairs();
        // Pairs per orchestrator task: small enough to steal, large enough
        // to amortize task bookkeeping over several block scans.
        const PAIRS_PER_TASK: usize = 4;
        let tasks: Vec<&[(usize, usize)]> = pending.chunks(PAIRS_PER_TASK.max(1)).collect();
        if cfg.effective_threads(tasks.len()) <= 1 {
            return self.run_sequential(horizon, pending);
        }
        let meetings: Vec<Vec<Option<u64>>> = pool::run_indexed(tasks, cfg, |_idx, chunk| {
            chunk
                .iter()
                .map(|&(i, j)| self.pair_first_meeting(i, j, horizon))
                .collect()
        });
        let mut first_meeting = HashMap::new();
        let mut missed = Vec::new();
        for (&(i, j), met) in pending.iter().zip(meetings.iter().flatten()) {
            match met {
                Some(t) => {
                    first_meeting.insert((i, j), *t);
                }
                None => missed.push((i, j)),
            }
        }
        MeetingReport {
            first_meeting,
            missed,
            horizon,
        }
    }

    /// First absolute slot at which agents `i` and `j` are both awake and
    /// on the same channel — an independent two-agent block scan, the unit
    /// of parallelism of [`Self::run_with`].
    fn pair_first_meeting(&self, i: usize, j: usize, horizon: u64) -> Option<u64> {
        const BLOCK: usize = 512;
        let (ai, aj) = (&self.agents[i], &self.agents[j]);
        let start = ai.wake.max(aj.wake);
        if start >= horizon {
            return None;
        }
        let mut bufi = [0u64; BLOCK];
        let mut bufj = [0u64; BLOCK];
        let mut t = start;
        while t < horizon {
            let len = (horizon - t).min(BLOCK as u64) as usize;
            ai.schedule.fill_channels(t - ai.wake, &mut bufi[..len]);
            aj.schedule.fill_channels(t - aj.wake, &mut bufj[..len]);
            for x in 0..len {
                if bufi[x] == bufj[x] {
                    return Some(t + x as u64);
                }
            }
            t += len as u64;
        }
        None
    }

    /// The single-threaded engine: advances in blocks, filling each
    /// *agent's* channels once per block through the bulk
    /// [`fill_channels`](rdv_core::schedule::Schedule::fill_channels)
    /// kernel into a flat per-agent buffer (`0` marks not-yet-awake slots —
    /// channels are 1-indexed, so the sentinel is unambiguous), then
    /// resolving each pending pair by a pair-major scan over the two
    /// buffers. This replaces the former per-slot `HashMap<channel,
    /// Vec<agent>>` grouping and its linear membership probes, and shares
    /// each agent's fill across all of its pairs (the dense-population
    /// advantage the per-pair parallel scan trades away).
    fn run_sequential(&self, horizon: u64, mut pending: Vec<(usize, usize)>) -> MeetingReport {
        const BLOCK: usize = 512;
        let n = self.agents.len();
        let mut first_meeting = HashMap::new();
        // How many pending pairs each agent participates in — agents at
        // zero (disjoint sets, or all their pairs already met) skip the
        // block fill entirely.
        let mut pending_pairs = vec![0usize; n];
        for &(i, j) in &pending {
            pending_pairs[i] += 1;
            pending_pairs[j] += 1;
        }
        let mut bufs: Vec<Vec<u64>> = vec![vec![0u64; BLOCK]; n];
        let mut block_start = 0u64;
        while block_start < horizon && !pending.is_empty() {
            let len = (horizon - block_start).min(BLOCK as u64) as usize;
            let block_end = block_start + len as u64;
            for ((agent, buf), &in_play) in
                self.agents.iter().zip(bufs.iter_mut()).zip(&pending_pairs)
            {
                if in_play == 0 {
                    continue;
                }
                if agent.wake >= block_end {
                    buf[..len].fill(0);
                    continue;
                }
                let awake_from = agent.wake.max(block_start);
                let lead = (awake_from - block_start) as usize;
                buf[..lead].fill(0);
                agent
                    .schedule
                    .fill_channels(awake_from - agent.wake, &mut buf[lead..len]);
            }
            pending.retain(|&(i, j)| {
                let (bi, bj) = (&bufs[i], &bufs[j]);
                for x in 0..len {
                    let c = bi[x];
                    if c != 0 && c == bj[x] {
                        first_meeting.insert((i, j), block_start + x as u64);
                        pending_pairs[i] -= 1;
                        pending_pairs[j] -= 1;
                        return false;
                    }
                }
                true
            });
            block_start = block_end;
        }
        MeetingReport {
            first_meeting,
            missed: pending,
            horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{AgentCtx, Algorithm};

    fn agent(algo: Algorithm, n: u64, channels: &[u64], wake: u64, seed: u64) -> Agent {
        let set = ChannelSet::new(channels.iter().copied()).unwrap();
        let ctx = AgentCtx {
            wake,
            agent_seed: seed,
            shared_seed: 42,
        };
        Agent {
            schedule: algo.make(n, &set, &ctx).expect("valid agent"),
            set,
            wake,
        }
    }

    #[test]
    fn two_agents_meet() {
        let a = agent(Algorithm::Ours, 16, &[1, 5, 9], 0, 0);
        let b = agent(Algorithm::Ours, 16, &[5, 12], 7, 1);
        let sim = Simulation::new(vec![a, b]);
        let report = sim.run(100_000);
        assert!(report.all_met());
        let ttr = report.ttr(0, 1, sim.agents()).unwrap();
        assert!(ttr < 100_000);
        // Symmetric access works too.
        assert_eq!(report.ttr(1, 0, sim.agents()), Some(ttr));
    }

    #[test]
    fn disjoint_agents_ignored() {
        let a = agent(Algorithm::Ours, 16, &[1, 2], 0, 0);
        let b = agent(Algorithm::Ours, 16, &[3, 4], 0, 1);
        let sim = Simulation::new(vec![a, b]);
        let report = sim.run(1_000);
        assert!(report.all_met()); // nothing pending
        assert_eq!(report.ttr(0, 1, sim.agents()), None);
    }

    #[test]
    fn meeting_respects_wake_times() {
        // Before both are awake no meeting can be recorded.
        let a = agent(Algorithm::Ours, 8, &[3], 0, 0);
        let b = agent(Algorithm::Ours, 8, &[3], 50, 1);
        let sim = Simulation::new(vec![a, b]);
        let report = sim.run(200);
        let t = report.first_meeting[&(0, 1)];
        assert_eq!(t, 50, "constant channel agents meet the slot both awake");
        assert_eq!(report.ttr(0, 1, sim.agents()), Some(0));
    }

    #[test]
    fn many_agents_all_pairs() {
        // Five agents on a small universe; every overlapping pair must meet
        // within the Theorem 3 bound.
        let sets: [&[u64]; 5] = [&[1, 2], &[2, 3], &[3, 4], &[4, 5, 1], &[1, 3, 5]];
        let agents: Vec<Agent> = sets
            .iter()
            .enumerate()
            .map(|(i, s)| agent(Algorithm::Ours, 5, s, (i as u64) * 13, i as u64))
            .collect();
        let sim = Simulation::new(agents);
        let report = sim.run(1 << 16);
        assert!(report.all_met(), "missed: {:?}", report.missed);
    }

    #[test]
    fn block_engine_matches_per_slot_reference() {
        // The block/pair-major engine must agree exactly with a slot-by-slot
        // reference over staggered wakes and a horizon that is not a
        // multiple of the block size.
        let sets: [&[u64]; 4] = [&[1, 2, 9], &[2, 5], &[5, 9, 11], &[1, 11]];
        let agents: Vec<Agent> = sets
            .iter()
            .enumerate()
            .map(|(i, s)| agent(Algorithm::Ours, 12, s, (i as u64) * 317, i as u64))
            .collect();
        let horizon = 2_777u64;
        let sim = Simulation::new(agents);
        let report = sim.run(horizon);
        let agents = sim.agents();
        for i in 0..agents.len() {
            for j in i + 1..agents.len() {
                if !agents[i].set.overlaps(&agents[j].set) {
                    continue;
                }
                let expected = (0..horizon).find(|&t| {
                    t >= agents[i].wake
                        && t >= agents[j].wake
                        && agents[i].schedule.channel_at(t - agents[i].wake)
                            == agents[j].schedule.channel_at(t - agents[j].wake)
                });
                assert_eq!(
                    report.first_meeting.get(&(i, j)).copied(),
                    expected,
                    "pair ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn parallel_run_matches_sequential_exactly() {
        // Mixed algorithms, staggered wakes, a horizon off the block
        // boundary: every thread count must produce the identical report.
        let sets: [&[u64]; 5] = [&[1, 2, 9], &[2, 5], &[5, 9, 11], &[1, 11], &[3, 4]];
        let algos = [
            Algorithm::Ours,
            Algorithm::Crseq,
            Algorithm::Drds,
            Algorithm::Ours,
            Algorithm::Random,
        ];
        let agents: Vec<Agent> = sets
            .iter()
            .zip(algos)
            .enumerate()
            .map(|(i, (s, algo))| agent(algo, 12, s, (i as u64) * 271, i as u64))
            .collect();
        let sim = Simulation::new(agents);
        let horizon = 3_333u64;
        let sequential = sim.run_with(horizon, &crate::pool::ParallelConfig::with_threads(1));
        for threads in [2usize, 4, 8] {
            let parallel =
                sim.run_with(horizon, &crate::pool::ParallelConfig::with_threads(threads));
            assert_eq!(sequential, parallel, "threads = {threads}");
        }
        assert_eq!(sequential, sim.run(horizon));
    }

    #[test]
    fn horizon_cuts_off() {
        let a = agent(Algorithm::Ours, 16, &[1, 5, 9], 0, 0);
        let b = agent(Algorithm::Ours, 16, &[5, 12], 0, 1);
        let sim = Simulation::new(vec![a, b]);
        let report = sim.run(1);
        // With a 1-slot horizon the pair may or may not have met; report
        // must be internally consistent either way.
        assert_eq!(report.all_met(), report.first_meeting.contains_key(&(0, 1)));
    }
}
