//! The multi-agent discrete-time simulator.

use crate::algo::DynSchedule;
use rdv_core::channel::ChannelSet;
use std::collections::HashMap;

/// One simulated agent.
pub struct Agent {
    /// The agent's channel set.
    pub set: ChannelSet,
    /// Absolute wake slot.
    pub wake: u64,
    /// The agent's schedule (local time).
    pub schedule: DynSchedule,
}

/// First-meeting results of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeetingReport {
    /// `meetings[i][j]` (for `i < j`): absolute slot of the first meeting,
    /// if it happened within the horizon.
    pub first_meeting: HashMap<(usize, usize), u64>,
    /// Pairs with overlapping sets that failed to meet within the horizon.
    pub missed: Vec<(usize, usize)>,
    /// The horizon used.
    pub horizon: u64,
}

impl MeetingReport {
    /// Time-to-rendezvous for a pair, measured from the later wake slot.
    pub fn ttr(&self, i: usize, j: usize, agents: &[Agent]) -> Option<u64> {
        let key = if i < j { (i, j) } else { (j, i) };
        let t = *self.first_meeting.get(&key)?;
        let both_awake = agents[i].wake.max(agents[j].wake);
        Some(t - both_awake)
    }

    /// Whether every overlapping pair met.
    pub fn all_met(&self) -> bool {
        self.missed.is_empty()
    }
}

/// A configured multi-agent simulation.
pub struct Simulation {
    agents: Vec<Agent>,
}

impl Simulation {
    /// Creates a simulation over the given agents.
    pub fn new(agents: Vec<Agent>) -> Self {
        Simulation { agents }
    }

    /// The agents.
    pub fn agents(&self) -> &[Agent] {
        &self.agents
    }

    /// Runs the simulation for `horizon` absolute slots, recording the
    /// first meeting slot of every overlapping pair.
    ///
    /// A meeting is two *awake* agents hopping on the same channel in the
    /// same slot. Agents whose sets do not overlap are ignored (they can
    /// never meet).
    pub fn run(&self, horizon: u64) -> MeetingReport {
        let n = self.agents.len();
        let mut pending: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                if self.agents[i].set.overlaps(&self.agents[j].set) {
                    pending.push((i, j));
                }
            }
        }
        let mut first_meeting = HashMap::new();
        let mut on_channel: HashMap<u64, Vec<usize>> = HashMap::new();
        for t in 0..horizon {
            if pending.is_empty() {
                break;
            }
            on_channel.clear();
            for (idx, agent) in self.agents.iter().enumerate() {
                if t >= agent.wake {
                    let c = agent.schedule.channel_at(t - agent.wake).get();
                    on_channel.entry(c).or_default().push(idx);
                }
            }
            pending.retain(|&(i, j)| {
                let met = on_channel.values().any(|group| {
                    group.contains(&i) && group.contains(&j)
                });
                if met {
                    first_meeting.insert((i, j), t);
                }
                !met
            });
        }
        MeetingReport {
            first_meeting,
            missed: pending,
            horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{AgentCtx, Algorithm};

    fn agent(algo: Algorithm, n: u64, channels: &[u64], wake: u64, seed: u64) -> Agent {
        let set = ChannelSet::new(channels.iter().copied()).unwrap();
        let ctx = AgentCtx {
            wake,
            agent_seed: seed,
            shared_seed: 42,
        };
        Agent {
            schedule: algo.make(n, &set, &ctx).expect("valid agent"),
            set,
            wake,
        }
    }

    #[test]
    fn two_agents_meet() {
        let a = agent(Algorithm::Ours, 16, &[1, 5, 9], 0, 0);
        let b = agent(Algorithm::Ours, 16, &[5, 12], 7, 1);
        let sim = Simulation::new(vec![a, b]);
        let report = sim.run(100_000);
        assert!(report.all_met());
        let ttr = report.ttr(0, 1, sim.agents()).unwrap();
        assert!(ttr < 100_000);
        // Symmetric access works too.
        assert_eq!(report.ttr(1, 0, sim.agents()), Some(ttr));
    }

    #[test]
    fn disjoint_agents_ignored() {
        let a = agent(Algorithm::Ours, 16, &[1, 2], 0, 0);
        let b = agent(Algorithm::Ours, 16, &[3, 4], 0, 1);
        let sim = Simulation::new(vec![a, b]);
        let report = sim.run(1_000);
        assert!(report.all_met()); // nothing pending
        assert_eq!(report.ttr(0, 1, sim.agents()), None);
    }

    #[test]
    fn meeting_respects_wake_times() {
        // Before both are awake no meeting can be recorded.
        let a = agent(Algorithm::Ours, 8, &[3], 0, 0);
        let b = agent(Algorithm::Ours, 8, &[3], 50, 1);
        let sim = Simulation::new(vec![a, b]);
        let report = sim.run(200);
        let t = report.first_meeting[&(0, 1)];
        assert_eq!(t, 50, "constant channel agents meet the slot both awake");
        assert_eq!(report.ttr(0, 1, sim.agents()), Some(0));
    }

    #[test]
    fn many_agents_all_pairs() {
        // Five agents on a small universe; every overlapping pair must meet
        // within the Theorem 3 bound.
        let sets: [&[u64]; 5] = [&[1, 2], &[2, 3], &[3, 4], &[4, 5, 1], &[1, 3, 5]];
        let agents: Vec<Agent> = sets
            .iter()
            .enumerate()
            .map(|(i, s)| agent(Algorithm::Ours, 5, s, (i as u64) * 13, i as u64))
            .collect();
        let sim = Simulation::new(agents);
        let report = sim.run(1 << 16);
        assert!(report.all_met(), "missed: {:?}", report.missed);
    }

    #[test]
    fn horizon_cuts_off() {
        let a = agent(Algorithm::Ours, 16, &[1, 5, 9], 0, 0);
        let b = agent(Algorithm::Ours, 16, &[5, 12], 0, 1);
        let sim = Simulation::new(vec![a, b]);
        let report = sim.run(1);
        // With a 1-slot horizon the pair may or may not have met; report
        // must be internally consistent either way.
        assert_eq!(
            report.all_met(),
            report.first_meeting.contains_key(&(0, 1))
        );
    }
}
