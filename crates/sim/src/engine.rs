//! The multi-agent discrete-time simulator: a shared-arena engine that
//! fills every agent's schedule **once** per block and resolves all
//! pending pairs over the shared read-only block rows.
//!
//! # The shared block arena
//!
//! The engine advances time in blocks of `BLOCK` (512) slots. Each block
//! is a barrier tree step on the work-stealing orchestrator
//! ([`pool::run_tree_barrier`]):
//!
//! 1. **Fill** — every in-play agent's channels for the block are
//!    computed once, sharded into agent chunks; each fill task *returns*
//!    its chunk's rows as an owned buffer, which the expansion barrier
//!    publishes read-only to every resolve task ([`pool::ParentOutputs`])
//!    — no atomics, so the fill loops autovectorize and the one-thread
//!    engine runs the identical plain-`&mut [u64]` code inline.
//!    Schedules are prepared once per run
//!    ([`PreparedSchedule::new_capped`], budgeted across the population)
//!    and reused across every block. `0` marks not-yet-awake slots
//!    (channels are 1-indexed, so the sentinel is unambiguous).
//! 2. **Resolve** — pending pairs are resolved in parallel over the
//!    published rows, in one of two modes (see [`ResolveMode`]).
//!
//! The per-pair engine this replaces re-filled each agent's schedule once
//! per *pair* it participated in — `O(pairs)` fills per block, ~500k
//! redundant fills per block on a dense 1k-agent population. The arena
//! pays `O(agents)` fills per block regardless of density.
//!
//! # Pair-major vs bucket resolution
//!
//! *Pair-major* scans each pending pair's two rows — `O(pairs · BLOCK)`
//! per block, unbeatable when pairs are scarce. When the universe fits
//! the plane budget, pair-major blocks pack each row into **bit-planes**
//! ([`rdv_core::bitplane`]): one presence plane plus one plane per
//! channel-id bit, so a single word-wide AND/XNOR chain resolves 64
//! slots of a pair comparison and `trailing_zeros` extracts the meeting
//! slot branch-free. Universes past the budget (e.g. 2⁴⁰ coalition
//! channels) keep the `u64`-per-slot rows. When pending pairs vastly
//! outnumber agents, the engine instead builds a per-slot channel→agents
//! bucket index from the rows and reads meetings straight out of the
//! buckets (two agents in one bucket *are* a meeting), which costs
//! `O(agents · BLOCK + meetings)` — see [`ResolveMode`] for the
//! crossover heuristic. Every mode and layout computes the exact
//! per-pair first meeting slot, so the report is bit-identical across
//! modes, layouts, and thread counts (`tests/multiuser_arena.rs`
//! property-tests this against a slot-by-slot reference).

use crate::algo::DynSchedule;
use crate::pool::{self, ParallelConfig};
use rdv_core::bitplane;
use rdv_core::channel::ChannelSet;
use rdv_core::compiled::PreparedSchedule;
use rdv_core::fault::{FaultPlan, InPlayWindow};
use rdv_core::schedule::Schedule;
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// Slots per arena block: large enough to amortize fills and task
/// scheduling, small enough that the `n × BLOCK` arena of a 10k-agent
/// population stays cache- and memory-friendly (40 MiB).
const BLOCK: usize = 512;

/// Total compiled-schedule table budget across the population, in slots
/// (64 MiB of `u64` tables). Each agent gets an equal share as its
/// [`PreparedSchedule::new_capped`] period cap; agents whose period does
/// not fit fall back to their raw block-fill kernel.
const COMPILE_BUDGET_SLOTS: u64 = 1 << 23;

/// [`ResolveMode::Auto`] switches from pair-major to the bucket scan when
/// pending pairs exceed this multiple of in-play agents. The model:
/// pair-major costs ~`pending · BLOCK` row-scan steps per block, the
/// bucket scan ~`agents · BLOCK` gather steps plus the regrouping and
/// bucket-pair emissions — so the scan wins once each agent carries a
/// few dozen pending pairs. 16 is the measured crossover on clustered
/// populations (see `benches/multiuser.rs`); the exact value only
/// matters near the boundary, where the two modes cost the same.
///
/// Public so density-aware consumers (the `bench_report` speedup gate)
/// classify cells by the same threshold the engine uses.
pub const BUCKET_CROSSOVER: usize = 16;

/// [`ResolveMode::Auto`]'s crossover when the pair-major kernel runs on
/// **bit-planes**: the packed kernel compares 64 slots per word op, so it
/// stays ahead of the bucket scan to much denser workloads than the
/// slotwise kernel's [`BUCKET_CROSSOVER`]. Measured on the clustered
/// 512-agent bench the packed row scan and the bucket scan cost about the
/// same near ~128 pending pairs per in-play agent.
pub const PLANE_BUCKET_CROSSOVER: usize = 128;

/// The bucket scan filters emissions through an `n(n−1)/2`-bit met-pair
/// bitset; cap the population it is allocated for (64 MiB at the cap).
/// Beyond it the engine stays pair-major.
const MAX_BUCKET_AGENTS: usize = 1 << 15;

/// Population range over which [`Simulation::overlapping_pairs`] uses
/// the channel-inverted index (`O(n·k + Σ_c |bucket_c|² + n²/64)`)
/// instead of the nested `O(n²·k)` set-overlap scan: below the floor the
/// nested scan is cheap anyway, above the ceiling the index's
/// `n(n−1)/2`-bit marking set (512 MiB at the ceiling) outgrows the win
/// and the memory-proportional nested scan resumes.
const INDEXED_OVERLAP_MIN_AGENTS: usize = 256;
const INDEXED_OVERLAP_MAX_AGENTS: usize = 1 << 17;

/// One simulated agent.
pub struct Agent {
    /// The agent's channel set.
    pub set: ChannelSet,
    /// Absolute wake slot.
    pub wake: u64,
    /// The agent's schedule (local time).
    pub schedule: DynSchedule,
    /// Schedule-sharing key: agents carrying the **same** `Some` key
    /// promise their `schedule`s are interchangeable (identical
    /// `channel_at` for every slot — e.g. the same deterministic
    /// algorithm on the same channel set), letting the engine compile
    /// one period table per key instead of one per agent. Clustered
    /// populations repeat channel sets heavily, so this collapses the
    /// compile path from `O(agents)` to `O(distinct sets)`. `None` (the
    /// safe default) never shares.
    pub share_key: Option<u64>,
}

/// How the engine resolves pending pairs against the filled arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResolveMode {
    /// Choose per block: pair-major until pending pairs exceed
    /// `BUCKET_CROSSOVER` (16)× the in-play agents, bucket scan beyond. The
    /// choice is re-evaluated every block — dense populations start in
    /// bucket mode and drop back to pair-major as pairs meet and leave.
    #[default]
    Auto,
    /// Always scan each pending pair's two arena rows
    /// (`O(pairs · BLOCK)` per block).
    PairMajor,
    /// Always build the per-slot channel→agents bucket index
    /// (`O(agents · BLOCK + meetings)` per block). Falls back to
    /// pair-major above `MAX_BUCKET_AGENTS` (32 768) agents.
    BucketScan,
}

/// Row layout of pair-major blocks: whether the fill packs each agent's
/// row into bit-planes ([`rdv_core::bitplane`]) for the word-parallel
/// pair kernel.
///
/// Layout, like [`ResolveMode`], never changes the report — only how
/// fast it is computed. `Slotwise` is kept overridable so the
/// differential tests and the bench's bitplane-speedup baseline can pin
/// the reference layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanePolicy {
    /// Pack bit-planes whenever the block resolves pair-major and the
    /// universe's channel-id width fits
    /// [`bitplane::PLANE_BITS_BUDGET`]; wider universes keep the
    /// slotwise rows automatically.
    #[default]
    Auto,
    /// Always use the `u64`-per-slot rows (the reference layout).
    Slotwise,
}

/// Full engine configuration: thread policy plus resolution mode.
///
/// The default (auto threads, auto mode) is what [`Simulation::run`]
/// uses. Every combination produces a bit-identical [`MeetingReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineConfig {
    /// Worker-thread policy for both arena phases.
    pub parallel: ParallelConfig,
    /// Pair-resolution mode (kept overridable for tests and benches; the
    /// default adapts per block).
    pub mode: ResolveMode,
    /// Row layout of pair-major blocks (kept overridable for the
    /// differential tests and the bitplane-speedup baseline; the default
    /// packs bit-planes whenever the universe fits the plane budget).
    pub plane: PlanePolicy,
    /// Optional deterministic fault plan — per-epoch channel outage masks
    /// and per-agent arrival/departure windows. `None` (the default) runs
    /// the fault-free paper model; a quiet plan (both rates zero) is
    /// observationally identical to `None`. Faults mask *presence*, not
    /// the schedule clock: an agent's schedule still runs on local time
    /// since its `wake`, but slots outside its in-play window, and slots
    /// whose channel is blacked out, become the no-meet sentinel.
    pub faults: Option<FaultPlan>,
}

/// A map from agent pairs `(i, j)`, `i < j`, to first-meeting slots,
/// backed by a pair-sorted vector — iteration order, `Debug`, and any
/// serialization derived from it are deterministic, unlike the
/// `HashMap` this replaces.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MeetingMap {
    /// Sorted by pair, each pair present at most once.
    entries: Vec<((usize, usize), u64)>,
}

impl MeetingMap {
    /// Sorts raw `(pair, slot)` entries into a map. Callers guarantee
    /// pair uniqueness (each engine records a pair's first meeting once).
    fn from_entries(mut entries: Vec<((usize, usize), u64)>) -> Self {
        entries.sort_unstable();
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate pair in meeting map"
        );
        MeetingMap { entries }
    }

    /// The first-meeting slot of pair `(i, j)`, in either order.
    pub fn get(&self, i: usize, j: usize) -> Option<u64> {
        let key = if i < j { (i, j) } else { (j, i) };
        self.entries
            .binary_search_by_key(&key, |&(pair, _)| pair)
            .ok()
            .map(|at| self.entries[at].1)
    }

    /// Whether pair `(i, j)` met.
    pub fn contains(&self, i: usize, j: usize) -> bool {
        self.get(i, j).is_some()
    }

    /// Number of pairs that met.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pair met.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `((i, j), slot)` in increasing pair order.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), u64)> + '_ {
        self.entries.iter().copied()
    }

    /// The sorted `(pair, slot)` entries.
    pub fn as_slice(&self) -> &[((usize, usize), u64)] {
        &self.entries
    }
}

/// Why a pair with overlapping channel sets failed to meet — the
/// deterministic cause tag on every missed-pair record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MissCause {
    /// Both agents were still in play when the horizon ran out: a longer
    /// run could have met them.
    HorizonExhausted,
    /// The pair's joint in-play window closed before the horizon — at
    /// least one agent departed (fault-plan churn) without meeting, so no
    /// horizon extension would help.
    Departed,
}

/// A pair that failed to meet, tagged with why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MissedPair {
    /// The pair `(i, j)`, `i < j`.
    pub pair: (usize, usize),
    /// Why they never met. Fault-free runs always report
    /// [`MissCause::HorizonExhausted`].
    pub cause: MissCause,
}

/// First-meeting results of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeetingReport {
    /// For each overlapping pair `(i, j)` (`i < j`) that met within the
    /// horizon: the absolute slot of the first meeting.
    pub first_meeting: MeetingMap,
    /// Pairs with overlapping sets that failed to meet within the
    /// horizon, sorted by pair, each tagged with its cause.
    pub missed: Vec<MissedPair>,
    /// The horizon used.
    pub horizon: u64,
}

impl MeetingReport {
    /// Time-to-rendezvous for a pair, measured from the later wake slot.
    pub fn ttr(&self, i: usize, j: usize, agents: &[Agent]) -> Option<u64> {
        let t = self.first_meeting.get(i, j)?;
        let both_awake = agents[i].wake.max(agents[j].wake);
        Some(t - both_awake)
    }

    /// Whether every overlapping pair met.
    pub fn all_met(&self) -> bool {
        self.missed.is_empty()
    }

    /// The missed pairs themselves, cause-agnostic, in sorted order.
    pub fn missed_pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.missed.iter().map(|m| m.pair)
    }

    /// How many missed pairs carry `cause`.
    pub fn missed_with_cause(&self, cause: MissCause) -> usize {
        self.missed.iter().filter(|m| m.cause == cause).count()
    }
}

/// Index of pair `(i, j)`, `i < j`, in the flattened upper triangle of an
/// `n × n` matrix — the bit layout of the met-pair and overlap bitsets.
fn pair_bit(i: usize, j: usize, n: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

fn test_bit(bits: &[u64], at: usize) -> bool {
    bits[at / 64] & (1 << (at % 64)) != 0
}

fn set_bit(bits: &mut [u64], at: usize) {
    bits[at / 64] |= 1 << (at % 64);
}

/// How one block's filled rows are laid out inside their chunk buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowLayout {
    /// One `u64` channel per slot — `len` words per agent row. The
    /// layout the bucket scan gathers from (it needs channel *values*)
    /// and the fallback for universes past the plane budget.
    Slotwise,
    /// Bit-planes: a presence plane plus `nbits` channel-bit planes of
    /// `words` words each per agent row (see [`bitplane::pack_row`]).
    Planes {
        /// Channel-id bit width of the universe.
        nbits: u32,
        /// Words per plane (`len.div_ceil(64)`).
        words: usize,
    },
}

impl RowLayout {
    /// Words each agent row occupies in its fill chunk for a `len`-slot
    /// block.
    fn row_words(self, len: usize) -> usize {
        match self {
            RowLayout::Slotwise => len,
            RowLayout::Planes { nbits, words } => (1 + nbits as usize) * words,
        }
    }
}

/// Where a block's filled rows live: the one-thread engine's own chunk
/// buffers, or the owned chunk buffers the fill barrier published
/// ([`pool::ParentOutputs`]). Either way the rows are plain `&[u64]` —
/// the resolve kernels never touch an atomic.
#[derive(Clone, Copy)]
enum RowChunks<'a> {
    Seq(&'a [Vec<u64>]),
    Barrier(pool::ParentOutputs<'a, Vec<u64>>),
}

/// Read-only access to every filled row of one block, whatever produced
/// or laid them out.
#[derive(Clone, Copy)]
struct BlockRows<'a> {
    chunks: RowChunks<'a>,
    /// Agent index → (fill chunk, row index within the chunk). Entries
    /// of agents outside the block's in-play set are stale and never
    /// read (pending pairs only reference loaded agents).
    locate: &'a [(u32, u32)],
    row_words: usize,
}

impl<'a> BlockRows<'a> {
    fn row(&self, ai: usize) -> &'a [u64] {
        let (ci, k) = self.locate[ai];
        let chunk: &'a [u64] = match self.chunks {
            RowChunks::Seq(chunks) => &chunks[ci as usize],
            RowChunks::Barrier(outputs) => outputs.get(ci as usize),
        };
        &chunk[k as usize * self.row_words..(k as usize + 1) * self.row_words]
    }
}

/// Fills `row` (one slot per entry) with the channels an agent hops for
/// the block starting at `block_start`, masked for presence: slots
/// before the agent wakes or arrives, at or after it departs, and slots
/// whose channel `plan` blacks out all become the no-meet sentinel `0`.
///
/// This is the one masking routine of the workspace: the arena fill
/// (whose slotwise *and* bit-plane blocks pack exactly this row) and the
/// per-pair reference both go through it, so the layouts cannot drift on
/// fault semantics (`tests/fault_injection.rs` pins them against each
/// other and a naive oracle).
fn fill_masked_row<S: Schedule>(
    schedule: &S,
    wake: u64,
    window: InPlayWindow,
    plan: Option<&FaultPlan>,
    block_start: u64,
    row: &mut [u64],
) {
    let len = row.len();
    let block_end = block_start + len as u64;
    if wake >= block_end || window.arrive >= block_end || window.depart <= block_start {
        row.fill(0);
        return;
    }
    let awake_from = wake.max(block_start).max(window.arrive);
    let lead = (awake_from - block_start) as usize;
    row[..lead].fill(0);
    schedule.fill_channels(awake_from - wake, &mut row[lead..]);
    if let Some(p) = plan {
        for (x, c) in row[lead..].iter_mut().enumerate() {
            let t = awake_from + x as u64;
            if t >= window.depart || !p.channel_available(*c, t) {
                *c = 0;
            }
        }
    }
}

/// A configured multi-agent simulation.
pub struct Simulation {
    agents: Vec<Agent>,
}

impl Simulation {
    /// Creates a simulation over the given agents.
    pub fn new(agents: Vec<Agent>) -> Self {
        Simulation { agents }
    }

    /// The agents.
    pub fn agents(&self) -> &[Agent] {
        &self.agents
    }

    /// The overlapping (i, j) pairs, i < j, in lexicographic order — the
    /// work list of a run.
    ///
    /// Small populations use the direct nested set-overlap scan. Large
    /// ones invert the population into a channel→agents index and mark
    /// co-owning pairs in a bitset: `O(n²)` pairwise `overlaps()` calls
    /// (each `O(k log k)`) would dominate the whole run at 10k agents,
    /// while the index costs one bit-or per co-ownership and a linear
    /// bitset sweep. Populations beyond the index's memory ceiling drop
    /// back to the nested scan, which allocates only the output.
    fn overlapping_pairs(&self) -> Vec<(usize, usize)> {
        let n = self.agents.len();
        if !(INDEXED_OVERLAP_MIN_AGENTS..=INDEXED_OVERLAP_MAX_AGENTS).contains(&n) {
            let mut pending = Vec::new();
            for i in 0..n {
                for j in i + 1..n {
                    if self.agents[i].set.overlaps(&self.agents[j].set) {
                        pending.push((i, j));
                    }
                }
            }
            return pending;
        }
        let mut by_channel: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, agent) in self.agents.iter().enumerate() {
            for &c in agent.set.as_slice() {
                by_channel.entry(c).or_default().push(i as u32);
            }
        }
        let mut bits = vec![0u64; (n * (n - 1) / 2).div_ceil(64)];
        for bucket in by_channel.values() {
            for (at, &i) in bucket.iter().enumerate() {
                for &j in &bucket[at + 1..] {
                    // Buckets are built in ascending agent order, so i < j.
                    set_bit(&mut bits, pair_bit(i as usize, j as usize, n));
                }
            }
        }
        let mut pending = Vec::new();
        let mut bit = 0usize;
        for i in 0..n {
            let mut j = i + 1;
            while j < n {
                // Whole-word skip keeps sparse populations linear in the
                // bitset, not in n².
                if bit.is_multiple_of(64) && bits[bit / 64] == 0 {
                    let skip = 64.min(n - j);
                    j += skip;
                    bit += skip;
                    continue;
                }
                if test_bit(&bits, bit) {
                    pending.push((i, j));
                }
                j += 1;
                bit += 1;
            }
        }
        pending
    }

    /// Maps each agent to its schedule-sharing group: agents with equal
    /// `Some` [`Agent::share_key`]s share a group, keyless agents get
    /// their own. Group ids are assigned in first-appearance order, so
    /// `group_of[i] == prepared.len()` exactly when agent `i` opens a
    /// new group — the invariant the prepare loop in
    /// [`Self::run_engine`] relies on.
    fn schedule_group_indices(&self) -> Vec<usize> {
        let mut by_key: HashMap<u64, usize> = HashMap::new();
        let mut next = 0usize;
        self.agents
            .iter()
            .map(|a| {
                let g = match a.share_key {
                    Some(key) => *by_key.entry(key).or_insert(next),
                    None => next,
                };
                if g == next {
                    next += 1;
                }
                g
            })
            .collect()
    }

    /// How many distinct schedules the arena engine prepares (and, when
    /// their periods fit the budget, compiles) for this population — the
    /// observable the share-key dedup regression tests pin.
    pub fn schedule_groups(&self) -> usize {
        self.schedule_group_indices()
            .into_iter()
            .max()
            .map_or(0, |g| g + 1)
    }

    /// Runs the simulation for `horizon` absolute slots, recording the
    /// first meeting slot of every overlapping pair.
    ///
    /// Equivalent to [`Self::run_engine`] under the default
    /// (auto-detected) configuration; the report is bit-identical for
    /// every thread count and resolution mode.
    pub fn run(&self, horizon: u64) -> MeetingReport {
        self.run_engine(horizon, &EngineConfig::default())
    }

    /// [`Self::run`] with an explicit thread-count policy.
    pub fn run_with(&self, horizon: u64, cfg: &ParallelConfig) -> MeetingReport {
        self.run_engine(
            horizon,
            &EngineConfig {
                parallel: *cfg,
                ..EngineConfig::default()
            },
        )
    }

    /// Tags a missed pair with its deterministic cause: `Departed` when
    /// the pair's joint in-play window under `plan` closed before the
    /// horizon (no extension would meet them), `HorizonExhausted`
    /// otherwise. A pure function of `(plan, pair, horizon)`, shared by
    /// the arena engine and the per-pair reference so their reports stay
    /// bit-identical.
    fn missed_pair(i: usize, j: usize, horizon: u64, plan: Option<&FaultPlan>) -> MissedPair {
        let cause = match plan {
            None => MissCause::HorizonExhausted,
            Some(p) => {
                let close = p.agent_window(i).depart.min(p.agent_window(j).depart);
                if close < horizon {
                    MissCause::Departed
                } else {
                    MissCause::HorizonExhausted
                }
            }
        };
        MissedPair {
            pair: (i, j),
            cause,
        }
    }

    /// The shared-arena engine (see the module docs for the design).
    ///
    /// A meeting is two *awake* agents hopping on the same channel in the
    /// same slot. Agents whose sets do not overlap are ignored (they can
    /// never meet). Every configuration — any thread count, any
    /// [`ResolveMode`] — computes the exact per-pair first-meeting slot,
    /// so the report is identical regardless of `cfg`.
    pub fn run_engine(&self, horizon: u64, cfg: &EngineConfig) -> MeetingReport {
        let n = self.agents.len();
        // Quiet plans (both rates zero) take the unfaulted fast path so a
        // no-op plan is observationally identical to no plan.
        let plan = cfg.faults.filter(|p| !p.is_quiet());
        let mut pending = self.overlapping_pairs();
        if pending.is_empty() || horizon == 0 {
            return MeetingReport {
                first_meeting: MeetingMap::default(),
                missed: pending
                    .into_iter()
                    .map(|(i, j)| Self::missed_pair(i, j, horizon, plan.as_ref()))
                    .collect(),
                horizon,
            };
        }
        // Per-agent in-play windows of the fault plan, resolved once: the
        // fill phase masks outside-window slots to the no-meet sentinel
        // and the resolve phase retires pairs whose joint window closed.
        let windows: Option<Vec<InPlayWindow>> =
            plan.map(|p| (0..n).map(|i| p.agent_window(i)).collect());
        let mut departed: Vec<(usize, usize)> = Vec::new();
        let mut entries: Vec<((usize, usize), u64)> = Vec::new();
        // Pending-pair count per agent: agents at zero (disjoint sets, or
        // all their pairs already met) drop out of the block fill.
        let mut load = vec![0u32; n];
        for &(i, j) in &pending {
            load[i] += 1;
            load[j] += 1;
        }
        // Compiled-schedule reuse across blocks *and* across agents:
        // agents sharing a `share_key` share one prepared schedule. The
        // period cap stays the per-*agent* budget share — measured on the
        // clustered 512-agent bench, raising it to a per-group share
        // compiles tables too large for cache and costs the fill phase
        // ~2× — so sharing strictly reduces compile time and table
        // memory (groups ≤ agents) without changing which schedules
        // compile or how fills behave.
        let group_of = self.schedule_group_indices();
        let groups = group_of.iter().copied().max().map_or(0, |g| g + 1);
        let cap = COMPILE_BUDGET_SLOTS / n.max(1) as u64;
        let mut prepared: Vec<PreparedSchedule<&DynSchedule>> = Vec::with_capacity(groups);
        for (i, &g) in group_of.iter().enumerate() {
            if g == prepared.len() {
                prepared.push(PreparedSchedule::new_capped(&self.agents[i].schedule, cap));
            }
        }
        let max_channel = self
            .agents
            .iter()
            .map(|a| a.set.max_channel().get())
            .max()
            .unwrap_or(0);
        // Bit-plane eligibility is a run-level fact: the universe's
        // channel-id width either fits the plane budget or it does not
        // (the 2⁴⁰-channel coalition universe stays slotwise). Which
        // blocks actually pack planes is decided per block — the bucket
        // scan gathers channel values, so only pair-major blocks do.
        let nbits = bitplane::plane_bits(max_channel);
        let planes_ok = cfg.plane == PlanePolicy::Auto && nbits <= bitplane::PLANE_BITS_BUDGET;
        let bucket_usable = n <= MAX_BUCKET_AGENTS && cfg.mode != ResolveMode::PairMajor;
        // Met-pair bitset, the bucket scan's emission filter; allocated
        // lazily on the first bucket block (backfilled from `entries` so
        // earlier pair-major meetings are not re-emitted).
        let mut met: Vec<u64> = Vec::new();
        // Agent → (fill chunk, row offset) map, rebuilt per block from
        // the block's fill chunks; hoisted so the allocation is paid
        // once per run.
        let mut locate: Vec<(u32, u32)> = vec![(0, 0); n];

        let mut block_start = 0u64;
        while block_start < horizon && !pending.is_empty() {
            // Retire pairs whose joint in-play window has already closed:
            // no current or later block can meet them, so they leave the
            // work list (and their agents' load counts) now and are
            // tagged `Departed` in the final report.
            if let Some(w) = &windows {
                pending.retain(|&(i, j)| {
                    if w[i].depart.min(w[j].depart) <= block_start {
                        load[i] -= 1;
                        load[j] -= 1;
                        departed.push((i, j));
                        false
                    } else {
                        true
                    }
                });
                if pending.is_empty() {
                    break;
                }
            }
            let len = (horizon - block_start).min(BLOCK as u64) as usize;
            let block_end = block_start + len as u64;
            let in_play: Vec<u32> = (0..n as u32).filter(|&i| load[i as usize] > 0).collect();
            let threads = cfg
                .parallel
                .effective_threads(in_play.len().max(pending.len()));
            let use_bucket = bucket_usable
                && match cfg.mode {
                    ResolveMode::BucketScan => true,
                    ResolveMode::Auto => {
                        // The packed pair kernel holds to much denser
                        // workloads than the slotwise one, so its
                        // crossover into the bucket scan sits higher.
                        let crossover = if planes_ok {
                            PLANE_BUCKET_CROSSOVER
                        } else {
                            BUCKET_CROSSOVER
                        };
                        pending.len() >= crossover * in_play.len()
                    }
                    ResolveMode::PairMajor => false,
                };
            if use_bucket && met.is_empty() {
                met = vec![0u64; (n * (n - 1) / 2).div_ceil(64)];
                for &((i, j), _) in &entries {
                    set_bit(&mut met, pair_bit(i, j, n));
                }
            }
            let layout = if planes_ok && !use_bucket {
                RowLayout::Planes {
                    nbits,
                    words: bitplane::plane_words(len),
                }
            } else {
                RowLayout::Slotwise
            };
            let row_words = layout.row_words(len);
            let fill_tasks: Vec<&[u32]> = in_play
                .chunks(pool::chunk_size(in_play.len(), threads))
                .collect();
            for (ci, chunk) in fill_tasks.iter().enumerate() {
                for (k, &ai) in chunk.iter().enumerate() {
                    locate[ai as usize] = (ci as u32, k as u32);
                }
            }
            let agents = &self.agents;
            let prepared = &prepared;
            let group_of = &group_of;
            let windows = &windows;
            let plan_ref = plan.as_ref();
            // Phase 1: each fill task computes its agents' masked rows
            // for the block and *returns* them as one owned buffer (in
            // the block's layout) — the expansion barrier publishes the
            // buffers read-only to every resolve task.
            let fill_chunk = move |chunk: &[u32]| -> Vec<u64> {
                let mut rows: Vec<u64> = Vec::with_capacity(chunk.len() * row_words);
                let mut scratch = [0u64; BLOCK];
                for &ai in chunk {
                    let ai = ai as usize;
                    let agent = &agents[ai];
                    let window = windows.as_ref().map_or(InPlayWindow::ALWAYS, |w| w[ai]);
                    fill_masked_row(
                        &prepared[group_of[ai]],
                        agent.wake,
                        window,
                        plan_ref,
                        block_start,
                        &mut scratch[..len],
                    );
                    match layout {
                        RowLayout::Planes { nbits, words } => {
                            let base = rows.len();
                            rows.resize(base + row_words, 0);
                            bitplane::pack_row(&scratch[..len], nbits, words, &mut rows[base..]);
                        }
                        RowLayout::Slotwise => rows.extend_from_slice(&scratch[..len]),
                    }
                }
                rows
            };
            let locate_ref = &locate;
            if use_bucket {
                let slot_chunk = pool::chunk_size(len, threads);
                let slot_tasks: Vec<Range<usize>> = (0..len)
                    .step_by(slot_chunk)
                    .map(|lo| lo..(lo + slot_chunk).min(len))
                    .collect();
                let (met_ref, in_play_ref) = (&met, &in_play);
                let found: Vec<(u32, u32, u64)> = if threads <= 1 {
                    // One thread: fill and resolve inline through plain
                    // slices — no pool, no barrier, no atomics.
                    let chunk_rows: Vec<Vec<u64>> =
                        fill_tasks.iter().map(|&chunk| fill_chunk(chunk)).collect();
                    let rows = BlockRows {
                        chunks: RowChunks::Seq(&chunk_rows),
                        locate: locate_ref,
                        row_words,
                    };
                    slot_tasks
                        .into_iter()
                        .flat_map(|slots| {
                            bucket_scan(
                                &rows,
                                in_play_ref,
                                met_ref,
                                n,
                                max_channel,
                                slots,
                                block_start,
                            )
                        })
                        .collect()
                } else {
                    enum Parent<'a> {
                        Fill(&'a [u32]),
                        FanOut(Vec<Range<usize>>),
                    }
                    let parents: Vec<Parent> = fill_tasks
                        .iter()
                        .map(|&chunk| Parent::Fill(chunk))
                        .chain(std::iter::once(Parent::FanOut(slot_tasks)))
                        .collect();
                    let mut out = pool::run_tree_barrier(
                        parents,
                        &ParallelConfig::with_threads(threads),
                        |_pi, p| match p {
                            Parent::Fill(chunk) => (fill_chunk(chunk), Vec::new()),
                            Parent::FanOut(tasks) => (Vec::new(), tasks),
                        },
                        |_path, slots, outputs| {
                            let rows = BlockRows {
                                chunks: RowChunks::Barrier(outputs),
                                locate: locate_ref,
                                row_words,
                            };
                            bucket_scan(
                                &rows,
                                in_play_ref,
                                met_ref,
                                n,
                                max_channel,
                                slots,
                                block_start,
                            )
                        },
                    );
                    let (_, results) = out.pop().expect("the fan-out parent is always submitted");
                    results.into_iter().flatten().collect()
                };
                // Tasks cover ascending slot ranges and emit in ascending
                // slot order, so the first record of a pair is its first
                // meeting of the block.
                for (i, j, t) in found {
                    let (i, j) = (i as usize, j as usize);
                    let bit = pair_bit(i, j, n);
                    if !test_bit(&met, bit) {
                        set_bit(&mut met, bit);
                        entries.push(((i, j), t));
                        load[i] -= 1;
                        load[j] -= 1;
                    }
                }
                pending.retain(|&(i, j)| !test_bit(&met, pair_bit(i, j, n)));
            } else {
                let pair_tasks: Vec<&[(usize, usize)]> = pending
                    .chunks(pool::chunk_size(pending.len(), threads))
                    .collect();
                // The pair kernel: word-parallel over the planes, or the
                // slot-at-a-time scan on slotwise rows. Either way the
                // rows are plain slices the compiler can vectorize over.
                let resolve_chunk = |rows: &BlockRows<'_>, chunk: &[(usize, usize)]| {
                    chunk
                        .iter()
                        .map(|&(i, j)| {
                            let (ri, rj) = (rows.row(i), rows.row(j));
                            match layout {
                                RowLayout::Planes { nbits, words } => {
                                    bitplane::first_match(ri, rj, nbits, words)
                                        .map(|x| block_start + x as u64)
                                }
                                RowLayout::Slotwise => (0..len).find_map(|x| {
                                    let c = ri[x];
                                    if c != 0 && c == rj[x] {
                                        Some(block_start + x as u64)
                                    } else {
                                        None
                                    }
                                }),
                            }
                        })
                        .collect::<Vec<Option<u64>>>()
                };
                let results: Vec<Vec<Option<u64>>> = if threads <= 1 {
                    // One thread: fill and resolve inline through plain
                    // slices — no pool, no barrier, no atomics.
                    let chunk_rows: Vec<Vec<u64>> =
                        fill_tasks.iter().map(|&chunk| fill_chunk(chunk)).collect();
                    let rows = BlockRows {
                        chunks: RowChunks::Seq(&chunk_rows),
                        locate: locate_ref,
                        row_words,
                    };
                    pair_tasks
                        .iter()
                        .map(|&chunk| resolve_chunk(&rows, chunk))
                        .collect()
                } else {
                    enum Parent<'a> {
                        Fill(&'a [u32]),
                        FanOut(Vec<&'a [(usize, usize)]>),
                    }
                    let parents: Vec<Parent> = fill_tasks
                        .iter()
                        .map(|&chunk| Parent::Fill(chunk))
                        .chain(std::iter::once(Parent::FanOut(pair_tasks)))
                        .collect();
                    let mut out = pool::run_tree_barrier(
                        parents,
                        &ParallelConfig::with_threads(threads),
                        |_pi, p| match p {
                            Parent::Fill(chunk) => (fill_chunk(chunk), Vec::new()),
                            Parent::FanOut(tasks) => (Vec::new(), tasks),
                        },
                        |_path, chunk, outputs| {
                            let rows = BlockRows {
                                chunks: RowChunks::Barrier(outputs),
                                locate: locate_ref,
                                row_words,
                            };
                            resolve_chunk(&rows, chunk)
                        },
                    );
                    out.pop().expect("the fan-out parent is always submitted").1
                };
                let mut outcomes = results.into_iter().flatten();
                let track_met = !met.is_empty();
                pending.retain(|&(i, j)| {
                    match outcomes.next().expect("one outcome per pending pair") {
                        Some(t) => {
                            entries.push(((i, j), t));
                            if track_met {
                                set_bit(&mut met, pair_bit(i, j, n));
                            }
                            load[i] -= 1;
                            load[j] -= 1;
                            false
                        }
                        None => true,
                    }
                });
            }
            block_start = block_end;
        }
        pending.extend(departed);
        pending.sort_unstable();
        MeetingReport {
            first_meeting: MeetingMap::from_entries(entries),
            missed: pending
                .into_iter()
                .map(|(i, j)| Self::missed_pair(i, j, horizon, plan.as_ref()))
                .collect(),
            horizon,
        }
    }

    /// The seed per-pair engine, kept as the benchmark baseline and test
    /// reference: every pending pair is resolved by an independent
    /// two-agent block scan, re-filling each agent's schedule once per
    /// pair — `O(pairs)` fills per block, which is exactly the redundancy
    /// the arena engine eliminates. Produces the identical report.
    pub fn run_per_pair_reference(&self, horizon: u64, cfg: &ParallelConfig) -> MeetingReport {
        self.per_pair_reference_impl(horizon, cfg, None)
    }

    /// [`Self::run_per_pair_reference`] under a full engine config,
    /// honoring `cfg.faults` — the independent oracle the faulted arena
    /// engine is tested bit-identical against. Resolution mode is
    /// irrelevant here (every pair is an independent two-agent scan).
    pub fn run_per_pair_reference_with(&self, horizon: u64, cfg: &EngineConfig) -> MeetingReport {
        let plan = cfg.faults.filter(|p| !p.is_quiet());
        self.per_pair_reference_impl(horizon, &cfg.parallel, plan.as_ref())
    }

    fn per_pair_reference_impl(
        &self,
        horizon: u64,
        cfg: &ParallelConfig,
        plan: Option<&FaultPlan>,
    ) -> MeetingReport {
        let pending = self.overlapping_pairs();
        let threads = cfg.effective_threads(pending.len());
        let tasks: Vec<&[(usize, usize)]> = pending
            .chunks(pool::chunk_size(pending.len(), threads))
            .collect();
        let meetings: Vec<Vec<Option<u64>>> = pool::run_indexed(tasks, cfg, |_idx, chunk| {
            chunk
                .iter()
                .map(|&(i, j)| self.pair_first_meeting(i, j, horizon, plan))
                .collect()
        });
        let mut entries = Vec::new();
        let mut missed = Vec::new();
        for (&(i, j), met) in pending.iter().zip(meetings.iter().flatten()) {
            match met {
                Some(t) => entries.push(((i, j), *t)),
                None => missed.push((i, j)),
            }
        }
        missed.sort_unstable();
        MeetingReport {
            first_meeting: MeetingMap::from_entries(entries),
            missed: missed
                .into_iter()
                .map(|(i, j)| Self::missed_pair(i, j, horizon, plan))
                .collect(),
            horizon,
        }
    }

    /// First absolute slot at which agents `i` and `j` are both awake,
    /// both in play, and on the same *available* channel — the unit of
    /// parallelism of [`Self::run_per_pair_reference`]. The scan is
    /// clamped to the pair's joint in-play window, which is exactly what
    /// the arena engine's per-agent masking plus pair retirement compute.
    fn pair_first_meeting(
        &self,
        i: usize,
        j: usize,
        horizon: u64,
        plan: Option<&FaultPlan>,
    ) -> Option<u64> {
        let (ai, aj) = (&self.agents[i], &self.agents[j]);
        let (wi, wj) = match plan {
            Some(p) => (p.agent_window(i), p.agent_window(j)),
            None => (InPlayWindow::ALWAYS, InPlayWindow::ALWAYS),
        };
        let start = ai.wake.max(aj.wake).max(wi.arrive).max(wj.arrive);
        let end = horizon.min(wi.depart).min(wj.depart);
        if start >= end {
            return None;
        }
        let mut bufi = [0u64; BLOCK];
        let mut bufj = [0u64; BLOCK];
        let mut t = start;
        while t < end {
            let len = (end - t).min(BLOCK as u64) as usize;
            fill_masked_row(&ai.schedule, ai.wake, wi, plan, t, &mut bufi[..len]);
            fill_masked_row(&aj.schedule, aj.wake, wj, plan, t, &mut bufj[..len]);
            for x in 0..len {
                // Masked slots are 0 in *both* buffers, so a shared
                // blackout cannot read as a meeting — the same sentinel
                // contract the arena rows (and the presence plane) carry.
                let c = bufi[x];
                if c != 0 && c == bufj[x] {
                    return Some(t + x as u64);
                }
            }
            t += len as u64;
        }
        None
    }
}

/// Largest spectrum the bucket scan regroups through channel-indexed
/// counting buckets (`O(agents)` per slot); sparser spectra — e.g. the
/// 2⁴⁰-channel coalition universe — fall back to sorting each slot's
/// entries (`O(agents log agents)`).
const COUNTING_BUCKET_MAX_CHANNEL: u64 = 1 << 16;

/// Largest met-pair bitset (in `u64` words; 8 MiB) a bucket task clones
/// as its within-task emission filter. A freshly met pair keeps
/// co-occupying buckets for the rest of its block, so the filter is on
/// the scan's hottest path — a bit probe beats a hash probe by an order
/// of magnitude. Populations whose bitset exceeds the clone budget use a
/// hash set instead.
const LOCAL_FILTER_MAX_WORDS: usize = 1 << 20;

/// Within-task dedup filter of the bucket scan: admits each pair at most
/// once per task, and never a pair that already met in an earlier block.
enum PairFilter<'a> {
    /// A private clone of the met bitset; admitted pairs are marked
    /// locally so repeats are rejected by the same probe.
    Bits { local: Vec<u64> },
    /// Shared met bitset plus a hash set of locally admitted pairs, for
    /// populations whose bitset is too large to clone per task.
    Hash {
        met: &'a [u64],
        seen: HashSet<(u32, u32)>,
    },
}

impl<'a> PairFilter<'a> {
    fn new(met: &'a [u64]) -> Self {
        if met.len() <= LOCAL_FILTER_MAX_WORDS {
            PairFilter::Bits {
                local: met.to_vec(),
            }
        } else {
            PairFilter::Hash {
                met,
                seen: HashSet::new(),
            }
        }
    }

    /// Whether `(i, j)` is new to this task and unmet before the block.
    fn admit(&mut self, i: u32, j: u32, n: usize) -> bool {
        let bit = pair_bit(i as usize, j as usize, n);
        match self {
            PairFilter::Bits { local } => {
                if test_bit(local, bit) {
                    false
                } else {
                    set_bit(local, bit);
                    true
                }
            }
            PairFilter::Hash { met, seen } => !test_bit(met, bit) && seen.insert((i, j)),
        }
    }
}

/// The bucket resolve task: per slot of `slots`, groups the in-play
/// agents' row entries by channel and emits every co-bucketed pair not
/// yet met (`met` filters pairs from earlier blocks, `seen` dedupes
/// within the task, keeping the earliest slot since slots ascend).
///
/// `rows` must be slotwise — the gather needs channel *values*, which is
/// why bucket blocks never pack bit-planes. It is agent-major — each
/// agent's row is read sequentially — because reading the block
/// column-wise would take a cache miss per agent per slot. Grouping
/// indexes straight into per-channel buckets when the spectrum is small
/// enough to preallocate (the common population case) and sorts
/// otherwise.
fn bucket_scan(
    rows: &BlockRows<'_>,
    in_play: &[u32],
    met: &[u64],
    n: usize,
    max_channel: u64,
    slots: Range<usize>,
    block_start: u64,
) -> Vec<(u32, u32, u64)> {
    // Exact-capacity rows: almost every in-play agent contributes to
    // every slot, and letting the vectors grow geometrically instead was
    // measurably the scan's biggest cost.
    let mut per_slot: Vec<Vec<(u64, u32)>> = (0..slots.len())
        .map(|_| Vec::with_capacity(in_play.len()))
        .collect();
    for &ai in in_play {
        let row = &rows.row(ai as usize)[slots.start..slots.end];
        for (x, &c) in row.iter().enumerate() {
            if c != 0 {
                per_slot[x].push((c, ai));
            }
        }
    }
    let counting = max_channel <= COUNTING_BUCKET_MAX_CHANNEL;
    let mut channel_bucket: Vec<Vec<u32>> = if counting {
        vec![Vec::new(); max_channel as usize + 1]
    } else {
        Vec::new()
    };
    let mut touched: Vec<u64> = Vec::new();
    let mut found = Vec::new();
    let mut filter = PairFilter::new(met);
    let mut emit = |group: &[u32], t: u64, found: &mut Vec<(u32, u32, u64)>| {
        for (at, &i) in group.iter().enumerate() {
            for &j in &group[at + 1..] {
                // Groups are built in ascending agent order, so i < j.
                if filter.admit(i, j, n) {
                    found.push((i, j, t));
                }
            }
        }
    };
    for (x, entries) in per_slot.iter_mut().enumerate() {
        let t = block_start + (slots.start + x) as u64;
        if counting {
            for &(c, ai) in entries.iter() {
                let bucket = &mut channel_bucket[c as usize];
                if bucket.is_empty() {
                    touched.push(c);
                }
                bucket.push(ai);
            }
            for &c in &touched {
                let bucket = &mut channel_bucket[c as usize];
                if bucket.len() >= 2 {
                    emit(bucket, t, &mut found);
                }
                bucket.clear();
            }
            touched.clear();
        } else {
            entries.sort_unstable();
            let mut lo = 0;
            while lo < entries.len() {
                let c = entries[lo].0;
                let mut hi = lo + 1;
                while hi < entries.len() && entries[hi].0 == c {
                    hi += 1;
                }
                if hi - lo >= 2 {
                    let group: Vec<u32> = entries[lo..hi].iter().map(|&(_, ai)| ai).collect();
                    emit(&group, t, &mut found);
                }
                lo = hi;
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{AgentCtx, Algorithm};

    fn agent(algo: Algorithm, n: u64, channels: &[u64], wake: u64, seed: u64) -> Agent {
        let set = ChannelSet::new(channels.iter().copied()).unwrap();
        let ctx = AgentCtx {
            wake,
            agent_seed: seed,
            shared_seed: 42,
            faults: None,
        };
        Agent {
            schedule: algo.make(n, &set, &ctx).expect("valid agent"),
            set,
            wake,
            share_key: None,
        }
    }

    fn staggered_population(
        algos: &[Algorithm],
        sets: &[&[u64]],
        n: u64,
        stride: u64,
    ) -> Vec<Agent> {
        sets.iter()
            .zip(algos.iter().cycle())
            .enumerate()
            .map(|(i, (s, &algo))| agent(algo, n, s, (i as u64) * stride, i as u64))
            .collect()
    }

    #[test]
    fn two_agents_meet() {
        let a = agent(Algorithm::Ours, 16, &[1, 5, 9], 0, 0);
        let b = agent(Algorithm::Ours, 16, &[5, 12], 7, 1);
        let sim = Simulation::new(vec![a, b]);
        let report = sim.run(100_000);
        assert!(report.all_met());
        let ttr = report.ttr(0, 1, sim.agents()).unwrap();
        assert!(ttr < 100_000);
        // Symmetric access works too.
        assert_eq!(report.ttr(1, 0, sim.agents()), Some(ttr));
    }

    #[test]
    fn disjoint_agents_ignored() {
        let a = agent(Algorithm::Ours, 16, &[1, 2], 0, 0);
        let b = agent(Algorithm::Ours, 16, &[3, 4], 0, 1);
        let sim = Simulation::new(vec![a, b]);
        let report = sim.run(1_000);
        assert!(report.all_met()); // nothing pending
        assert_eq!(report.ttr(0, 1, sim.agents()), None);
    }

    #[test]
    fn meeting_respects_wake_times() {
        // Before both are awake no meeting can be recorded.
        let a = agent(Algorithm::Ours, 8, &[3], 0, 0);
        let b = agent(Algorithm::Ours, 8, &[3], 50, 1);
        let sim = Simulation::new(vec![a, b]);
        let report = sim.run(200);
        let t = report.first_meeting.get(0, 1).unwrap();
        assert_eq!(t, 50, "constant channel agents meet the slot both awake");
        assert_eq!(report.ttr(0, 1, sim.agents()), Some(0));
    }

    #[test]
    fn many_agents_all_pairs() {
        // Five agents on a small universe; every overlapping pair must meet
        // within the Theorem 3 bound.
        let sets: [&[u64]; 5] = [&[1, 2], &[2, 3], &[3, 4], &[4, 5, 1], &[1, 3, 5]];
        let agents = staggered_population(&[Algorithm::Ours], &sets, 5, 13);
        let sim = Simulation::new(agents);
        let report = sim.run(1 << 16);
        assert!(report.all_met(), "missed: {:?}", report.missed);
    }

    #[test]
    fn arena_engine_matches_per_slot_reference() {
        // The arena engine must agree exactly with a slot-by-slot
        // reference over staggered wakes and a horizon that is not a
        // multiple of the block size.
        let sets: [&[u64]; 4] = [&[1, 2, 9], &[2, 5], &[5, 9, 11], &[1, 11]];
        let agents = staggered_population(&[Algorithm::Ours], &sets, 12, 317);
        let horizon = 2_777u64;
        let sim = Simulation::new(agents);
        let report = sim.run(horizon);
        let agents = sim.agents();
        for i in 0..agents.len() {
            for j in i + 1..agents.len() {
                if !agents[i].set.overlaps(&agents[j].set) {
                    continue;
                }
                let expected = (0..horizon).find(|&t| {
                    t >= agents[i].wake
                        && t >= agents[j].wake
                        && agents[i].schedule.channel_at(t - agents[i].wake)
                            == agents[j].schedule.channel_at(t - agents[j].wake)
                });
                assert_eq!(report.first_meeting.get(i, j), expected, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn every_mode_and_thread_count_matches() {
        // Mixed algorithms, staggered wakes, a horizon off the block
        // boundary: every (mode × thread count) combination and the
        // per-pair reference must produce the identical report.
        let sets: [&[u64]; 5] = [&[1, 2, 9], &[2, 5], &[5, 9, 11], &[1, 11], &[3, 4]];
        let algos = [
            Algorithm::Ours,
            Algorithm::Crseq,
            Algorithm::Drds,
            Algorithm::Ours,
            Algorithm::Random,
        ];
        let agents = staggered_population(&algos, &sets, 12, 271);
        let sim = Simulation::new(agents);
        let horizon = 3_333u64;
        let baseline = sim.run_with(horizon, &ParallelConfig::with_threads(1));
        for mode in [
            ResolveMode::Auto,
            ResolveMode::PairMajor,
            ResolveMode::BucketScan,
        ] {
            for threads in [1usize, 2, 8] {
                let cfg = EngineConfig {
                    parallel: ParallelConfig::with_threads(threads),
                    mode,
                    plane: PlanePolicy::Auto,
                    faults: None,
                };
                assert_eq!(
                    baseline,
                    sim.run_engine(horizon, &cfg),
                    "mode = {mode:?}, threads = {threads}"
                );
            }
        }
        for threads in [1usize, 2, 8] {
            assert_eq!(
                baseline,
                sim.run_per_pair_reference(horizon, &ParallelConfig::with_threads(threads)),
                "per-pair reference at {threads} threads"
            );
        }
        assert_eq!(baseline, sim.run(horizon));
    }

    #[test]
    fn indexed_overlap_matches_nested_scan() {
        // A population pushed over the inverted-index threshold must
        // produce the same pair list as the nested reference.
        let mut agents = Vec::new();
        for i in 0..300u64 {
            let c1 = 1 + (i * 7) % 23;
            let c2 = 1 + (i * 13) % 23;
            let set: Vec<u64> = if c1 == c2 { vec![c1] } else { vec![c1, c2] };
            agents.push(agent(Algorithm::Ours, 23, &set, 0, i));
        }
        let sim = Simulation::new(agents);
        assert!(sim.agents().len() >= INDEXED_OVERLAP_MIN_AGENTS);
        let indexed = sim.overlapping_pairs();
        let mut nested = Vec::new();
        for i in 0..sim.agents().len() {
            for j in i + 1..sim.agents().len() {
                if sim.agents()[i].set.overlaps(&sim.agents()[j].set) {
                    nested.push((i, j));
                }
            }
        }
        assert_eq!(indexed, nested);
    }

    #[test]
    fn clustered_agents_dedupe_compiled_tables() {
        // 200 agents over 61 possible contiguous blocks: the arena engine
        // must prepare one schedule per *distinct* set, not per agent.
        let agents = crate::workload::clustered_agents(Algorithm::Ours, 64, 4, 200, 11, 128);
        let mut distinct: std::collections::HashSet<Vec<u64>> = std::collections::HashSet::new();
        for a in &agents {
            distinct.insert(a.set.as_slice().to_vec());
        }
        let sim = Simulation::new(agents);
        assert_eq!(
            sim.schedule_groups(),
            distinct.len(),
            "one compiled-table group per distinct (algorithm, set)"
        );
        assert!(
            sim.schedule_groups() < sim.agents().len(),
            "a clustered population must actually share schedules"
        );
    }

    #[test]
    fn share_keys_do_not_change_the_report() {
        // The deduped engine must produce the identical report with the
        // share keys stripped (every agent compiled separately).
        let n = 48u64;
        let horizon = 6_000u64;
        let keyed = Simulation::new(crate::workload::clustered_agents(
            Algorithm::Ours,
            n,
            4,
            60,
            5,
            300,
        ));
        assert!(keyed.schedule_groups() < 60);
        let mut stripped_agents =
            crate::workload::clustered_agents(Algorithm::Ours, n, 4, 60, 5, 300);
        for a in &mut stripped_agents {
            a.share_key = None;
        }
        let stripped = Simulation::new(stripped_agents);
        assert_eq!(stripped.schedule_groups(), 60);
        for mode in [
            ResolveMode::Auto,
            ResolveMode::PairMajor,
            ResolveMode::BucketScan,
        ] {
            for threads in [1usize, 4] {
                let cfg = EngineConfig {
                    parallel: ParallelConfig::with_threads(threads),
                    mode,
                    plane: PlanePolicy::Auto,
                    faults: None,
                };
                assert_eq!(
                    keyed.run_engine(horizon, &cfg),
                    stripped.run_engine(horizon, &cfg),
                    "dedupe changed the report ({mode:?}, {threads} threads)"
                );
            }
        }
    }

    #[test]
    fn random_agents_never_share() {
        // Seeded-random schedules differ per agent even on equal sets —
        // share_key must refuse them.
        assert_eq!(
            crate::workload::share_key(
                Algorithm::Random,
                16,
                &ChannelSet::new(vec![1, 2, 3]).unwrap()
            ),
            None
        );
        let agents = crate::workload::clustered_agents(Algorithm::Random, 16, 4, 24, 3, 64);
        let sim = Simulation::new(agents);
        assert_eq!(sim.schedule_groups(), 24);
    }

    #[test]
    fn share_keys_distinguish_universes() {
        // The same set under different universe sizes yields different
        // schedules (word lengths and primes scale with n), so the keys
        // must differ — equal keys would share a wrong compiled table.
        let set = ChannelSet::new(vec![1, 2, 3, 4]).unwrap();
        let k64 = crate::workload::share_key(Algorithm::Ours, 64, &set).unwrap();
        let k128 = crate::workload::share_key(Algorithm::Ours, 128, &set).unwrap();
        assert_ne!(k64, k128);
        // And different algorithms on the same (n, set) never collide.
        let crseq = crate::workload::share_key(Algorithm::Crseq, 64, &set).unwrap();
        assert_ne!(k64, crseq);
    }

    #[test]
    fn meeting_map_accessors() {
        let map = MeetingMap::from_entries(vec![((2, 5), 40), ((0, 1), 7)]);
        assert_eq!(map.get(0, 1), Some(7));
        assert_eq!(map.get(1, 0), Some(7));
        assert_eq!(map.get(5, 2), Some(40));
        assert_eq!(map.get(0, 2), None);
        assert!(map.contains(2, 5));
        assert_eq!(map.len(), 2);
        assert!(!map.is_empty());
        // Iteration is sorted regardless of insertion order.
        let pairs: Vec<(usize, usize)> = map.iter().map(|(p, _)| p).collect();
        assert_eq!(pairs, vec![(0, 1), (2, 5)]);
        assert_eq!(map.as_slice(), &[((0, 1), 7), ((2, 5), 40)]);
    }

    #[test]
    fn horizon_cuts_off() {
        let a = agent(Algorithm::Ours, 16, &[1, 5, 9], 0, 0);
        let b = agent(Algorithm::Ours, 16, &[5, 12], 0, 1);
        let sim = Simulation::new(vec![a, b]);
        let report = sim.run(1);
        // With a 1-slot horizon the pair may or may not have met; report
        // must be internally consistent either way.
        assert_eq!(report.all_met(), report.first_meeting.contains(0, 1));
        // A zero horizon reports every pair missed — fault-free runs
        // always tag misses as horizon exhaustion.
        let empty = sim.run(0);
        assert!(empty.first_meeting.is_empty());
        assert_eq!(
            empty.missed,
            vec![MissedPair {
                pair: (0, 1),
                cause: MissCause::HorizonExhausted,
            }]
        );
    }

    #[test]
    fn quiet_fault_plan_is_observationally_no_plan() {
        let sets: [&[u64]; 4] = [&[1, 2, 9], &[2, 5], &[5, 9, 11], &[1, 11]];
        let agents = staggered_population(&[Algorithm::Ours], &sets, 12, 200);
        let sim = Simulation::new(agents);
        let clean = sim.run(3_000);
        let quiet = sim.run_engine(
            3_000,
            &EngineConfig {
                faults: Some(FaultPlan::new(99, 64, 0, 0, 3_000)),
                ..EngineConfig::default()
            },
        );
        assert_eq!(clean, quiet);
    }

    #[test]
    fn outage_masks_delay_or_deny_meetings_identically_everywhere() {
        // Heavy outages must never *create* meetings (a faulted meeting
        // slot is also a clean meeting slot on an available channel), and
        // every (mode × thread count) plus the per-pair reference must
        // agree bit-for-bit on the faulted report.
        let sets: [&[u64]; 5] = [&[1, 2, 9], &[2, 5], &[5, 9, 11], &[1, 11], &[2, 9, 11]];
        let agents = staggered_population(&[Algorithm::Ours, Algorithm::Crseq], &sets, 12, 113);
        let sim = Simulation::new(agents);
        let horizon = 3_333u64;
        let plan = FaultPlan::new(7, 48, 300, 0, horizon);
        let clean = sim.run(horizon);
        let base_cfg = EngineConfig {
            parallel: ParallelConfig::with_threads(1),
            mode: ResolveMode::Auto,
            plane: PlanePolicy::Auto,
            faults: Some(plan),
        };
        let faulted = sim.run_engine(horizon, &base_cfg);
        for (pair, t) in faulted.first_meeting.iter() {
            assert!(
                plan.channel_available(
                    sim.agents()[pair.0]
                        .schedule
                        .channel_at(t - sim.agents()[pair.0].wake)
                        .into(),
                    t
                ),
                "pair {pair:?} met on a blacked-out channel at {t}"
            );
            let clean_t = clean.first_meeting.get(pair.0, pair.1).unwrap();
            assert!(t >= clean_t, "faults made pair {pair:?} meet earlier");
        }
        for mode in [
            ResolveMode::Auto,
            ResolveMode::PairMajor,
            ResolveMode::BucketScan,
        ] {
            for threads in [1usize, 2, 8] {
                let cfg = EngineConfig {
                    parallel: ParallelConfig::with_threads(threads),
                    mode,
                    plane: PlanePolicy::Auto,
                    faults: Some(plan),
                };
                assert_eq!(
                    faulted,
                    sim.run_engine(horizon, &cfg),
                    "faulted report diverged: mode = {mode:?}, threads = {threads}"
                );
                assert_eq!(
                    faulted,
                    sim.run_per_pair_reference_with(horizon, &cfg),
                    "per-pair faulted reference diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn churn_retires_departed_pairs_with_the_departed_cause() {
        // Full churn: every agent gets a bounded window. Pairs whose
        // joint window closes before the horizon and never met must be
        // tagged Departed; the arena engine and the per-pair reference
        // must agree on both the tags and the meetings.
        let sets: [&[u64]; 6] = [&[1, 2], &[2, 3], &[3, 4], &[4, 5, 1], &[1, 3, 5], &[2, 5]];
        let agents = staggered_population(&[Algorithm::Ours], &sets, 6, 29);
        let sim = Simulation::new(agents);
        let horizon = 2_048u64;
        let plan = FaultPlan::new(1234, 64, 0, 1000, horizon);
        let cfg = EngineConfig {
            parallel: ParallelConfig::with_threads(2),
            mode: ResolveMode::Auto,
            plane: PlanePolicy::Auto,
            faults: Some(plan),
        };
        let report = sim.run_engine(horizon, &cfg);
        assert_eq!(report, sim.run_per_pair_reference_with(horizon, &cfg));
        for m in &report.missed {
            let (i, j) = m.pair;
            let close = plan.agent_window(i).depart.min(plan.agent_window(j).depart);
            let expected = if close < horizon {
                MissCause::Departed
            } else {
                MissCause::HorizonExhausted
            };
            assert_eq!(m.cause, expected, "pair {:?}", m.pair);
        }
        // The meetings that do happen land inside both windows.
        for ((i, j), t) in report.first_meeting.iter() {
            assert!(plan.agent_window(i).contains(t), "agent {i} not in play");
            assert!(plan.agent_window(j).contains(t), "agent {j} not in play");
        }
    }
}
