//! Primary-user (PU) spectrum dynamics — the cognitive-radio setting of
//! the paper's introduction, made concrete.
//!
//! Cognitive agents sense *licensed* channels and may only use those whose
//! primary users are idle. This module models a spectrum of `n` channels
//! with seeded on/off primary-user activity and derives, for each agent, a
//! *sensed* channel set at its wake time. Rendezvous then runs on the
//! sensed sets — which is exactly the asymmetric model of the paper: two
//! agents at different locations (different interference) or waking at
//! different times sense different subsets, and the guarantee kicks in as
//! long as the subsets overlap.
//!
//! The simulator uses this for robustness experiments: how much PU churn
//! can the schedules tolerate before sensed sets diverge enough to stop
//! overlapping?

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdv_core::channel::ChannelSet;

/// A spectrum of `n` licensed channels with independent on/off primary
/// users, each alternating busy/idle periods of seeded pseudo-random
/// lengths.
#[derive(Debug, Clone)]
pub struct Spectrum {
    n: u64,
    /// Per-channel activity cycle: (idle_len, busy_len, phase).
    cycles: Vec<(u64, u64, u64)>,
}

impl Spectrum {
    /// Creates a spectrum with `n` channels whose primary users have mean
    /// idle/busy period `mean_period` slots (seeded).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `mean_period == 0`.
    pub fn new(n: u64, mean_period: u64, seed: u64) -> Self {
        assert!(n > 0, "empty spectrum");
        assert!(mean_period > 0, "degenerate period");
        let mut rng = StdRng::seed_from_u64(seed);
        let cycles = (0..n)
            .map(|_| {
                let idle = rng.gen_range(1..=2 * mean_period);
                let busy = rng.gen_range(1..=2 * mean_period);
                let phase = rng.gen_range(0..idle + busy);
                (idle, busy, phase)
            })
            .collect();
        Spectrum { n, cycles }
    }

    /// The universe size.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// Whether channel `c` is free of primary-user activity at slot `t`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ c ≤ n`.
    pub fn is_idle(&self, c: u64, t: u64) -> bool {
        assert!(c >= 1 && c <= self.n, "channel {c} out of range");
        let (idle, busy, phase) = self.cycles[(c - 1) as usize];
        (t + phase) % (idle + busy) < idle
    }

    /// The set of channels idle at slot `t`, restricted to those an agent
    /// can physically reach (`reachable`), or all of `[n]` if `None`.
    ///
    /// Returns `None` when nothing is available (the agent must wait).
    pub fn sensed_set(&self, t: u64, reachable: Option<&ChannelSet>) -> Option<ChannelSet> {
        let candidates: Vec<u64> = match reachable {
            Some(r) => r.iter().map(|c| c.get()).collect(),
            None => (1..=self.n).collect(),
        };
        let idle: Vec<u64> = candidates
            .into_iter()
            .filter(|&c| self.is_idle(c, t))
            .collect();
        ChannelSet::new(idle).ok()
    }

    /// Fraction of the spectrum idle at slot `t` — a load metric.
    pub fn idle_fraction(&self, t: u64) -> f64 {
        let idle = (1..=self.n).filter(|&c| self.is_idle(c, t)).count();
        idle as f64 / self.n as f64
    }
}

/// The outcome of a sensed-set rendezvous feasibility check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SensedOverlap {
    /// Both agents sensed spectrum and the sets overlap: rendezvous is
    /// guaranteed by Theorem 3 within the contained bound.
    Feasible {
        /// Channels common to both sensed sets.
        common: Vec<u64>,
    },
    /// Both sensed spectrum but the sets are disjoint: no blind scheme can
    /// ever rendezvous (the model's precondition fails).
    Disjoint,
    /// At least one agent sensed an empty spectrum.
    Starved,
}

/// Classifies the rendezvous feasibility of two agents sensing at
/// (possibly different) wake slots.
pub fn classify_overlap(
    spectrum: &Spectrum,
    wake_a: u64,
    wake_b: u64,
    reach_a: Option<&ChannelSet>,
    reach_b: Option<&ChannelSet>,
) -> SensedOverlap {
    let (Some(a), Some(b)) = (
        spectrum.sensed_set(wake_a, reach_a),
        spectrum.sensed_set(wake_b, reach_b),
    ) else {
        return SensedOverlap::Starved;
    };
    let common: Vec<u64> = a.intersection(&b).iter().map(|c| c.get()).collect();
    if common.is_empty() {
        SensedOverlap::Disjoint
    } else {
        SensedOverlap::Feasible { common }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdv_core::general::GeneralSchedule;
    use rdv_core::verify;

    #[test]
    fn idle_pattern_is_periodic_and_deterministic() {
        let s = Spectrum::new(8, 10, 42);
        for c in 1..=8u64 {
            let (idle, busy, _) = s.cycles[(c - 1) as usize];
            let period = idle + busy;
            for t in 0..3 * period {
                assert_eq!(s.is_idle(c, t), s.is_idle(c, t + period), "ch{c} t{t}");
            }
        }
        let s2 = Spectrum::new(8, 10, 42);
        assert_eq!(s.cycles, s2.cycles);
    }

    #[test]
    fn sensed_sets_are_subsets_of_reachable() {
        let s = Spectrum::new(16, 5, 7);
        let reach = ChannelSet::new(vec![2, 5, 9, 14]).unwrap();
        for t in 0..100 {
            if let Some(sensed) = s.sensed_set(t, Some(&reach)) {
                for c in sensed.iter() {
                    assert!(reach.contains(c.get()));
                    assert!(s.is_idle(c.get(), t));
                }
            }
        }
    }

    #[test]
    fn idle_fraction_in_unit_interval() {
        let s = Spectrum::new(32, 8, 1);
        for t in (0..500).step_by(37) {
            let f = s.idle_fraction(t);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn classification_covers_all_cases() {
        let s = Spectrum::new(12, 6, 3);
        // Full-reach agents at the same slot always feasibly overlap
        // (identical sensed sets) unless the spectrum is fully busy.
        match classify_overlap(&s, 4, 4, None, None) {
            SensedOverlap::Feasible { common } => assert!(!common.is_empty()),
            SensedOverlap::Starved => {} // legal if everything is busy at t=4
            SensedOverlap::Disjoint => panic!("same-slot full-reach cannot be disjoint"),
        }
        // Disjoint reachable bands are disjoint regardless of PU state.
        let left = ChannelSet::new(vec![1, 2, 3]).unwrap();
        let right = ChannelSet::new(vec![10, 11, 12]).unwrap();
        match classify_overlap(&s, 0, 0, Some(&left), Some(&right)) {
            SensedOverlap::Feasible { .. } => panic!("bands are disjoint"),
            SensedOverlap::Disjoint | SensedOverlap::Starved => {}
        }
    }

    #[test]
    fn end_to_end_sensed_rendezvous() {
        // Two agents sense at different wake slots; when feasible, the
        // Theorem 3 schedules built on the *sensed* sets must meet within
        // the bound — the full cognitive-radio pipeline.
        let n = 24u64;
        let spectrum = Spectrum::new(n, 12, 99);
        let mut feasible_checked = 0;
        for (wa, wb) in [(0u64, 5u64), (10, 3), (7, 7), (20, 40)] {
            if let SensedOverlap::Feasible { .. } = classify_overlap(&spectrum, wa, wb, None, None)
            {
                let a = spectrum.sensed_set(wa, None).expect("feasible");
                let b = spectrum.sensed_set(wb, None).expect("feasible");
                let sa = GeneralSchedule::asynchronous(n, a).expect("valid");
                let sb = GeneralSchedule::asynchronous(n, b.clone()).expect("valid");
                let bound = sa.ttr_bound(b.len());
                let shift = wb.saturating_sub(wa);
                assert!(
                    verify::async_ttr(&sa, &sb, shift, bound + 1).is_some(),
                    "feasible pair failed: wakes ({wa},{wb})"
                );
                feasible_checked += 1;
            }
        }
        assert!(
            feasible_checked > 0,
            "test vacuous: no feasible pair sampled"
        );
    }
}
