//! The measurement harness: a discrete-time multi-agent simulator and the
//! sweep machinery that regenerates the paper's evaluation.
//!
//! * [`algo`] — a uniform façade over every algorithm in the workspace
//!   (ours, the three deterministic baselines, random hopping, the two
//!   beacon protocols), so sweeps can be written once.
//! * [`workload`] — scenario generators: adversarial overlap-one pairs,
//!   random `k`-subsets, clustered spectrum, coalition (tiny sets in a huge
//!   universe), symmetric.
//! * [`engine`] — the multi-agent simulator: a shared-arena engine that
//!   fills each agent's schedule once per block (bit-plane-packed rows on
//!   plane-eligible universes) and resolves all pending pairs over the
//!   shared arena, with a density-adaptive bucket-scan resolution mode
//!   for dense populations.
//! * [`pool`] — the work-stealing parallel orchestrator: deterministic
//!   task-indexed sharding over the vendored crossbeam deques, the
//!   general task-tree API (`run_tree`) nested sweeps submit whole grids
//!   through, and its barrier variant (`run_tree_barrier`) behind the
//!   arena engine's fill/resolve split, with bit-identical results at
//!   every thread count.
//! * [`sweep`] — pairwise worst/mean time-to-rendezvous sweeps over shifts
//!   and seeds, submitted to [`pool`] as task trees (cells are parents,
//!   `(shift × seed)` chunks are children).
//! * [`stats`] — means, percentiles, and the log-log growth-exponent fits
//!   used to check the paper's asymptotic claims empirically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod engine;
pub mod pool;
pub mod spectrum;
pub mod stats;
pub mod sweep;
pub mod workload;

pub use algo::Algorithm;
pub use engine::{
    EngineConfig, MeetingMap, MeetingReport, MissCause, MissedPair, PlanePolicy, ResolveMode,
    Simulation,
};
pub use pool::{CancelToken, ParallelConfig, TaskPanic, TreePath};
pub use rdv_core::fault::{FaultPlan, FaultProfile, InPlayWindow};
pub use sweep::{
    sweep_lower_bound, sweep_lower_grid, sweep_pair_grid, sweep_pair_ttr, LowerBoundSweep,
    LowerCell, LowerSweepConfig, PairSweep, SweepCell, SweepConfig, SweepError,
};
