//! Pairwise time-to-rendezvous sweeps — the engine behind the Table 1 and
//! scaling experiments.
//!
//! Sweeps are **task-tree submissions** onto the work-stealing
//! orchestrator ([`crate::pool::run_tree`]): each `(algorithm, scenario)`
//! cell is a parent task whose expansion validates the cell and builds and
//! compiles its schedules **once** ([`PreparedSchedule`], shared read-only
//! via `Arc`), and whose children are `(shift × seed)` sample chunks sized
//! by [`pool::chunk_size`]. [`sweep_pair_grid`] / [`sweep_lower_grid`]
//! submit a whole grid of cells as one tree — children of different cells
//! steal from one another, so a slow cell no longer serializes an artifact
//! run — while [`sweep_pair_ttr`] / [`sweep_lower_bound`] are the
//! single-cell special cases. Every sample's randomness derives from its
//! grid position ([`pool::stream_seed`]), so a sweep's result is
//! bit-identical at 1, 2, or N threads (asserted by
//! `tests/parallel_determinism.rs` and `tests/task_tree.rs`).

use crate::algo::{AgentCtx, Algorithm, DynSchedule};
use crate::pool::{self, ParallelConfig};
use crate::stats::Summary;
use crate::workload::PairScenario;
use rdv_core::channel::ChannelSetError;
use rdv_core::compiled::PreparedSchedule;
use rdv_core::verify;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// Sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Number of relative wake-up shifts per scenario.
    pub shifts: u64,
    /// Stride between sampled shifts (1 = consecutive). Ignored when
    /// `spread_over_period` is set and the schedule reports a period.
    pub shift_stride: u64,
    /// Derive the stride from the schedule period so the sampled shifts
    /// cover one entire period — essential for worst-case (max) columns,
    /// since adversarial shifts of the `O(n²)`/`O(n³)` baselines live deep
    /// inside their periods.
    pub spread_over_period: bool,
    /// Seeds per scenario for randomized algorithms (ignored by
    /// deterministic ones, which run a single seed).
    pub seeds: u64,
    /// Simulation cut-off override (0 = use the algorithm default).
    pub horizon_override: u64,
    /// Worker threads for the parallel orchestrator (0 = auto-detect).
    /// Results are bit-identical for every value.
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            shifts: 32,
            shift_stride: 7,
            spread_over_period: true,
            seeds: 8,
            horizon_override: 0,
            threads: 0,
        }
    }
}

/// Why a sweep could not produce a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepError {
    /// A channel set failed validation (empty, zero channel, duplicate).
    InvalidSet(ChannelSetError),
    /// The two channel sets share no channel — rendezvous is impossible,
    /// and sweeping the full horizon for every shift would only burn time
    /// proving it.
    DisjointSets,
    /// The algorithm cannot be instantiated on the scenario (e.g. a set
    /// exceeding the universe `[n]`).
    Unsupported {
        /// The algorithm that refused.
        algorithm: Algorithm,
        /// The universe size it was asked for.
        n: u64,
    },
    /// Every `(shift, seed)` sample missed the horizon.
    NoSamples {
        /// How many samples failed.
        failures: usize,
    },
    /// Scenario parameters that can never produce a valid scenario
    /// (caught before any sampling).
    InvalidScenario {
        /// What the generator requires.
        reason: &'static str,
    },
    /// A randomized scenario sampler exceeded its retry budget in every
    /// backoff round — the typed replacement for the unbounded resampling
    /// loops that could spin forever on near-infeasible parameters.
    SamplingExhausted {
        /// Total draws attempted across all rounds before giving up.
        attempts: u32,
        /// Exponential backoff-in-attempts rounds used (the per-round
        /// draw budget doubles each round).
        rounds: u32,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::InvalidSet(e) => write!(f, "invalid channel set: {e}"),
            SweepError::DisjointSets => {
                write!(f, "channel sets are disjoint; rendezvous is impossible")
            }
            SweepError::Unsupported { algorithm, n } => {
                write!(
                    f,
                    "{algorithm} cannot be instantiated on this scenario at n={n}"
                )
            }
            SweepError::NoSamples { failures } => {
                write!(f, "all {failures} samples missed the horizon")
            }
            SweepError::InvalidScenario { reason } => {
                write!(f, "invalid scenario parameters: {reason}")
            }
            SweepError::SamplingExhausted { attempts, rounds } => {
                write!(
                    f,
                    "scenario sampler gave up after {attempts} draws across {rounds} backoff rounds"
                )
            }
        }
    }
}

impl std::error::Error for SweepError {}

impl From<ChannelSetError> for SweepError {
    fn from(e: ChannelSetError) -> Self {
        SweepError::InvalidSet(e)
    }
}

/// The result of sweeping one `(algorithm, scenario)` cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairSweep {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Universe size.
    pub n: u64,
    /// `|A|`.
    pub k: usize,
    /// `|B|`.
    pub ell: usize,
    /// TTR summary over all (shift, seed) samples.
    pub summary: Summary,
    /// Number of samples that failed to rendezvous within the horizon.
    pub failures: usize,
    /// The horizon used.
    pub horizon: u64,
}

impl PairSweep {
    /// The sweep as a JSON object — the repro pipeline's artifact row, and
    /// the witness the cross-thread-count determinism tests compare
    /// byte-for-byte.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("algorithm", Value::from(self.algorithm.to_string())),
            ("n", Value::from(self.n)),
            ("k", Value::from(self.k)),
            ("ell", Value::from(self.ell)),
            ("count", Value::from(self.summary.count)),
            ("max", Value::from(self.summary.max)),
            ("mean", Value::from(self.summary.mean)),
            ("p50", Value::from(self.summary.p50)),
            ("p95", Value::from(self.summary.p95)),
            ("failures", Value::from(self.failures)),
            ("horizon", Value::from(self.horizon)),
        ])
    }
}

/// The deterministic per-seed agent contexts: RNG streams derive from the
/// seed's grid index via [`pool::stream_seed`], never from thread identity
/// or execution order.
fn seed_ctxs(seed: u64, wake_b: u64) -> (AgentCtx, AgentCtx) {
    (
        AgentCtx {
            wake: 0,
            agent_seed: pool::stream_seed(seed, 0),
            shared_seed: seed,
            faults: None,
        },
        AgentCtx {
            wake: wake_b,
            agent_seed: pool::stream_seed(seed, 1),
            shared_seed: seed,
            faults: None,
        },
    )
}

/// One `(algorithm, scenario)` cell of a sweep grid — a parent task of
/// the task-tree submissions [`sweep_pair_grid`] builds whole measurement
/// grids from.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The algorithm to sweep.
    pub algorithm: Algorithm,
    /// Universe size.
    pub n: u64,
    /// The scenario to sweep.
    pub scenario: PairScenario,
    /// Per-cell sweep parameters. `cfg.threads` is ignored inside a grid —
    /// the grid's [`ParallelConfig`] governs the one shared pool.
    pub cfg: SweepConfig,
}

/// A seed's hoisted schedule pair; `None` marks a seed whose schedules
/// could not be instantiated, which chunk evaluation counts as one
/// failure per swept shift (matching the historical per-sample
/// accounting).
type PreparedPair = Option<(PreparedSchedule<DynSchedule>, PreparedSchedule<DynSchedule>)>;

/// The validated, construction-hoisted state of one pair-sweep cell: what
/// the cell's parent task computes when it expands, then shares read-only
/// (via `Arc`) with the cell's `(shift × seed)` chunk children.
struct PairSweepPlan {
    algorithm: Algorithm,
    n: u64,
    k: usize,
    ell: usize,
    horizon: u64,
    seeds: u64,
    shift_jobs: Vec<u64>,
    scenario: PairScenario,
    prepared: Option<Vec<PreparedPair>>,
}

impl PairSweepPlan {
    /// Validates the cell and hoists schedule construction out of the
    /// `(shift × seed)` grid: for every algorithm whose schedule does not
    /// depend on the wake slot ([`Algorithm::wake_sensitive`] is false —
    /// all but the beacon protocols) both schedules are built **once per
    /// seed** and compiled to period tables when small enough. The beacon
    /// protocols, whose schedules listen to a globally-timed stream, keep
    /// the per-(shift, seed) construction (inside the chunk children, so
    /// it parallelizes too).
    fn new(
        algorithm: Algorithm,
        n: u64,
        scenario: &PairScenario,
        cfg: &SweepConfig,
    ) -> Result<Self, SweepError> {
        if !scenario.a.overlaps(&scenario.b) {
            return Err(SweepError::DisjointSets);
        }
        let k = scenario.a.len();
        let ell = scenario.b.len();
        let horizon = if cfg.horizon_override > 0 {
            cfg.horizon_override
        } else {
            algorithm.horizon(n, k, ell)
        };
        let seeds = if algorithm.is_deterministic() {
            1
        } else {
            cfg.seeds.max(1)
        };

        // Probe instantiation once up front so an impossible scenario is a
        // typed error instead of `shifts × seeds` silent failures.
        let (probe_a, probe_b) = seed_ctxs(0, 0);
        if algorithm.make(n, &scenario.a, &probe_a).is_none()
            || algorithm.make(n, &scenario.b, &probe_b).is_none()
        {
            return Err(SweepError::Unsupported { algorithm, n });
        }

        let stride = if cfg.spread_over_period {
            // Probe one schedule for its period and spread shifts across
            // it, with a prime-ish offset so we don't only sample period
            // multiples.
            algorithm
                .make(n, &scenario.a, &AgentCtx::default())
                .and_then(|s| s.period_hint())
                .map(|p| (p / cfg.shifts.max(1)).max(1) | 1)
                .unwrap_or(cfg.shift_stride.max(1))
        } else {
            cfg.shift_stride.max(1)
        };
        let shift_jobs: Vec<u64> = (0..cfg.shifts).map(|i| i * stride).collect();

        let prepared: Option<Vec<PreparedPair>> = if algorithm.wake_sensitive() {
            None
        } else {
            Some(
                (0..seeds)
                    .map(|seed| {
                        let (ctx_a, ctx_b) = seed_ctxs(seed, 0);
                        match (
                            algorithm.make(n, &scenario.a, &ctx_a),
                            algorithm.make(n, &scenario.b, &ctx_b),
                        ) {
                            (Some(sa), Some(sb)) => {
                                Some((PreparedSchedule::new(sa), PreparedSchedule::new(sb)))
                            }
                            _ => None,
                        }
                    })
                    .collect(),
            )
        };

        Ok(PairSweepPlan {
            algorithm,
            n,
            k,
            ell,
            horizon,
            seeds,
            shift_jobs,
            scenario: scenario.clone(),
            prepared,
        })
    }

    /// Flat sample count (sample = shift-major, seed-minor).
    fn total_samples(&self) -> usize {
        self.shift_jobs.len() * self.seeds as usize
    }

    /// Evaluates one chunk of the flat sample grid — a child task's work.
    fn eval_chunk(&self, range: Range<usize>) -> (Vec<u64>, usize) {
        let mut local = Vec::with_capacity(range.len());
        let mut local_failures = 0usize;
        for sample in range {
            let shift = self.shift_jobs[sample / self.seeds as usize];
            let seed = (sample % self.seeds as usize) as u64;
            let outcome = if let Some(prepared) = &self.prepared {
                match &prepared[seed as usize] {
                    Some((sa, sb)) => verify::async_ttr_prepared(sa, sb, shift, self.horizon),
                    None => {
                        local_failures += 1;
                        continue;
                    }
                }
            } else {
                let (ctx_a, ctx_b) = seed_ctxs(seed, shift);
                let (Some(sa), Some(sb)) = (
                    self.algorithm.make(self.n, &self.scenario.a, &ctx_a),
                    self.algorithm.make(self.n, &self.scenario.b, &ctx_b),
                ) else {
                    local_failures += 1;
                    continue;
                };
                verify::async_ttr(&sa, &sb, shift, self.horizon)
            };
            match outcome {
                Some(ttr) => local.push(ttr),
                None => local_failures += 1,
            }
        }
        (local, local_failures)
    }

    /// Folds the chunk results (in child order, so the sample order is
    /// exactly the sequential one) into the cell's sweep summary.
    fn finish(&self, parts: Vec<(Vec<u64>, usize)>) -> Result<PairSweep, SweepError> {
        let mut samples = Vec::with_capacity(self.total_samples());
        let mut failures = 0usize;
        for (local, f) in parts {
            samples.extend(local);
            failures += f;
        }
        let summary = Summary::of(&samples).ok_or(SweepError::NoSamples { failures })?;
        Ok(PairSweep {
            algorithm: self.algorithm,
            n: self.n,
            k: self.k,
            ell: self.ell,
            summary,
            failures,
            horizon: self.horizon,
        })
    }
}

/// Chunks a plan's `total` flat samples into `(plan, range)` child tasks
/// sized by the workspace-wide [`pool::chunk_size`] policy. Chunk
/// boundaries never influence results — chunk outputs are folded back in
/// child order, reconstituting the sequential sample order exactly.
fn plan_chunks<T>(plan: &Arc<T>, total: usize, threads: usize) -> Vec<(Arc<T>, Range<usize>)> {
    let chunk = pool::chunk_size(total, threads);
    (0..total)
        .step_by(chunk)
        .map(|start| (Arc::clone(plan), start..(start + chunk).min(total)))
        .collect()
}

/// Sweeps a whole grid of cells as **one task-tree submission**: every
/// cell is a parent task that expands (on a worker) into its validated
/// `PairSweepPlan` plus `(shift × seed)` chunk children, all children
/// work-steal across the one shared pool regardless of which cell they
/// belong to, and per-cell results fold back in submission order.
///
/// Equivalent to calling [`sweep_pair_ttr`] per cell in order — the
/// sequential outer loop the artifact pipelines used to run — but the
/// pool is spawned once and a slow cell no longer serializes the grid.
/// Cell failures are per-cell `Err`s: one impossible cell does not poison
/// its neighbors. `tests/task_tree.rs` pins the per-cell equivalence,
/// `tests/repro_determinism.rs` the bit-identical artifacts.
pub fn sweep_pair_grid(
    cells: Vec<SweepCell>,
    parallel: &ParallelConfig,
) -> Vec<Result<PairSweep, SweepError>> {
    let threads = parallel.requested_threads();
    pool::run_tree(
        cells,
        parallel,
        move |_cell_index, cell: SweepCell| match PairSweepPlan::new(
            cell.algorithm,
            cell.n,
            &cell.scenario,
            &cell.cfg,
        ) {
            Ok(plan) => {
                let plan = Arc::new(plan);
                let kids = plan_chunks(&plan, plan.total_samples(), threads);
                (Ok(plan), kids)
            }
            Err(e) => (Err(e), Vec::new()),
        },
        |_path, (plan, range): (Arc<PairSweepPlan>, Range<usize>)| plan.eval_chunk(range),
    )
    .into_iter()
    .map(|(plan, parts)| plan.and_then(|p| p.finish(parts)))
    .collect()
}

/// Measures times-to-rendezvous for one algorithm on one scenario across
/// wake-up shifts (and seeds, for randomized algorithms) — the
/// single-cell case of [`sweep_pair_grid`].
///
/// Samples that miss the horizon are *counted* in `failures` and excluded
/// from the summary — for the deterministic algorithms a non-zero failure
/// count within their guarantee horizon indicates a bug and is asserted
/// against throughout the test suite.
///
/// Schedule construction is hoisted out of the `(shift × seed)` grid and
/// shared read-only across the work-stealing workers (see
/// `PairSweepPlan::new`).
///
/// # Errors
///
/// * [`SweepError::DisjointSets`] — the scenario's sets cannot rendezvous;
/// * [`SweepError::Unsupported`] — the algorithm refuses the scenario
///   (e.g. a channel exceeding the universe);
/// * [`SweepError::NoSamples`] — every sample missed the horizon.
pub fn sweep_pair_ttr(
    algorithm: Algorithm,
    n: u64,
    scenario: &PairScenario,
    cfg: &SweepConfig,
) -> Result<PairSweep, SweepError> {
    let parallel = ParallelConfig {
        threads: cfg.threads,
    };
    sweep_pair_grid(
        vec![SweepCell {
            algorithm,
            n,
            scenario: scenario.clone(),
            cfg: *cfg,
        }],
        &parallel,
    )
    .pop()
    .expect("one cell submitted, one result returned")
}

/// Parameters of a [`sweep_lower_bound`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerSweepConfig {
    /// Sweep shift `0` only (synchronous wake-up). The covering bound
    /// quantifies over shifts, so synchronous cells get the trivial bound.
    pub sync: bool,
    /// Sweep every shift in `[0, period_A)` when the period is at most
    /// this — the regime where `certified_bound ≤ witness_ttr` is a hard
    /// invariant rather than a sampled one.
    pub max_exhaustive_shifts: u64,
    /// Shifts to sample (spread over the period) when the period exceeds
    /// the exhaustive cap or is unknown.
    pub sampled_shifts: u64,
    /// Simulation cut-off override (0 = the algorithm default).
    pub horizon_override: u64,
    /// Worker threads (0 = auto-detect); results are bit-identical for
    /// every value.
    pub threads: usize,
}

impl Default for LowerSweepConfig {
    fn default() -> Self {
        LowerSweepConfig {
            sync: false,
            max_exhaustive_shifts: 1024,
            sampled_shifts: 64,
            horizon_override: 0,
            threads: 0,
        }
    }
}

/// One cell of the lower-bound reproduction grid: a certified lower bound
/// on the worst-over-shifts TTR plus the measured worst witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerBoundSweep {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Universe size.
    pub n: u64,
    /// `|A|`.
    pub k: usize,
    /// `|B|`.
    pub ell: usize,
    /// The certified lower bound ([`rdv_lower::best_bound`]'s covering
    /// argument; `0` when no bound applies).
    pub certified_bound: u64,
    /// What certified the bound.
    pub bound_kind: &'static str,
    /// Worst observed TTR over the swept shifts.
    pub witness_ttr: u64,
    /// The shift achieving `witness_ttr` (smallest such shift).
    pub witness_shift: u64,
    /// How many shifts were swept.
    pub shifts_swept: u64,
    /// Whether the sweep covered every shift in `[0, period_A)` — only
    /// then is `certified_bound ≤ witness_ttr` a certified invariant.
    pub exhaustive: bool,
    /// Shifts that missed the horizon (excluded from the witness).
    pub failures: usize,
    /// The horizon used.
    pub horizon: u64,
}

impl LowerBoundSweep {
    /// The cell as a JSON object — the `REPRO_lower` artifact row.
    pub fn to_json(&self) -> Value {
        Value::object([
            ("algorithm", Value::from(self.algorithm.to_string())),
            ("n", Value::from(self.n)),
            ("k", Value::from(self.k)),
            ("ell", Value::from(self.ell)),
            ("lower", Value::from(self.certified_bound)),
            ("lower_kind", Value::from(self.bound_kind)),
            ("measured", Value::from(self.witness_ttr)),
            ("witness_shift", Value::from(self.witness_shift)),
            ("shifts_swept", Value::from(self.shifts_swept)),
            ("exhaustive", Value::from(self.exhaustive)),
            ("failures", Value::from(self.failures)),
            ("horizon", Value::from(self.horizon)),
        ])
    }

    /// Whether the lower slice of the sandwich invariant is *certified*
    /// to hold: either the sweep was not exhaustive (sampled witnesses
    /// may legitimately sit below the bound), some shift missed the
    /// horizon (the true worst case is even larger), or the bound is
    /// respected outright.
    pub fn lower_slice_ok(&self) -> bool {
        !self.exhaustive || self.failures > 0 || self.certified_bound <= self.witness_ttr
    }
}

/// One `(algorithm, scenario)` cell of a lower-bound grid — the
/// [`sweep_lower_grid`] counterpart of [`SweepCell`].
#[derive(Debug, Clone)]
pub struct LowerCell {
    /// The algorithm to measure.
    pub algorithm: Algorithm,
    /// Universe size.
    pub n: u64,
    /// The scenario to measure.
    pub scenario: PairScenario,
    /// Per-cell parameters. `cfg.threads` is ignored inside a grid — the
    /// grid's [`ParallelConfig`] governs the one shared pool.
    pub cfg: LowerSweepConfig,
}

/// The validated state of one lower-bound cell: certified covering bound,
/// shift list, and hoisted schedules — computed when the cell's parent
/// task expands, shared read-only with its shift-chunk children.
struct LowerSweepPlan {
    algorithm: Algorithm,
    n: u64,
    k: usize,
    ell: usize,
    horizon: u64,
    certified_bound: u64,
    bound_kind: &'static str,
    shifts: Vec<u64>,
    exhaustive: bool,
    scenario: PairScenario,
    prepared: Option<(PreparedSchedule<DynSchedule>, PreparedSchedule<DynSchedule>)>,
}

impl LowerSweepPlan {
    fn new(
        algorithm: Algorithm,
        n: u64,
        scenario: &PairScenario,
        cfg: &LowerSweepConfig,
    ) -> Result<Self, SweepError> {
        if !scenario.a.overlaps(&scenario.b) {
            return Err(SweepError::DisjointSets);
        }
        let k = scenario.a.len();
        let ell = scenario.b.len();
        let horizon = if cfg.horizon_override > 0 {
            cfg.horizon_override
        } else {
            algorithm.horizon(n, k, ell)
        };

        let (ctx_a, ctx_b) = seed_ctxs(0, 0);
        let (Some(sa), Some(sb)) = (
            algorithm.make(n, &scenario.a, &ctx_a),
            algorithm.make(n, &scenario.b, &ctx_b),
        ) else {
            return Err(SweepError::Unsupported { algorithm, n });
        };

        // The certified lower bound for this concrete pair of schedules.
        let (certified_bound, bound_kind) = if cfg.sync {
            (0, "trivial (single alignment)")
        } else if algorithm.wake_sensitive() {
            (0, "none (wake-sensitive schedule)")
        } else {
            let bound = rdv_lower::best_bound(&sa, &sb);
            if sa.period_hint().is_some() {
                (bound, "covering (Thm 7 density argument)")
            } else {
                (bound, "none (aperiodic schedule)")
            }
        };

        // The shift list: exhaustive over one period of σ_A when it fits,
        // sampled with a period-spread stride otherwise.
        let (shifts, exhaustive): (Vec<u64>, bool) = if cfg.sync {
            (vec![0], false)
        } else {
            match sa.period_hint() {
                Some(p) if p <= cfg.max_exhaustive_shifts => ((0..p).collect(), true),
                hint => {
                    let count = cfg.sampled_shifts.max(1);
                    let stride = hint.map(|p| (p / count).max(1) | 1).unwrap_or(13);
                    ((0..count).map(|i| i * stride).collect(), false)
                }
            }
        };

        let prepared = if algorithm.wake_sensitive() {
            None
        } else {
            Some((PreparedSchedule::new(sa), PreparedSchedule::new(sb)))
        };

        Ok(LowerSweepPlan {
            algorithm,
            n,
            k,
            ell,
            horizon,
            certified_bound,
            bound_kind,
            shifts,
            exhaustive,
            scenario: scenario.clone(),
            prepared,
        })
    }

    /// Evaluates one chunk of the shift list — a child task's work.
    /// Returns `(worst ttr with its smallest shift, failures)`.
    fn eval_chunk(&self, range: Range<usize>) -> (Option<(u64, u64)>, usize) {
        let mut worst: Option<(u64, u64)> = None;
        let mut failures = 0usize;
        for at in range {
            let shift = self.shifts[at];
            let outcome = match &self.prepared {
                Some((pa, pb)) => verify::async_ttr_prepared(pa, pb, shift, self.horizon),
                None => {
                    let (ctx_a, ctx_b) = seed_ctxs(0, shift);
                    match (
                        self.algorithm.make(self.n, &self.scenario.a, &ctx_a),
                        self.algorithm.make(self.n, &self.scenario.b, &ctx_b),
                    ) {
                        (Some(sa), Some(sb)) => verify::async_ttr(&sa, &sb, shift, self.horizon),
                        _ => None,
                    }
                }
            };
            match outcome {
                Some(ttr) if worst.is_none_or(|(w, _)| ttr > w) => worst = Some((ttr, shift)),
                Some(_) => {}
                None => failures += 1,
            }
        }
        (worst, failures)
    }

    /// Folds the chunk results (in child order — the strict `>` fold
    /// keeps the smallest witness shift independent of chunk boundaries)
    /// into the cell's lower-bound record.
    fn finish(
        &self,
        parts: Vec<(Option<(u64, u64)>, usize)>,
    ) -> Result<LowerBoundSweep, SweepError> {
        let mut worst: Option<(u64, u64)> = None;
        let mut failures = 0usize;
        for (local, f) in parts {
            failures += f;
            if let Some((ttr, shift)) = local {
                if worst.is_none_or(|(w, _)| ttr > w) {
                    worst = Some((ttr, shift));
                }
            }
        }
        let (witness_ttr, witness_shift) = worst.ok_or(SweepError::NoSamples { failures })?;
        Ok(LowerBoundSweep {
            algorithm: self.algorithm,
            n: self.n,
            k: self.k,
            ell: self.ell,
            certified_bound: self.certified_bound,
            bound_kind: self.bound_kind,
            witness_ttr,
            witness_shift,
            shifts_swept: self.shifts.len() as u64,
            exhaustive: self.exhaustive,
            failures,
            horizon: self.horizon,
        })
    }
}

/// Sweeps a whole lower-bound grid as one task-tree submission — the
/// [`sweep_pair_grid`] counterpart behind the `repro lower` pipeline's
/// measurement cells. Cells are parents, shift chunks are children, and
/// stealing crosses cells.
pub fn sweep_lower_grid(
    cells: Vec<LowerCell>,
    parallel: &ParallelConfig,
) -> Vec<Result<LowerBoundSweep, SweepError>> {
    let threads = parallel.requested_threads();
    pool::run_tree(
        cells,
        parallel,
        move |_cell_index, cell: LowerCell| match LowerSweepPlan::new(
            cell.algorithm,
            cell.n,
            &cell.scenario,
            &cell.cfg,
        ) {
            Ok(plan) => {
                let plan = Arc::new(plan);
                let kids = plan_chunks(&plan, plan.shifts.len(), threads);
                (Ok(plan), kids)
            }
            Err(e) => (Err(e), Vec::new()),
        },
        |_path, (plan, range): (Arc<LowerSweepPlan>, Range<usize>)| plan.eval_chunk(range),
    )
    .into_iter()
    .map(|(plan, parts)| plan.and_then(|p| p.finish(parts)))
    .collect()
}

/// Measures one lower-bound cell: computes the certified covering bound
/// for the algorithm's concrete schedules on `scenario` and sweeps shifts
/// (exhaustively when the period fits the cap) for the worst measured
/// witness — the single-cell case of [`sweep_lower_grid`], and the unit
/// the `repro lower` pipeline's grid is built from.
///
/// Deterministic algorithms use their single seed-0 schedule; randomized
/// ones are measured on the seed-0 stream (the bound certifies that
/// concrete schedule, which is all a per-cell bound can mean for them).
/// Wake-sensitive algorithms (the beacons) rebuild schedules per shift
/// and carry no certified bound — their schedules change with the shift,
/// so no single covering argument applies.
///
/// # Errors
///
/// Same contract as [`sweep_pair_ttr`]: [`SweepError::DisjointSets`],
/// [`SweepError::Unsupported`], or [`SweepError::NoSamples`].
pub fn sweep_lower_bound(
    algorithm: Algorithm,
    n: u64,
    scenario: &PairScenario,
    cfg: &LowerSweepConfig,
) -> Result<LowerBoundSweep, SweepError> {
    let parallel = ParallelConfig {
        threads: cfg.threads,
    };
    sweep_lower_grid(
        vec![LowerCell {
            algorithm,
            n,
            scenario: scenario.clone(),
            cfg: *cfg,
        }],
        &parallel,
    )
    .pop()
    .expect("one cell submitted, one result returned")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn ours_sweeps_clean_on_adversarial_pairs() {
        let scenario = workload::adversarial_overlap_one(16, 3, 3).unwrap();
        let cfg = SweepConfig {
            shifts: 16,
            shift_stride: 11,
            spread_over_period: false,
            seeds: 1,
            horizon_override: 0,
            threads: 0,
        };
        let sweep = sweep_pair_ttr(Algorithm::Ours, 16, &scenario, &cfg).unwrap();
        assert_eq!(sweep.failures, 0, "deterministic guarantee violated");
        assert!(sweep.summary.max <= sweep.horizon);
        assert_eq!(sweep.k, 3);
    }

    #[test]
    fn all_table1_algorithms_sweep_clean_small() {
        let n = 8u64;
        let scenario = workload::adversarial_overlap_one(n, 2, 3).unwrap();
        let cfg = SweepConfig {
            shifts: 8,
            shift_stride: 13,
            spread_over_period: false,
            seeds: 1,
            horizon_override: 0,
            threads: 0,
        };
        for algo in Algorithm::TABLE1 {
            let sweep = sweep_pair_ttr(algo, n, &scenario, &cfg)
                .unwrap_or_else(|e| panic!("{algo} failed: {e}"));
            assert_eq!(sweep.failures, 0, "{algo} missed its horizon");
        }
    }

    #[test]
    fn random_algorithm_uses_seeds() {
        let scenario = workload::adversarial_overlap_one(16, 3, 3).unwrap();
        let cfg = SweepConfig {
            shifts: 4,
            shift_stride: 5,
            spread_over_period: false,
            seeds: 5,
            horizon_override: 0,
            threads: 0,
        };
        let sweep = sweep_pair_ttr(Algorithm::Random, 16, &scenario, &cfg).unwrap();
        assert_eq!(sweep.summary.count + sweep.failures, 4 * 5);
    }

    #[test]
    fn symmetric_wrapper_is_constant_time() {
        let scenario = workload::symmetric_pair(32, 5, 3).unwrap();
        let cfg = SweepConfig {
            shifts: 24,
            shift_stride: 17,
            spread_over_period: false,
            seeds: 1,
            horizon_override: 0,
            threads: 0,
        };
        let sweep = sweep_pair_ttr(Algorithm::OursSymmetric, 32, &scenario, &cfg).unwrap();
        assert_eq!(sweep.failures, 0);
        assert!(
            sweep.summary.max < 12,
            "symmetric TTR {} should be < 12",
            sweep.summary.max
        );
    }

    #[test]
    fn hoisted_sweep_matches_per_shift_construction() {
        // The hoisted/compiled parallel sweep must reproduce exactly the
        // samples a sequential per-(shift, seed) construction produces.
        let n = 16u64;
        let scenario = workload::adversarial_overlap_one(n, 3, 3).unwrap();
        let cfg = SweepConfig {
            shifts: 12,
            shift_stride: 7,
            spread_over_period: false,
            seeds: 3,
            horizon_override: 0,
            threads: 0,
        };
        for algo in [
            Algorithm::Ours,
            Algorithm::OursSymmetric,
            Algorithm::Crseq,
            Algorithm::Drds,
            Algorithm::Random,
            Algorithm::BeaconA,
        ] {
            let sweep = sweep_pair_ttr(algo, n, &scenario, &cfg).unwrap();
            let horizon = algo.horizon(n, 3, 3);
            let seeds = if algo.is_deterministic() { 1 } else { 3 };
            let mut reference = Vec::new();
            let mut ref_failures = 0usize;
            for shift in (0..12u64).map(|i| i * 7) {
                for seed in 0..seeds {
                    let (ctx_a, ctx_b) = super::seed_ctxs(seed, shift);
                    let sa = algo.make(n, &scenario.a, &ctx_a).unwrap();
                    let sb = algo.make(n, &scenario.b, &ctx_b).unwrap();
                    match rdv_core::verify::naive::async_ttr(&sa, &sb, shift, horizon) {
                        Some(t) => reference.push(t),
                        None => ref_failures += 1,
                    }
                }
            }
            let ref_summary = crate::stats::Summary::of(&reference).unwrap();
            assert_eq!(sweep.failures, ref_failures, "{algo}");
            assert_eq!(sweep.summary.count, ref_summary.count, "{algo}");
            assert_eq!(sweep.summary.max, ref_summary.max, "{algo}");
            assert_eq!(sweep.summary.p50, ref_summary.p50, "{algo}");
            assert!(
                (sweep.summary.mean - ref_summary.mean).abs() < 1e-9,
                "{algo}"
            );
        }
    }

    #[test]
    fn horizon_override_respected() {
        let scenario = workload::adversarial_overlap_one(8, 2, 2).unwrap();
        let cfg = SweepConfig {
            shifts: 2,
            shift_stride: 1,
            spread_over_period: false,
            seeds: 1,
            horizon_override: 5,
            threads: 0,
        };
        if let Ok(s) = sweep_pair_ttr(Algorithm::Ours, 8, &scenario, &cfg) {
            assert_eq!(s.horizon, 5);
            assert!(s.summary.max < 5);
        }
    }

    #[test]
    fn disjoint_sets_are_a_typed_error() {
        let scenario = PairScenario {
            a: rdv_core::channel::ChannelSet::new(vec![1, 2]).unwrap(),
            b: rdv_core::channel::ChannelSet::new(vec![3, 4]).unwrap(),
        };
        let err = sweep_pair_ttr(Algorithm::Ours, 8, &scenario, &SweepConfig::default())
            .expect_err("disjoint sets must not sweep");
        assert_eq!(err, SweepError::DisjointSets);
        assert!(err.to_string().contains("disjoint"));
    }

    #[test]
    fn oversized_set_is_a_typed_error() {
        // Channel 40 does not fit universe [8]: instantiation must fail
        // with a typed error instead of sweeping into silent failures.
        let scenario = PairScenario {
            a: rdv_core::channel::ChannelSet::new(vec![1, 40]).unwrap(),
            b: rdv_core::channel::ChannelSet::new(vec![1, 2]).unwrap(),
        };
        let err = sweep_pair_ttr(Algorithm::Ours, 8, &scenario, &SweepConfig::default())
            .expect_err("oversized set must not sweep");
        assert!(matches!(err, SweepError::Unsupported { n: 8, .. }), "{err}");
    }

    #[test]
    fn no_samples_is_a_typed_error() {
        // An overlapping pair with a horizon too short to ever meet: the
        // paper's parity trap ({1,2} cyclic vs itself at odd shift) is
        // overkill — a 1-slot horizon on a slow baseline suffices.
        let scenario = workload::adversarial_overlap_one(8, 4, 4).unwrap();
        let cfg = SweepConfig {
            shifts: 3,
            shift_stride: 1,
            spread_over_period: false,
            seeds: 1,
            horizon_override: 1,
            threads: 0,
        };
        match sweep_pair_ttr(Algorithm::Crseq, 8, &scenario, &cfg) {
            Err(SweepError::NoSamples { failures }) => assert_eq!(failures, 3),
            other => {
                // A meeting at slot 0 for some shift is legitimate; then
                // the sweep must report the remaining misses as failures.
                let s = other.expect("either NoSamples or a partial sweep");
                assert!(s.failures > 0);
            }
        }
    }

    #[test]
    fn lower_bound_sweep_is_sandwiched_when_exhaustive() {
        let n = 12u64;
        let scenario = workload::adversarial_overlap_one(n, 3, 3).unwrap();
        let cfg = LowerSweepConfig {
            max_exhaustive_shifts: 1 << 14,
            ..LowerSweepConfig::default()
        };
        let cell = sweep_lower_bound(Algorithm::Ours, n, &scenario, &cfg).unwrap();
        assert!(cell.exhaustive, "period should fit the exhaustive cap");
        assert_eq!(cell.failures, 0);
        assert!(cell.lower_slice_ok());
        assert!(
            cell.certified_bound <= cell.witness_ttr,
            "covering bound {} exceeds exhaustive worst {}",
            cell.certified_bound,
            cell.witness_ttr
        );
        assert!(cell.witness_ttr <= cell.horizon);
    }

    #[test]
    fn lower_bound_sweep_sync_is_trivial() {
        let scenario = workload::adversarial_overlap_one(12, 3, 3).unwrap();
        let cfg = LowerSweepConfig {
            sync: true,
            ..LowerSweepConfig::default()
        };
        let cell = sweep_lower_bound(Algorithm::Ours, 12, &scenario, &cfg).unwrap();
        assert_eq!(cell.certified_bound, 0);
        assert_eq!(cell.shifts_swept, 1);
        assert!(!cell.exhaustive);
    }

    #[test]
    fn lower_bound_sweep_is_thread_count_invariant() {
        let scenario = workload::adversarial_overlap_one(16, 3, 4).unwrap();
        for algo in [Algorithm::Ours, Algorithm::Crseq, Algorithm::BeaconB] {
            let at = |threads| {
                let cfg = LowerSweepConfig {
                    max_exhaustive_shifts: 512,
                    sampled_shifts: 96,
                    threads,
                    ..LowerSweepConfig::default()
                };
                sweep_lower_bound(algo, 16, &scenario, &cfg)
                    .unwrap_or_else(|e| panic!("{algo}: {e}"))
            };
            let single = at(1);
            assert_eq!(single, at(2), "{algo} diverged at 2 threads");
            assert_eq!(single, at(8), "{algo} diverged at 8 threads");
        }
    }

    #[test]
    fn lower_bound_sweep_rejects_bad_scenarios() {
        let disjoint = PairScenario {
            a: rdv_core::channel::ChannelSet::new(vec![1, 2]).unwrap(),
            b: rdv_core::channel::ChannelSet::new(vec![3, 4]).unwrap(),
        };
        assert_eq!(
            sweep_lower_bound(Algorithm::Ours, 8, &disjoint, &LowerSweepConfig::default()),
            Err(SweepError::DisjointSets)
        );
        let oversized = PairScenario {
            a: rdv_core::channel::ChannelSet::new(vec![1, 40]).unwrap(),
            b: rdv_core::channel::ChannelSet::new(vec![1, 2]).unwrap(),
        };
        assert!(matches!(
            sweep_lower_bound(Algorithm::Ours, 8, &oversized, &LowerSweepConfig::default()),
            Err(SweepError::Unsupported { n: 8, .. })
        ));
    }

    #[test]
    fn sweep_json_is_stable_and_complete() {
        let scenario = workload::adversarial_overlap_one(16, 3, 3).unwrap();
        let cfg = SweepConfig {
            shifts: 8,
            shift_stride: 3,
            spread_over_period: false,
            seeds: 1,
            horizon_override: 0,
            threads: 0,
        };
        let sweep = sweep_pair_ttr(Algorithm::Ours, 16, &scenario, &cfg).unwrap();
        let json = serde_json::to_string(&sweep.to_json());
        for key in [
            "algorithm",
            "n",
            "k",
            "ell",
            "count",
            "max",
            "mean",
            "p50",
            "p95",
            "failures",
            "horizon",
        ] {
            assert!(
                json.contains(&format!("\"{key}\"")),
                "missing {key}: {json}"
            );
        }
    }
}
