//! Pairwise time-to-rendezvous sweeps — the engine behind the Table 1 and
//! scaling experiments.

use crate::algo::{AgentCtx, Algorithm, DynSchedule};
use crate::stats::Summary;
use crate::workload::PairScenario;
use rdv_core::compiled::CompiledSchedule;
use rdv_core::verify;
use serde::{Deserialize, Serialize};

/// Sweep parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Number of relative wake-up shifts per scenario.
    pub shifts: u64,
    /// Stride between sampled shifts (1 = consecutive). Ignored when
    /// `spread_over_period` is set and the schedule reports a period.
    pub shift_stride: u64,
    /// Derive the stride from the schedule period so the sampled shifts
    /// cover one entire period — essential for worst-case (max) columns,
    /// since adversarial shifts of the `O(n²)`/`O(n³)` baselines live deep
    /// inside their periods.
    pub spread_over_period: bool,
    /// Seeds per scenario for randomized algorithms (ignored by
    /// deterministic ones, which run a single seed).
    pub seeds: u64,
    /// Simulation cut-off override (0 = use the algorithm default).
    pub horizon_override: u64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            shifts: 32,
            shift_stride: 7,
            spread_over_period: true,
            seeds: 8,
            horizon_override: 0,
        }
    }
}

/// The result of sweeping one `(algorithm, scenario)` cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PairSweep {
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Universe size.
    pub n: u64,
    /// `|A|`.
    pub k: usize,
    /// `|B|`.
    pub ell: usize,
    /// TTR summary over all (shift, seed) samples.
    pub summary: Summary,
    /// Number of samples that failed to rendezvous within the horizon.
    pub failures: usize,
    /// The horizon used.
    pub horizon: u64,
}

/// A schedule readied for repeated sweep evaluation: compiled to a flat
/// one-period table when the period fits the [`CompiledSchedule`] cap,
/// otherwise kept as the boxed schedule and evaluated through the chunked
/// block kernel.
enum Prepared {
    Table(CompiledSchedule),
    Dyn(DynSchedule),
}

impl Prepared {
    fn new(schedule: DynSchedule) -> Self {
        match CompiledSchedule::compile(&schedule) {
            Some(c) => Prepared::Table(c),
            None => Prepared::Dyn(schedule),
        }
    }
}

/// [`verify::async_ttr`] over prepared schedules, using the slice kernel
/// when both sides are compiled.
fn prepared_async_ttr(a: &Prepared, b: &Prepared, shift: u64, horizon: u64) -> Option<u64> {
    match (a, b) {
        (Prepared::Table(ca), Prepared::Table(cb)) => {
            verify::async_ttr_tables(ca.table(), cb.table(), shift, horizon)
        }
        (Prepared::Table(ca), Prepared::Dyn(b)) => verify::async_ttr(ca, b, shift, horizon),
        (Prepared::Dyn(a), Prepared::Table(cb)) => verify::async_ttr(a, cb, shift, horizon),
        (Prepared::Dyn(a), Prepared::Dyn(b)) => verify::async_ttr(a, b, shift, horizon),
    }
}

/// Measures times-to-rendezvous for one algorithm on one scenario across
/// wake-up shifts (and seeds, for randomized algorithms).
///
/// Samples that miss the horizon are *counted* in `failures` and excluded
/// from the summary — for the deterministic algorithms a non-zero failure
/// count within their guarantee horizon indicates a bug and is asserted
/// against throughout the test suite.
///
/// Schedule construction is hoisted out of the `(shift × seed)` loop: for
/// every algorithm whose schedule does not depend on the wake slot
/// ([`Algorithm::wake_sensitive`] is false — all but the beacon protocols)
/// both schedules are built **once per seed**, compiled to period tables
/// when small enough, and shared read-only across the worker threads. The
/// beacon protocols, whose schedules listen to a globally-timed stream,
/// keep the per-(shift, seed) construction.
///
/// Returns `None` if the algorithm cannot be instantiated on the scenario
/// or every sample failed.
pub fn sweep_pair_ttr(
    algorithm: Algorithm,
    n: u64,
    scenario: &PairScenario,
    cfg: &SweepConfig,
) -> Option<PairSweep> {
    let k = scenario.a.len();
    let ell = scenario.b.len();
    let horizon = if cfg.horizon_override > 0 {
        cfg.horizon_override
    } else {
        algorithm.horizon(n, k, ell)
    };
    let seeds = if algorithm.is_deterministic() {
        1
    } else {
        cfg.seeds.max(1)
    };
    let mut samples = Vec::new();
    let mut failures = 0usize;

    let stride = if cfg.spread_over_period {
        // Probe one schedule for its period and spread shifts across it,
        // with a prime-ish offset so we don't only sample period multiples.
        algorithm
            .make(n, &scenario.a, &AgentCtx::default())
            .and_then(|s| s.period_hint())
            .map(|p| (p / cfg.shifts.max(1)).max(1) | 1)
            .unwrap_or(cfg.shift_stride.max(1))
    } else {
        cfg.shift_stride.max(1)
    };
    let shift_jobs: Vec<u64> = (0..cfg.shifts).map(|i| i * stride).collect();
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4)
        .min(shift_jobs.len().max(1));
    let chunks: Vec<&[u64]> = shift_jobs
        .chunks(shift_jobs.len().div_ceil(threads))
        .collect();

    // Build (and compile) once per seed for wake-insensitive algorithms;
    // `None` marks a seed whose schedules could not be instantiated, which
    // the workers count as one failure per swept shift (matching the old
    // per-sample accounting).
    let prepared: Option<Vec<Option<(Prepared, Prepared)>>> = if algorithm.wake_sensitive() {
        None
    } else {
        Some(
            (0..seeds)
                .map(|seed| {
                    let ctx_a = AgentCtx {
                        wake: 0,
                        agent_seed: seed.wrapping_mul(2),
                        shared_seed: seed,
                    };
                    let ctx_b = AgentCtx {
                        wake: 0,
                        agent_seed: seed.wrapping_mul(2) + 1,
                        shared_seed: seed,
                    };
                    match (
                        algorithm.make(n, &scenario.a, &ctx_a),
                        algorithm.make(n, &scenario.b, &ctx_b),
                    ) {
                        (Some(sa), Some(sb)) => Some((Prepared::new(sa), Prepared::new(sb))),
                        _ => None,
                    }
                })
                .collect(),
        )
    };

    let results: Vec<(Vec<u64>, usize)> = crossbeam::scope(|scope| {
        let prepared = &prepared;
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                scope.spawn(move |_| {
                    let mut local = Vec::new();
                    let mut local_failures = 0usize;
                    for &shift in *chunk {
                        for seed in 0..seeds {
                            let outcome = if let Some(prepared) = prepared {
                                match &prepared[seed as usize] {
                                    Some((sa, sb)) => prepared_async_ttr(sa, sb, shift, horizon),
                                    None => {
                                        local_failures += 1;
                                        continue;
                                    }
                                }
                            } else {
                                let ctx_a = AgentCtx {
                                    wake: 0,
                                    agent_seed: seed.wrapping_mul(2),
                                    shared_seed: seed,
                                };
                                let ctx_b = AgentCtx {
                                    wake: shift,
                                    agent_seed: seed.wrapping_mul(2) + 1,
                                    shared_seed: seed,
                                };
                                let (Some(sa), Some(sb)) = (
                                    algorithm.make(n, &scenario.a, &ctx_a),
                                    algorithm.make(n, &scenario.b, &ctx_b),
                                ) else {
                                    local_failures += 1;
                                    continue;
                                };
                                verify::async_ttr(&sa, &sb, shift, horizon)
                            };
                            match outcome {
                                Some(ttr) => local.push(ttr),
                                None => local_failures += 1,
                            }
                        }
                    }
                    (local, local_failures)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker"))
            .collect()
    })
    .expect("crossbeam scope");

    for (local, f) in results {
        samples.extend(local);
        failures += f;
    }
    let summary = Summary::of(&samples)?;
    Some(PairSweep {
        algorithm,
        n,
        k,
        ell,
        summary,
        failures,
        horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn ours_sweeps_clean_on_adversarial_pairs() {
        let scenario = workload::adversarial_overlap_one(16, 3, 3).unwrap();
        let cfg = SweepConfig {
            shifts: 16,
            shift_stride: 11,
            spread_over_period: false,
            seeds: 1,
            horizon_override: 0,
        };
        let sweep = sweep_pair_ttr(Algorithm::Ours, 16, &scenario, &cfg).unwrap();
        assert_eq!(sweep.failures, 0, "deterministic guarantee violated");
        assert!(sweep.summary.max <= sweep.horizon);
        assert_eq!(sweep.k, 3);
    }

    #[test]
    fn all_table1_algorithms_sweep_clean_small() {
        let n = 8u64;
        let scenario = workload::adversarial_overlap_one(n, 2, 3).unwrap();
        let cfg = SweepConfig {
            shifts: 8,
            shift_stride: 13,
            spread_over_period: false,
            seeds: 1,
            horizon_override: 0,
        };
        for algo in Algorithm::TABLE1 {
            let sweep = sweep_pair_ttr(algo, n, &scenario, &cfg)
                .unwrap_or_else(|| panic!("{algo} produced no samples"));
            assert_eq!(sweep.failures, 0, "{algo} missed its horizon");
        }
    }

    #[test]
    fn random_algorithm_uses_seeds() {
        let scenario = workload::adversarial_overlap_one(16, 3, 3).unwrap();
        let cfg = SweepConfig {
            shifts: 4,
            shift_stride: 5,
            spread_over_period: false,
            seeds: 5,
            horizon_override: 0,
        };
        let sweep = sweep_pair_ttr(Algorithm::Random, 16, &scenario, &cfg).unwrap();
        assert_eq!(sweep.summary.count + sweep.failures, 4 * 5);
    }

    #[test]
    fn symmetric_wrapper_is_constant_time() {
        let scenario = workload::symmetric_pair(32, 5, 3).unwrap();
        let cfg = SweepConfig {
            shifts: 24,
            shift_stride: 17,
            spread_over_period: false,
            seeds: 1,
            horizon_override: 0,
        };
        let sweep = sweep_pair_ttr(Algorithm::OursSymmetric, 32, &scenario, &cfg).unwrap();
        assert_eq!(sweep.failures, 0);
        assert!(
            sweep.summary.max < 12,
            "symmetric TTR {} should be < 12",
            sweep.summary.max
        );
    }

    #[test]
    fn hoisted_sweep_matches_per_shift_construction() {
        // The hoisted/compiled sweep must reproduce exactly the samples the
        // old per-(shift, seed) construction produced.
        let n = 16u64;
        let scenario = workload::adversarial_overlap_one(n, 3, 3).unwrap();
        let cfg = SweepConfig {
            shifts: 12,
            shift_stride: 7,
            spread_over_period: false,
            seeds: 3,
            horizon_override: 0,
        };
        for algo in [
            Algorithm::Ours,
            Algorithm::OursSymmetric,
            Algorithm::Crseq,
            Algorithm::Drds,
            Algorithm::Random,
            Algorithm::BeaconA,
        ] {
            let sweep = sweep_pair_ttr(algo, n, &scenario, &cfg).unwrap();
            let horizon = algo.horizon(n, 3, 3);
            let seeds = if algo.is_deterministic() { 1 } else { 3 };
            let mut reference = Vec::new();
            let mut ref_failures = 0usize;
            for shift in (0..12u64).map(|i| i * 7) {
                for seed in 0..seeds {
                    let ctx_a = AgentCtx {
                        wake: 0,
                        agent_seed: seed * 2,
                        shared_seed: seed,
                    };
                    let ctx_b = AgentCtx {
                        wake: shift,
                        agent_seed: seed * 2 + 1,
                        shared_seed: seed,
                    };
                    let sa = algo.make(n, &scenario.a, &ctx_a).unwrap();
                    let sb = algo.make(n, &scenario.b, &ctx_b).unwrap();
                    match rdv_core::verify::naive::async_ttr(&sa, &sb, shift, horizon) {
                        Some(t) => reference.push(t),
                        None => ref_failures += 1,
                    }
                }
            }
            let ref_summary = crate::stats::Summary::of(&reference).unwrap();
            assert_eq!(sweep.failures, ref_failures, "{algo}");
            assert_eq!(sweep.summary.count, ref_summary.count, "{algo}");
            assert_eq!(sweep.summary.max, ref_summary.max, "{algo}");
            assert_eq!(sweep.summary.p50, ref_summary.p50, "{algo}");
            assert!(
                (sweep.summary.mean - ref_summary.mean).abs() < 1e-9,
                "{algo}"
            );
        }
    }

    #[test]
    fn horizon_override_respected() {
        let scenario = workload::adversarial_overlap_one(8, 2, 2).unwrap();
        let cfg = SweepConfig {
            shifts: 2,
            shift_stride: 1,
            spread_over_period: false,
            seeds: 1,
            horizon_override: 5,
        };
        let sweep = sweep_pair_ttr(Algorithm::Ours, 8, &scenario, &cfg);
        if let Some(s) = sweep {
            assert_eq!(s.horizon, 5);
            assert!(s.summary.max < 5);
        }
    }
}
