//! Summary statistics and growth-exponent fitting.

/// Summary of a sample of times-to-rendezvous.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
}

impl Summary {
    /// Summarizes a non-empty sample.
    ///
    /// Returns `None` on an empty sample.
    pub fn of(samples: &[u64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let sum: u128 = sorted.iter().map(|&x| x as u128).sum();
        Some(Summary {
            count: sorted.len(),
            max: *sorted.last().expect("non-empty"),
            mean: sum as f64 / sorted.len() as f64,
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
        })
    }
}

/// The `q`-th percentile of a sorted sample (nearest-rank).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q ∉ [0, 1]`.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Least-squares slope and intercept of `y` on `x`.
///
/// Returns `None` with fewer than two points or zero variance in `x`.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<(f64, f64)> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|xi| (xi - mx) * (xi - mx)).sum();
    if sxx.abs() < 1e-12 {
        return None;
    }
    let sxy: f64 = x.iter().zip(y).map(|(xi, yi)| (xi - mx) * (yi - my)).sum();
    let slope = sxy / sxx;
    Some((slope, my - slope * mx))
}

/// Fits `ttr ≈ c·nᵉ` over a sweep of `(n, ttr)` points and returns the
/// exponent `e` — the quantity that distinguishes `O(n²)` baselines (`e≈2`)
/// from the paper's construction (`e≈0` at fixed `k`).
///
/// Zero TTRs are clamped to 1 before the log transform. Returns `None`
/// with fewer than two points.
pub fn growth_exponent(points: &[(u64, u64)]) -> Option<f64> {
    let x: Vec<f64> = points.iter().map(|&(n, _)| (n as f64).ln()).collect();
    let y: Vec<f64> = points
        .iter()
        .map(|&(_, t)| (t.max(1) as f64).ln())
        .collect();
    linear_fit(&x, &y).map(|(slope, _)| slope)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[5, 1, 3, 2, 4]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.max, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.p50, 3);
        assert_eq!(s.p95, 5);
        assert_eq!(Summary::of(&[]), None);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [10u64, 20, 30, 40];
        assert_eq!(percentile(&v, 0.0), 10);
        assert_eq!(percentile(&v, 0.25), 10);
        assert_eq!(percentile(&v, 0.5), 20);
        assert_eq!(percentile(&v, 1.0), 40);
    }

    #[test]
    fn linear_fit_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let (slope, intercept) = linear_fit(&x, &y).unwrap();
        assert!((slope - 2.0).abs() < 1e-9);
        assert!((intercept - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert_eq!(linear_fit(&[1.0], &[2.0]), None);
        assert_eq!(linear_fit(&[2.0, 2.0], &[1.0, 5.0]), None);
    }

    #[test]
    fn growth_exponent_quadratic() {
        let pts: Vec<(u64, u64)> = [8u64, 16, 32, 64, 128]
            .iter()
            .map(|&n| (n, 3 * n * n))
            .collect();
        let e = growth_exponent(&pts).unwrap();
        assert!((e - 2.0).abs() < 0.01, "exponent {e}");
    }

    #[test]
    fn growth_exponent_flat() {
        let pts: Vec<(u64, u64)> = [8u64, 16, 32, 64].iter().map(|&n| (n, 17)).collect();
        let e = growth_exponent(&pts).unwrap();
        assert!(e.abs() < 0.01, "exponent {e}");
    }

    #[test]
    fn growth_exponent_handles_zero_ttr() {
        let pts = [(8u64, 0u64), (16, 0), (32, 0)];
        let e = growth_exponent(&pts).unwrap();
        assert!(e.abs() < 1e-9);
    }
}
