//! A uniform façade over every rendezvous algorithm in the workspace.

use rdv_baselines::{Crseq, Drds, JumpStay, RandomHopping};
use rdv_beacon::{BeaconProtocolA, BeaconProtocolB, BeaconStream};
use rdv_core::channel::ChannelSet;
use rdv_core::general::GeneralSchedule;
use rdv_core::schedule::Schedule;
use rdv_core::symmetric::SymmetricWrapped;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A schedule boxed for uniform handling across algorithms.
pub type DynSchedule = Box<dyn Schedule + Send + Sync>;

/// Per-agent context a factory may need.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgentCtx {
    /// Absolute wake slot (needed by the beacon protocols).
    pub wake: u64,
    /// Per-agent seed (needed by random hopping).
    pub agent_seed: u64,
    /// Shared experiment seed (beacon stream).
    pub shared_seed: u64,
}

/// Every algorithm the harness can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Theorem 3: the paper's `O(|A||B| log log n)` construction.
    Ours,
    /// Theorem 3 wrapped by Section 3.2's `O(1)`-symmetric pattern.
    OursSymmetric,
    /// Shin–Yang–Kim 2010 (`O(n²)`).
    Crseq,
    /// Lin–Liu–Chu–Leung 2011 (`O(n³)` asymmetric / `O(n)` symmetric).
    JumpStay,
    /// Gu–Hua–Wang–Lau 2013-style difference cover (`O(n²)`).
    Drds,
    /// The randomized strawman (`O(kℓ log n)` w.h.p.).
    Random,
    /// Section 5 protocol A (`O(log n (k+ℓ))` w.h.p., one-bit beacon).
    BeaconA,
    /// Section 5 protocol B (`O(k+ℓ+log n)` w.h.p., one-bit beacon).
    BeaconB,
}

impl Algorithm {
    /// All deterministic, beacon-free algorithms (the Table 1 rows).
    pub const TABLE1: [Algorithm; 4] = [
        Algorithm::Crseq,
        Algorithm::JumpStay,
        Algorithm::Drds,
        Algorithm::Ours,
    ];

    /// Whether the algorithm's guarantee is deterministic.
    pub fn is_deterministic(self) -> bool {
        !matches!(
            self,
            Algorithm::Random | Algorithm::BeaconA | Algorithm::BeaconB
        )
    }

    /// Whether [`Algorithm::make`] consumes `AgentCtx::wake` — i.e. the
    /// schedule itself depends on the absolute wake slot (the beacon
    /// protocols listen to a globally-timed beacon stream). Sweeps can
    /// hoist schedule construction out of the shift loop exactly when this
    /// is false.
    pub fn wake_sensitive(self) -> bool {
        matches!(self, Algorithm::BeaconA | Algorithm::BeaconB)
    }

    /// Whether this implementation carries a *proven* asymmetric rendezvous
    /// guarantee. True for the paper's construction (Theorem 3 / §3.2).
    /// The three baseline reconstructions are faithful in period structure
    /// but their paywalled proofs could not be transcribed, so their
    /// asymmetric guarantees are empirical here (see the module docs of
    /// `rdv-baselines`); the randomized/beacon algorithms are w.h.p. only.
    pub fn proven_asymmetric_guarantee(self) -> bool {
        matches!(self, Algorithm::Ours | Algorithm::OursSymmetric)
    }

    /// Builds the schedule for an agent with channel `set` in universe
    /// `[n]`.
    ///
    /// Returns `None` if the algorithm cannot be instantiated for these
    /// parameters (e.g. a set exceeding the universe).
    pub fn make(self, n: u64, set: &ChannelSet, ctx: &AgentCtx) -> Option<DynSchedule> {
        if set.max_channel().get() > n {
            return None;
        }
        Some(match self {
            Algorithm::Ours => Box::new(GeneralSchedule::asynchronous(n, set.clone())?),
            Algorithm::OursSymmetric => {
                let base = GeneralSchedule::asynchronous(n, set.clone())?;
                Box::new(SymmetricWrapped::new(base, set))
            }
            Algorithm::Crseq => Box::new(Crseq::new(n, set.clone())?),
            Algorithm::JumpStay => Box::new(JumpStay::new(n, set.clone())?),
            Algorithm::Drds => Box::new(Drds::new(n, set.clone())?),
            Algorithm::Random => Box::new(RandomHopping::new(set.clone(), ctx.agent_seed)),
            Algorithm::BeaconA => Box::new(BeaconProtocolA::new(
                BeaconStream::new(ctx.shared_seed),
                n,
                set.clone(),
                ctx.wake,
            )),
            Algorithm::BeaconB => Box::new(BeaconProtocolB::new(
                BeaconStream::new(ctx.shared_seed),
                n,
                set.clone(),
                ctx.wake,
            )),
        })
    }

    /// A generous horizon within which the algorithm must rendezvous for
    /// overlapping sets (used as simulation cut-off).
    pub fn horizon(self, n: u64, k: usize, ell: usize) -> u64 {
        let n = n.max(2);
        let kl = (k * ell) as u64;
        match self {
            Algorithm::Ours => (9 * kl + 4) * 4 * 80,
            Algorithm::OursSymmetric => 12 * (9 * kl + 4) * 4 * 80 + 24,
            Algorithm::Crseq => 12 * n * n * (k.max(ell) as u64) + 64,
            Algorithm::JumpStay => 4 * n * n * n + 64 * n + 64,
            Algorithm::Drds => 10 * n * n + 64,
            Algorithm::Random => 64 * kl * u64::from(rdv_strings::log_sharp(n) + 1) + 1024,
            Algorithm::BeaconA => {
                256 * (k + ell) as u64 * u64::from(rdv_strings::log_sharp(n) + 1) + 4096
            }
            Algorithm::BeaconB => {
                512 * ((k + ell) as u64 + u64::from(rdv_strings::log_sharp(n))) + 8192
            }
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Algorithm::Ours => "ours (Thm 3)",
            Algorithm::OursSymmetric => "ours+sym (§3.2)",
            Algorithm::Crseq => "CRSEQ [21]",
            Algorithm::JumpStay => "Jump-Stay [15]",
            Algorithm::Drds => "DRDS [9]",
            Algorithm::Random => "random (§1.2)",
            Algorithm::BeaconA => "beacon A (§5)",
            Algorithm::BeaconB => "beacon B (§5)",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(channels: &[u64]) -> ChannelSet {
        ChannelSet::new(channels.iter().copied()).unwrap()
    }

    #[test]
    fn all_algorithms_instantiate() {
        let s = set(&[2, 7, 11]);
        let ctx = AgentCtx::default();
        for algo in [
            Algorithm::Ours,
            Algorithm::OursSymmetric,
            Algorithm::Crseq,
            Algorithm::JumpStay,
            Algorithm::Drds,
            Algorithm::Random,
            Algorithm::BeaconA,
            Algorithm::BeaconB,
        ] {
            let sched = algo.make(16, &s, &ctx).unwrap_or_else(|| {
                panic!("{algo} failed to instantiate");
            });
            for t in 0..100 {
                assert!(
                    s.contains(sched.channel_at(t).get()),
                    "{algo} left its set at slot {t}"
                );
            }
        }
    }

    #[test]
    fn oversized_set_rejected() {
        let s = set(&[20]);
        assert!(Algorithm::Ours.make(16, &s, &AgentCtx::default()).is_none());
    }

    #[test]
    fn horizons_are_positive_and_ordered() {
        // JS's cubic horizon dominates the quadratic ones for large n.
        let n = 256;
        let h_js = Algorithm::JumpStay.horizon(n, 4, 4);
        let h_crseq = Algorithm::Crseq.horizon(n, 4, 4);
        let h_ours = Algorithm::Ours.horizon(n, 4, 4);
        assert!(h_js > h_crseq);
        assert!(h_crseq > h_ours);
    }

    #[test]
    fn display_names_unique() {
        let names: std::collections::HashSet<String> =
            Algorithm::TABLE1.iter().map(|a| a.to_string()).collect();
        assert_eq!(names.len(), Algorithm::TABLE1.len());
    }
}
