//! A uniform façade over every rendezvous algorithm in the workspace.

use rdv_baselines::{AcsHopping, Crseq, Drds, JumpStay, RandomHopping, Zos};
use rdv_beacon::{BeaconProtocolA, BeaconProtocolB, BeaconStream};
use rdv_core::channel::ChannelSet;
use rdv_core::fault::FaultPlan;
use rdv_core::general::GeneralSchedule;
use rdv_core::schedule::Schedule;
use rdv_core::symmetric::SymmetricWrapped;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A schedule boxed for uniform handling across algorithms.
pub type DynSchedule = Box<dyn Schedule + Send + Sync>;

/// Per-agent context a factory may need.
#[derive(Debug, Clone, Copy, Default)]
pub struct AgentCtx {
    /// Absolute wake slot (needed by the beacon protocols and the
    /// availability-aware family's local→absolute clock translation).
    pub wake: u64,
    /// Per-agent seed (needed by random hopping).
    pub agent_seed: u64,
    /// Shared experiment seed (beacon stream).
    pub shared_seed: u64,
    /// The run's fault plan, when the experiment injects one. The
    /// availability-aware family ([`Algorithm::Zos`],
    /// [`Algorithm::AcsHopping`]) derives its hops from the plan's
    /// sensed channel sets; every oblivious algorithm ignores it, so
    /// `None` (the default) reproduces the fault-free factories exactly.
    pub faults: Option<FaultPlan>,
}

/// Every algorithm the harness can sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Theorem 3: the paper's `O(|A||B| log log n)` construction.
    Ours,
    /// Theorem 3 wrapped by Section 3.2's `O(1)`-symmetric pattern.
    OursSymmetric,
    /// Shin–Yang–Kim 2010 (`O(n²)`).
    Crseq,
    /// Lin–Liu–Chu–Leung 2011 (`O(n³)` asymmetric / `O(n)` symmetric).
    JumpStay,
    /// Gu–Hua–Wang–Lau 2013-style difference cover (`O(n²)`).
    Drds,
    /// The randomized strawman (`O(kℓ log n)` w.h.p.).
    Random,
    /// Section 5 protocol A (`O(log n (k+ℓ))` w.h.p., one-bit beacon).
    BeaconA,
    /// Section 5 protocol B (`O(k+ℓ+log n)` w.h.p., one-bit beacon).
    BeaconB,
    /// ZOS-style zig-zag/stay on the sensed channel set
    /// (arXiv 1506.00744; availability-aware, empirical).
    Zos,
    /// Interleaved jump/stay on the available channel set
    /// (arXiv 1506.01136; availability-aware, empirical).
    AcsHopping,
}

/// One arm per variant: this match stops compiling the moment a new
/// `Algorithm` variant exists, and the index it returns is checked (at
/// compile time, below) against [`Algorithm::ALL`] — so a variant that is
/// not also added to `ALL`, in declaration order, fails the build rather
/// than silently escaping the exhaustive sweeps and name checks.
const fn variant_index(a: Algorithm) -> usize {
    match a {
        Algorithm::Ours => 0,
        Algorithm::OursSymmetric => 1,
        Algorithm::Crseq => 2,
        Algorithm::JumpStay => 3,
        Algorithm::Drds => 4,
        Algorithm::Random => 5,
        Algorithm::BeaconA => 6,
        Algorithm::BeaconB => 7,
        Algorithm::Zos => 8,
        Algorithm::AcsHopping => 9,
    }
}

const _: () = {
    let mut i = 0;
    while i < Algorithm::ALL.len() {
        assert!(
            variant_index(Algorithm::ALL[i]) == i,
            "Algorithm::ALL must list every variant in declaration order"
        );
        i += 1;
    }
};

impl Algorithm {
    /// All deterministic, beacon-free algorithms (the Table 1 rows).
    pub const TABLE1: [Algorithm; 4] = [
        Algorithm::Crseq,
        Algorithm::JumpStay,
        Algorithm::Drds,
        Algorithm::Ours,
    ];

    /// Every variant, in declaration order — the exhaustive list behind
    /// name-uniqueness checks and whole-façade sweeps. Kept honest by the
    /// compile-time `variant_index` guard: adding a variant without
    /// extending this list does not compile.
    pub const ALL: [Algorithm; 10] = [
        Algorithm::Ours,
        Algorithm::OursSymmetric,
        Algorithm::Crseq,
        Algorithm::JumpStay,
        Algorithm::Drds,
        Algorithm::Random,
        Algorithm::BeaconA,
        Algorithm::BeaconB,
        Algorithm::Zos,
        Algorithm::AcsHopping,
    ];

    /// Whether the algorithm's guarantee is deterministic.
    pub fn is_deterministic(self) -> bool {
        !matches!(
            self,
            Algorithm::Random | Algorithm::BeaconA | Algorithm::BeaconB
        )
    }

    /// Whether the schedule consults [`AgentCtx::faults`] — the
    /// availability-aware family, which regenerates its hops from the
    /// plan's per-epoch sensed channel sets. Fault pipelines build these
    /// agents twice (a plan-less clean twin and a sensing faulted twin);
    /// for every other algorithm the two twins are the same object.
    pub fn availability_aware(self) -> bool {
        matches!(self, Algorithm::Zos | Algorithm::AcsHopping)
    }

    /// Whether [`Algorithm::make`] consumes `AgentCtx::wake` — i.e. the
    /// schedule itself depends on the absolute wake slot (the beacon
    /// protocols listen to a globally-timed beacon stream; the
    /// availability-aware family translates its local clock to absolute
    /// slots to sense per-epoch outage masks). Sweeps can hoist schedule
    /// construction out of the shift loop — and the arena can share
    /// compiled tables across agents — exactly when this is false.
    pub fn wake_sensitive(self) -> bool {
        matches!(
            self,
            Algorithm::BeaconA | Algorithm::BeaconB | Algorithm::Zos | Algorithm::AcsHopping
        )
    }

    /// Whether this implementation carries a *proven* asymmetric rendezvous
    /// guarantee. True for the paper's construction (Theorem 3 / §3.2).
    /// The three baseline reconstructions are faithful in period structure
    /// but their paywalled proofs could not be transcribed, so their
    /// asymmetric guarantees are empirical here (see the module docs of
    /// `rdv-baselines`); the randomized/beacon algorithms are w.h.p. only.
    pub fn proven_asymmetric_guarantee(self) -> bool {
        matches!(self, Algorithm::Ours | Algorithm::OursSymmetric)
    }

    /// Builds the schedule for an agent with channel `set` in universe
    /// `[n]`.
    ///
    /// Returns `None` if the algorithm cannot be instantiated for these
    /// parameters (e.g. a set exceeding the universe).
    pub fn make(self, n: u64, set: &ChannelSet, ctx: &AgentCtx) -> Option<DynSchedule> {
        if set.max_channel().get() > n {
            return None;
        }
        Some(match self {
            Algorithm::Ours => Box::new(GeneralSchedule::asynchronous(n, set.clone())?),
            Algorithm::OursSymmetric => {
                let base = GeneralSchedule::asynchronous(n, set.clone())?;
                Box::new(SymmetricWrapped::new(base, set))
            }
            Algorithm::Crseq => Box::new(Crseq::new(n, set.clone())?),
            Algorithm::JumpStay => Box::new(JumpStay::new(n, set.clone())?),
            Algorithm::Drds => Box::new(Drds::new(n, set.clone())?),
            Algorithm::Random => Box::new(RandomHopping::new(set.clone(), ctx.agent_seed)),
            Algorithm::BeaconA => Box::new(BeaconProtocolA::new(
                BeaconStream::new(ctx.shared_seed),
                n,
                set.clone(),
                ctx.wake,
            )),
            Algorithm::BeaconB => Box::new(BeaconProtocolB::new(
                BeaconStream::new(ctx.shared_seed),
                n,
                set.clone(),
                ctx.wake,
            )),
            Algorithm::Zos => Box::new(Zos::new(n, set.clone(), ctx.wake, ctx.faults)?),
            Algorithm::AcsHopping => {
                Box::new(AcsHopping::new(n, set.clone(), ctx.wake, ctx.faults)?)
            }
        })
    }

    /// A generous horizon within which the algorithm must rendezvous for
    /// overlapping sets (used as simulation cut-off).
    pub fn horizon(self, n: u64, k: usize, ell: usize) -> u64 {
        let n = n.max(2);
        // Each factor widens to u64 *before* the product/sum: `usize`
        // arithmetic would overflow first on 32-bit targets (and panic in
        // debug builds) for large k·ℓ.
        let kl = k as u64 * ell as u64;
        let k_plus_ell = k as u64 + ell as u64;
        match self {
            Algorithm::Ours => (9 * kl + 4) * 4 * 80,
            Algorithm::OursSymmetric => 12 * (9 * kl + 4) * 4 * 80 + 24,
            Algorithm::Crseq => 12 * n * n * (k.max(ell) as u64) + 64,
            Algorithm::JumpStay => 4 * n * n * n + 64 * n + 64,
            Algorithm::Drds => 10 * n * n + 64,
            Algorithm::Random => 64 * kl * u64::from(rdv_strings::log_sharp(n) + 1) + 1024,
            Algorithm::BeaconA => {
                256 * k_plus_ell * u64::from(rdv_strings::log_sharp(n) + 1) + 4096
            }
            Algorithm::BeaconB => 512 * (k_plus_ell + u64::from(rdv_strings::log_sharp(n))) + 8192,
            // Availability-aware reconstructions: round/frame sweeps over
            // the universe prime P ≤ 2n repeat offsets every O(P²) rounds,
            // so a Crseq-like quadratic-in-n cut-off is generous.
            Algorithm::Zos | Algorithm::AcsHopping => {
                12 * n * n * (k.max(ell) as u64) + 64 * n + 4096
            }
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Algorithm::Ours => "ours (Thm 3)",
            Algorithm::OursSymmetric => "ours+sym (§3.2)",
            Algorithm::Crseq => "CRSEQ [21]",
            Algorithm::JumpStay => "Jump-Stay [15]",
            Algorithm::Drds => "DRDS [9]",
            Algorithm::Random => "random (§1.2)",
            Algorithm::BeaconA => "beacon A (§5)",
            Algorithm::BeaconB => "beacon B (§5)",
            Algorithm::Zos => "ZOS [avail]",
            Algorithm::AcsHopping => "ACS-hop [avail]",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(channels: &[u64]) -> ChannelSet {
        ChannelSet::new(channels.iter().copied()).unwrap()
    }

    #[test]
    fn all_algorithms_instantiate() {
        let s = set(&[2, 7, 11]);
        let ctx = AgentCtx::default();
        for algo in Algorithm::ALL {
            let sched = algo.make(16, &s, &ctx).unwrap_or_else(|| {
                panic!("{algo} failed to instantiate");
            });
            for t in 0..100 {
                assert!(
                    s.contains(sched.channel_at(t).get()),
                    "{algo} left its set at slot {t}"
                );
            }
        }
    }

    #[test]
    fn availability_aware_factories_consume_the_plan() {
        // With a plan in the ctx, the availability-aware schedules differ
        // from their oblivious twins (they sense the masks) but still
        // never leave their licensed set; oblivious algorithms ignore the
        // plan entirely.
        let s = set(&[2, 7, 11]);
        let plan = FaultPlan::new(3, 32, 400, 0, 4096);
        let faulted_ctx = AgentCtx {
            faults: Some(plan),
            ..AgentCtx::default()
        };
        for algo in Algorithm::ALL {
            let quiet = algo.make(16, &s, &AgentCtx::default()).unwrap();
            let faulted = algo.make(16, &s, &faulted_ctx).unwrap();
            let diverges = (0..2_000).any(|t| quiet.channel_at(t) != faulted.channel_at(t));
            assert_eq!(
                diverges,
                algo.availability_aware(),
                "{algo}: plan sensitivity does not match availability_aware()"
            );
            for t in 0..500 {
                assert!(s.contains(faulted.channel_at(t).get()), "{algo} at {t}");
            }
        }
    }

    #[test]
    fn oversized_set_rejected() {
        let s = set(&[20]);
        assert!(Algorithm::Ours.make(16, &s, &AgentCtx::default()).is_none());
    }

    #[test]
    fn horizons_are_positive_and_ordered() {
        // JS's cubic horizon dominates the quadratic ones for large n.
        let n = 256;
        let h_js = Algorithm::JumpStay.horizon(n, 4, 4);
        let h_crseq = Algorithm::Crseq.horizon(n, 4, 4);
        let h_ours = Algorithm::Ours.horizon(n, 4, 4);
        assert!(h_js > h_crseq);
        assert!(h_crseq > h_ours);
    }

    #[test]
    fn display_names_unique() {
        // Over ALL variants (not just the Table 1 subset): artifact row
        // ids are keyed by display name, so a duplicate anywhere would
        // silently merge cells. ALL itself is compile-time exhaustive.
        let names: std::collections::HashSet<String> =
            Algorithm::ALL.iter().map(|a| a.to_string()).collect();
        assert_eq!(names.len(), Algorithm::ALL.len());
    }

    #[test]
    fn horizon_widens_before_multiplying() {
        // Regression for the old `(k * ell) as u64` / `(k + ell) as u64`
        // forms, which multiplied (added) in `usize` *before* widening —
        // an overflow for large k·ℓ on 32-bit targets. k = ℓ = 70_000
        // makes k·ℓ ≈ 4.9e9 > 2³²; the widened math must survive it and
        // match the formulas exactly.
        let (k, ell) = (70_000usize, 70_000usize);
        let kl = 4_900_000_000u64;
        assert_eq!(Algorithm::Ours.horizon(16, k, ell), (9 * kl + 4) * 4 * 80);
        assert_eq!(
            Algorithm::Random.horizon(16, k, ell),
            64 * kl * u64::from(rdv_strings::log_sharp(16) + 1) + 1024
        );
        // Beacon horizons add before widening; push the sum past 2³².
        let (k, ell) = (3_000_000_000usize, 3_000_000_000usize);
        let sum = 6_000_000_000u64;
        assert_eq!(
            Algorithm::BeaconA.horizon(16, k, ell),
            256 * sum * u64::from(rdv_strings::log_sharp(16) + 1) + 4096
        );
        assert_eq!(
            Algorithm::BeaconB.horizon(16, k, ell),
            512 * (sum + u64::from(rdv_strings::log_sharp(16))) + 8192
        );
    }
}
