//! The work-stealing parallel orchestrator behind every sweep in the
//! workspace.
//!
//! Sweeps are embarrassingly parallel — a `(shift × seed)` or pair grid of
//! independent kernel evaluations over shared read-only schedule tables —
//! but their per-task cost is wildly uneven (a rendezvous can take 2 slots
//! or 2 million, depending on the shift). Static chunking therefore leaves
//! cores idle behind the unluckiest chunk. This module shards a task list
//! into an injector queue plus per-worker deques (the vendored
//! [`crossbeam::deque`] stand-in) and lets idle workers steal, so the
//! longest task — not the longest *chunk* — bounds the critical path.
//!
//! Three entry points share that discipline:
//!
//! * [`run_indexed`] — a flat task list, results in task order;
//! * [`run_tree`] — a **task tree**: a forest of parent tasks, each
//!   expanding *on a worker* into child tasks that are scheduled across
//!   the same pool, so stealing crosses parent boundaries (a nested sweep
//!   submits its whole grid at once instead of one pool per cell);
//! * [`run_tree_barrier`] — the same tree with an **expansion barrier**:
//!   every parent expands (and publishes its owned output) before any
//!   child runs, and every child reads all parent outputs through
//!   [`ParentOutputs`] — the producer/consumer bulk step of the
//!   shared-arena engines, with owned published values instead of a
//!   shared atomic arena.
//!
//! # Determinism
//!
//! Results are **bit-identical across thread counts** by construction:
//!
//! * every task carries its grid index — or its `(parent, child)` path in
//!   a tree — and results are merged back in index order, so downstream
//!   consumers never observe scheduling order;
//! * tasks never share mutable state — schedules are compiled once before
//!   the fan-out and shared read-only (see
//!   [`rdv_core::compiled::PreparedSchedule`]);
//! * randomized tasks derive their RNG stream from [`stream_seed`] (flat
//!   grids) or [`tree_seed`] (tree children), a SplitMix64 mix of the
//!   experiment seed and the task's position — a pure function of *which*
//!   task, never of *where* or *when* it ran.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Thread-count policy for the parallel orchestrator.
///
/// The default (`threads: 0`) auto-detects, with the `RDV_THREADS`
/// environment variable as an override between the two (the CI test
/// matrix pins it to 1 and 8 so every push exercises the thread-count
/// determinism contract, not only the dedicated determinism tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelConfig {
    /// Worker threads to use. `0` means the `RDV_THREADS` environment
    /// override when set to a positive integer, else auto-detect
    /// ([`std::thread::available_parallelism`]).
    pub threads: usize,
}

impl ParallelConfig {
    /// A fixed thread count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig { threads }
    }

    /// The requested worker count before any task-count clamp: an explicit
    /// `threads`, else the `RDV_THREADS` environment override, else
    /// [`std::thread::available_parallelism`]. This is what sizes a
    /// [`run_tree`] pool, whose child-task count is unknown at submission.
    pub fn requested_threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        if let Some(n) = std::env::var("RDV_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(4)
    }

    /// The worker count to actually spawn for `tasks` tasks: the requested
    /// (or detected) thread count, never more than the number of tasks,
    /// never zero.
    pub fn effective_threads(&self, tasks: usize) -> usize {
        self.requested_threads().min(tasks).max(1)
    }
}

/// Task-chunk size for sharding `items` uniform work items across
/// `threads` workers.
///
/// Aims at roughly four chunks per worker: fine enough that the
/// work-stealing deques can rebalance an uneven tail, coarse enough to
/// amortize queue traffic and per-task bookkeeping over many items. The
/// result is clamped to `[1, 4096]` so tiny inputs still form tasks and
/// huge inputs cannot collapse into a handful of unstealable chunks.
///
/// This is the one chunking policy of the workspace: pair lists, agent
/// lists, and slot ranges are all sharded through it, replacing the
/// former fixed pairs-per-task constant that over-fragmented large
/// populations and under-split small ones.
pub fn chunk_size(items: usize, threads: usize) -> usize {
    items.div_ceil(threads.max(1) * 4).clamp(1, 4096)
}

/// Derives the RNG stream seed of task `task_index` within experiment
/// `base` — the SplitMix64 finalizer over the pair, as recommended for
/// splitting one seed into independent streams.
///
/// The map is bijective in `task_index` for a fixed `base` (every step is
/// invertible), so distinct tasks of one experiment can never collide; the
/// avalanche mixing keeps streams of adjacent indices statistically
/// independent. `tests/parallel_determinism.rs` property-tests both claims.
pub fn stream_seed(base: u64, task_index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(task_index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG stream seed of the child at `(parent, child)` within a
/// task-tree submission — one [`stream_seed`] application per tree level,
/// so the seed is a pure function of the task's *path* and never of where
/// or when the task ran.
///
/// For a fixed parent the child streams are collision-free (the inner
/// [`stream_seed`] is bijective in the child index), and each parent's
/// stream family starts from its own avalanche-mixed base; the path
/// distinctness of every grid shape the workspace submits is pinned by
/// `tests/task_tree.rs`.
pub fn tree_seed(base: u64, parent: u64, child: u64) -> u64 {
    stream_seed(stream_seed(base, parent), child)
}

/// The position of a child task within a [`run_tree`] submission: the
/// parent's index in the submitted forest and the child's index within
/// that parent's expansion — the pair the deterministic merge orders by,
/// and the path [`Self::stream_seed`] derives RNG streams from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreePath {
    /// Index of the parent task in the submitted forest.
    pub parent: usize,
    /// Index of this child within its parent's expansion.
    pub child: usize,
}

impl TreePath {
    /// The child's RNG stream seed under experiment seed `base` — see
    /// [`tree_seed`].
    pub fn stream_seed(&self, base: u64) -> u64 {
        tree_seed(base, self.parent as u64, self.child as u64)
    }
}

/// One round of the work-stealing discipline: the worker's own deque,
/// then a batch refill from the injector, then robbing a sibling,
/// retrying lost races. Returns `None` only when every queue was
/// observed empty with no steal in flight — at which point any remaining
/// task is already in some worker's hands and will be finished by it.
fn find_task<T>(
    me: usize,
    worker: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
) -> Option<T> {
    worker.pop().or_else(|| 'find: loop {
        match injector.steal_batch_and_pop(worker) {
            Steal::Success(t) => break 'find Some(t),
            Steal::Retry => continue 'find,
            Steal::Empty => {}
        }
        let mut retry = false;
        for (other, stealer) in stealers.iter().enumerate() {
            if other == me {
                continue;
            }
            match stealer.steal() {
                Steal::Success(t) => break 'find Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            break 'find None;
        }
    })
}

/// A panic-safe barrier arrival: the worker announces phase completion
/// through [`Self::arrive`]; if it unwinds first, `Drop` announces for it
/// so siblings spinning on the arrival count are released instead of
/// deadlocking (the panic then propagates at scope join).
struct Arrival<'a> {
    arrivals: &'a AtomicUsize,
    armed: bool,
}

impl<'a> Arrival<'a> {
    fn new(arrivals: &'a AtomicUsize) -> Self {
        Arrival {
            arrivals,
            armed: true,
        }
    }

    fn arrive(&mut self) {
        if self.armed {
            self.armed = false;
            self.arrivals.fetch_add(1, Ordering::AcqRel);
        }
    }
}

impl Drop for Arrival<'_> {
    fn drop(&mut self) {
        self.arrive();
    }
}

/// Sets the shared poison flag if its holder unwinds, so sibling workers
/// spinning on a tree's pending-task count exit instead of waiting forever
/// for tasks the dead worker will never finish (the panic then propagates
/// at scope join).
struct PoisonOnPanic<'a>(&'a AtomicBool);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

/// Runs `f` over every `(index, task)` on a work-stealing thread pool and
/// returns the results **in task order**, regardless of thread count or
/// scheduling.
///
/// `f` must be a pure function of its arguments (plus shared read-only
/// captures) for the cross-thread-count determinism guarantee to hold —
/// which every sweep satisfies by deriving randomness via [`stream_seed`].
///
/// Single-task and single-thread calls run inline on the caller's thread
/// (no spawn overhead), making `threads = 1` the literal sequential
/// semantics the parallel runs are tested against.
///
/// # Panics
///
/// Panics if a worker thread panics (the task panic propagates).
pub fn run_indexed<T, R, F>(tasks: Vec<T>, cfg: &ParallelConfig, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n_tasks = tasks.len();
    let threads = cfg.effective_threads(n_tasks);
    if threads <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let injector = Injector::new();
    for task in tasks.into_iter().enumerate() {
        injector.push(task);
    }
    let workers: Vec<Worker<(usize, T)>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = workers.iter().map(Worker::stealer).collect();

    let mut indexed: Vec<(usize, R)> = crossbeam::scope(|scope| {
        let injector = &injector;
        let stealers = &stealers;
        let f = &f;
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(me, worker)| {
                scope.spawn(move |_| {
                    let mut out: Vec<(usize, R)> = Vec::with_capacity(n_tasks / threads + 1);
                    while let Some((i, t)) = find_task(me, &worker, injector, stealers) {
                        out.push((i, f(i, t)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("crossbeam scope");

    debug_assert_eq!(indexed.len(), n_tasks, "orchestrator lost tasks");
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// The eager scheduler behind [`run_tree`]: one pool of `threads` workers
/// draining a parent injector and a child injector with the [`find_task`]
/// stealing discipline.
///
/// Children become stealable the moment their parent expands, so a slow
/// parent never serializes its siblings' children. Termination is
/// certified by a pending-task count (queues can be momentarily empty
/// while a sibling is about to push freshly expanded children), with a
/// poison flag releasing the spin if a worker dies mid-task.
/// [`run_tree_barrier`] is the sibling scheduler that *does* interpose an
/// expansion barrier between the levels.
///
/// With one thread this collapses to the literal sequential nested loops
/// — the reference semantics `tests/task_tree.rs` property-tests the
/// parallel runs against.
fn run_tree_impl<P, PR, C, R, E, F>(
    threads: usize,
    parents: Vec<P>,
    expand: &E,
    child: &F,
) -> Vec<(PR, Vec<R>)>
where
    P: Send,
    PR: Send,
    C: Send,
    R: Send,
    E: Fn(usize, P) -> (PR, Vec<C>) + Sync,
    F: Fn(TreePath, C) -> R + Sync,
{
    let n_parents = parents.len();
    if threads <= 1 {
        return parents
            .into_iter()
            .enumerate()
            .map(|(pi, p)| {
                let (pr, kids) = expand(pi, p);
                let rs = kids
                    .into_iter()
                    .enumerate()
                    .map(|(ci, c)| {
                        child(
                            TreePath {
                                parent: pi,
                                child: ci,
                            },
                            c,
                        )
                    })
                    .collect();
                (pr, rs)
            })
            .collect();
    }

    let inj_p = Injector::new();
    for task in parents.into_iter().enumerate() {
        inj_p.push(task);
    }
    let inj_c: Injector<(TreePath, C)> = Injector::new();
    let workers_p: Vec<Worker<(usize, P)>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers_p: Vec<Stealer<(usize, P)>> = workers_p.iter().map(Worker::stealer).collect();
    let workers_c: Vec<Worker<(TreePath, C)>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers_c: Vec<Stealer<(TreePath, C)>> = workers_c.iter().map(Worker::stealer).collect();
    let pending = AtomicUsize::new(n_parents);
    let poisoned = AtomicBool::new(false);

    type Rows<PR, R> = (Vec<(usize, PR)>, Vec<(TreePath, R)>);
    let (mut parent_rows, mut child_rows): Rows<PR, R> = crossbeam::scope(|scope| {
        let (inj_p, inj_c) = (&inj_p, &inj_c);
        let (stealers_p, stealers_c) = (&stealers_p, &stealers_c);
        let (pending, poisoned) = (&pending, &poisoned);
        let handles: Vec<_> = workers_p
            .into_iter()
            .zip(workers_c)
            .enumerate()
            .map(|(me, (wp, wc))| {
                scope.spawn(move |_| {
                    let _poison = PoisonOnPanic(poisoned);
                    let mut parent_out: Vec<(usize, PR)> = Vec::new();
                    let mut child_out: Vec<(TreePath, R)> = Vec::new();
                    let mut idle_rounds = 0u32;
                    loop {
                        if let Some((pi, p)) = find_task(me, &wp, inj_p, stealers_p) {
                            let (pr, kids) = expand(pi, p);
                            // Registering the children before
                            // retiring their parent keeps the
                            // pending count from touching zero
                            // while work remains unscheduled.
                            pending.fetch_add(kids.len(), Ordering::AcqRel);
                            for (ci, c) in kids.into_iter().enumerate() {
                                inj_c.push((
                                    TreePath {
                                        parent: pi,
                                        child: ci,
                                    },
                                    c,
                                ));
                            }
                            parent_out.push((pi, pr));
                            pending.fetch_sub(1, Ordering::AcqRel);
                            idle_rounds = 0;
                            continue;
                        }
                        if let Some((path, c)) = find_task(me, &wc, inj_c, stealers_c) {
                            child_out.push((path, child(path, c)));
                            pending.fetch_sub(1, Ordering::AcqRel);
                            idle_rounds = 0;
                            continue;
                        }
                        if pending.load(Ordering::Acquire) == 0 || poisoned.load(Ordering::Acquire)
                        {
                            break;
                        }
                        // Idle back-off: spin-yield while a refill
                        // is likely imminent, then nap so starved
                        // workers (e.g. more workers than cores)
                        // stop taxing the queues the busy ones are
                        // pushing through.
                        idle_rounds += 1;
                        if idle_rounds < 64 {
                            std::thread::yield_now();
                        } else {
                            std::thread::sleep(std::time::Duration::from_micros(20));
                        }
                    }
                    (parent_out, child_out)
                })
            })
            .collect();
        let mut parent_rows: Vec<(usize, PR)> = Vec::with_capacity(n_parents);
        let mut child_rows: Vec<(TreePath, R)> = Vec::new();
        for h in handles {
            let (ps, cs) = h.join().expect("tree worker panicked");
            parent_rows.extend(ps);
            child_rows.extend(cs);
        }
        (parent_rows, child_rows)
    })
    .expect("crossbeam scope");

    debug_assert_eq!(
        parent_rows.len(),
        n_parents,
        "tree orchestrator lost parents"
    );
    parent_rows.sort_unstable_by_key(|&(i, _)| i);
    child_rows.sort_unstable_by_key(|&(path, _)| (path.parent, path.child));
    let mut out: Vec<(PR, Vec<R>)> = parent_rows
        .into_iter()
        .map(|(_, pr)| (pr, Vec::new()))
        .collect();
    for (path, r) in child_rows {
        out[path.parent].1.push(r);
    }
    out
}

/// Runs a **task tree** on one work-stealing pool: a forest of `parents`,
/// each expanded by `expand` *on a worker* into an output value plus a
/// list of child tasks, every child evaluated by `child` on the same set
/// of workers — so work-stealing crosses parent boundaries, and a nested
/// sweep can submit its entire (scenario × shift/seed) grid as one tree
/// instead of paying one pool (and one serializing join) per cell.
///
/// Returns, for every parent in **submission order**, its expansion
/// output and its children's results in **child order** — scheduling is
/// never observable, so results are bit-identical at any thread count.
/// `expand` and `child` must be pure functions of their arguments (plus
/// shared read-only captures); randomized children derive their RNG
/// stream from the `(parent, child)` path via [`TreePath::stream_seed`].
///
/// Children become stealable the moment their parent expands (no barrier
/// between levels); [`run_tree_barrier`] is the variant that *does*
/// interpose a barrier and hands every child the published parent
/// outputs, for producer/consumer phases.
///
/// A single-parent forest degenerates to a flat run: the parent expands
/// on the caller's thread and the children go through [`run_indexed`],
/// which clamps the worker count to the now-known child count (and keeps
/// tiny sweeps inline).
///
/// # Panics
///
/// Panics if a worker panics (the task panic propagates at scope join; a
/// poison flag releases the sibling workers' termination spin rather than
/// deadlocking them).
pub fn run_tree<P, PR, C, R, E, F>(
    parents: Vec<P>,
    cfg: &ParallelConfig,
    expand: E,
    child: F,
) -> Vec<(PR, Vec<R>)>
where
    P: Send,
    PR: Send,
    C: Send,
    R: Send,
    E: Fn(usize, P) -> (PR, Vec<C>) + Sync,
    F: Fn(TreePath, C) -> R + Sync,
{
    if parents.is_empty() {
        return Vec::new();
    }
    if parents.len() == 1 {
        let mut parents = parents;
        let (pr, kids) = expand(0, parents.pop().expect("one parent"));
        let rs = run_indexed(kids, cfg, |ci, c| {
            child(
                TreePath {
                    parent: 0,
                    child: ci,
                },
                c,
            )
        });
        return vec![(pr, rs)];
    }
    run_tree_impl(cfg.requested_threads(), parents, &expand, &child)
}

/// The parent outputs of a [`run_tree_barrier`] submission, as seen by a
/// child task: a read-only window over every parent's expansion output,
/// published by the barrier before any child runs.
///
/// This is how the shared-arena engines hand a block of filled channel
/// rows from the fill wave to the resolve wave without a shared mutable
/// arena: each fill parent *returns* its rows as an owned value, the
/// barrier publishes them, and every resolve child reads any parent's
/// rows through [`Self::get`] — no atomics, no `unsafe`, and the borrows
/// live as long as the submission (`'a`), so children can keep slices
/// into any parent's output for their whole run.
pub struct ParentOutputs<'a, PR> {
    slots: &'a [std::sync::OnceLock<PR>],
}

impl<PR> Clone for ParentOutputs<'_, PR> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<PR> Copy for ParentOutputs<'_, PR> {}

impl<'a, PR> ParentOutputs<'a, PR> {
    /// The expansion output of parent `parent` (submission order).
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range. Inside a [`run_tree_barrier`]
    /// child every in-range slot is published; an unpublished slot can
    /// only be observed while a sibling parent's panic is already
    /// propagating, and panics too.
    pub fn get(&self, parent: usize) -> &'a PR {
        self.slots[parent]
            .get()
            .expect("parent output published by the expansion barrier")
    }

    /// Number of parents in the submission.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the submission had no parents.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// [`run_tree`] with an **expansion barrier**: every parent expands — and
/// its output value is published — before any child runs, and every child
/// receives a [`ParentOutputs`] window over *all* parent outputs alongside
/// its task.
///
/// This is the producer/consumer bulk step of the shared-arena engines:
/// fill parents return their block's channel rows as owned values, the
/// barrier publishes them, resolve children read any row they need. Both
/// waves work-steal on **one** set of worker threads spawned once — the
/// barrier is an atomic arrival count, not a join — so a caller iterating
/// fill/resolve steps per block pays one spawn per block, not two. The
/// arrival count's release/acquire ordering (and the `OnceLock`
/// publication) makes every expansion-side value visible to every child.
///
/// Returns, for every parent in **submission order**, its expansion
/// output and its children's results in **child order**, exactly like
/// [`run_tree`]; with one effective thread the two waves run inline
/// sequentially (all expansions, then all children), which is the
/// reference semantics the parallel runs are tested against.
///
/// # Panics
///
/// Panics if a worker panics (the task panic propagates at scope join; an
/// expansion panic releases the barrier via a drop guard rather than
/// deadlocking the siblings).
pub fn run_tree_barrier<P, PR, C, R, E, F>(
    parents: Vec<P>,
    cfg: &ParallelConfig,
    expand: E,
    child: F,
) -> Vec<(PR, Vec<R>)>
where
    P: Send,
    PR: Send + Sync,
    C: Send,
    R: Send,
    E: Fn(usize, P) -> (PR, Vec<C>) + Sync,
    F: Fn(TreePath, C, ParentOutputs<'_, PR>) -> R + Sync,
{
    use std::sync::OnceLock;

    let n_parents = parents.len();
    if n_parents == 0 {
        return Vec::new();
    }
    let slots: Vec<OnceLock<PR>> = (0..n_parents).map(|_| OnceLock::new()).collect();
    let threads = cfg.requested_threads();

    let mut child_rows: Vec<(TreePath, R)> = if threads <= 1 {
        // The sequential reference: expand *all* parents first (the
        // barrier semantics — children may read any parent's output),
        // then run all children.
        let mut kid_lists: Vec<Vec<C>> = Vec::with_capacity(n_parents);
        for (pi, p) in parents.into_iter().enumerate() {
            let (pr, kids) = expand(pi, p);
            if slots[pi].set(pr).is_err() {
                unreachable!("parent {pi} expanded twice");
            }
            kid_lists.push(kids);
        }
        let outputs = ParentOutputs { slots: &slots };
        let mut rows = Vec::new();
        for (pi, kids) in kid_lists.into_iter().enumerate() {
            for (ci, c) in kids.into_iter().enumerate() {
                let path = TreePath {
                    parent: pi,
                    child: ci,
                };
                rows.push((path, child(path, c, outputs)));
            }
        }
        rows
    } else {
        let inj_p = Injector::new();
        for task in parents.into_iter().enumerate() {
            inj_p.push(task);
        }
        let inj_c: Injector<(TreePath, C)> = Injector::new();
        let workers_p: Vec<Worker<(usize, P)>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers_p: Vec<Stealer<(usize, P)>> = workers_p.iter().map(Worker::stealer).collect();
        let workers_c: Vec<Worker<(TreePath, C)>> =
            (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers_c: Vec<Stealer<(TreePath, C)>> =
            workers_c.iter().map(Worker::stealer).collect();
        let arrivals = AtomicUsize::new(0);

        crossbeam::scope(|scope| {
            let (inj_p, inj_c) = (&inj_p, &inj_c);
            let (stealers_p, stealers_c) = (&stealers_p, &stealers_c);
            let (arrivals, slots) = (&arrivals, &slots[..]);
            let (expand, child) = (&expand, &child);
            let handles: Vec<_> = workers_p
                .into_iter()
                .zip(workers_c)
                .enumerate()
                .map(|(me, (wp, wc))| {
                    scope.spawn(move |_| {
                        let mut arrival = Arrival::new(arrivals);
                        while let Some((pi, p)) = find_task(me, &wp, inj_p, stealers_p) {
                            let (pr, kids) = expand(pi, p);
                            for (ci, c) in kids.into_iter().enumerate() {
                                inj_c.push((
                                    TreePath {
                                        parent: pi,
                                        child: ci,
                                    },
                                    c,
                                ));
                            }
                            if slots[pi].set(pr).is_err() {
                                unreachable!("parent {pi} expanded twice");
                            }
                        }
                        // A worker arrives only once the parent queues
                        // were observed drained and it holds no task, so
                        // `arrivals == threads` certifies every expansion
                        // has completed, pushed its children, and
                        // published its output. Expansions are short (one
                        // block of bulk work), so a yielding spin outlasts
                        // nothing worth parking for.
                        arrival.arrive();
                        while arrivals.load(Ordering::Acquire) < threads {
                            std::thread::yield_now();
                        }
                        let outputs = ParentOutputs { slots };
                        let mut child_out: Vec<(TreePath, R)> = Vec::new();
                        while let Some((path, c)) = find_task(me, &wc, inj_c, stealers_c) {
                            child_out.push((path, child(path, c, outputs)));
                        }
                        child_out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("barrier tree worker panicked"))
                .collect()
        })
        .expect("crossbeam scope")
    };

    child_rows.sort_unstable_by_key(|&(path, _)| (path.parent, path.child));
    let mut out: Vec<(PR, Vec<R>)> = slots
        .into_iter()
        .map(|slot| {
            let pr = slot
                .into_inner()
                .expect("every parent published through the barrier");
            (pr, Vec::new())
        })
        .collect();
    for (path, r) in child_rows {
        out[path.parent].1.push(r);
    }
    out
}

// ---------------------------------------------------------------------
// Orchestrator hardening: panic quarantine, deterministic bounded retry,
// and cooperative cancellation — the fault-tolerant layer grid pipelines
// run on so one poisoned cell degrades the artifact instead of killing
// the whole submission.
// ---------------------------------------------------------------------

/// A quarantined task panic: the deterministic payload message of a task
/// that panicked inside [`quarantine`] instead of propagating through the
/// pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The panic payload, when it was a string (the only payloads this
    /// workspace produces); `"opaque panic payload"` otherwise. Callers
    /// recording quarantined failures in artifacts rely on panic messages
    /// being deterministic.
    pub message: String,
}

impl TaskPanic {
    /// A panic record carrying the given deterministic message.
    pub fn new(message: impl Into<String>) -> Self {
        TaskPanic {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "panic: {}", self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Runs `f`, converting a panic into a typed [`TaskPanic`] instead of
/// unwinding. This is the quarantine primitive: wrapping every task
/// closure of a [`run_indexed`]/[`run_tree`] submission in it means no
/// task ever panics *as seen by the pool*, so the pending-count and
/// barrier machinery complete normally and the poisoned cell surfaces as
/// an `Err` in its result slot rather than killing its grid neighbors.
pub fn quarantine<R>(f: impl FnOnce() -> R) -> Result<R, TaskPanic> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "opaque panic payload".to_string()
        };
        TaskPanic { message }
    })
}

/// [`run_indexed`] with per-task panic quarantine: a panicking task
/// yields `Err(TaskPanic)` in its slot and every other task completes.
/// Results stay in task order.
pub fn run_indexed_quarantined<T, R, F>(
    tasks: Vec<T>,
    cfg: &ParallelConfig,
    f: F,
) -> Vec<Result<R, TaskPanic>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_indexed_quarantined_sink(tasks, cfg, f, |_, _| {})
}

/// [`run_indexed_quarantined`] with a **completion sink**: `sink(i, &r)`
/// runs on the worker thread the moment task `i`'s quarantined result is
/// known — before the pool joins, so a crash mid-grid loses at most the
/// in-flight tasks. This is the seam checkpointing pipelines journal
/// completed cells through.
///
/// The sink observes completions in scheduling order (non-deterministic
/// across thread counts); consumers that need determinism key on the task
/// index, never on arrival order. The sink itself is *not* quarantined —
/// a sink failure (e.g. an unwritable journal) is fatal to the run, like
/// an unwritable artifact.
pub fn run_indexed_quarantined_sink<T, R, F, S>(
    tasks: Vec<T>,
    cfg: &ParallelConfig,
    f: F,
    sink: S,
) -> Vec<Result<R, TaskPanic>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
    S: Fn(usize, &Result<R, TaskPanic>) + Sync,
{
    run_indexed(tasks, cfg, |i, t| {
        let r = quarantine(|| f(i, t));
        sink(i, &r);
        r
    })
}

/// One parent's quarantined results from [`run_tree_quarantined`]: the
/// expansion outcome and each child's outcome, in path order.
pub type QuarantinedParent<PR, R> = (Result<PR, TaskPanic>, Vec<Result<R, TaskPanic>>);

/// [`run_tree`] with panic quarantine on both levels: a panicking
/// expansion quarantines its parent (which then contributes no children),
/// a panicking child quarantines only its own slot, and in every case the
/// rest of the tree runs to completion and merges in path order.
pub fn run_tree_quarantined<P, PR, C, R, E, F>(
    parents: Vec<P>,
    cfg: &ParallelConfig,
    expand: E,
    child: F,
) -> Vec<QuarantinedParent<PR, R>>
where
    P: Send,
    PR: Send,
    C: Send,
    R: Send,
    E: Fn(usize, P) -> (PR, Vec<C>) + Sync,
    F: Fn(TreePath, C) -> R + Sync,
{
    run_tree_quarantined_sink(parents, cfg, expand, child, |_, _| {})
}

/// [`run_tree_quarantined`] with a **completion sink**: `sink(path, &r)`
/// runs on the worker thread the moment the child at `path` finishes
/// (quarantined) — the task-tree twin of
/// [`run_indexed_quarantined_sink`], and the seam checkpointing pipelines
/// journal completed tree cells through before the merge.
///
/// Like the flat variant, the sink observes completions in scheduling
/// order and is not quarantined: a sink failure is fatal to the run.
pub fn run_tree_quarantined_sink<P, PR, C, R, E, F, S>(
    parents: Vec<P>,
    cfg: &ParallelConfig,
    expand: E,
    child: F,
    sink: S,
) -> Vec<QuarantinedParent<PR, R>>
where
    P: Send,
    PR: Send,
    C: Send,
    R: Send,
    E: Fn(usize, P) -> (PR, Vec<C>) + Sync,
    F: Fn(TreePath, C) -> R + Sync,
    S: Fn(TreePath, &Result<R, TaskPanic>) + Sync,
{
    run_tree(
        parents,
        cfg,
        |pi, p| match quarantine(|| expand(pi, p)) {
            Ok((pr, kids)) => (Ok(pr), kids),
            Err(e) => (Err(e), Vec::new()),
        },
        |path, c| {
            let r = quarantine(|| child(path, c));
            sink(path, &r);
            r
        },
    )
}

/// Deterministic bounded retry with exponential **backoff-in-attempts**:
/// calls `attempt(round, budget)` with a budget that doubles every round
/// (`base_budget`, `2·base_budget`, `4·base_budget`, …) for up to
/// `rounds` rounds, returning the first `Ok` or — once every round has
/// failed — the last error together with the number of rounds used.
///
/// Backoff here widens the *work budget*, never a wall-clock sleep:
/// transient failures in this workspace (e.g. a scenario sampler
/// exhausting its draw budget) are functions of how hard the task tried,
/// not of when it ran, so retried work stays a pure function of
/// `(attempt, round)` and grid artifacts stay byte-identical. Note a zero
/// `base_budget` stays zero through every doubling — the deterministic
/// exhaustion seam the degradation tests sabotage cells with.
pub fn retry_with_backoff<R, E>(
    rounds: u32,
    base_budget: u32,
    mut attempt: impl FnMut(u32, u32) -> Result<R, E>,
) -> Result<R, (E, u32)> {
    let rounds = rounds.max(1);
    let mut budget = base_budget;
    let mut last = None;
    for round in 0..rounds {
        match attempt(round, budget) {
            Ok(r) => return Ok(r),
            Err(e) => last = Some(e),
        }
        budget = budget.saturating_mul(2);
    }
    Err((last.expect("at least one round ran"), rounds))
}

/// A cooperative cancellation token with an optional **soft deadline**:
/// long-running tasks poll [`CancelToken::is_cancelled`] at natural
/// checkpoints (between retry rounds, between grid cells) and wind down
/// early instead of being killed. Once the deadline elapses — or
/// [`CancelToken::cancel`] is called — the token latches and every clone
/// observes it.
///
/// Deadlines are wall-clock and therefore **non-deterministic**: tokens
/// with deadlines belong in interactive and nightly guard rails, never on
/// the path that computes a committed artifact (the degradation pipeline
/// only consults tokens it creates without a deadline, which trip purely
/// by explicit `cancel`).
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: std::sync::Arc<CancelInner>,
}

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<std::time::Instant>,
}

impl CancelToken {
    /// A token that only trips by explicit [`Self::cancel`] — safe for
    /// deterministic paths.
    pub fn new() -> Self {
        CancelToken {
            inner: std::sync::Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally trips once `soft_deadline` has elapsed
    /// from now. The deadline is *soft*: nothing is interrupted, tasks
    /// observe it at their next poll.
    pub fn with_deadline(soft_deadline: std::time::Duration) -> Self {
        CancelToken {
            inner: std::sync::Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(std::time::Instant::now() + soft_deadline),
            }),
        }
    }

    /// Trips the token for every clone, idempotently.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has tripped (explicitly, or because the soft
    /// deadline elapsed — which latches, so a tripped token never
    /// un-trips).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if std::time::Instant::now() >= deadline {
                self.inner.cancelled.store(true, Ordering::Release);
                return true;
            }
        }
        false
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1usize, 2, 8] {
            let tasks: Vec<u64> = (0..257).collect();
            let out = run_indexed(
                tasks.clone(),
                &ParallelConfig::with_threads(threads),
                |i, t| {
                    assert_eq!(i as u64, t);
                    t * t
                },
            );
            let expected: Vec<u64> = tasks.iter().map(|t| t * t).collect();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(
            vec![(); 1000],
            &ParallelConfig::with_threads(4),
            |_i, ()| counter.fetch_add(1, Ordering::Relaxed),
        );
        assert_eq!(out.len(), 1000);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn uneven_tasks_balance_across_workers() {
        // One task 1000× heavier than the rest: stealing must still finish
        // everything and keep order.
        let weights: Vec<u64> = (0..64)
            .map(|i| if i == 0 { 100_000 } else { 100 })
            .collect();
        let out = run_indexed(weights.clone(), &ParallelConfig::with_threads(4), |_, w| {
            (0..w).map(std::hint::black_box).sum::<u64>()
        });
        for (w, got) in weights.iter().zip(&out) {
            assert_eq!(*got, w * (w - 1) / 2);
        }
    }

    #[test]
    fn zero_and_one_task_edge_cases() {
        let empty: Vec<u64> = run_indexed(vec![], &ParallelConfig::default(), |_, t: u64| t);
        assert!(empty.is_empty());
        let one = run_indexed(vec![7u64], &ParallelConfig::with_threads(8), |i, t| {
            t + i as u64
        });
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(ParallelConfig::with_threads(8).effective_threads(3), 3);
        assert_eq!(ParallelConfig::with_threads(2).effective_threads(100), 2);
        assert_eq!(ParallelConfig::with_threads(5).effective_threads(0), 1);
        assert!(ParallelConfig::default().effective_threads(100) >= 1);
    }

    #[test]
    fn chunk_size_targets_four_chunks_per_worker() {
        assert_eq!(chunk_size(0, 8), 1);
        assert_eq!(chunk_size(1, 8), 1);
        assert_eq!(chunk_size(64, 2), 8);
        assert_eq!(chunk_size(37_000, 8), 1157);
        // Huge inputs stay stealable…
        assert_eq!(chunk_size(10_000_000, 8), 4096);
        // …and a zero thread count cannot divide by zero.
        assert_eq!(chunk_size(100, 0), 25);
    }

    #[test]
    fn chunk_size_crossover_points_are_pinned() {
        // Degenerate edges: no items still forms a (single, empty-range)
        // chunk; a single worker targets four chunks.
        assert_eq!(chunk_size(0, 1), 1);
        assert_eq!(chunk_size(1, 1), 1);
        assert_eq!(chunk_size(16, 1), 4);
        assert_eq!(chunk_size(17, 1), 5);
        // The low clamp: at items ≤ 4·threads every item is its own chunk,
        // and the first item past the boundary doubles the chunk.
        assert_eq!(chunk_size(4 * 8, 8), 1);
        assert_eq!(chunk_size(4 * 8 + 1, 8), 2);
        // Below the high clamp the policy is exactly ⌈items / 4·threads⌉…
        assert_eq!(chunk_size(100_000, 8), 3125);
        // …and the 4096 cap engages exactly at items = 4·threads·4096.
        assert_eq!(chunk_size(4 * 8 * 4096 - 1, 8), 4096);
        assert_eq!(chunk_size(4 * 8 * 4096, 8), 4096);
        assert_eq!(chunk_size(4 * 8 * 4096 + 1, 8), 4096);
    }

    #[test]
    fn run_tree_merges_in_path_order() {
        for threads in [1usize, 2, 8] {
            let out: Vec<(u64, Vec<u64>)> = run_tree(
                (0..23u64).collect(),
                &ParallelConfig::with_threads(threads),
                |pi, p| {
                    assert_eq!(pi as u64, p);
                    (p * 100, (0..p % 5).collect())
                },
                |path, c| path.parent as u64 * 1000 + c,
            );
            assert_eq!(out.len(), 23);
            for (pi, (pr, rs)) in out.iter().enumerate() {
                assert_eq!(*pr, pi as u64 * 100, "threads = {threads}");
                let expected: Vec<u64> =
                    (0..(pi as u64) % 5).map(|c| pi as u64 * 1000 + c).collect();
                assert_eq!(rs, &expected, "threads = {threads}");
            }
        }
    }

    #[test]
    fn run_tree_empty_and_single_parent() {
        let none: Vec<((), Vec<u64>)> = run_tree(
            Vec::<u64>::new(),
            &ParallelConfig::default(),
            |_, _| ((), vec![]),
            |_, c: u64| c,
        );
        assert!(none.is_empty());
        // One parent takes the degenerate run_indexed path.
        let one = run_tree(
            vec![5u64],
            &ParallelConfig::with_threads(8),
            |_, p| (p, (0..p).collect::<Vec<u64>>()),
            |path, c| c + path.child as u64,
        );
        assert_eq!(one, vec![(5, vec![0, 2, 4, 6, 8])]);
    }

    #[test]
    fn tree_seed_matches_chained_stream_seed() {
        assert_eq!(tree_seed(7, 3, 11), stream_seed(stream_seed(7, 3), 11));
        let path = TreePath {
            parent: 3,
            child: 11,
        };
        assert_eq!(path.stream_seed(7), tree_seed(7, 3, 11));
    }

    #[test]
    fn barrier_publishes_every_fill_before_any_resolve() {
        // Fill parents 0..97 each publish i+1 as their owned output; a
        // final fan-out parent carries 33 resolve children that each sum
        // the whole window. The barrier guarantees no child observes an
        // unpublished slot.
        enum P {
            Fill(u64),
            FanOut,
        }
        for threads in [1usize, 2, 8] {
            let parents: Vec<P> = (0..97u64)
                .map(P::Fill)
                .chain(std::iter::once(P::FanOut))
                .collect();
            let out = run_tree_barrier(
                parents,
                &ParallelConfig::with_threads(threads),
                |pi, p| match p {
                    P::Fill(v) => {
                        assert_eq!(pi as u64, v);
                        (v + 1, Vec::new())
                    }
                    P::FanOut => (0, (0..33usize).collect()),
                },
                |_path, _c: usize, outputs: ParentOutputs<'_, u64>| {
                    (0..97)
                        .map(|pi| {
                            let v = *outputs.get(pi);
                            assert_ne!(v, 0, "resolve observed an unpublished fill");
                            v
                        })
                        .sum::<u64>()
                },
            );
            assert_eq!(out.len(), 98, "threads = {threads}");
            let expected = 97u64 * 98 / 2;
            assert_eq!(
                out.last().unwrap().1,
                vec![expected; 33],
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn barrier_results_come_back_in_path_order() {
        for threads in [1usize, 2, 8] {
            let out: Vec<(u64, Vec<u64>)> = run_tree_barrier(
                (0..23u64).collect(),
                &ParallelConfig::with_threads(threads),
                |pi, p| {
                    assert_eq!(pi as u64, p);
                    (p * 100, (0..p % 5).collect::<Vec<u64>>())
                },
                // Children read a *sibling's* output — legal only because
                // of the barrier — plus their own path.
                |path, c, outputs: ParentOutputs<'_, u64>| {
                    outputs.get((path.parent + 1) % 23) / 100 + path.parent as u64 * 1000 + c
                },
            );
            assert_eq!(out.len(), 23);
            for (pi, (pr, rs)) in out.iter().enumerate() {
                assert_eq!(*pr, pi as u64 * 100, "threads = {threads}");
                let sibling = ((pi + 1) % 23) as u64;
                let expected: Vec<u64> = (0..(pi as u64) % 5)
                    .map(|c| sibling + pi as u64 * 1000 + c)
                    .collect();
                assert_eq!(rs, &expected, "threads = {threads}");
            }
        }
    }

    #[test]
    fn barrier_empty_and_childless_submissions() {
        let none: Vec<(u64, Vec<u64>)> = run_tree_barrier(
            Vec::<u64>::new(),
            &ParallelConfig::with_threads(4),
            |_, p| (p, vec![]),
            |_, c: u64, _outputs| c,
        );
        assert!(none.is_empty());
        // All-childless parents still publish their outputs in order.
        let childless: Vec<(u64, Vec<u64>)> = run_tree_barrier(
            vec![1u64, 2, 3],
            &ParallelConfig::with_threads(4),
            |_, p| (p * 10, Vec::<u64>::new()),
            |_, c: u64, _outputs| c,
        );
        assert_eq!(childless, vec![(10, vec![]), (20, vec![]), (30, vec![])]);
    }

    #[test]
    fn stream_seeds_are_collision_free_per_base() {
        for base in [0u64, 1, 42, u64::MAX] {
            let seeds: HashSet<u64> = (0..4096).map(|i| stream_seed(base, i)).collect();
            assert_eq!(seeds.len(), 4096, "collision under base {base}");
        }
    }

    #[test]
    fn indexed_sink_sees_every_completion_exactly_once() {
        use std::sync::Mutex;
        for threads in [1usize, 4] {
            let seen: Mutex<Vec<(usize, Result<u64, String>)>> = Mutex::new(Vec::new());
            let out = run_indexed_quarantined_sink(
                (0..57u64).collect(),
                &ParallelConfig::with_threads(threads),
                |i, t| {
                    if i == 13 {
                        panic!("cell 13 down");
                    }
                    t * 2
                },
                |i, r| {
                    seen.lock()
                        .unwrap()
                        .push((i, r.clone().map_err(|e| e.message)));
                },
            );
            let mut seen = seen.into_inner().unwrap();
            seen.sort_by_key(|&(i, _)| i);
            assert_eq!(seen.len(), 57, "threads = {threads}");
            for (i, r) in &seen {
                // The sink observed exactly the result merged into slot i —
                // including the quarantined panic.
                assert_eq!(
                    r.clone().map_err(|m| TaskPanic { message: m }),
                    out[*i],
                    "threads = {threads}"
                );
            }
            assert_eq!(out[13], Err(TaskPanic::new("cell 13 down")));
        }
    }

    #[test]
    fn tree_sink_sees_every_child_completion() {
        use std::sync::Mutex;
        for threads in [1usize, 4] {
            let seen: Mutex<HashSet<(usize, usize)>> = Mutex::new(HashSet::new());
            let out = run_tree_quarantined_sink(
                (0..9u64).collect(),
                &ParallelConfig::with_threads(threads),
                |_pi, p| (p, (0..3u64).collect()),
                |path, c| {
                    if path.parent == 2 && path.child == 1 {
                        panic!("child down");
                    }
                    c + 1
                },
                |path, r: &Result<u64, TaskPanic>| {
                    assert_eq!(r.is_err(), path.parent == 2 && path.child == 1);
                    assert!(
                        seen.lock().unwrap().insert((path.parent, path.child)),
                        "sink fired twice for {path:?}"
                    );
                },
            );
            assert_eq!(seen.into_inner().unwrap().len(), 27, "threads = {threads}");
            assert_eq!(out[2].1[1], Err(TaskPanic::new("child down")));
        }
    }
}
