//! The work-stealing parallel orchestrator behind every sweep in the
//! workspace.
//!
//! Sweeps are embarrassingly parallel — a `(shift × seed)` or pair grid of
//! independent kernel evaluations over shared read-only schedule tables —
//! but their per-task cost is wildly uneven (a rendezvous can take 2 slots
//! or 2 million, depending on the shift). Static chunking therefore leaves
//! cores idle behind the unluckiest chunk. This module shards a task list
//! into an injector queue plus per-worker deques (the vendored
//! [`crossbeam::deque`] stand-in) and lets idle workers steal, so the
//! longest task — not the longest *chunk* — bounds the critical path.
//!
//! # Determinism
//!
//! Results are **bit-identical across thread counts** by construction:
//!
//! * every task carries its grid index, and results are merged back in
//!   index order, so downstream consumers never observe scheduling order;
//! * tasks never share mutable state — schedules are compiled once before
//!   the fan-out and shared read-only (see
//!   [`rdv_core::compiled::PreparedSchedule`]);
//! * randomized tasks derive their RNG stream from [`stream_seed`], a
//!   SplitMix64 mix of the experiment seed and the task index — a pure
//!   function of *which* task, never of *where* or *when* it ran.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Thread-count policy for the parallel orchestrator.
///
/// The default (`threads: 0`) auto-detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelConfig {
    /// Worker threads to use. `0` means auto-detect
    /// ([`std::thread::available_parallelism`]).
    pub threads: usize,
}

impl ParallelConfig {
    /// A fixed thread count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig { threads }
    }

    /// The worker count to actually spawn for `tasks` tasks: the requested
    /// (or detected) thread count, never more than the number of tasks,
    /// never zero.
    pub fn effective_threads(&self, tasks: usize) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(4)
        } else {
            self.threads
        };
        requested.min(tasks).max(1)
    }
}

/// Task-chunk size for sharding `items` uniform work items across
/// `threads` workers.
///
/// Aims at roughly four chunks per worker: fine enough that the
/// work-stealing deques can rebalance an uneven tail, coarse enough to
/// amortize queue traffic and per-task bookkeeping over many items. The
/// result is clamped to `[1, 4096]` so tiny inputs still form tasks and
/// huge inputs cannot collapse into a handful of unstealable chunks.
///
/// This is the one chunking policy of the workspace: pair lists, agent
/// lists, and slot ranges are all sharded through it, replacing the
/// former fixed pairs-per-task constant that over-fragmented large
/// populations and under-split small ones.
pub fn chunk_size(items: usize, threads: usize) -> usize {
    items.div_ceil(threads.max(1) * 4).clamp(1, 4096)
}

/// Derives the RNG stream seed of task `task_index` within experiment
/// `base` — the SplitMix64 finalizer over the pair, as recommended for
/// splitting one seed into independent streams.
///
/// The map is bijective in `task_index` for a fixed `base` (every step is
/// invertible), so distinct tasks of one experiment can never collide; the
/// avalanche mixing keeps streams of adjacent indices statistically
/// independent. `tests/parallel_determinism.rs` property-tests both claims.
pub fn stream_seed(base: u64, task_index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(task_index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One round of the work-stealing discipline: the worker's own deque,
/// then a batch refill from the injector, then robbing a sibling,
/// retrying lost races. Returns `None` only when every queue was
/// observed empty with no steal in flight — at which point any remaining
/// task is already in some worker's hands and will be finished by it.
fn find_task<T>(
    me: usize,
    worker: &Worker<T>,
    injector: &Injector<T>,
    stealers: &[Stealer<T>],
) -> Option<T> {
    worker.pop().or_else(|| 'find: loop {
        match injector.steal_batch_and_pop(worker) {
            Steal::Success(t) => break 'find Some(t),
            Steal::Retry => continue 'find,
            Steal::Empty => {}
        }
        let mut retry = false;
        for (other, stealer) in stealers.iter().enumerate() {
            if other == me {
                continue;
            }
            match stealer.steal() {
                Steal::Success(t) => break 'find Some(t),
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            break 'find None;
        }
    })
}

/// A panic-safe barrier arrival: the worker announces phase completion
/// through [`Self::arrive`]; if it unwinds first, `Drop` announces for it
/// so siblings spinning on the arrival count are released instead of
/// deadlocking (the panic then propagates at scope join).
struct Arrival<'a> {
    arrivals: &'a AtomicUsize,
    armed: bool,
}

impl<'a> Arrival<'a> {
    fn new(arrivals: &'a AtomicUsize) -> Self {
        Arrival {
            arrivals,
            armed: true,
        }
    }

    fn arrive(&mut self) {
        if self.armed {
            self.armed = false;
            self.arrivals.fetch_add(1, Ordering::AcqRel);
        }
    }
}

impl Drop for Arrival<'_> {
    fn drop(&mut self) {
        self.arrive();
    }
}

/// Runs `f` over every `(index, task)` on a work-stealing thread pool and
/// returns the results **in task order**, regardless of thread count or
/// scheduling.
///
/// `f` must be a pure function of its arguments (plus shared read-only
/// captures) for the cross-thread-count determinism guarantee to hold —
/// which every sweep satisfies by deriving randomness via [`stream_seed`].
///
/// Single-task and single-thread calls run inline on the caller's thread
/// (no spawn overhead), making `threads = 1` the literal sequential
/// semantics the parallel runs are tested against.
///
/// # Panics
///
/// Panics if a worker thread panics (the task panic propagates).
pub fn run_indexed<T, R, F>(tasks: Vec<T>, cfg: &ParallelConfig, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n_tasks = tasks.len();
    let threads = cfg.effective_threads(n_tasks);
    if threads <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let injector = Injector::new();
    for task in tasks.into_iter().enumerate() {
        injector.push(task);
    }
    let workers: Vec<Worker<(usize, T)>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = workers.iter().map(Worker::stealer).collect();

    let mut indexed: Vec<(usize, R)> = crossbeam::scope(|scope| {
        let injector = &injector;
        let stealers = &stealers;
        let f = &f;
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(me, worker)| {
                scope.spawn(move |_| {
                    let mut out: Vec<(usize, R)> = Vec::with_capacity(n_tasks / threads + 1);
                    while let Some((i, t)) = find_task(me, &worker, injector, stealers) {
                        out.push((i, f(i, t)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("crossbeam scope");

    debug_assert_eq!(indexed.len(), n_tasks, "orchestrator lost tasks");
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// The scoped two-phase bulk step of the shared-arena engines: runs every
/// `phase_a` task, waits at a **barrier** until all of them have finished
/// on every worker, then runs every `phase_b` task and returns the
/// phase-b results in task order.
///
/// Both phases are sharded work-stealing style (same discipline as
/// [`run_indexed`]), but on **one** set of worker threads spawned once —
/// the barrier is an atomic arrival count, not a join — so a caller
/// iterating fill/resolve steps per block pays one spawn per block, not
/// two. The intended shape is a producer/consumer pair over shared
/// memory: `a` publishes into a shared structure (e.g. relaxed stores
/// into an `AtomicU64` arena), `b` reads it; the barrier's release/acquire
/// ordering makes every phase-a write visible to every phase-b task.
///
/// `phase_a` and `phase_b` are independent task lists — their lengths
/// need not match. With one effective thread both phases run inline
/// sequentially, which is the reference semantics the parallel runs are
/// tested against.
///
/// # Panics
///
/// Panics if a worker panics (the task panic propagates at scope join; a
/// phase-a panic releases the barrier via a drop guard rather than
/// deadlocking the siblings).
pub fn run_two_phase<TA, TB, R, FA, FB>(
    cfg: &ParallelConfig,
    phase_a: Vec<TA>,
    phase_b: Vec<TB>,
    a: FA,
    b: FB,
) -> Vec<R>
where
    TA: Send,
    TB: Send,
    R: Send,
    FA: Fn(usize, TA) + Sync,
    FB: Fn(usize, TB) -> R + Sync,
{
    let (n_a, n_b) = (phase_a.len(), phase_b.len());
    let threads = cfg.effective_threads(n_a.max(n_b));
    if threads <= 1 {
        for (i, t) in phase_a.into_iter().enumerate() {
            a(i, t);
        }
        return phase_b
            .into_iter()
            .enumerate()
            .map(|(i, t)| b(i, t))
            .collect();
    }

    let inj_a = Injector::new();
    for task in phase_a.into_iter().enumerate() {
        inj_a.push(task);
    }
    let inj_b = Injector::new();
    for task in phase_b.into_iter().enumerate() {
        inj_b.push(task);
    }
    let workers_a: Vec<Worker<(usize, TA)>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers_a: Vec<Stealer<(usize, TA)>> = workers_a.iter().map(Worker::stealer).collect();
    let workers_b: Vec<Worker<(usize, TB)>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers_b: Vec<Stealer<(usize, TB)>> = workers_b.iter().map(Worker::stealer).collect();
    let arrivals = AtomicUsize::new(0);

    let mut indexed: Vec<(usize, R)> = crossbeam::scope(|scope| {
        let (inj_a, inj_b) = (&inj_a, &inj_b);
        let (stealers_a, stealers_b) = (&stealers_a, &stealers_b);
        let arrivals = &arrivals;
        let (a, b) = (&a, &b);
        let handles: Vec<_> = workers_a
            .into_iter()
            .zip(workers_b)
            .enumerate()
            .map(|(me, (wa, wb))| {
                scope.spawn(move |_| {
                    let mut arrival = Arrival::new(arrivals);
                    while let Some((i, t)) = find_task(me, &wa, inj_a, stealers_a) {
                        a(i, t);
                    }
                    // A worker arrives only once its own deque is drained
                    // and it holds no task, so `arrivals == threads`
                    // certifies every phase-a task has completed. Phase a
                    // steps are short (one block of bulk work), so a
                    // yielding spin outlasts nothing worth parking for.
                    arrival.arrive();
                    while arrivals.load(Ordering::Acquire) < threads {
                        std::thread::yield_now();
                    }
                    let mut out: Vec<(usize, R)> = Vec::with_capacity(n_b / threads + 1);
                    while let Some((i, t)) = find_task(me, &wb, inj_b, stealers_b) {
                        out.push((i, b(i, t)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("two-phase worker panicked"))
            .collect()
    })
    .expect("crossbeam scope");

    debug_assert_eq!(indexed.len(), n_b, "two-phase orchestrator lost tasks");
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1usize, 2, 8] {
            let tasks: Vec<u64> = (0..257).collect();
            let out = run_indexed(
                tasks.clone(),
                &ParallelConfig::with_threads(threads),
                |i, t| {
                    assert_eq!(i as u64, t);
                    t * t
                },
            );
            let expected: Vec<u64> = tasks.iter().map(|t| t * t).collect();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(
            vec![(); 1000],
            &ParallelConfig::with_threads(4),
            |_i, ()| counter.fetch_add(1, Ordering::Relaxed),
        );
        assert_eq!(out.len(), 1000);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn uneven_tasks_balance_across_workers() {
        // One task 1000× heavier than the rest: stealing must still finish
        // everything and keep order.
        let weights: Vec<u64> = (0..64)
            .map(|i| if i == 0 { 100_000 } else { 100 })
            .collect();
        let out = run_indexed(weights.clone(), &ParallelConfig::with_threads(4), |_, w| {
            (0..w).map(std::hint::black_box).sum::<u64>()
        });
        for (w, got) in weights.iter().zip(&out) {
            assert_eq!(*got, w * (w - 1) / 2);
        }
    }

    #[test]
    fn zero_and_one_task_edge_cases() {
        let empty: Vec<u64> = run_indexed(vec![], &ParallelConfig::default(), |_, t: u64| t);
        assert!(empty.is_empty());
        let one = run_indexed(vec![7u64], &ParallelConfig::with_threads(8), |i, t| {
            t + i as u64
        });
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(ParallelConfig::with_threads(8).effective_threads(3), 3);
        assert_eq!(ParallelConfig::with_threads(2).effective_threads(100), 2);
        assert_eq!(ParallelConfig::with_threads(5).effective_threads(0), 1);
        assert!(ParallelConfig::default().effective_threads(100) >= 1);
    }

    #[test]
    fn chunk_size_targets_four_chunks_per_worker() {
        assert_eq!(chunk_size(0, 8), 1);
        assert_eq!(chunk_size(1, 8), 1);
        assert_eq!(chunk_size(64, 2), 8);
        assert_eq!(chunk_size(37_000, 8), 1157);
        // Huge inputs stay stealable…
        assert_eq!(chunk_size(10_000_000, 8), 4096);
        // …and a zero thread count cannot divide by zero.
        assert_eq!(chunk_size(100, 0), 25);
    }

    #[test]
    fn two_phase_sees_every_fill_before_any_resolve() {
        use std::sync::atomic::AtomicU64;
        // Phase a publishes i+1 into cell i; phase b tasks each read the
        // whole arena. The barrier guarantees no resolve observes a hole.
        for threads in [1usize, 2, 8] {
            let cells: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
            let fills: Vec<usize> = (0..cells.len()).collect();
            let reads: Vec<usize> = (0..33).collect();
            let sums = run_two_phase(
                &ParallelConfig::with_threads(threads),
                fills,
                reads,
                |i, cell| {
                    assert_eq!(i, cell);
                    cells[cell].store(cell as u64 + 1, Ordering::Relaxed);
                },
                |_i, _t| {
                    cells
                        .iter()
                        .map(|c| {
                            let v = c.load(Ordering::Relaxed);
                            assert_ne!(v, 0, "resolve observed an unfilled cell");
                            v
                        })
                        .sum::<u64>()
                },
            );
            let expected = (cells.len() as u64) * (cells.len() as u64 + 1) / 2;
            assert_eq!(sums, vec![expected; 33], "threads = {threads}");
        }
    }

    #[test]
    fn two_phase_results_come_back_in_order() {
        for threads in [1usize, 2, 8] {
            let out = run_two_phase(
                &ParallelConfig::with_threads(threads),
                vec![(); 5],
                (0..257u64).collect(),
                |_, ()| {},
                |i, t| {
                    assert_eq!(i as u64, t);
                    t * 3
                },
            );
            let expected: Vec<u64> = (0..257).map(|t| t * 3).collect();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn two_phase_empty_phases() {
        let none: Vec<u64> = run_two_phase(
            &ParallelConfig::with_threads(4),
            vec![1u64, 2, 3],
            vec![],
            |_, _| {},
            |_, t: u64| t,
        );
        assert!(none.is_empty());
        let only_b = run_two_phase(
            &ParallelConfig::with_threads(4),
            Vec::<u64>::new(),
            vec![9u64],
            |_, _| {},
            |_, t| t + 1,
        );
        assert_eq!(only_b, vec![10]);
    }

    #[test]
    fn stream_seeds_are_collision_free_per_base() {
        for base in [0u64, 1, 42, u64::MAX] {
            let seeds: HashSet<u64> = (0..4096).map(|i| stream_seed(base, i)).collect();
            assert_eq!(seeds.len(), 4096, "collision under base {base}");
        }
    }
}
