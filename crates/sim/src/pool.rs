//! The work-stealing parallel orchestrator behind every sweep in the
//! workspace.
//!
//! Sweeps are embarrassingly parallel — a `(shift × seed)` or pair grid of
//! independent kernel evaluations over shared read-only schedule tables —
//! but their per-task cost is wildly uneven (a rendezvous can take 2 slots
//! or 2 million, depending on the shift). Static chunking therefore leaves
//! cores idle behind the unluckiest chunk. This module shards a task list
//! into an injector queue plus per-worker deques (the vendored
//! [`crossbeam::deque`] stand-in) and lets idle workers steal, so the
//! longest task — not the longest *chunk* — bounds the critical path.
//!
//! # Determinism
//!
//! Results are **bit-identical across thread counts** by construction:
//!
//! * every task carries its grid index, and results are merged back in
//!   index order, so downstream consumers never observe scheduling order;
//! * tasks never share mutable state — schedules are compiled once before
//!   the fan-out and shared read-only (see
//!   [`rdv_core::compiled::PreparedSchedule`]);
//! * randomized tasks derive their RNG stream from [`stream_seed`], a
//!   SplitMix64 mix of the experiment seed and the task index — a pure
//!   function of *which* task, never of *where* or *when* it ran.

use crossbeam::deque::{Injector, Steal, Stealer, Worker};

/// Thread-count policy for the parallel orchestrator.
///
/// The default (`threads: 0`) auto-detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelConfig {
    /// Worker threads to use. `0` means auto-detect
    /// ([`std::thread::available_parallelism`]).
    pub threads: usize,
}

impl ParallelConfig {
    /// A fixed thread count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig { threads }
    }

    /// The worker count to actually spawn for `tasks` tasks: the requested
    /// (or detected) thread count, never more than the number of tasks,
    /// never zero.
    pub fn effective_threads(&self, tasks: usize) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(4)
        } else {
            self.threads
        };
        requested.min(tasks).max(1)
    }
}

/// Derives the RNG stream seed of task `task_index` within experiment
/// `base` — the SplitMix64 finalizer over the pair, as recommended for
/// splitting one seed into independent streams.
///
/// The map is bijective in `task_index` for a fixed `base` (every step is
/// invertible), so distinct tasks of one experiment can never collide; the
/// avalanche mixing keeps streams of adjacent indices statistically
/// independent. `tests/parallel_determinism.rs` property-tests both claims.
pub fn stream_seed(base: u64, task_index: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(task_index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `f` over every `(index, task)` on a work-stealing thread pool and
/// returns the results **in task order**, regardless of thread count or
/// scheduling.
///
/// `f` must be a pure function of its arguments (plus shared read-only
/// captures) for the cross-thread-count determinism guarantee to hold —
/// which every sweep satisfies by deriving randomness via [`stream_seed`].
///
/// Single-task and single-thread calls run inline on the caller's thread
/// (no spawn overhead), making `threads = 1` the literal sequential
/// semantics the parallel runs are tested against.
///
/// # Panics
///
/// Panics if a worker thread panics (the task panic propagates).
pub fn run_indexed<T, R, F>(tasks: Vec<T>, cfg: &ParallelConfig, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n_tasks = tasks.len();
    let threads = cfg.effective_threads(n_tasks);
    if threads <= 1 {
        return tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let injector = Injector::new();
    for task in tasks.into_iter().enumerate() {
        injector.push(task);
    }
    let workers: Vec<Worker<(usize, T)>> = (0..threads).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = workers.iter().map(Worker::stealer).collect();

    let mut indexed: Vec<(usize, R)> = crossbeam::scope(|scope| {
        let injector = &injector;
        let stealers = &stealers;
        let f = &f;
        let handles: Vec<_> = workers
            .into_iter()
            .enumerate()
            .map(|(me, worker)| {
                scope.spawn(move |_| {
                    let mut out: Vec<(usize, R)> = Vec::with_capacity(n_tasks / threads + 1);
                    loop {
                        let task = worker.pop().or_else(|| {
                            // Local deque dry: refill from the injector,
                            // then rob a sibling, retrying lost races.
                            'find: loop {
                                match injector.steal_batch_and_pop(&worker) {
                                    Steal::Success(t) => break 'find Some(t),
                                    Steal::Retry => continue 'find,
                                    Steal::Empty => {}
                                }
                                let mut retry = false;
                                for (other, stealer) in stealers.iter().enumerate() {
                                    if other == me {
                                        continue;
                                    }
                                    match stealer.steal() {
                                        Steal::Success(t) => break 'find Some(t),
                                        Steal::Retry => retry = true,
                                        Steal::Empty => {}
                                    }
                                }
                                if !retry {
                                    break 'find None;
                                }
                            }
                        });
                        match task {
                            Some((i, t)) => out.push((i, f(i, t))),
                            None => break,
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("crossbeam scope");

    debug_assert_eq!(indexed.len(), n_tasks, "orchestrator lost tasks");
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        for threads in [1usize, 2, 8] {
            let tasks: Vec<u64> = (0..257).collect();
            let out = run_indexed(
                tasks.clone(),
                &ParallelConfig::with_threads(threads),
                |i, t| {
                    assert_eq!(i as u64, t);
                    t * t
                },
            );
            let expected: Vec<u64> = tasks.iter().map(|t| t * t).collect();
            assert_eq!(out, expected, "threads = {threads}");
        }
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(
            vec![(); 1000],
            &ParallelConfig::with_threads(4),
            |_i, ()| counter.fetch_add(1, Ordering::Relaxed),
        );
        assert_eq!(out.len(), 1000);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn uneven_tasks_balance_across_workers() {
        // One task 1000× heavier than the rest: stealing must still finish
        // everything and keep order.
        let weights: Vec<u64> = (0..64)
            .map(|i| if i == 0 { 100_000 } else { 100 })
            .collect();
        let out = run_indexed(weights.clone(), &ParallelConfig::with_threads(4), |_, w| {
            (0..w).map(std::hint::black_box).sum::<u64>()
        });
        for (w, got) in weights.iter().zip(&out) {
            assert_eq!(*got, w * (w - 1) / 2);
        }
    }

    #[test]
    fn zero_and_one_task_edge_cases() {
        let empty: Vec<u64> = run_indexed(vec![], &ParallelConfig::default(), |_, t: u64| t);
        assert!(empty.is_empty());
        let one = run_indexed(vec![7u64], &ParallelConfig::with_threads(8), |i, t| {
            t + i as u64
        });
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(ParallelConfig::with_threads(8).effective_threads(3), 3);
        assert_eq!(ParallelConfig::with_threads(2).effective_threads(100), 2);
        assert_eq!(ParallelConfig::with_threads(5).effective_threads(0), 1);
        assert!(ParallelConfig::default().effective_threads(100) >= 1);
    }

    #[test]
    fn stream_seeds_are_collision_free_per_base() {
        for base in [0u64, 1, 42, u64::MAX] {
            let seeds: HashSet<u64> = (0..4096).map(|i| stream_seed(base, i)).collect();
            assert_eq!(seeds.len(), 4096, "collision under base {base}");
        }
    }
}
