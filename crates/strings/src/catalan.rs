//! The invertible Catalanization map `U(z)` of Section 3 and the bracketing
//! `1 ∘ U(·) ∘ 0` that produces strictly Catalan strings.
//!
//! For a balanced string `z`, let `c` be the least rotation for which `S^c z`
//! is Catalan (one exists by the cycle lemma). The paper defines
//!
//! ```text
//! U(z) = (S^c z) ∘ 1^{ℓ/2} ∘ K(c₂) ∘ 0^{ℓ/2},     ℓ = |K(c₂)|
//! ```
//!
//! The tail `1^{ℓ/2} ∘ K(c₂) ∘ 0^{ℓ/2}` is itself Catalan (the balanced
//! middle block can never descend below the `ℓ/2` head-room provided by the
//! leading run of `1`s), so `U(z)` — a concatenation of Catalan strings — is
//! Catalan; and since the rotation `c` is recorded inside the string, `U` is
//! injective.

use crate::knuth::KnuthCode;
use crate::walk::{catalan_rotation, Walk};
use crate::{log_sharp, Bits};

/// The Catalanization code for balanced inputs of a fixed (even) length.
///
/// # Example
///
/// ```
/// use rdv_strings::{Bits, catalan::CatalanCode, walk::Walk};
///
/// let code = CatalanCode::new(6);
/// let z: Bits = "001011".parse().unwrap(); // balanced, not Catalan
/// let u = code.encode(&z).unwrap();
/// assert!(Walk::new(&u).is_catalan());
/// assert_eq!(code.decode(&u), Some(z));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CatalanCode {
    input_len: usize,
    shift_code: KnuthCode,
}

impl CatalanCode {
    /// Creates the code for balanced inputs of exactly `input_len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `input_len` is odd (balanced strings have even length).
    pub fn new(input_len: usize) -> Self {
        assert!(
            input_len.is_multiple_of(2),
            "balanced strings have even length"
        );
        let shift_width = if input_len <= 1 {
            1
        } else {
            log_sharp(input_len as u64) as usize
        };
        CatalanCode {
            input_len,
            shift_code: KnuthCode::new(shift_width),
        }
    }

    /// The input length this code accepts.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Length of every codeword: `input_len + 2·|K(c₂)|`.
    pub fn output_len(&self) -> usize {
        self.input_len + 2 * self.shift_code.output_len()
    }

    /// Encodes a balanced string into a Catalan string.
    ///
    /// Returns `None` if `z` has the wrong length or is not balanced.
    pub fn encode(&self, z: &Bits) -> Option<Bits> {
        if z.len() != self.input_len {
            return None;
        }
        if self.input_len == 0 {
            // U of the empty string: just the (empty-shift) tail.
            let e = self.shift_code.encode(&Bits::encode_int(0, 1));
            return Some(self.tail(&e));
        }
        let c = catalan_rotation(z)?;
        let rotated = z.cyclic_shift(c);
        let c2 = Bits::encode_int(c as u64, self.shift_code.input_len() as u32);
        let k = self.shift_code.encode(&c2);
        let mut out = rotated;
        out.extend_bits(&self.tail(&k));
        debug_assert_eq!(out.len(), self.output_len());
        debug_assert!(Walk::new(&out).is_catalan());
        Some(out)
    }

    /// `1^{ℓ/2} ∘ k ∘ 0^{ℓ/2}` for `ℓ = |k|`.
    fn tail(&self, k: &Bits) -> Bits {
        let half = k.len() / 2;
        let mut t = Bits::repeat(true, half);
        t.extend_bits(k);
        t.extend_bits(&Bits::repeat(false, half));
        t
    }

    /// Decodes a codeword back to the original balanced string.
    ///
    /// Returns `None` for malformed codewords.
    pub fn decode(&self, u: &Bits) -> Option<Bits> {
        if u.len() != self.output_len() {
            return None;
        }
        let ell = self.shift_code.output_len();
        let half = ell / 2;
        let rotated = u.slice(0, self.input_len);
        // Verify the framing runs.
        let head = u.slice(self.input_len, self.input_len + half);
        let tail = u.slice(self.input_len + half + ell, self.output_len());
        if head != Bits::repeat(true, half) || tail != Bits::repeat(false, half) {
            return None;
        }
        let k = u.slice(self.input_len + half, self.input_len + half + ell);
        let c2 = self.shift_code.decode(&k)?;
        let c = c2.decode_int() as usize;
        if self.input_len == 0 {
            return Some(Bits::new());
        }
        if c >= self.input_len {
            return None;
        }
        // Undo the forward rotation by c.
        Some(rotated.cyclic_shift(self.input_len - c))
    }
}

/// The full strictly-Catalan pipeline `z ↦ 1 ∘ U(K(z)) ∘ 0` used by the
/// asynchronous construction, for inputs of a fixed arbitrary length.
///
/// # Example
///
/// ```
/// use rdv_strings::{Bits, catalan::StrictCatalanCode, walk::Walk};
///
/// let code = StrictCatalanCode::new(4);
/// let x: Bits = "0110".parse().unwrap();
/// let s = code.encode(&x);
/// assert!(Walk::new(&s).is_strictly_catalan());
/// assert_eq!(code.decode(&s), Some(x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrictCatalanCode {
    balance: KnuthCode,
    catalan: CatalanCode,
}

impl StrictCatalanCode {
    /// Creates the code for inputs of exactly `input_len` bits.
    pub fn new(input_len: usize) -> Self {
        let balance = KnuthCode::new(input_len);
        let catalan = CatalanCode::new(balance.output_len());
        StrictCatalanCode { balance, catalan }
    }

    /// The input length this code accepts.
    pub fn input_len(&self) -> usize {
        self.balance.input_len()
    }

    /// Length of every codeword: `|U(K(z))| + 2`.
    pub fn output_len(&self) -> usize {
        self.catalan.output_len() + 2
    }

    /// Encodes `z` into a strictly Catalan string.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != self.input_len()`.
    pub fn encode(&self, z: &Bits) -> Bits {
        let balanced = self.balance.encode(z);
        let catalan = self
            .catalan
            .encode(&balanced)
            .expect("Knuth output is balanced by construction");
        let mut out = Bits::with_capacity(catalan.len() + 2);
        out.push(true);
        out.extend_bits(&catalan);
        out.push(false);
        debug_assert!(Walk::new(&out).is_strictly_catalan());
        out
    }

    /// Decodes a codeword back to the original string.
    ///
    /// Returns `None` for malformed codewords.
    pub fn decode(&self, s: &Bits) -> Option<Bits> {
        if s.len() != self.output_len() {
            return None;
        }
        if !s.get(0) || s.get(s.len() - 1) {
            return None;
        }
        let inner = s.slice(1, s.len() - 1);
        let balanced = self.catalan.decode(&inner)?;
        self.balance.decode(&balanced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn balanced_strings(len: usize) -> Vec<Bits> {
        (0u64..(1 << len))
            .map(|v| Bits::encode_int(v, len as u32))
            .filter(|b| b.weight() * 2 == b.len())
            .collect()
    }

    #[test]
    fn catalan_code_exhaustive_small() {
        for len in [0usize, 2, 4, 6, 8] {
            let code = CatalanCode::new(len);
            for z in balanced_strings(len) {
                let u = code.encode(&z).expect("balanced input");
                assert!(Walk::new(&u).is_catalan(), "U({z}) = {u} not Catalan");
                assert_eq!(code.decode(&u), Some(z.clone()), "roundtrip {z}");
            }
        }
    }

    #[test]
    fn catalan_code_rejects_unbalanced() {
        let code = CatalanCode::new(4);
        assert_eq!(code.encode(&"1110".parse().unwrap()), None);
        assert_eq!(code.encode(&"111".parse().unwrap()), None);
    }

    #[test]
    fn catalan_code_injective() {
        let code = CatalanCode::new(6);
        let mut seen = std::collections::HashSet::new();
        for z in balanced_strings(6) {
            assert!(seen.insert(code.encode(&z).unwrap()), "collision at {z}");
        }
    }

    #[test]
    fn strict_code_exhaustive_small() {
        for len in 0..=8 {
            let code = StrictCatalanCode::new(len);
            for v in 0u64..(1 << len) {
                let z = Bits::encode_int(v, len as u32);
                let s = code.encode(&z);
                assert!(
                    Walk::new(&s).is_strictly_catalan(),
                    "pipeline({z}) = {s} not strictly Catalan"
                );
                assert_eq!(s.len(), code.output_len());
                assert_eq!(code.decode(&s), Some(z.clone()), "roundtrip {z}");
            }
        }
    }

    #[test]
    fn strict_code_output_len_grows_logarithmically() {
        // |R'(z)| ≤ |z| + O(log |z|): sanity-check the additive overhead.
        for len in [4usize, 8, 16, 64, 256] {
            let code = StrictCatalanCode::new(len);
            let overhead = code.output_len() - len;
            assert!(
                overhead <= 6 * log_sharp(len as u64 + 2) as usize + 16,
                "len {len}: overhead {overhead}"
            );
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        let code = StrictCatalanCode::new(4);
        let s = code.encode(&"1010".parse().unwrap());
        // Wrong length.
        assert_eq!(code.decode(&s.slice(0, s.len() - 1)), None);
        // Break the leading 1.
        let mut bad = s.clone();
        bad.set(0, false);
        assert_eq!(code.decode(&bad), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_strict_pipeline(v in proptest::collection::vec(any::<bool>(), 0..64)) {
            let z = Bits::from_bools(&v);
            let code = StrictCatalanCode::new(z.len());
            let s = code.encode(&z);
            prop_assert!(Walk::new(&s).is_strictly_catalan());
            prop_assert_eq!(code.decode(&s), Some(z));
        }
    }
}
