//! The asynchronous pair code `R(x) = M(1 ∘ U(K(x)) ∘ 0)` of Theorem 1.
//!
//! `R` maps fixed-length color strings to codewords that are simultaneously
//!
//! 1. **balanced** — distinct balanced strings automatically realize both
//!    `(0,1)` and `(1,0)` when aligned, and both `(0,0)` and `(1,1)` unless
//!    they are complements;
//! 2. **strictly Catalan** — hence *1-minimal*, with the unique minimum at
//!    position 0, so no nontrivial rotation of a codeword equals another
//!    codeword;
//! 3. **2-maximal** — hence never equal to the complement of any rotation of
//!    a codeword (complements of rotations are 2-minimal, codewords are
//!    1-minimal);
//! 4. **injective** — every stage (`K`, `U`, bracketing, `M`) is invertible.
//!
//! Together these give the paper's cyclic guarantees
//!
//! * `x = y ⇒ R(x) ◇₀ R(y)` and
//! * `x ≠ y ⇒ R(x) ◇₁ R(y)`,
//!
//! which are exactly what the asynchronous size-two schedules need.

use crate::catalan::StrictCatalanCode;
use crate::maximal::{from_two_maximal, to_two_maximal};
use crate::walk::Walk;
use crate::Bits;

/// A codeword of the asynchronous pair code, witnessing its invariants.
///
/// Construction is only possible through [`RCode::encode`], which guarantees
/// the balanced / strictly-Catalan / 2-maximal invariants hold.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RWord {
    bits: Bits,
}

impl RWord {
    /// The underlying bits.
    pub fn as_bits(&self) -> &Bits {
        &self.bits
    }

    /// Consumes the codeword, returning the underlying bits.
    pub fn into_bits(self) -> Bits {
        self.bits
    }

    /// Length of the codeword.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Codewords are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl std::fmt::Display for RWord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.bits.fmt(f)
    }
}

/// The asynchronous pair code `R` for color strings of a fixed length.
///
/// # Example
///
/// ```
/// use rdv_strings::{Bits, rmap::RCode, diamond};
///
/// let code = RCode::new(2);
/// let a = code.encode(&Bits::encode_int(0b01, 2));
/// let b = code.encode(&Bits::encode_int(0b10, 2));
/// // Distinct colors: rendezvous under every relative rotation.
/// assert!(diamond::rhombus_path(a.as_bits(), b.as_bits()));
/// assert!(diamond::rhombus_same(a.as_bits(), b.as_bits()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RCode {
    strict: StrictCatalanCode,
}

impl RCode {
    /// Creates the code for color strings of exactly `input_len` bits.
    pub fn new(input_len: usize) -> Self {
        RCode {
            strict: StrictCatalanCode::new(input_len),
        }
    }

    /// The input length this code accepts.
    pub fn input_len(&self) -> usize {
        self.strict.input_len()
    }

    /// Length of every codeword: `|1 ∘ U(K(x)) ∘ 0| + 4`.
    ///
    /// This is the period of the cyclic size-two schedules of Theorem 1;
    /// for color strings of length `log♯ log♯ n` it is
    /// `log♯ log♯ n + O(log log log n)`.
    pub fn output_len(&self) -> usize {
        self.strict.output_len() + 4
    }

    /// Encodes a color string into an [`RWord`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_len()`.
    pub fn encode(&self, x: &Bits) -> RWord {
        let strict = self.strict.encode(x);
        let bits = to_two_maximal(&strict);
        debug_assert!(Walk::new(&bits).is_balanced());
        debug_assert!(Walk::new(&bits).is_strictly_catalan());
        debug_assert_eq!(Walk::new(&bits).maximal_count(), 2);
        RWord { bits }
    }

    /// Decodes a codeword back to its color string.
    ///
    /// Returns `None` if `bits` is not in the image of this code.
    pub fn decode(&self, bits: &Bits) -> Option<Bits> {
        if bits.len() != self.output_len() {
            return None;
        }
        let strict = from_two_maximal(bits)?;
        self.strict.decode(&strict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diamond::{rhombus_path, rhombus_same};

    fn all_colors(len: usize) -> Vec<Bits> {
        (0u64..(1 << len))
            .map(|v| Bits::encode_int(v, len as u32))
            .collect()
    }

    #[test]
    fn invariants_exhaustive() {
        for len in 1..=6usize {
            let code = RCode::new(len);
            for x in all_colors(len) {
                let r = code.encode(&x);
                let w = Walk::new(r.as_bits());
                assert!(w.is_balanced(), "R({x}) balanced");
                assert!(w.is_strictly_catalan(), "R({x}) strictly Catalan");
                assert_eq!(w.maximal_count(), 2, "R({x}) 2-maximal");
                assert_eq!(w.minimal_count(), 1, "R({x}) 1-minimal");
                assert_eq!(r.len(), code.output_len());
            }
        }
    }

    #[test]
    fn injective_and_invertible() {
        for len in 1..=6usize {
            let code = RCode::new(len);
            let mut seen = std::collections::HashSet::new();
            for x in all_colors(len) {
                let r = code.encode(&x);
                assert!(seen.insert(r.as_bits().clone()), "collision at {x}");
                assert_eq!(code.decode(r.as_bits()), Some(x.clone()));
            }
        }
    }

    #[test]
    fn rhombus_same_for_all_pairs() {
        // x = y ⇒ R(x) ◇₀ R(y); in fact ◇₀ holds for every pair of
        // codewords (the complement argument never needs x ≠ y).
        for len in 1..=4usize {
            let code = RCode::new(len);
            let words: Vec<_> = all_colors(len).iter().map(|x| code.encode(x)).collect();
            for a in &words {
                for b in &words {
                    assert!(
                        rhombus_same(a.as_bits(), b.as_bits()),
                        "◇₀ failed for {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn rhombus_path_for_distinct_pairs() {
        // x ≠ y ⇒ R(x) ◇₁ R(y).
        for len in 1..=4usize {
            let code = RCode::new(len);
            let colors = all_colors(len);
            for (i, x) in colors.iter().enumerate() {
                for (j, y) in colors.iter().enumerate() {
                    if i != j {
                        let a = code.encode(x);
                        let b = code.encode(y);
                        assert!(
                            rhombus_path(a.as_bits(), b.as_bits()),
                            "◇₁ failed for R({x}) vs R({y})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn no_rotation_collisions() {
        // No codeword equals a nontrivial rotation of another (or itself):
        // the algebraic heart of the ◇ arguments.
        let code = RCode::new(4);
        let words: Vec<_> = all_colors(4).iter().map(|x| code.encode(x)).collect();
        for (i, a) in words.iter().enumerate() {
            for (j, b) in words.iter().enumerate() {
                for d in 0..b.len() {
                    if i == j && d == 0 {
                        continue;
                    }
                    assert_ne!(
                        *a.as_bits(),
                        b.as_bits().cyclic_shift(d),
                        "R word {i} equals rotation {d} of word {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn no_complement_rotation_collisions() {
        // No codeword equals the complement of any rotation of a codeword.
        let code = RCode::new(4);
        let words: Vec<_> = all_colors(4).iter().map(|x| code.encode(x)).collect();
        for a in &words {
            for b in &words {
                for d in 0..b.len() {
                    assert_ne!(
                        *a.as_bits(),
                        b.as_bits().cyclic_shift(d).complement(),
                        "complement collision"
                    );
                }
            }
        }
    }

    #[test]
    fn output_len_is_doubly_logarithmic_in_n() {
        // For universe size n, colors have length ~log♯ log♯ n; check the
        // codeword stays O(log log n) with small constants.
        for (color_len, budget) in [(1usize, 40), (3, 48), (6, 64), (7, 72)] {
            let code = RCode::new(color_len);
            assert!(
                code.output_len() <= budget,
                "color length {color_len}: period {} > {budget}",
                code.output_len()
            );
        }
    }

    #[test]
    fn decode_rejects_non_codewords() {
        let code = RCode::new(3);
        assert_eq!(code.decode(&Bits::repeat(true, code.output_len())), None);
        assert_eq!(code.decode(&Bits::new()), None);
        // A rotated codeword is not a codeword.
        let r = code.encode(&Bits::encode_int(5, 3));
        assert_eq!(code.decode(&r.as_bits().cyclic_shift(2)), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::diamond::{rhombus_path, rhombus_same};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_rmap_rhombus(len in 1usize..7, a in any::<u64>(), b in any::<u64>()) {
            let mask = (1u64 << len) - 1;
            let x = Bits::encode_int(a & mask, len as u32);
            let y = Bits::encode_int(b & mask, len as u32);
            let code = RCode::new(len);
            let rx = code.encode(&x);
            let ry = code.encode(&y);
            prop_assert!(rhombus_same(rx.as_bits(), ry.as_bits()));
            if x != y {
                prop_assert!(rhombus_path(rx.as_bits(), ry.as_bits()));
            }
            prop_assert_eq!(code.decode(rx.as_bits()), Some(x));
        }
    }
}
