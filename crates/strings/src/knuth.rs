//! The Knuth balancing map `K(x)` (Knuth, *Efficient balanced codes*, IEEE
//! Trans. Information Theory, 1986).
//!
//! `K` is an efficient injective map carrying arbitrary binary strings to
//! *balanced* strings (equal numbers of `0`s and `1`s). Knuth's key
//! observation: complementing the first `i` bits of `x` changes the weight by
//! `±1` at each step and sweeps from `wt(x)` to `|x| − wt(x)`, so some prefix
//! length `i` hits weight exactly `|x|/2`. Appending a short (balanced)
//! encoding of `i` makes the map invertible.
//!
//! Our realization pads odd-length inputs with a single `0`, flips the
//! minimal balancing prefix `i`, and appends `e ∘ ē` where `e` is the
//! `log♯(m+1)`-bit canonical encoding of `i`. The output length is
//! `m + 2·log♯(m+1) (+1 if |x| was odd)`, i.e. `|x| + O(log |x|)` — the same
//! asymptotics the paper uses (it quotes Knuth's slightly leaner
//! `|x| + log♯|x| + ½ log♯ log♯ |x|` bound; the constant does not affect any
//! theorem).

use crate::{log_sharp, Bits};

/// The Knuth balancing code for inputs of a fixed length.
///
/// The decoder needs to know the input length, so the code is parameterized
/// by it; all rendezvous constructions operate on fixed-width color strings.
///
/// # Example
///
/// ```
/// use rdv_strings::{Bits, knuth::KnuthCode};
///
/// let code = KnuthCode::new(5);
/// let x: Bits = "11111".parse().unwrap();
/// let k = code.encode(&x);
/// assert_eq!(k.weight() * 2, k.len()); // balanced
/// assert_eq!(code.decode(&k), Some(x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KnuthCode {
    input_len: usize,
}

impl KnuthCode {
    /// Creates the code for inputs of exactly `input_len` bits.
    pub fn new(input_len: usize) -> Self {
        KnuthCode { input_len }
    }

    /// The input length this code accepts.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Length of the (even) padded payload.
    fn padded_len(&self) -> usize {
        self.input_len + self.input_len % 2
    }

    /// Width of the prefix-index encoding: `i` ranges over `0..=padded_len`.
    fn index_width(&self) -> u32 {
        log_sharp(self.padded_len() as u64 + 1)
    }

    /// Length of every codeword produced by [`encode`](Self::encode).
    ///
    /// Always even, and `≤ input_len + 1 + 2·log♯(input_len + 2)`.
    pub fn output_len(&self) -> usize {
        self.padded_len() + 2 * self.index_width() as usize
    }

    /// Encodes `x` into a balanced string.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_len()`.
    pub fn encode(&self, x: &Bits) -> Bits {
        assert_eq!(
            x.len(),
            self.input_len,
            "KnuthCode configured for length {}, got {}",
            self.input_len,
            x.len()
        );
        let mut padded = x.clone();
        if self.input_len % 2 == 1 {
            padded.push(false);
        }
        let m = padded.len();
        let target = (m / 2) as i64;
        // Weight of flip_prefix(i) changes by ±1 as i increments, from wt(x)
        // to m - wt(x); the target m/2 always lies between them.
        let mut weight = padded.weight() as i64;
        let mut i = 0usize;
        while weight != target {
            debug_assert!(i < m, "balancing prefix must exist");
            weight += if padded.get(i) { -1 } else { 1 };
            i += 1;
        }
        let flipped = padded.flip_prefix(i);
        debug_assert_eq!(flipped.weight() * 2, m);
        let e = Bits::encode_int(i as u64, self.index_width());
        let mut out = flipped;
        out.extend_bits(&e);
        out.extend_bits(&e.complement());
        debug_assert_eq!(out.len(), self.output_len());
        debug_assert_eq!(out.weight() * 2, out.len());
        out
    }

    /// Decodes a codeword back to the original string.
    ///
    /// Returns `None` if `k` is not a well-formed codeword of this code
    /// (wrong length, corrupted index block, or out-of-range prefix index).
    pub fn decode(&self, k: &Bits) -> Option<Bits> {
        if k.len() != self.output_len() {
            return None;
        }
        let m = self.padded_len();
        let w = self.index_width() as usize;
        let payload = k.slice(0, m);
        let e = k.slice(m, m + w);
        let ebar = k.slice(m + w, m + 2 * w);
        if ebar != e.complement() {
            return None;
        }
        let i = e.decode_int() as usize;
        if i > m {
            return None;
        }
        let unflipped = payload.flip_prefix(i);
        Some(unflipped.slice(0, self.input_len))
    }
}

/// Convenience: encode `x` with a [`KnuthCode`] sized for it.
pub fn knuth_encode(x: &Bits) -> Bits {
    KnuthCode::new(x.len()).encode(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::Walk;

    fn all_strings(len: usize) -> impl Iterator<Item = Bits> {
        (0u64..(1 << len)).map(move |v| Bits::encode_int(v, len as u32))
    }

    #[test]
    fn encode_is_balanced_exhaustive_small() {
        for len in 0..=10 {
            let code = KnuthCode::new(len);
            for x in all_strings(len) {
                let k = code.encode(&x);
                assert!(
                    Walk::new(&k).is_balanced() || k.is_empty(),
                    "K({x}) = {k} not balanced"
                );
                assert_eq!(k.len(), code.output_len());
            }
        }
    }

    #[test]
    fn roundtrip_exhaustive_small() {
        for len in 0..=10 {
            let code = KnuthCode::new(len);
            for x in all_strings(len) {
                let k = code.encode(&x);
                assert_eq!(code.decode(&k), Some(x.clone()), "roundtrip of {x}");
            }
        }
    }

    #[test]
    fn injective_exhaustive_small() {
        for len in 0..=8 {
            let code = KnuthCode::new(len);
            let mut seen = std::collections::HashSet::new();
            for x in all_strings(len) {
                assert!(seen.insert(code.encode(&x)), "collision at {x}");
            }
        }
    }

    #[test]
    fn output_length_bound() {
        for len in 0..=256 {
            let code = KnuthCode::new(len);
            let bound = len + 1 + 2 * log_sharp(len as u64 + 2) as usize;
            assert!(
                code.output_len() <= bound,
                "len {len}: {} > {bound}",
                code.output_len()
            );
            assert_eq!(code.output_len() % 2, 0, "even output");
        }
    }

    #[test]
    fn decode_rejects_wrong_length() {
        let code = KnuthCode::new(6);
        assert_eq!(code.decode(&Bits::repeat(false, 3)), None);
    }

    #[test]
    fn decode_rejects_corrupt_index_block() {
        let code = KnuthCode::new(6);
        let x: Bits = "101011".parse().unwrap();
        let mut k = code.encode(&x);
        // Corrupt the last bit: ē no longer matches e.
        let last = k.len() - 1;
        let bit = k.get(last);
        k.set(last, !bit);
        assert_eq!(code.decode(&k), None);
    }

    #[test]
    fn fixed_vectors() {
        // All-ones input of even length: flipping the first m/2 bits balances.
        let code = KnuthCode::new(4);
        let k = code.encode(&"1111".parse().unwrap());
        // i = 2, payload = 0011, e = encode(2, log♯5 = 3) = 010, ē = 101.
        assert_eq!(k.to_string(), "0011010101");
    }

    #[test]
    fn odd_lengths_pad_correctly() {
        let code = KnuthCode::new(3);
        for x in all_strings(3) {
            let k = code.encode(&x);
            assert_eq!(k.len(), code.output_len());
            assert_eq!(code.decode(&k).as_ref(), Some(&x));
        }
    }

    #[test]
    fn free_function_matches_code() {
        let x: Bits = "100110".parse().unwrap();
        assert_eq!(knuth_encode(&x), KnuthCode::new(6).encode(&x));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::walk::Walk;
    use proptest::prelude::*;

    fn bits_strategy(max_len: usize) -> impl Strategy<Value = Bits> {
        proptest::collection::vec(any::<bool>(), 0..=max_len).prop_map(|v| Bits::from_bools(&v))
    }

    proptest! {
        #[test]
        fn prop_balanced_and_invertible(x in bits_strategy(200)) {
            let code = KnuthCode::new(x.len());
            let k = code.encode(&x);
            prop_assert!(k.is_empty() || Walk::new(&k).is_balanced());
            prop_assert_eq!(code.decode(&k), Some(x));
        }

        #[test]
        fn prop_length_is_input_plus_logarithmic(x in bits_strategy(500)) {
            let code = KnuthCode::new(x.len());
            let k = code.encode(&x);
            prop_assert!(k.len() <= x.len() + 1 + 2 * crate::log_sharp(x.len() as u64 + 2) as usize);
        }
    }
}
