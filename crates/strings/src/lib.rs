//! Binary-string substrate for deterministic blind rendezvous.
//!
//! This crate implements the combinatorial string machinery of Section 3 of
//! *Deterministic Blind Rendezvous in Cognitive Radio Networks* (Chen,
//! Russell, Samanta, Sundaram; ICDCS 2014):
//!
//! * [`Bits`] — a compact, ordered binary string with the cyclic-shift,
//!   weight, complement and concatenation operations the constructions need.
//! * [`walk`] — the "graph" `G_z` of a string (Figure 1 of the paper): the
//!   lattice walk in which each `1` steps northeast and each `0` southeast,
//!   together with the derived predicates *balanced*, *Catalan*, *strictly
//!   Catalan* and *t-maximal / t-minimal*.
//! * [`knuth`] — the invertible Knuth balancing map `K(x)` (Knuth, *Efficient
//!   balanced codes*, 1986) that carries arbitrary strings to balanced ones
//!   with only `O(log |x|)` overhead.
//! * [`catalan`] — the invertible map `U(z)` that rotates a balanced string
//!   to a Catalan one while recording the rotation, and the bracketing
//!   `1 ∘ U(·) ∘ 0` that makes it strictly Catalan.
//! * [`maximal`] — the invertible 2-maximality transform `M(z)` (Figure 3)
//!   that inserts `1010` at a maximal point of the walk.
//! * [`diamond`] — the rendezvous conditions `♦₀`, `♦₁` and their cyclic
//!   closures `◇₀`, `◇₁` (conditions (1), (2) and (5) in the paper).
//! * [`cmap`] — the synchronous pair code `C(x) = 01 ∘ x ∘ wt(x)₂`.
//! * [`rmap`] — the asynchronous pair code `R(x) = M(1 ∘ U(K(x)) ∘ 0)`,
//!   which is balanced, strictly Catalan, 2-maximal and injective; these
//!   four properties together guarantee `x = y ⇒ R(x) ◇₀ R(y)` and
//!   `x ≠ y ⇒ R(x) ◇₁ R(y)`.
//! * [`render`] — ASCII renderings of string walks reproducing Figures 1–3.
//!
//! # Example
//!
//! ```
//! use rdv_strings::{Bits, rmap::RCode};
//!
//! // Encode the 3-bit color 0b101 into an asynchronous rendezvous codeword.
//! let color = Bits::encode_int(0b101, 3);
//! let code = RCode::new(3);
//! let word = code.encode(&color);
//! assert!(word.as_bits().len() % 2 == 0); // balanced strings have even length
//! assert_eq!(code.decode(word.as_bits()), Some(color));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
pub mod catalan;
pub mod cmap;
pub mod diamond;
pub mod enumerate;
pub mod knuth;
pub mod maximal;
pub mod render;
pub mod rmap;
pub mod walk;

pub use bits::Bits;

/// The paper's `log♯ n ≜ ⌈log₂ n⌉` shorthand.
///
/// `log_sharp(1) == 0`, `log_sharp(2) == 1`, `log_sharp(3) == 2`,
/// `log_sharp(4) == 2`, and so on.
///
/// # Panics
///
/// Panics if `n == 0`; the paper never takes `log♯` of zero.
///
/// # Example
///
/// ```
/// assert_eq!(rdv_strings::log_sharp(1), 0);
/// assert_eq!(rdv_strings::log_sharp(9), 4);
/// assert_eq!(rdv_strings::log_sharp(1 << 40), 40);
/// ```
pub fn log_sharp(n: u64) -> u32 {
    assert!(n > 0, "log♯ is undefined at 0");
    if n == 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::log_sharp;

    #[test]
    fn log_sharp_small_values() {
        let expected = [
            (1u64, 0u32),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (16, 4),
            (17, 5),
        ];
        for (n, want) in expected {
            assert_eq!(log_sharp(n), want, "log♯ {n}");
        }
    }

    #[test]
    fn log_sharp_powers_of_two() {
        for e in 1..63 {
            assert_eq!(log_sharp(1u64 << e), e);
            assert_eq!(log_sharp((1u64 << e) + 1), e + 1);
        }
    }

    #[test]
    #[should_panic(expected = "undefined at 0")]
    fn log_sharp_zero_panics() {
        log_sharp(0);
    }

    #[test]
    fn log_sharp_is_ceil_log2() {
        for n in 1u64..4096 {
            let naive = (n as f64).log2().ceil() as u32;
            assert_eq!(log_sharp(n), naive, "n = {n}");
        }
    }
}
