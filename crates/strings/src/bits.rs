//! A compact, ordered binary string.

use std::fmt;
use std::str::FromStr;

/// An immutable-length-friendly binary string stored 64 bits per word.
///
/// `Bits` is the workhorse type of the rendezvous constructions: schedules
/// for channel sets of size two are binary strings (`0` = hop on the smaller
/// channel, `1` = hop on the larger channel), and every transform of
/// Section 3 of the paper manipulates such strings.
///
/// Bit `0` is the *first* symbol of the string; [`Bits::encode_int`] uses the
/// paper's canonical MSB-first, left-zero-padded integer encoding.
///
/// # Example
///
/// ```
/// use rdv_strings::Bits;
///
/// let b: Bits = "110001".parse().unwrap();
/// assert_eq!(b.len(), 6);
/// assert_eq!(b.weight(), 3);
/// assert_eq!(b.cyclic_shift(2).to_string(), "000111");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bits {
    words: Vec<u64>,
    len: usize,
}

impl Bits {
    /// Creates an empty string.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty string with capacity for `n` bits.
    pub fn with_capacity(n: usize) -> Self {
        Bits {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    /// Creates a string of `n` copies of `bit`.
    ///
    /// # Example
    ///
    /// ```
    /// use rdv_strings::Bits;
    /// assert_eq!(Bits::repeat(true, 3).to_string(), "111");
    /// ```
    pub fn repeat(bit: bool, n: usize) -> Self {
        let mut b = Bits::with_capacity(n);
        for _ in 0..n {
            b.push(bit);
        }
        b
    }

    /// Builds a string from a slice of bools (`true` = `1`).
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut b = Bits::with_capacity(bools.len());
        for &bit in bools {
            b.push(bit);
        }
        b
    }

    /// The paper's canonical base-two encoding of `value`, zero-padded on the
    /// left to exactly `width` bits (MSB first).
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` bits or `width > 64`.
    ///
    /// # Example
    ///
    /// ```
    /// use rdv_strings::Bits;
    /// assert_eq!(Bits::encode_int(5, 4).to_string(), "0101");
    /// ```
    pub fn encode_int(value: u64, width: u32) -> Self {
        assert!(width <= 64, "width {width} exceeds 64 bits");
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "value {value} does not fit in {width} bits"
            );
        }
        let mut b = Bits::with_capacity(width as usize);
        for i in (0..width).rev() {
            b.push((value >> i) & 1 == 1);
        }
        b
    }

    /// Decodes a canonical MSB-first encoding back to an integer.
    ///
    /// # Panics
    ///
    /// Panics if the string is longer than 64 bits.
    pub fn decode_int(&self) -> u64 {
        assert!(self.len <= 64, "string too long to decode as u64");
        let mut v = 0u64;
        for bit in self.iter() {
            v = (v << 1) | u64::from(bit);
        }
        v
    }

    /// Number of bits in the string.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the string is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        let off = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// The bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// The bit at position `i mod self.len()`, for cyclic schedules.
    ///
    /// # Panics
    ///
    /// Panics if the string is empty.
    pub fn get_cyclic(&self, i: u64) -> bool {
        assert!(!self.is_empty(), "cyclic access into an empty string");
        self.get((i % self.len as u64) as usize)
    }

    /// Sets the bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let mask = 1u64 << (i % 64);
        if bit {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Iterates over the bits in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The number of `1`s, written `wt(x)` in the paper.
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Coordinatewise negation `x̄`.
    pub fn complement(&self) -> Self {
        let mut out = Bits::with_capacity(self.len);
        for bit in self.iter() {
            out.push(!bit);
        }
        out
    }

    /// Concatenation `self ∘ other`.
    pub fn concat(&self, other: &Bits) -> Self {
        let mut out = self.clone();
        out.extend_bits(other);
        out
    }

    /// Appends all bits of `other`.
    pub fn extend_bits(&mut self, other: &Bits) {
        for bit in other.iter() {
            self.push(bit);
        }
    }

    /// The cyclic shift `Sⁱx`: the string `x_i x_{i+1} … x_{i-1}` that results
    /// from rotating `x` forward by `i` symbols.
    ///
    /// Shifting an empty string returns an empty string.
    ///
    /// # Example
    ///
    /// ```
    /// use rdv_strings::Bits;
    /// let x: Bits = "1100".parse().unwrap();
    /// assert_eq!(x.cyclic_shift(1).to_string(), "1001");
    /// ```
    pub fn cyclic_shift(&self, i: usize) -> Self {
        if self.is_empty() {
            return Bits::new();
        }
        let n = self.len;
        let i = i % n;
        let mut out = Bits::with_capacity(n);
        for j in 0..n {
            out.push(self.get((i + j) % n));
        }
        out
    }

    /// The substring `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: usize, end: usize) -> Self {
        assert!(
            start <= end && end <= self.len,
            "invalid slice [{start}, {end}) of string of length {}",
            self.len
        );
        let mut out = Bits::with_capacity(end - start);
        for i in start..end {
            out.push(self.get(i));
        }
        out
    }

    /// Inserts the bits of `insert` so they begin at position `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn insert_at(&self, at: usize, insert: &Bits) -> Self {
        assert!(at <= self.len, "insert position {at} out of bounds");
        let mut out = Bits::with_capacity(self.len + insert.len());
        out.extend_bits(&self.slice(0, at));
        out.extend_bits(insert);
        out.extend_bits(&self.slice(at, self.len));
        out
    }

    /// Removes the bits in `[start, start + count)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn remove_range(&self, start: usize, count: usize) -> Self {
        assert!(start + count <= self.len, "remove range out of bounds");
        let mut out = Bits::with_capacity(self.len - count);
        out.extend_bits(&self.slice(0, start));
        out.extend_bits(&self.slice(start + count, self.len));
        out
    }

    /// Complements the first `i` bits, leaving the rest unchanged (the
    /// prefix-flip primitive of the Knuth balancing map).
    ///
    /// # Panics
    ///
    /// Panics if `i > self.len()`.
    pub fn flip_prefix(&self, i: usize) -> Self {
        assert!(i <= self.len, "prefix length {i} out of bounds");
        let mut out = self.clone();
        for j in 0..i {
            let b = out.get(j);
            out.set(j, !b);
        }
        out
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in self.iter() {
            f.write_str(if bit { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits(\"{self}\")")
    }
}

/// Error returned when parsing a [`Bits`] from a string containing characters
/// other than `0` and `1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitsError {
    offending: char,
}

impl fmt::Display for ParseBitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid bit character {:?}, expected 0 or 1",
            self.offending
        )
    }
}

impl std::error::Error for ParseBitsError {}

impl FromStr for Bits {
    type Err = ParseBitsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut b = Bits::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '0' => b.push(false),
                '1' => b.push(true),
                other => return Err(ParseBitsError { offending: other }),
            }
        }
        Ok(b)
    }
}

impl FromIterator<bool> for Bits {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut b = Bits::new();
        for bit in iter {
            b.push(bit);
        }
        b
    }
}

impl Extend<bool> for Bits {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for bit in iter {
            self.push(bit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut b = Bits::new();
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        for &bit in &pattern {
            b.push(bit);
        }
        assert_eq!(b.len(), 200);
        for (i, &bit) in pattern.iter().enumerate() {
            assert_eq!(b.get(i), bit, "bit {i}");
        }
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["", "0", "1", "0110", "111000111000", "01"] {
            let b: Bits = s.parse().unwrap();
            assert_eq!(b.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("01x".parse::<Bits>().is_err());
        assert!("2".parse::<Bits>().is_err());
    }

    #[test]
    fn encode_decode_int() {
        for v in 0u64..256 {
            let b = Bits::encode_int(v, 9);
            assert_eq!(b.len(), 9);
            assert_eq!(b.decode_int(), v);
        }
        assert_eq!(Bits::encode_int(0, 0).len(), 0);
        assert_eq!(Bits::encode_int(u64::MAX, 64).decode_int(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn encode_int_overflow_panics() {
        Bits::encode_int(8, 3);
    }

    #[test]
    fn weight_counts_ones() {
        let b: Bits = "0110111".parse().unwrap();
        assert_eq!(b.weight(), 5);
        assert_eq!(Bits::repeat(false, 100).weight(), 0);
        assert_eq!(Bits::repeat(true, 100).weight(), 100);
    }

    #[test]
    fn complement_involution() {
        let b: Bits = "0011010".parse().unwrap();
        assert_eq!(b.complement().complement(), b);
        assert_eq!(b.complement().to_string(), "1100101");
    }

    #[test]
    fn concat_is_associative_on_samples() {
        let a: Bits = "01".parse().unwrap();
        let b: Bits = "110".parse().unwrap();
        let c: Bits = "0".parse().unwrap();
        assert_eq!(a.concat(&b).concat(&c), a.concat(&b.concat(&c)));
        assert_eq!(a.concat(&b).to_string(), "01110");
    }

    #[test]
    fn cyclic_shift_behaves() {
        let x: Bits = "10010".parse().unwrap();
        assert_eq!(x.cyclic_shift(0), x);
        assert_eq!(x.cyclic_shift(5), x);
        assert_eq!(x.cyclic_shift(1).to_string(), "00101");
        assert_eq!(x.cyclic_shift(2).to_string(), "01010");
        assert_eq!(x.cyclic_shift(7), x.cyclic_shift(2));
        assert_eq!(Bits::new().cyclic_shift(3), Bits::new());
    }

    #[test]
    fn shift_composition() {
        let x: Bits = "1101001".parse().unwrap();
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(
                    x.cyclic_shift(i).cyclic_shift(j),
                    x.cyclic_shift(i + j),
                    "S^{j} S^{i} == S^{}",
                    i + j
                );
            }
        }
    }

    #[test]
    fn slice_insert_remove() {
        let x: Bits = "110010".parse().unwrap();
        assert_eq!(x.slice(1, 4).to_string(), "100");
        let ins: Bits = "1010".parse().unwrap();
        let y = x.insert_at(2, &ins);
        assert_eq!(y.to_string(), "1110100010");
        assert_eq!(y.remove_range(2, 4), x);
    }

    #[test]
    fn flip_prefix_flips_exactly_prefix() {
        let x: Bits = "101010".parse().unwrap();
        assert_eq!(x.flip_prefix(0), x);
        assert_eq!(x.flip_prefix(3).to_string(), "010010");
        assert_eq!(x.flip_prefix(6).to_string(), "010101");
        assert_eq!(x.flip_prefix(3).flip_prefix(3), x);
    }

    #[test]
    fn get_cyclic_wraps() {
        let x: Bits = "100".parse().unwrap();
        assert!(x.get_cyclic(0));
        assert!(!x.get_cyclic(1));
        assert!(x.get_cyclic(3));
        assert!(x.get_cyclic(300));
    }

    #[test]
    fn ordering_is_lexicographic_by_storage() {
        // Bits derives Ord on (words, len); we only rely on Eq/Hash semantics,
        // but Ord must at least be consistent with Eq.
        let a: Bits = "01".parse().unwrap();
        let b: Bits = "01".parse().unwrap();
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
    }

    #[test]
    fn from_iterator_and_extend() {
        let b: Bits = [true, false, true].into_iter().collect();
        assert_eq!(b.to_string(), "101");
        let mut c = b.clone();
        c.extend([false, false]);
        assert_eq!(c.to_string(), "10100");
    }
}
