//! ASCII renderings of string walks, reproducing Figures 1–3 of the paper.
//!
//! The paper's figures show the "graph" of a sequence: a lattice walk where
//! each `1` steps northeast (`/`) and each `0` steps southeast (`\`). The
//! renderer draws exactly that, one column per symbol, which is sufficient
//! to regenerate Figures 1a/1b (walks and balanced strings), 2a/2b (Catalan
//! sequences and their shifts) and 3a/3b (the 2-maximality transform).

use crate::walk::Walk;
use crate::Bits;

/// Renders the walk of `z` as ASCII art, one row per height level.
///
/// The walk baseline (height 0) is marked with `-` on empty cells; rows are
/// ordered top (highest) to bottom (lowest).
///
/// # Example
///
/// ```
/// use rdv_strings::{Bits, render::render_walk};
///
/// let z: Bits = "11010".parse().unwrap(); // Figure 1a
/// let art = render_walk(&z);
/// assert!(art.lines().count() >= 2);
/// ```
pub fn render_walk(z: &Bits) -> String {
    if z.is_empty() {
        return String::from("(empty sequence)\n");
    }
    let w = Walk::new(z);
    let hi = *w.heights().iter().max().expect("non-empty");
    let lo = *w.heights().iter().min().expect("non-empty");
    // Each symbol occupies one column; the glyph for step i sits between
    // heights h(i) and h(i+1), drawn on the row of max(h(i), h(i+1)).
    let rows = (hi - lo).max(1) as usize;
    let mut grid = vec![vec![' '; z.len()]; rows];
    for (i, bit) in z.iter().enumerate() {
        let (a, b) = (w.height(i), w.height(i + 1));
        let top = a.max(b);
        let row = (hi - top) as usize;
        grid[row][i] = if bit { '/' } else { '\\' };
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let level = hi - r as i64;
        let line: String = row.iter().collect();
        out.push_str(&format!("{level:>3} |{line}|\n"));
    }
    out.push_str(&format!("    seq: {z}\n"));
    out
}

/// Renders the annotated comparison used for Figure 3: the walk before and
/// after the 2-maximality transform `M`.
pub fn render_maximality_transform(z: &Bits) -> String {
    let m = crate::maximal::to_two_maximal(z);
    let mut out = String::new();
    out.push_str("before M (first maximal point marked by insertion below):\n");
    out.push_str(&render_walk(z));
    out.push_str("after M (1010 inserted; exactly two maximal points):\n");
    out.push_str(&render_walk(&m));
    out
}

/// Describes a string with the paper's vocabulary (balanced / Catalan /
/// strictly Catalan / t-maximal / t-minimal), for figure captions.
pub fn describe(z: &Bits) -> String {
    if z.is_empty() {
        return String::from("empty");
    }
    let w = Walk::new(z);
    let mut parts = Vec::new();
    if w.is_balanced() {
        parts.push("balanced".to_string());
    } else {
        parts.push(format!("unbalanced (final height {})", w.final_height()));
    }
    if w.is_strictly_catalan() {
        parts.push("strictly Catalan".to_string());
    } else if w.is_catalan() {
        parts.push("Catalan".to_string());
    }
    parts.push(format!("{}-maximal", w.maximal_count()));
    parts.push(format!("{}-minimal", w.minimal_count()));
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Bits {
        s.parse().unwrap()
    }

    #[test]
    fn figure_1a_render_shape() {
        let art = render_walk(&bits("11010"));
        // Two height rows plus the sequence line.
        assert_eq!(art.lines().count(), 3);
        assert!(art.contains("seq: 11010"));
        // The first step is a rise at level 1... top row has the later peaks.
        let first_line = art.lines().next().unwrap();
        assert!(first_line.contains('/'));
    }

    #[test]
    fn figure_1b_render_is_balanced_caption() {
        assert!(describe(&bits("110001")).contains("balanced"));
        assert!(!describe(&bits("11010")).contains(" balanced"));
    }

    #[test]
    fn glyph_count_matches_length() {
        for s in ["10", "110100", "010011", "11110000"] {
            let art = render_walk(&bits(s));
            let glyphs: usize = art.chars().filter(|&c| c == '/' || c == '\\').count();
            assert_eq!(glyphs, s.len(), "{s}");
        }
    }

    #[test]
    fn describe_vocabulary() {
        assert_eq!(
            describe(&bits("1100")),
            "balanced, strictly Catalan, 1-maximal, 1-minimal"
        );
        assert!(describe(&bits("1010")).contains("Catalan"));
        assert!(!describe(&bits("1010")).contains("strictly"));
        assert_eq!(describe(&Bits::new()), "empty");
    }

    #[test]
    fn maximality_transform_render_mentions_both() {
        let out = render_maximality_transform(&bits("110100"));
        assert!(out.contains("before M"));
        assert!(out.contains("after M"));
    }

    #[test]
    fn empty_render() {
        assert_eq!(render_walk(&Bits::new()), "(empty sequence)\n");
    }
}
