//! Enumeration of the string classes of Section 3, with closed-form
//! cardinalities as cross-checks.
//!
//! These enumerators power exhaustive tests elsewhere in the workspace and
//! pin the combinatorial predicates to textbook sequences: balanced strings
//! of length `2m` are counted by `C(2m, m)`, Catalan strings by the Catalan
//! numbers `C_m`, and strictly Catalan strings of length `2m` by `C_{m−1}`
//! (strip the forced `1…0` bracket).

use crate::walk::Walk;
use crate::Bits;

/// All binary strings of the given length, in numeric order.
///
/// # Panics
///
/// Panics if `len > 30` (enumeration blow-up guard).
pub fn all_strings(len: usize) -> Vec<Bits> {
    assert!(len <= 30, "enumeration limited to length 30");
    (0u64..(1 << len))
        .map(|v| Bits::encode_int(v, len as u32))
        .collect()
}

/// All balanced strings of the given (even) length.
pub fn balanced_strings(len: usize) -> Vec<Bits> {
    all_strings(len)
        .into_iter()
        .filter(|b| Walk::new(b).is_balanced())
        .collect()
}

/// All Catalan strings of the given (even) length.
pub fn catalan_strings(len: usize) -> Vec<Bits> {
    all_strings(len)
        .into_iter()
        .filter(|b| Walk::new(b).is_catalan())
        .collect()
}

/// All strictly Catalan strings of the given (even) length.
pub fn strictly_catalan_strings(len: usize) -> Vec<Bits> {
    all_strings(len)
        .into_iter()
        .filter(|b| Walk::new(b).is_strictly_catalan())
        .collect()
}

/// The `m`-th Catalan number `C_m = C(2m, m) / (m + 1)`.
///
/// # Panics
///
/// Panics if the value overflows `u64` (`m > 33`).
pub fn catalan_number(m: u64) -> u64 {
    let mut c: u64 = 1;
    for i in 0..m {
        // C_{i+1} = C_i · 2(2i+1)/(i+2), kept exact by multiplying first.
        c = c
            .checked_mul(2 * (2 * i + 1))
            .expect("Catalan number overflow")
            / (i + 2);
    }
    c
}

/// The central binomial coefficient `C(2m, m)`.
///
/// # Panics
///
/// Panics on overflow (`m > 30`).
pub fn central_binomial(m: u64) -> u64 {
    let mut c: u64 = 1;
    for i in 0..m {
        c = c.checked_mul(2 * m - i).expect("binomial overflow") / (i + 1);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalan_numbers_match_oeis() {
        // OEIS A000108.
        let expected = [1u64, 1, 2, 5, 14, 42, 132, 429, 1430, 4862];
        for (m, &want) in expected.iter().enumerate() {
            assert_eq!(catalan_number(m as u64), want, "C_{m}");
        }
    }

    #[test]
    fn central_binomials_match() {
        let expected = [1u64, 2, 6, 20, 70, 252, 924];
        for (m, &want) in expected.iter().enumerate() {
            assert_eq!(central_binomial(m as u64), want, "C(2·{m},{m})");
        }
    }

    #[test]
    fn balanced_counts_are_central_binomials() {
        for m in 0..=6usize {
            assert_eq!(
                balanced_strings(2 * m).len() as u64,
                central_binomial(m as u64),
                "balanced strings of length {}",
                2 * m
            );
        }
    }

    #[test]
    fn catalan_counts_are_catalan_numbers() {
        for m in 0..=6usize {
            assert_eq!(
                catalan_strings(2 * m).len() as u64,
                catalan_number(m as u64),
                "Catalan strings of length {}",
                2 * m
            );
        }
    }

    #[test]
    fn strictly_catalan_counts_shift_by_one() {
        // 1 ∘ z ∘ 0 with z Catalan ⇒ count at length 2m is C_{m−1}.
        for m in 1..=6usize {
            assert_eq!(
                strictly_catalan_strings(2 * m).len() as u64,
                catalan_number(m as u64 - 1),
                "strictly Catalan strings of length {}",
                2 * m
            );
        }
    }

    #[test]
    fn odd_lengths_have_no_balanced_strings() {
        for len in [1usize, 3, 5, 7] {
            assert!(balanced_strings(len).is_empty());
            assert!(catalan_strings(len).is_empty());
            assert!(strictly_catalan_strings(len).is_empty());
        }
    }

    #[test]
    fn every_balanced_string_has_a_catalan_rotation() {
        // The cycle-lemma fact the U map relies on, exhaustively.
        use crate::walk::catalan_rotation;
        for z in balanced_strings(10) {
            let c = catalan_rotation(&z).expect("balanced");
            assert!(Walk::new(&z.cyclic_shift(c)).is_catalan(), "{z}");
        }
    }

    #[test]
    fn catalan_rotations_are_unique_iff_strictly_catalan_after_bracketing() {
        // A strictly Catalan string has exactly ONE Catalan rotation
        // (itself): the uniqueness behind the ◇₁ argument.
        for z in strictly_catalan_strings(10) {
            let catalan_rots = (0..z.len())
                .filter(|&c| Walk::new(&z.cyclic_shift(c)).is_catalan())
                .count();
            assert_eq!(catalan_rots, 1, "{z} has {catalan_rots} Catalan rotations");
        }
    }

    #[test]
    #[should_panic(expected = "limited to length 30")]
    fn enumeration_guard() {
        all_strings(31);
    }
}
