//! The rendezvous conditions of Section 3: `♦₀`, `♦₁` and their cyclic
//! closures `◇₀`, `◇₁`.
//!
//! For schedules of size-two channel sets written as binary strings, the
//! paper identifies two sufficient conditions for rendezvous between strings
//! `r` and `s` of a common length `ℓ`:
//!
//! * `r ♦₁ s` — condition (1): both `(0,1)` and `(1,0)` occur among the
//!   aligned pairs `(r_t, s_t)`; sufficient when the two channel sets form a
//!   directed path of length two (they share an element that is the larger
//!   of one set and the smaller of the other).
//! * `r ♦₀ s` — condition (2): both `(0,0)` and `(1,1)` occur among the
//!   aligned pairs; sufficient when the sets share their smallest or largest
//!   element.
//!
//! The cyclic closures quantify over all relative rotations (condition (5)):
//! `r ◇ᵦ s ⇔ Sⁱr ♦ᵦ Sʲs` for all `i, j`, which for equal-length strings
//! reduces to `r ♦ᵦ Sᵈs` for all relative shifts `d`.

use crate::Bits;

/// Which aligned tuples are required for rendezvous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiamondKind {
    /// `♦₀`: requires `(0,0)` and `(1,1)` — sets sharing an extreme element.
    Same,
    /// `♦₁`: requires `(0,1)` and `(1,0)` — sets forming a 2-path.
    Path,
}

/// Whether `r ♦₁ s`: both `(0,1)` and `(1,0)` occur among aligned pairs.
///
/// # Panics
///
/// Panics if the strings have different lengths.
pub fn diamond_path(r: &Bits, s: &Bits) -> bool {
    assert_eq!(r.len(), s.len(), "♦ requires equal-length strings");
    let mut saw_01 = false;
    let mut saw_10 = false;
    for (a, b) in r.iter().zip(s.iter()) {
        match (a, b) {
            (false, true) => saw_01 = true,
            (true, false) => saw_10 = true,
            _ => {}
        }
        if saw_01 && saw_10 {
            return true;
        }
    }
    false
}

/// Whether `r ♦₀ s`: both `(0,0)` and `(1,1)` occur among aligned pairs.
///
/// # Panics
///
/// Panics if the strings have different lengths.
pub fn diamond_same(r: &Bits, s: &Bits) -> bool {
    assert_eq!(r.len(), s.len(), "♦ requires equal-length strings");
    let mut saw_00 = false;
    let mut saw_11 = false;
    for (a, b) in r.iter().zip(s.iter()) {
        match (a, b) {
            (false, false) => saw_00 = true,
            (true, true) => saw_11 = true,
            _ => {}
        }
        if saw_00 && saw_11 {
            return true;
        }
    }
    false
}

/// Whether `r ♦ s` for the given kind.
pub fn diamond(kind: DiamondKind, r: &Bits, s: &Bits) -> bool {
    match kind {
        DiamondKind::Same => diamond_same(r, s),
        DiamondKind::Path => diamond_path(r, s),
    }
}

/// Whether `r ◇₁ s`: `Sⁱr ♦₁ Sʲs` for all rotations `i, j`.
///
/// # Panics
///
/// Panics if the strings have different lengths or are empty.
pub fn rhombus_path(r: &Bits, s: &Bits) -> bool {
    rhombus(DiamondKind::Path, r, s)
}

/// Whether `r ◇₀ s`: `Sⁱr ♦₀ Sʲs` for all rotations `i, j`.
///
/// # Panics
///
/// Panics if the strings have different lengths or are empty.
pub fn rhombus_same(r: &Bits, s: &Bits) -> bool {
    rhombus(DiamondKind::Same, r, s)
}

/// Whether `r ◇ s` for the given kind (all relative rotations).
///
/// # Panics
///
/// Panics if the strings have different lengths or are empty.
pub fn rhombus(kind: DiamondKind, r: &Bits, s: &Bits) -> bool {
    assert_eq!(r.len(), s.len(), "◇ requires equal-length strings");
    assert!(!r.is_empty(), "◇ is undefined on empty strings");
    (0..s.len()).all(|d| diamond(kind, r, &s.cyclic_shift(d)))
}

/// The first aligned index `t` at which the tuple required by `kind` and
/// `want_first_bit` occurs, if any.
///
/// For `kind = Path` and `want_first_bit = true`, looks for `(1,0)`; with
/// `false`, for `(0,1)`. For `kind = Same`, `want_first_bit` selects `(1,1)`
/// or `(0,0)`. This is the *rendezvous slot locator* used to compute exact
/// times-to-rendezvous in the verification engine.
pub fn first_tuple_index(
    r: &Bits,
    s: &Bits,
    kind: DiamondKind,
    want_first_bit: bool,
) -> Option<usize> {
    assert_eq!(r.len(), s.len(), "aligned search requires equal lengths");
    let want = match kind {
        DiamondKind::Same => (want_first_bit, want_first_bit),
        DiamondKind::Path => (want_first_bit, !want_first_bit),
    };
    r.iter().zip(s.iter()).position(|pair| pair == want)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Bits {
        s.parse().unwrap()
    }

    #[test]
    fn diamond_path_basic() {
        assert!(diamond_path(&bits("01"), &bits("10")));
        assert!(!diamond_path(&bits("01"), &bits("01")));
        assert!(!diamond_path(&bits("00"), &bits("01")));
        assert!(diamond_path(&bits("0011"), &bits("0110")));
    }

    #[test]
    fn diamond_same_basic() {
        assert!(diamond_same(&bits("01"), &bits("01")));
        assert!(!diamond_same(&bits("01"), &bits("10")));
        assert!(!diamond_same(&bits("0011"), &bits("1100")));
        assert!(diamond_same(&bits("0011"), &bits("0110")));
    }

    #[test]
    fn complements_fail_diamond_same() {
        // (0,0)/(1,1) never occur between a string and its complement.
        for s in ["0101", "0011", "100110"] {
            let r = bits(s);
            assert!(!diamond_same(&r, &r.complement()), "{s}");
        }
    }

    #[test]
    fn equal_strings_fail_diamond_path() {
        for s in ["0101", "0011", "100110"] {
            let r = bits(s);
            assert!(!diamond_path(&r, &r), "{s}");
        }
    }

    #[test]
    fn paper_symmetric_pattern_rhombus_same() {
        // Section 3.2: 010011 ◇₀ 010011 (any pair of rotations of the
        // pattern yields simultaneous (0,0) and (1,1) accesses).
        let p = bits("010011");
        assert!(rhombus_same(&p, &p));
    }

    #[test]
    fn rhombus_path_requires_all_shifts() {
        // 0101 vs 1010: aligned gives both tuples, but the shift-by-one
        // alignment makes them equal, which kills (0,1)/(1,0).
        let r = bits("0101");
        let s = bits("1010");
        assert!(diamond_path(&r, &s));
        assert!(!rhombus_path(&r, &s));
    }

    #[test]
    fn rhombus_reduces_to_relative_shift() {
        // Exhaustive check that ∀i,j alignment equals ∀d single-sided shifts.
        let r = bits("110100");
        let s = bits("101010");
        let all_pairs =
            (0..6).all(|i| (0..6).all(|j| diamond_path(&r.cyclic_shift(i), &s.cyclic_shift(j))));
        assert_eq!(all_pairs, rhombus_path(&r, &s));
    }

    #[test]
    fn first_tuple_index_finds_earliest() {
        let r = bits("0011");
        let s = bits("0110");
        assert_eq!(first_tuple_index(&r, &s, DiamondKind::Same, false), Some(0));
        assert_eq!(first_tuple_index(&r, &s, DiamondKind::Same, true), Some(2));
        assert_eq!(first_tuple_index(&r, &s, DiamondKind::Path, false), Some(1));
        assert_eq!(first_tuple_index(&r, &s, DiamondKind::Path, true), Some(3));
        assert_eq!(
            first_tuple_index(&bits("00"), &bits("00"), DiamondKind::Path, true),
            None
        );
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        diamond_path(&bits("01"), &bits("010"));
    }
}
