//! The synchronous pair code `C(x) = 01 ∘ x ∘ ¬wt(x)₂` of Theorem 1.
//!
//! `C` satisfies, for equal-length inputs,
//!
//! * `x = y ⇒ C(x) ♦₀ C(y)` — the common `01` prefix contributes `(0,0)`
//!   and `(1,1)` (indeed `♦₀` holds for *all* pairs);
//! * `x ≠ y ⇒ C(x) ♦₁ C(y)` — if the weights agree, distinct strings of
//!   equal weight realize both `(0,1)` and `(1,0)` in the payload; if the
//!   weights differ, the payload supplies one tuple and the weight fields
//!   supply the other.
//!
//! # Erratum relative to the paper
//!
//! The paper writes the weight field as the plain canonical encoding
//! `wt(x)₂`. That version is incorrect: for `x = 100`, `y = 111` the
//! payload pairs are `(1,1),(0,1),(0,1)` and the weight encodings are
//! `01` vs `11`, so the tuple `(1,0)` never occurs and property (4) fails.
//! When `wt(x) < wt(y)` the payload guarantees `(0,1)`, so the weight field
//! must guarantee `(1,0)` — which requires an *order-reversing* encoding of
//! the weight. We therefore store the bitwise complement `¬wt(x)₂`: if
//! `wt(x) < wt(y)`, the most significant differing bit of the two weights
//! has a `0` in `wt(x)₂` and a `1` in `wt(y)₂`, hence a `1`/`0` in the
//! complemented fields — exactly the `(1,0)` tuple needed (and
//! symmetrically for `wt(x) > wt(y)`). The exhaustive tests below verify
//! both properties for all pairs up to length 7, and
//! `tests::paper_version_counterexample` pins the counterexample.
//!
//! The paper also notes the naive alternative `x ↦ 01 ∘ x ∘ x̄`, which has
//! the same properties at twice the payload length; it is provided as
//! [`naive_encode`] for the ablation bench.

use crate::{log_sharp, Bits};

/// The synchronous pair code for color strings of a fixed length.
///
/// # Example
///
/// ```
/// use rdv_strings::{Bits, cmap::CCode, diamond};
///
/// let code = CCode::new(3);
/// let a = code.encode(&Bits::encode_int(0b101, 3));
/// let b = code.encode(&Bits::encode_int(0b011, 3));
/// assert!(diamond::diamond_path(&a, &b));
/// assert!(diamond::diamond_same(&a, &b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CCode {
    input_len: usize,
}

impl CCode {
    /// Creates the code for inputs of exactly `input_len` bits.
    pub fn new(input_len: usize) -> Self {
        CCode { input_len }
    }

    /// The input length this code accepts.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Width of the weight field: weights range over `0..=input_len`.
    fn weight_width(&self) -> u32 {
        log_sharp(self.input_len as u64 + 1)
    }

    /// Length of every codeword: `input_len + log♯(input_len + 1) + 2`.
    pub fn output_len(&self) -> usize {
        self.input_len + self.weight_width() as usize + 2
    }

    /// Encodes `x` as `01 ∘ x ∘ ¬wt(x)₂` (see the module-level erratum).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_len()`.
    pub fn encode(&self, x: &Bits) -> Bits {
        assert_eq!(
            x.len(),
            self.input_len,
            "CCode configured for length {}, got {}",
            self.input_len,
            x.len()
        );
        let mut out = Bits::with_capacity(self.output_len());
        out.push(false);
        out.push(true);
        out.extend_bits(x);
        let field = Bits::encode_int(x.weight() as u64, self.weight_width()).complement();
        out.extend_bits(&field);
        out
    }

    /// Decodes a codeword, verifying the prefix and the weight field.
    ///
    /// Returns `None` for malformed codewords.
    pub fn decode(&self, c: &Bits) -> Option<Bits> {
        if c.len() != self.output_len() {
            return None;
        }
        if c.get(0) || !c.get(1) {
            return None;
        }
        let x = c.slice(2, 2 + self.input_len);
        let wt = c
            .slice(2 + self.input_len, c.len())
            .complement()
            .decode_int();
        if wt as usize != x.weight() {
            return None;
        }
        Some(x)
    }
}

/// The naive alternative `x ↦ 01 ∘ x ∘ x̄` mentioned in the paper
/// ("It is easy to check that the map x ↦ 01 ∘ x ∘ x̄ … has the desired
/// properties"). Used by the ablation bench to quantify the savings of the
/// leaner weight-tagged code.
pub fn naive_encode(x: &Bits) -> Bits {
    let mut out = Bits::with_capacity(2 + 2 * x.len());
    out.push(false);
    out.push(true);
    out.extend_bits(x);
    out.extend_bits(&x.complement());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diamond::{diamond_path, diamond_same};

    fn all_strings(len: usize) -> impl Iterator<Item = Bits> {
        (0u64..(1 << len)).map(move |v| Bits::encode_int(v, len as u32))
    }

    #[test]
    fn property_three_diamond_same_for_all_pairs() {
        // x = y ⇒ C(x) ♦₀ C(y); in fact the 01 prefix gives it for all pairs.
        for len in 1..=7usize {
            let code = CCode::new(len);
            for x in all_strings(len) {
                for y in all_strings(len) {
                    assert!(
                        diamond_same(&code.encode(&x), &code.encode(&y)),
                        "C({x}) ♦₀ C({y}) failed"
                    );
                }
            }
        }
    }

    #[test]
    fn property_four_diamond_path_for_distinct_pairs() {
        // x ≠ y ⇒ C(x) ♦₁ C(y).
        for len in 1..=7usize {
            let code = CCode::new(len);
            for x in all_strings(len) {
                for y in all_strings(len) {
                    if x != y {
                        assert!(
                            diamond_path(&code.encode(&x), &code.encode(&y)),
                            "C({x}) ♦₁ C({y}) failed"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn naive_encode_has_both_properties() {
        for len in 1..=6usize {
            for x in all_strings(len) {
                for y in all_strings(len) {
                    assert!(diamond_same(&naive_encode(&x), &naive_encode(&y)));
                    if x != y {
                        assert!(diamond_path(&naive_encode(&x), &naive_encode(&y)));
                    }
                }
            }
        }
    }

    #[test]
    fn lean_code_is_shorter_than_naive() {
        for len in [8usize, 16, 64, 256] {
            let lean = CCode::new(len).output_len();
            let naive = 2 + 2 * len;
            assert!(lean < naive, "len {len}: lean {lean} vs naive {naive}");
        }
    }

    #[test]
    fn output_length_matches_paper() {
        // ℓ + log♯(ℓ+1) + 2 — the paper states ℓ + log♯ ℓ + 2 for its
        // (off-by-rounding) weight range; ours differs by at most one bit.
        for len in 1..=64usize {
            let code = CCode::new(len);
            assert!(code.output_len() <= len + log_sharp(len as u64) as usize + 3);
        }
    }

    #[test]
    fn paper_version_counterexample() {
        // The paper's literal `01 ∘ x ∘ wt(x)₂` fails property (4) on
        // x = 100, y = 111: no aligned (1,0) tuple exists. This test pins
        // the counterexample that motivates the complemented weight field.
        let x: Bits = "100".parse().unwrap();
        let y: Bits = "111".parse().unwrap();
        let paper = |x: &Bits| {
            let mut out: Bits = "01".parse().unwrap();
            out.extend_bits(x);
            out.extend_bits(&Bits::encode_int(x.weight() as u64, 2));
            out
        };
        assert!(
            !diamond_path(&paper(&x), &paper(&y)),
            "paper version unexpectedly works"
        );
        // Our corrected code handles it.
        let code = CCode::new(3);
        assert!(diamond_path(&code.encode(&x), &code.encode(&y)));
    }

    #[test]
    fn roundtrip() {
        let code = CCode::new(5);
        for x in all_strings(5) {
            assert_eq!(code.decode(&code.encode(&x)), Some(x));
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        let code = CCode::new(4);
        let good = code.encode(&"1010".parse().unwrap());
        let mut bad = good.clone();
        bad.set(0, true); // break the 01 prefix
        assert_eq!(code.decode(&bad), None);
        let mut bad_wt = good.clone();
        let n = bad_wt.len();
        let b = bad_wt.get(n - 1);
        bad_wt.set(n - 1, !b); // corrupt the weight field
        assert_eq!(code.decode(&bad_wt), None);
        assert_eq!(code.decode(&good.slice(0, n - 1)), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::diamond::{diamond_path, diamond_same};
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_cmap_properties(
            v in proptest::collection::vec(any::<bool>(), 1..48),
            w in proptest::collection::vec(any::<bool>(), 1..48),
        ) {
            // Pad to a common length so the code applies.
            let len = v.len().max(w.len());
            let mut v = v; v.resize(len, false);
            let mut w = w; w.resize(len, false);
            let x = Bits::from_bools(&v);
            let y = Bits::from_bools(&w);
            let code = CCode::new(len);
            let cx = code.encode(&x);
            let cy = code.encode(&y);
            prop_assert!(diamond_same(&cx, &cy));
            if x != y {
                prop_assert!(diamond_path(&cx, &cy));
            }
            prop_assert_eq!(code.decode(&cx), Some(x));
        }
    }
}
