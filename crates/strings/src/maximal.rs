//! The 2-maximality transform `M(z)` (Figure 3 of the paper).
//!
//! Inserting the string `1010` at a maximal point of a walk raises the
//! maximum by one and visits the new maximum exactly twice, turning any
//! string into a 2-maximal one. The insertion position (the *first* maximal
//! point, for determinism) is recoverable from the output, so the transform
//! is invertible. It preserves balance (the inserted block is balanced) and
//! strict Catalan-ness (the insertion happens at height `≥ 1`).

use crate::walk::Walk;
use crate::Bits;

/// Applies `M`: inserts `1010` at the first maximal point of the walk.
///
/// # Panics
///
/// Panics if `z` is empty (the constructions never produce empty strings).
///
/// # Example
///
/// ```
/// use rdv_strings::{Bits, maximal::{to_two_maximal, from_two_maximal}, walk::Walk};
///
/// let z: Bits = "1100".parse().unwrap();
/// let m = to_two_maximal(&z);
/// assert_eq!(Walk::new(&m).maximal_count(), 2);
/// assert_eq!(from_two_maximal(&m), Some(z));
/// ```
pub fn to_two_maximal(z: &Bits) -> Bits {
    assert!(!z.is_empty(), "M is undefined on the empty string");
    let w = Walk::new(z);
    let p = w.first_max_position();
    let block: Bits = "1010".parse().expect("literal");
    let out = z.insert_at(p, &block);
    debug_assert_eq!(Walk::new(&out).maximal_count(), 2);
    out
}

/// Inverts `M`: locates the first maximal point of the walk and removes the
/// `1010` block that `to_two_maximal` inserted there.
///
/// Returns `None` if the string is too short or the expected block is absent
/// (i.e. the input is not in the image of `M`).
pub fn from_two_maximal(m: &Bits) -> Option<Bits> {
    if m.len() < 4 {
        return None;
    }
    let w = Walk::new(m);
    // After insertion at p, the new maximum is attained first at walk
    // position p + 1 (just after the first inserted 1).
    let q = w.first_max_position();
    if q == 0 {
        return None;
    }
    let start = q - 1;
    if start + 4 > m.len() {
        return None;
    }
    if m.slice(start, start + 4).to_string() != "1010" {
        return None;
    }
    let z = m.remove_range(start, 4);
    // Verify we recovered a preimage: M must map it back.
    if to_two_maximal(&z) == *m {
        Some(z)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Bits {
        s.parse().unwrap()
    }

    #[test]
    fn output_is_two_maximal_exhaustive() {
        for len in 1..=10usize {
            for v in 0u64..(1 << len) {
                let z = Bits::encode_int(v, len as u32);
                let m = to_two_maximal(&z);
                assert_eq!(m.len(), z.len() + 4);
                assert_eq!(
                    Walk::new(&m).maximal_count(),
                    2,
                    "M({z}) = {m} not 2-maximal"
                );
            }
        }
    }

    #[test]
    fn roundtrip_exhaustive() {
        for len in 1..=10usize {
            for v in 0u64..(1 << len) {
                let z = Bits::encode_int(v, len as u32);
                let m = to_two_maximal(&z);
                assert_eq!(from_two_maximal(&m), Some(z.clone()), "roundtrip {z}");
            }
        }
    }

    #[test]
    fn preserves_balance() {
        for s in ["1100", "10", "110100", "10101100"] {
            let z = bits(s);
            assert!(Walk::new(&z).is_balanced());
            assert!(Walk::new(&to_two_maximal(&z)).is_balanced(), "{s}");
        }
    }

    #[test]
    fn preserves_strict_catalan() {
        for s in ["10", "1100", "110100", "11101000", "11011000"] {
            let z = bits(s);
            assert!(Walk::new(&z).is_strictly_catalan(), "{s} precondition");
            let m = to_two_maximal(&z);
            assert!(
                Walk::new(&m).is_strictly_catalan(),
                "M({s}) = {m} lost strict Catalan-ness"
            );
        }
    }

    #[test]
    fn figure_3_shape() {
        // Figure 3: a sequence with a unique maximum becomes 2-maximal with
        // the maximum raised by one.
        let z = bits("110100");
        let before = Walk::new(&z);
        let m = to_two_maximal(&z);
        let after = Walk::new(&m);
        assert_eq!(after.max_value(), before.max_value() + 1);
        assert_eq!(after.maximal_count(), 2);
    }

    #[test]
    fn rejects_non_image_strings() {
        // 0000 has its first maximum at position 0: cannot be in the image.
        assert_eq!(from_two_maximal(&bits("0000")), None);
        // Too short.
        assert_eq!(from_two_maximal(&bits("101")), None);
        // First max position not preceded by the 1010 block.
        assert_eq!(from_two_maximal(&bits("110010")), None);
    }

    #[test]
    fn insertion_is_at_first_max() {
        // z = 1100: heights 0,1,2,1,0 → first max at walk position 2.
        // Insert 1010 starting at string index 2: 11 1010 00.
        assert_eq!(to_two_maximal(&bits("1100")).to_string(), "11101000");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_two_maximal_and_invertible(v in proptest::collection::vec(any::<bool>(), 1..200)) {
            let z = Bits::from_bools(&v);
            let m = to_two_maximal(&z);
            prop_assert_eq!(Walk::new(&m).maximal_count(), 2);
            prop_assert_eq!(from_two_maximal(&m), Some(z));
        }
    }
}
