//! The "graph" `G_z` of a binary string (Figures 1 and 2 of the paper).
//!
//! For a string `z`, the paper defines `G_z : {0, …, |z|} → ℤ` by
//! `G_z(0) = 0` and `G_z(k) = Σ_{i≤k} (2 z_i − 1)`: the lattice walk in which
//! every `1` steps northeast and every `0` steps southeast.
//!
//! Balanced strings return to height 0; *Catalan* strings additionally never
//! go negative; *strictly Catalan* strings stay strictly positive on the
//! interior. For cyclic arguments the paper counts maxima/minima over one
//! period, i.e. over walk positions `0 ≤ i < |z|` — under that convention a
//! strictly Catalan string is 1-minimal with its unique minimum at `i = 0`,
//! exactly as stated in Section 3.

use crate::Bits;

/// The walk `G_z` of a string together with derived statistics.
///
/// # Example
///
/// ```
/// use rdv_strings::{Bits, walk::Walk};
///
/// let z: Bits = "110001".parse().unwrap(); // Figure 1b of the paper
/// let w = Walk::new(&z);
/// assert!(w.is_balanced());
/// assert_eq!(w.max_value(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    /// Heights `G_z(0), …, G_z(|z|)` (length `|z| + 1`).
    heights: Vec<i64>,
}

impl Walk {
    /// Computes the walk of `z`.
    pub fn new(z: &Bits) -> Self {
        let mut heights = Vec::with_capacity(z.len() + 1);
        let mut h = 0i64;
        heights.push(h);
        for bit in z.iter() {
            h += if bit { 1 } else { -1 };
            heights.push(h);
        }
        Walk { heights }
    }

    /// The heights `G_z(0), …, G_z(|z|)`.
    pub fn heights(&self) -> &[i64] {
        &self.heights
    }

    /// `G_z(k)`.
    ///
    /// # Panics
    ///
    /// Panics if `k > |z|`.
    pub fn height(&self, k: usize) -> i64 {
        self.heights[k]
    }

    /// Length of the underlying string.
    pub fn len(&self) -> usize {
        self.heights.len() - 1
    }

    /// Whether the underlying string is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Final height `G_z(|z|)`; zero exactly for balanced strings.
    pub fn final_height(&self) -> i64 {
        *self.heights.last().expect("walk always has height 0")
    }

    /// Whether `wt(z) = |z| / 2`, i.e. the walk returns to zero.
    pub fn is_balanced(&self) -> bool {
        self.final_height() == 0
    }

    /// Whether `z` is balanced and `G_z` is never negative.
    pub fn is_catalan(&self) -> bool {
        self.is_balanced() && self.heights.iter().all(|&h| h >= 0)
    }

    /// Whether `z` is balanced and `G_z(i) > 0` for all `0 < i < |z|`.
    pub fn is_strictly_catalan(&self) -> bool {
        if !self.is_balanced() || self.len() < 2 {
            return false;
        }
        self.heights[1..self.len()].iter().all(|&h| h > 0)
    }

    /// Maximum height over one period (`0 ≤ i < |z|`).
    ///
    /// # Panics
    ///
    /// Panics on an empty string.
    pub fn max_value(&self) -> i64 {
        *self.heights[..self.len().max(1)]
            .iter()
            .max()
            .expect("non-empty walk")
    }

    /// Minimum height over one period (`0 ≤ i < |z|`).
    ///
    /// # Panics
    ///
    /// Panics on an empty string.
    pub fn min_value(&self) -> i64 {
        *self.heights[..self.len().max(1)]
            .iter()
            .min()
            .expect("non-empty walk")
    }

    /// Number of positions `0 ≤ i < |z|` at which `G_z` attains its maximum.
    ///
    /// A string is *t-maximal* when this equals `t`.
    pub fn maximal_count(&self) -> usize {
        let m = self.max_value();
        self.heights[..self.len()]
            .iter()
            .filter(|&&h| h == m)
            .count()
    }

    /// Number of positions `0 ≤ i < |z|` at which `G_z` attains its minimum.
    ///
    /// A string is *t-minimal* when this equals `t`.
    pub fn minimal_count(&self) -> usize {
        let m = self.min_value();
        self.heights[..self.len()]
            .iter()
            .filter(|&&h| h == m)
            .count()
    }

    /// The smallest position `0 ≤ i < |z|` with `G_z(i) = max`.
    pub fn first_max_position(&self) -> usize {
        let m = self.max_value();
        self.heights[..self.len()]
            .iter()
            .position(|&h| h == m)
            .expect("maximum exists")
    }
}

/// Whether the string is t-maximal for the given `t` (cyclic convention).
pub fn is_t_maximal(z: &Bits, t: usize) -> bool {
    !z.is_empty() && Walk::new(z).maximal_count() == t
}

/// Whether the string is t-minimal for the given `t` (cyclic convention).
pub fn is_t_minimal(z: &Bits, t: usize) -> bool {
    !z.is_empty() && Walk::new(z).minimal_count() == t
}

/// The smallest rotation `c` such that `S^c z` is Catalan.
///
/// By the cycle lemma every balanced string has at least one Catalan
/// rotation; this returns the least such shift.
///
/// # Errors
///
/// Returns `None` if `z` is empty or not balanced.
pub fn catalan_rotation(z: &Bits) -> Option<usize> {
    if z.is_empty() {
        return None;
    }
    let w = Walk::new(z);
    if !w.is_balanced() {
        return None;
    }
    // S^c z is Catalan iff G attains its minimum at position c (taking the
    // smallest such c makes the choice canonical): rotating so the walk
    // starts at a global minimum keeps all partial sums non-negative.
    let min = w.min_value();
    (0..z.len()).find(|&c| w.height(c) == min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Bits {
        s.parse().unwrap()
    }

    #[test]
    fn figure_1a_walk() {
        // Figure 1a: the graph of 11010 ends at height +1.
        let w = Walk::new(&bits("11010"));
        assert_eq!(w.heights(), &[0, 1, 2, 1, 2, 1]);
        assert!(!w.is_balanced());
    }

    #[test]
    fn figure_1b_balanced() {
        // Figure 1b: 110001 is balanced.
        let w = Walk::new(&bits("110001"));
        assert_eq!(w.final_height(), 0);
        assert!(w.is_balanced());
        assert!(!w.is_catalan()); // dips to -1 before the final 1
    }

    #[test]
    fn catalan_examples() {
        assert!(Walk::new(&bits("10")).is_catalan());
        assert!(Walk::new(&bits("1100")).is_catalan());
        assert!(Walk::new(&bits("1010")).is_catalan());
        assert!(!Walk::new(&bits("0110")).is_catalan());
        assert!(!Walk::new(&bits("10100")).is_catalan()); // not balanced
    }

    #[test]
    fn strictly_catalan_examples() {
        assert!(Walk::new(&bits("10")).is_strictly_catalan());
        assert!(Walk::new(&bits("1100")).is_strictly_catalan());
        assert!(!Walk::new(&bits("1010")).is_strictly_catalan()); // touches 0 at i=2
        assert!(Walk::new(&bits("110100")).is_strictly_catalan());
        assert!(!Walk::new(&bits("")).is_strictly_catalan());
    }

    #[test]
    fn strictly_catalan_is_one_minimal_at_zero() {
        for s in ["10", "1100", "110100", "11101000"] {
            let z = bits(s);
            let w = Walk::new(&z);
            assert!(w.is_strictly_catalan(), "{s}");
            assert_eq!(w.minimal_count(), 1, "{s} should be 1-minimal");
            assert_eq!(w.min_value(), 0);
            assert_eq!(w.height(0), 0);
        }
    }

    #[test]
    fn nontrivial_shift_of_strictly_catalan_not_strictly_catalan() {
        let z = bits("110100");
        for c in 1..z.len() {
            let shifted = z.cyclic_shift(c);
            assert!(
                !Walk::new(&shifted).is_strictly_catalan(),
                "shift {c} of {z} should not be strictly Catalan"
            );
            // ... but every shift is still 1-minimal (the paper's key fact).
            assert_eq!(Walk::new(&shifted).minimal_count(), 1, "shift {c}");
        }
    }

    #[test]
    fn maximal_count_shift_invariant() {
        let z = bits("1101001010");
        let base = Walk::new(&z).maximal_count();
        for c in 0..z.len() {
            assert_eq!(
                Walk::new(&z.cyclic_shift(c)).maximal_count(),
                base,
                "shift {c}"
            );
        }
    }

    #[test]
    fn minimal_count_shift_invariant() {
        let z = bits("1101001010");
        let base = Walk::new(&z).minimal_count();
        for c in 0..z.len() {
            assert_eq!(
                Walk::new(&z.cyclic_shift(c)).minimal_count(),
                base,
                "shift {c}"
            );
        }
    }

    #[test]
    fn complement_swaps_max_and_min_counts() {
        // The paper: z is k-maximal iff z̄ is k-minimal.
        for s in ["1100", "110100", "101010", "100110", "11010010"] {
            let z = bits(s);
            let w = Walk::new(&z);
            let wc = Walk::new(&z.complement());
            assert_eq!(w.maximal_count(), wc.minimal_count(), "{s}");
            assert_eq!(w.minimal_count(), wc.maximal_count(), "{s}");
        }
    }

    #[test]
    fn catalan_rotation_produces_catalan() {
        for s in ["0110", "0011", "010101", "001011", "110001"] {
            let z = bits(s);
            let c = catalan_rotation(&z).expect("balanced");
            assert!(
                Walk::new(&z.cyclic_shift(c)).is_catalan(),
                "rotation {c} of {s}"
            );
            // Minimality of the chosen rotation.
            for earlier in 0..c {
                assert!(
                    !Walk::new(&z.cyclic_shift(earlier)).is_catalan(),
                    "rotation {earlier} of {s} should not be Catalan"
                );
            }
        }
    }

    #[test]
    fn catalan_rotation_rejects_unbalanced() {
        assert_eq!(catalan_rotation(&bits("110")), None);
        assert_eq!(catalan_rotation(&bits("")), None);
    }

    #[test]
    fn bracketing_catalan_gives_strictly_catalan() {
        // Remark from the paper: if z is Catalan, 1 ∘ z ∘ 0 is strictly Catalan.
        for s in ["", "10", "1100", "1010", "101100"] {
            let z = bits(s);
            assert!(Walk::new(&z).is_catalan() || s.is_empty());
            let bracketed: Bits = format!("1{s}0").parse().unwrap();
            assert!(Walk::new(&bracketed).is_strictly_catalan(), "1 ∘ {s} ∘ 0");
        }
    }

    #[test]
    fn first_max_position_is_first() {
        let z = bits("101100");
        let w = Walk::new(&z);
        assert_eq!(w.max_value(), 2);
        assert_eq!(w.first_max_position(), 4);
    }
}
