//! The Gabber–Galil expander on `ℤ_m × ℤ_m`, used for deterministic
//! amplification (Section 5's improved protocol, via \[10\]).
//!
//! Vertices are pairs `(x, y) ∈ ℤ_m²`; each vertex has eight neighbors
//!
//! ```text
//! (x ± 2y, y)   (x ± (2y+1), y)   (x, y ± 2x)   (x, y ± (2x+1))
//! ```
//!
//! This is an explicit constant-degree expander family (second eigenvalue
//! bounded away from the degree), so an `O(1)`-bits-per-step random walk
//! mixes in `O(log |V|)` steps — each walk step costs 3 beacon bits versus
//! the `Θ(log n)` fresh bits protocol A pays per permutation.

/// The Gabber–Galil graph on `ℤ_m × ℤ_m`.
///
/// # Example
///
/// ```
/// use rdv_beacon::GabberGalil;
///
/// let g = GabberGalil::new(97);
/// let v = g.vertex_from_seed(12345);
/// let w = g.step(v, 3);
/// assert!(w.0 < 97 && w.1 < 97);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GabberGalil {
    m: u64,
}

impl GabberGalil {
    /// Creates the graph with side `m ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2`.
    pub fn new(m: u64) -> Self {
        assert!(m >= 2, "expander side must be at least 2");
        GabberGalil { m }
    }

    /// The side length `m`.
    pub fn side(&self) -> u64 {
        self.m
    }

    /// Number of vertices `m²`.
    pub fn vertices(&self) -> u64 {
        self.m * self.m
    }

    /// The degree (8, counting the four generator pairs and inverses).
    pub const DEGREE: u8 = 8;

    /// Maps a 64-bit seed uniformly-ish onto a vertex.
    pub fn vertex_from_seed(&self, seed: u64) -> (u64, u64) {
        fn mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let hx = mix(seed);
        let hy = mix(seed ^ 0xD6E8_FEB8_6659_FD93);
        let x = ((hx as u128 * self.m as u128) >> 64) as u64;
        let y = ((hy as u128 * self.m as u128) >> 64) as u64;
        (x, y)
    }

    /// One walk step along generator `direction ∈ [0, 8)`.
    ///
    /// # Panics
    ///
    /// Panics if `direction ≥ 8`.
    pub fn step(&self, (x, y): (u64, u64), direction: u8) -> (u64, u64) {
        let m = self.m;
        let add = |a: u64, b: u64| (a + b) % m;
        let sub = |a: u64, b: u64| (a + m - b % m) % m;
        let two_y = (2 * y) % m;
        let two_x = (2 * x) % m;
        match direction {
            0 => (add(x, two_y), y),
            1 => (sub(x, two_y), y),
            2 => (add(x, add(two_y, 1)), y),
            3 => (sub(x, add(two_y, 1)), y),
            4 => (x, add(y, two_x)),
            5 => (x, sub(y, two_x)),
            6 => (x, add(y, add(two_x, 1))),
            7 => (x, sub(y, add(two_x, 1))),
            _ => panic!("direction {direction} out of range (degree 8)"),
        }
    }

    /// Canonical integer label of a vertex, usable as a hash seed.
    pub fn label(&self, (x, y): (u64, u64)) -> u64 {
        x * self.m + y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn steps_stay_in_graph() {
        let g = GabberGalil::new(13);
        let mut v = (5, 7);
        for d in 0..8u8 {
            v = g.step(v, d);
            assert!(v.0 < 13 && v.1 < 13);
        }
    }

    #[test]
    fn generators_are_invertible() {
        // Directions (0,1), (2,3), (4,5), (6,7) are mutually inverse pairs.
        let g = GabberGalil::new(11);
        for x in 0..11u64 {
            for y in 0..11u64 {
                let v = (x, y);
                for (fwd, bwd) in [(0u8, 1u8), (2, 3), (4, 5), (6, 7)] {
                    assert_eq!(g.step(g.step(v, fwd), bwd), v, "v={v:?}, dir {fwd}");
                    assert_eq!(g.step(g.step(v, bwd), fwd), v, "v={v:?}, dir {bwd}");
                }
            }
        }
    }

    #[test]
    fn graph_is_connected() {
        // BFS from the origin reaches every vertex.
        let g = GabberGalil::new(7);
        let mut seen = HashSet::new();
        let mut queue = vec![(0u64, 0u64)];
        seen.insert((0, 0));
        while let Some(v) = queue.pop() {
            for d in 0..8u8 {
                let w = g.step(v, d);
                if seen.insert(w) {
                    queue.push(w);
                }
            }
        }
        assert_eq!(seen.len() as u64, g.vertices());
    }

    #[test]
    fn walk_mixes_to_near_uniform() {
        // Spectral sanity check by simulation: distribute mass at one vertex
        // and take 40 uniform-random-direction steps; the distribution's
        // total-variation distance from uniform must be small.
        let m = 11u64;
        let g = GabberGalil::new(m);
        let nv = (m * m) as usize;
        let idx = |v: (u64, u64)| (v.0 * m + v.1) as usize;
        let mut dist = vec![0f64; nv];
        dist[0] = 1.0;
        for _ in 0..40 {
            let mut next = vec![0f64; nv];
            for x in 0..m {
                for y in 0..m {
                    let p = dist[idx((x, y))];
                    if p > 0.0 {
                        for d in 0..8u8 {
                            next[idx(g.step((x, y), d))] += p / 8.0;
                        }
                    }
                }
            }
            dist = next;
        }
        let uniform = 1.0 / nv as f64;
        let tv: f64 = dist.iter().map(|p| (p - uniform).abs()).sum::<f64>() / 2.0;
        assert!(tv < 0.05, "total variation {tv} too large after 40 steps");
    }

    #[test]
    fn vertex_from_seed_spreads() {
        let g = GabberGalil::new(31);
        let distinct: HashSet<(u64, u64)> = (0..400u64)
            .map(|s| g.vertex_from_seed(s.wrapping_mul(0xABCD_EF12_3456_789B)))
            .collect();
        // 400 uniform draws from 961 vertices leave ~330 distinct in
        // expectation; 280 allows for hash variance without masking bugs.
        assert!(
            distinct.len() > 280,
            "only {} distinct vertices",
            distinct.len()
        );
    }

    #[test]
    fn labels_are_unique() {
        let g = GabberGalil::new(9);
        let labels: HashSet<u64> = (0..9u64)
            .flat_map(|x| (0..9u64).map(move |y| (x, y)))
            .map(|v| g.label(v))
            .collect();
        assert_eq!(labels.len() as u64, g.vertices());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_direction_panics() {
        GabberGalil::new(5).step((0, 0), 8);
    }
}
