//! The two beacon rendezvous protocols of Section 5.
//!
//! **Protocol A** (`O(log n (k + ℓ))` w.h.p.): at each slot `t`, the last
//! `d·log♯n` beacon bits determine a fresh hash function `π_t` from the
//! min-wise family; the agent hops on `argmin_{a ∈ S} π_t(a)`. At slots a
//! window-width apart the permutations are independent, and by the
//! min-wise property each independent draw rendezvouses two overlapping
//! agents with probability `≥ |S_i ∩ S_j| / (2(|S_i|+|S_j|))`.
//!
//! **Protocol B** (`O(k + ℓ + log n)` w.h.p.): instead of paying `Θ(log n)`
//! fresh bits per permutation, the seed walks the Gabber–Galil expander:
//! `Θ(log n)` bits choose the start vertex, then each slot consumes 3 bits
//! to take one step; the visited vertex labels seed the hash functions.
//! By the expander-walk Chernoff bound the hit probability per step remains
//! `Ω(1/(k+ℓ))` after a `Θ(log n)`-step burn-in, giving the additive bound.
//!
//! Both protocols are exposed as [`Schedule`]s whose `channel_at(t)` is the
//! agent's *local* slot; the agent's absolute wake slot anchors it to the
//! shared beacon stream.

use crate::expander::GabberGalil;
use crate::minwise::MinwiseFamily;
use crate::model::BeaconStream;
use rdv_core::channel::{Channel, ChannelSet};
use rdv_core::schedule::Schedule;
use rdv_strings::log_sharp;

/// Protocol A: sliding-window re-seeded min-wise hopping.
///
/// # Example
///
/// ```
/// use rdv_beacon::{BeaconProtocolA, BeaconStream};
/// use rdv_core::channel::ChannelSet;
/// use rdv_core::schedule::Schedule;
///
/// let beacon = BeaconStream::new(7);
/// let set = ChannelSet::new(vec![2, 9]).unwrap();
/// let a = BeaconProtocolA::new(beacon, 16, set.clone(), 0);
/// assert!(set.contains(a.channel_at(3).get()));
/// ```
#[derive(Debug, Clone)]
pub struct BeaconProtocolA {
    beacon: BeaconStream,
    family: MinwiseFamily,
    set: ChannelSet,
    wake: u64,
    window: u32,
}

impl BeaconProtocolA {
    /// Creates the protocol-A schedule for an agent with the given channel
    /// `set`, waking at absolute slot `wake`, in universe `[n]`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(beacon: BeaconStream, n: u64, set: ChannelSet, wake: u64) -> Self {
        let window = (2 * log_sharp(n.max(2)) + 8).min(64);
        BeaconProtocolA {
            beacon,
            family: MinwiseFamily::new(n, 8),
            set,
            wake,
            window,
        }
    }

    /// The number of beacon bits that seed each permutation.
    pub fn window_bits(&self) -> u32 {
        self.window
    }

    /// The agent's absolute wake slot.
    pub fn wake(&self) -> u64 {
        self.wake
    }
}

impl Schedule for BeaconProtocolA {
    fn channel_at(&self, t: u64) -> Channel {
        let abs = self.wake + t;
        let seed = self.beacon.window(abs + 1, self.window);
        self.family.argmin(seed, &self.set)
    }
}

/// Protocol B: expander-walk seeded min-wise hopping.
#[derive(Debug, Clone)]
pub struct BeaconProtocolB {
    beacon: BeaconStream,
    family: MinwiseFamily,
    graph: GabberGalil,
    set: ChannelSet,
    wake: u64,
    /// Walk restart interval (absolute slots), `Θ(log n)`-aligned so all
    /// agents agree on walk segments regardless of wake time.
    segment: u64,
}

impl BeaconProtocolB {
    /// Creates the protocol-B schedule for an agent with the given channel
    /// `set`, waking at absolute slot `wake`, in universe `[n]`.
    ///
    /// The expander walk restarts at fixed absolute slots every
    /// `segment = 8·(log♯n + 4)` slots; a restart burns one 64-bit window
    /// into a start vertex and each subsequent slot consumes one 3-bit
    /// symbol. Restarting keeps the walk state computable in `O(segment)`
    /// regardless of how late an agent joins, while costing only a constant
    /// factor over the paper's single-walk description.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(beacon: BeaconStream, n: u64, set: ChannelSet, wake: u64) -> Self {
        let side = rdv_numtheory::primes::next_prime_at_least((n * n).max(64));
        BeaconProtocolB {
            beacon,
            family: MinwiseFamily::new(n, 8),
            graph: GabberGalil::new(side),
            set,
            wake,
            segment: 8 * (u64::from(log_sharp(n.max(2))) + 4),
        }
    }

    /// The walk restart interval in slots.
    pub fn segment(&self) -> u64 {
        self.segment
    }

    /// The agent's absolute wake slot.
    pub fn wake(&self) -> u64 {
        self.wake
    }

    /// The walk vertex at absolute slot `abs`.
    fn vertex_at(&self, abs: u64) -> (u64, u64) {
        let seg_start = abs - abs % self.segment;
        let seed = self.beacon.window(seg_start + 1, 64);
        let mut v = self.graph.vertex_from_seed(seed);
        // One 3-bit step per slot since the segment start; symbols are
        // drawn from a per-segment region of the stream so steps never
        // reuse seed bits.
        for s in 0..abs - seg_start {
            let sym = self.beacon.symbol3(seg_start.wrapping_mul(7) + s);
            v = self.graph.step(v, sym % 8);
        }
        v
    }
}

impl Schedule for BeaconProtocolB {
    fn channel_at(&self, t: u64) -> Channel {
        let abs = self.wake + t;
        let seed = self.graph.label(self.vertex_at(abs));
        self.family.argmin(seed, &self.set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdv_core::verify;

    fn set(channels: &[u64]) -> ChannelSet {
        ChannelSet::new(channels.iter().copied()).unwrap()
    }

    /// Median TTR over seeded trials for a protocol constructor.
    fn median_ttr<F, S>(make: F, trials: u64, horizon: u64) -> u64
    where
        F: Fn(u64) -> (S, S, u64),
        S: Schedule,
    {
        let mut ttrs: Vec<u64> = (0..trials)
            .map(|seed| {
                let (a, b, shift) = make(seed);
                verify::async_ttr(&a, &b, shift, horizon).unwrap_or(horizon)
            })
            .collect();
        ttrs.sort_unstable();
        ttrs[ttrs.len() / 2]
    }

    #[test]
    fn protocol_a_stays_in_set() {
        let b = BeaconStream::new(5);
        let s = set(&[4, 9, 23]);
        let a = BeaconProtocolA::new(b, 32, s.clone(), 3);
        for t in 0..500 {
            assert!(s.contains(a.channel_at(t).get()));
        }
    }

    #[test]
    fn protocol_b_stays_in_set() {
        let b = BeaconStream::new(5);
        let s = set(&[4, 9, 23]);
        let p = BeaconProtocolB::new(b, 32, s.clone(), 11);
        for t in 0..300 {
            assert!(s.contains(p.channel_at(t).get()));
        }
    }

    #[test]
    fn shared_beacon_same_global_view() {
        // Agents with the same set and same beacon hop identically at the
        // same absolute slot regardless of wake time.
        let b = BeaconStream::new(42);
        let s = set(&[1, 7, 13]);
        let early = BeaconProtocolA::new(b, 16, s.clone(), 0);
        let late = BeaconProtocolA::new(b, 16, s.clone(), 10);
        for t in 0..200u64 {
            assert_eq!(early.channel_at(t + 10), late.channel_at(t));
        }
    }

    #[test]
    fn protocol_a_rendezvous_whp() {
        // k = ℓ = 3, n = 64: bound scale log n (k+ℓ) ≈ 36; give a
        // generous horizon and check the *median* over trials is small.
        let n = 64u64;
        let med = median_ttr(
            |seed| {
                let beacon = BeaconStream::new(seed);
                let a = BeaconProtocolA::new(beacon, n, set(&[3, 17, 40]), 0);
                let b = BeaconProtocolA::new(beacon, n, set(&[17, 40, 52]), seed % 50);
                (a, b, seed % 50)
            },
            60,
            5_000,
        );
        assert!(med <= 60, "median TTR {med} too large for protocol A");
    }

    #[test]
    fn protocol_b_rendezvous_whp() {
        let n = 64u64;
        let med = median_ttr(
            |seed| {
                let beacon = BeaconStream::new(seed.wrapping_add(1000));
                let a = BeaconProtocolB::new(beacon, n, set(&[3, 17, 40]), 0);
                let b = BeaconProtocolB::new(beacon, n, set(&[17, 40, 52]), seed % 50);
                (a, b, seed % 50)
            },
            60,
            5_000,
        );
        assert!(med <= 120, "median TTR {med} too large for protocol B");
    }

    #[test]
    fn wake_offsets_consistent() {
        // The Schedule contract: channel_at(t) is local time; two protocol-B
        // agents waking at different times still share walk segments.
        let b = BeaconStream::new(9);
        let s = set(&[2, 5]);
        let x = BeaconProtocolB::new(b, 8, s.clone(), 0);
        let y = BeaconProtocolB::new(b, 8, s.clone(), 25);
        for t in 0..100u64 {
            assert_eq!(x.channel_at(t + 25), y.channel_at(t));
        }
    }

    #[test]
    fn disjoint_sets_never_meet() {
        let beacon = BeaconStream::new(77);
        let a = BeaconProtocolA::new(beacon, 16, set(&[1, 2]), 0);
        let b = BeaconProtocolA::new(beacon, 16, set(&[3, 4]), 0);
        assert_eq!(verify::async_ttr(&a, &b, 0, 2_000), None);
    }

    #[test]
    fn protocol_b_walk_advances() {
        // The walk visits many distinct vertices within a segment.
        let b = BeaconStream::new(3);
        let p = BeaconProtocolB::new(b, 16, set(&[1, 2, 3]), 0);
        let mut seen = std::collections::HashSet::new();
        for abs in 0..p.segment() {
            seen.insert(p.vertex_at(abs));
        }
        assert!(seen.len() as u64 > p.segment() / 2, "walk too repetitive");
    }
}
