//! The shared one-bit beacon stream.

/// A deterministic, random-access stream of beacon bits.
///
/// All agents in one experiment share a `BeaconStream` (same seed),
/// modeling the environment's common randomness; different experiment
/// trials use different seeds. Bits are produced by the SplitMix64
/// finalizer applied to the slot index, giving O(1) random access — which
/// the simulator needs to evaluate schedules at arbitrary slots.
///
/// # Example
///
/// ```
/// use rdv_beacon::BeaconStream;
///
/// let s = BeaconStream::new(42);
/// assert_eq!(s.bit(17), BeaconStream::new(42).bit(17)); // shared & pure
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeaconStream {
    seed: u64,
}

impl BeaconStream {
    /// Creates the stream for one experiment.
    pub fn new(seed: u64) -> Self {
        BeaconStream { seed }
    }

    /// The experiment seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The beacon bit `c_t` at absolute slot `t`.
    pub fn bit(&self, t: u64) -> bool {
        Self::mix(self.seed ^ Self::mix(t)) & 1 == 1
    }

    /// The `width ≤ 64` most recent bits ending at slot `t` (exclusive),
    /// packed little-endian: bit `i` of the result is `c_{t-1-i}`.
    ///
    /// Slots before 0 contribute `0` bits (the stream "starts" at slot 0).
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn window(&self, t: u64, width: u32) -> u64 {
        assert!(width <= 64, "window wider than 64 bits");
        let mut out = 0u64;
        for i in 0..u64::from(width) {
            if i >= t {
                break;
            }
            if self.bit(t - 1 - i) {
                out |= 1 << i;
            }
        }
        out
    }

    /// `count ≤ 21` consecutive 3-bit symbols starting at slot `t`, for
    /// expander-walk steps.
    pub fn symbol3(&self, t: u64) -> u8 {
        (u8::from(self.bit(3 * t)) << 2)
            | (u8::from(self.bit(3 * t + 1)) << 1)
            | u8::from(self.bit(3 * t + 2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_are_roughly_balanced() {
        let s = BeaconStream::new(7);
        let ones: u32 = (0..10_000).map(|t| u32::from(s.bit(t))).sum();
        assert!((4_500..5_500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = BeaconStream::new(1);
        let b = BeaconStream::new(2);
        let agree = (0..1000).filter(|&t| a.bit(t) == b.bit(t)).count();
        assert!((300..700).contains(&agree), "agree = {agree}");
    }

    #[test]
    fn window_matches_bits() {
        let s = BeaconStream::new(3);
        let w = s.window(100, 16);
        for i in 0..16u64 {
            assert_eq!(w >> i & 1 == 1, s.bit(99 - i), "bit {i}");
        }
    }

    #[test]
    fn window_at_stream_start_pads_zero() {
        let s = BeaconStream::new(3);
        let w = s.window(2, 8);
        // Only bits 0..2 exist; the rest are zero-padded.
        assert_eq!(w >> 2, 0);
    }

    #[test]
    fn symbol3_in_range() {
        let s = BeaconStream::new(11);
        for t in 0..100 {
            assert!(s.symbol3(t) < 8);
        }
    }

    #[test]
    #[should_panic(expected = "wider than 64")]
    fn oversized_window_panics() {
        BeaconStream::new(0).window(100, 65);
    }
}
