//! ε-min-wise independent permutation families.
//!
//! Definition 1 of the paper: a family `R ⊆ S_n` is ε-min-wise independent
//! if for every `A ⊆ [n]` and `a ∈ A`,
//! `Pr_{π∈R}[π(a) = min π(A)] ≥ (1 − ε)/|A|`.
//!
//! Indyk \[11\] showed that `t`-wise independent hash families with
//! `t = O(log 1/ε)` are ε-min-wise independent and representable in
//! `O(log n · log 1/ε)` bits. We realize the family as degree-`(t−1)`
//! polynomials over a prime field `F_q` with `q ≥ n²` (the square keeps
//! collision probability negligible; ties are broken by channel number, and
//! the paper's protocols only need the *argmin*, not a full permutation).

use rdv_core::channel::{Channel, ChannelSet};
use rdv_numtheory::field::{Poly, PrimeField};

/// A seeded family of (approximately) min-wise independent hash functions.
///
/// # Example
///
/// ```
/// use rdv_beacon::MinwiseFamily;
/// use rdv_core::channel::ChannelSet;
///
/// let fam = MinwiseFamily::new(64, 8);
/// let set = ChannelSet::new(vec![3, 17, 40]).unwrap();
/// let c = fam.argmin(12345, &set);
/// assert!(set.contains(c.get()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinwiseFamily {
    field: PrimeField,
    degree: usize,
    n: u64,
}

impl MinwiseFamily {
    /// Creates a family for universe `[n]` with `t`-wise independence
    /// (`t = degree`); `t = 8` comfortably achieves ε = 1/2, the value
    /// Section 5 uses.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `degree == 0`.
    pub fn new(n: u64, degree: usize) -> Self {
        assert!(n > 0, "empty universe");
        assert!(degree > 0, "degree must be positive");
        MinwiseFamily {
            field: PrimeField::at_least((n * n).max(257)),
            degree,
            n,
        }
    }

    /// The universe size.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// The independence level `t`.
    pub fn independence(&self) -> usize {
        self.degree
    }

    /// Number of seed bits the family consumes, `O(log n · log 1/ε)` as in
    /// Indyk's construction (we expand a 64-bit seed pseudorandomly, so the
    /// *interface* consumes `d·log n ≤ 64` beacon bits).
    pub fn seed_bits(&self) -> u32 {
        64
    }

    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The polynomial for a given seed.
    fn poly(&self, seed: u64) -> Poly {
        let coeffs = (0..self.degree as u64)
            .map(|i| Self::mix(seed.wrapping_add(i.wrapping_mul(0xA076_1D64_78BD_642F))));
        Poly::new(self.field, coeffs)
    }

    /// The hash value `π_seed(a)`; lower is "earlier" in the permutation.
    ///
    /// Ties between channels are broken by channel number, so the induced
    /// ordering is a total order for every seed.
    pub fn rank(&self, seed: u64, channel: u64) -> (u64, u64) {
        (self.poly(seed).eval(channel), channel)
    }

    /// The channel of `set` with minimal rank — the paper's
    /// `argmin_{a ∈ S} π_t(a)` hop rule.
    ///
    /// # Panics
    ///
    /// Never panics for a valid [`ChannelSet`] (they are non-empty).
    pub fn argmin(&self, seed: u64, set: &ChannelSet) -> Channel {
        set.iter()
            .min_by_key(|c| self.rank(seed, c.get()))
            .expect("channel sets are non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmin_is_in_set() {
        let fam = MinwiseFamily::new(32, 8);
        let set = ChannelSet::new(vec![5, 9, 28]).unwrap();
        for seed in 0..200u64 {
            assert!(set.contains(fam.argmin(seed, &set).get()));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let fam = MinwiseFamily::new(16, 8);
        let set = ChannelSet::new(vec![1, 2, 3]).unwrap();
        assert_eq!(fam.argmin(7, &set), fam.argmin(7, &set));
    }

    #[test]
    fn epsilon_minwise_empirically() {
        // Definition 1 with ε = 1/2: every element of every sampled set is
        // the argmin with probability ≥ (1 − ε)/|A| = 1/(2|A|).
        let n = 64u64;
        let fam = MinwiseFamily::new(n, 8);
        let sets = [
            vec![1u64, 2],
            vec![3, 17, 40],
            vec![5, 6, 7, 8],
            vec![1, 9, 25, 49, 63],
            vec![2, 4, 8, 16, 32, 64],
        ];
        let trials = 4_000u64;
        for raw in &sets {
            let set = ChannelSet::new(raw.clone()).unwrap();
            let k = set.len() as u64;
            for target in set.iter() {
                let wins = (0..trials)
                    .filter(|&s| fam.argmin(s.wrapping_mul(0x9E37), &set) == target)
                    .count() as u64;
                let lower = trials / (2 * k); // (1−ε)/|A| with ε = 1/2
                assert!(
                    wins >= lower,
                    "channel {target} of {set}: {wins}/{trials} < {lower}"
                );
            }
        }
    }

    #[test]
    fn shared_seed_shared_view() {
        // The rendezvous mechanism: two overlapping sets agree on the
        // global argmin whenever it lies in the intersection.
        let fam = MinwiseFamily::new(32, 8);
        let a = ChannelSet::new(vec![3, 9, 17]).unwrap();
        let b = ChannelSet::new(vec![9, 17, 25]).unwrap();
        let union = ChannelSet::new(vec![3, 9, 17, 25]).unwrap();
        let mut hits = 0u32;
        let trials = 2_000;
        for seed in 0..trials {
            let g = fam.argmin(seed, &union);
            if a.contains(g.get()) && b.contains(g.get()) {
                assert_eq!(fam.argmin(seed, &a), g);
                assert_eq!(fam.argmin(seed, &b), g);
                hits += 1;
            }
        }
        // Equation (8): the global argmin lands in the (2-element)
        // intersection with probability ≥ |A∩B| / (2(|A|+|B|)) = 1/6.
        assert!(u64::from(hits) >= trials / 6, "hits = {hits}");
    }

    #[test]
    fn field_is_large_enough() {
        let fam = MinwiseFamily::new(100, 8);
        assert!(fam.field.order() >= 100 * 100);
        assert_eq!(fam.independence(), 8);
    }

    #[test]
    #[should_panic(expected = "empty universe")]
    fn zero_universe_rejected() {
        MinwiseFamily::new(0, 4);
    }
}
