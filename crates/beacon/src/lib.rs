//! Rendezvous with a one-bit random beacon (Section 5 of the paper).
//!
//! The model: the environment broadcasts one common uniformly random bit
//! `c_t` per slot, visible to all agents. This drops the asynchronous
//! rendezvous time from `Ω(|S_i||S_j|)` (Theorem 7) to
//! `O(|S_i| + |S_j| + log n)` with high probability.
//!
//! * [`model`] — the shared beacon bit stream (seeded, random-access).
//! * [`minwise`] — ε-min-wise independent permutation families realized as
//!   `t`-wise independent polynomial hashing over `F_q` (Indyk's
//!   construction \[11\]).
//! * [`expander`] — the explicit Gabber–Galil constant-degree expander on
//!   `ℤ_m × ℤ_m`, used for deterministic amplification by random walk.
//! * [`protocol`] — the two protocols of Section 5: protocol A re-seeds a
//!   fresh permutation from the last `Θ(log n)` beacon bits (rendezvous in
//!   `O(log n · (k + ℓ))` w.h.p.); protocol B walks an expander over the
//!   seed space, spending `O(1)` fresh bits per permutation (rendezvous in
//!   `O(k + ℓ + log n)` w.h.p.).
//!
//! # Modeling note
//!
//! The paper treats the beacon as a common sequence `c₁ c₂ …` without
//! addressing how a late-waking agent knows the current index; we follow
//! the same convention (in practice the beacon — e.g. GPS — carries a slot
//! counter). Asynchrony therefore affects only *when* each agent starts
//! hopping; times-to-rendezvous are measured from the moment both are
//! awake, exactly as for the deterministic schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expander;
pub mod minwise;
pub mod model;
pub mod protocol;

pub use expander::GabberGalil;
pub use minwise::MinwiseFamily;
pub use model::BeaconStream;
pub use protocol::{BeaconProtocolA, BeaconProtocolB};
