//! Per-scenario certified lower bounds — the lower slice of the
//! *sandwich invariant* the reproduction pipeline checks every measured
//! cell against:
//!
//! ```text
//! best_bound(σ_A, σ_B)  ≤  worst-over-shifts TTR(σ_A, σ_B)  ≤  Theorem 3 bound
//! ```
//!
//! The family-level results of Section 4 (pigeonhole, Ramsey, density)
//! quantify over *set pairs* and cannot bound one concrete cell. What does
//! bound a concrete cell is the covering argument underneath Theorem 7's
//! density functional, specialized to the two schedules at hand:
//!
//! With `b` waking `d` slots after `a`, the pair meets at local slot `s`
//! iff `σ_A(d + s) = σ_B(s)`, so the time-to-rendezvous at shift `d`
//! depends on `d` only modulo `P_A` (the period of `σ_A`). For a fixed
//! `s`, the shifts served are `{d : σ_A(d + s) = σ_B(s)}` — exactly
//! `occ_A(σ_B(s))` of them per period, where `occ_A(c)` counts the
//! occurrences of channel `c` in one period of `σ_A` (the density
//! `∆(c, σ_A; P_A)` scaled by `P_A`). Guaranteeing every shift a meeting
//! within `T` slots therefore needs
//!
//! ```text
//! Σ_{s < T} occ_A(σ_B(s))  ≥  P_A,
//! ```
//!
//! and any `T` failing that inequality certifies a shift whose TTR is at
//! least `T`. [`coverage_bound`] returns the largest such `T` — a sound
//! lower bound on the exhaustive worst case that the sweep harness
//! (`rdv_sim::sweep_lower_bound`) measures, and the quantity the
//! `bound_sandwich` suite pins against measured TTR curves.

use rdv_core::schedule::Schedule;
use std::collections::HashMap;

/// Block size for the bulk schedule scans.
const SCAN_BLOCK: usize = 1024;

/// Default cap on the covering scan of [`best_bound`] — far beyond any
/// horizon the guaranteed constructions need.
pub const DEFAULT_SCAN_CAP: u64 = 1 << 22;

/// The covering lower bound: the largest `T` such that the first `T`
/// slots of `σ_B` cannot serve all `P_A` wake-up shifts of `σ_A`
/// (see the module docs for the argument). The worst-case asynchronous
/// TTR over all shifts `d ∈ [0, P_A)` — with `b` waking after `a` — is
/// at least the returned value.
///
/// Returns `0` (the trivial bound) when `σ_A` reports no period: the
/// argument needs a true period to enumerate shifts against. If coverage
/// is still incomplete after `scan_cap` slots the bound saturates there —
/// sound, merely conservative.
pub fn coverage_bound<A, B>(a: &A, b: &B, scan_cap: u64) -> u64
where
    A: Schedule + ?Sized,
    B: Schedule + ?Sized,
{
    let Some(period_a) = a.period_hint() else {
        return 0;
    };
    if period_a == 0 {
        return 0;
    }
    // Occurrence counts of each channel in one period of σ_A.
    let mut occ: HashMap<u64, u64> = HashMap::new();
    let mut buf = [0u64; SCAN_BLOCK];
    let mut t = 0u64;
    while t < period_a {
        let len = (period_a - t).min(SCAN_BLOCK as u64) as usize;
        a.fill_channels(t, &mut buf[..len]);
        for &c in &buf[..len] {
            *occ.entry(c).or_insert(0) += 1;
        }
        t += len as u64;
    }
    // Walk σ_B until the served-shift count covers the period.
    let mut covered = 0u64;
    let mut s = 0u64;
    while s < scan_cap {
        let len = (scan_cap - s).min(SCAN_BLOCK as u64) as usize;
        b.fill_channels(s, &mut buf[..len]);
        for (i, &c) in buf[..len].iter().enumerate() {
            covered += occ.get(&c).copied().unwrap_or(0);
            if covered >= period_a {
                // Slots 0..s+i fall short of coverage, so some shift
                // needs at least s+i slots.
                return s + i as u64;
            }
        }
        s += len as u64;
    }
    scan_cap
}

/// The best certified per-scenario lower bound on the worst-over-shifts
/// asynchronous TTR of the concrete pair `(σ_A, σ_B)` — currently the
/// covering bound with the default scan cap. The pipeline's sandwich
/// invariant is `best_bound ≤ measured worst TTR ≤ upper bound`.
pub fn best_bound<A, B>(a: &A, b: &B) -> u64
where
    A: Schedule + ?Sized,
    B: Schedule + ?Sized,
{
    coverage_bound(a, b, DEFAULT_SCAN_CAP)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdv_core::channel::{Channel, ChannelSet};
    use rdv_core::general::GeneralSchedule;
    use rdv_core::schedule::{ConstantSchedule, CyclicSchedule};
    use rdv_core::verify;

    fn cyclic(channels: &[u64]) -> CyclicSchedule {
        CyclicSchedule::new(channels.iter().copied().map(Channel::new).collect()).unwrap()
    }

    #[test]
    fn constant_pair_has_zero_bound() {
        // Both sit on channel 3: every shift meets at slot 0, and the
        // covering argument agrees (slot 0 already serves every shift).
        let a = ConstantSchedule::new(Channel::new(3));
        let b = ConstantSchedule::new(Channel::new(3));
        assert_eq!(best_bound(&a, &b), 0);
    }

    #[test]
    fn round_robin_bound_is_sound_and_tight() {
        // A round-robins {1,2,3,4}; B sits on channel 1. A meets B only
        // when A visits 1, which happens once per 4 slots: coverage of
        // the 4 shifts needs occ_A(1)·T ≥ 4, so T = 3 slots certifiably
        // fail — and the true worst case is exactly 3.
        let a = cyclic(&[1, 2, 3, 4]);
        let b = ConstantSchedule::new(Channel::new(1));
        let bound = best_bound(&a, &b);
        assert_eq!(bound, 3);
        let worst = verify::worst_async_ttr(&a, &b, 0..4, 64).expect("meets");
        assert!(bound <= worst.ttr, "bound {bound} vs worst {}", worst.ttr);
        assert_eq!(worst.ttr, 3);
    }

    #[test]
    fn bound_respects_the_exhaustive_worst_case() {
        // The sandwich on the paper's construction: certified lower ≤
        // exhaustive worst ≤ Theorem 3 bound, over several geometries.
        for (n, ka, kb) in [(8u64, 2usize, 2usize), (12, 3, 2), (16, 3, 3)] {
            let a_set = ChannelSet::new(1..=ka as u64).unwrap();
            let b_set = ChannelSet::new(ka as u64..ka as u64 + kb as u64).unwrap();
            let sa = GeneralSchedule::asynchronous(n, a_set).unwrap();
            let sb = GeneralSchedule::asynchronous(n, b_set).unwrap();
            let lower = best_bound(&sa, &sb);
            let upper = sa.ttr_bound(kb);
            let pa = sa.period_hint().unwrap();
            let mut worst = 0u64;
            for d in 0..pa {
                let ttr = verify::async_ttr(&sa, &sb, d, upper + 1).expect("within Thm 3 bound");
                worst = worst.max(ttr);
            }
            assert!(
                lower <= worst && worst <= upper,
                "n={n} k={ka} l={kb}: {lower} ≤ {worst} ≤ {upper} violated"
            );
        }
    }

    #[test]
    fn aperiodic_schedules_fall_back_to_trivial() {
        struct Aperiodic;
        impl Schedule for Aperiodic {
            fn channel_at(&self, t: u64) -> Channel {
                Channel::new(1 + (t * t) % 7)
            }
        }
        assert_eq!(best_bound(&Aperiodic, &cyclic(&[1, 2])), 0);
    }

    #[test]
    fn scan_cap_saturates() {
        // B never plays any of A's channels within the cap: the bound
        // saturates at the cap rather than spinning.
        let a = cyclic(&[1, 2]);
        let b = ConstantSchedule::new(Channel::new(9));
        assert_eq!(coverage_bound(&a, &b, 128), 128);
    }
}
