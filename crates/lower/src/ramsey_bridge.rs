//! The bridge between Theorem 4's Ramsey argument and concrete schedule
//! families.
//!
//! Theorem 4 views the pair schedules of an `(n,2)`-schedule as an edge
//! coloring of `K_n` (color = the length-`T` schedule string) and argues:
//! a monochromatic *directed 2-path* `i < j < k` (edges `(i,j)`, `(j,k)`
//! with identical strings) kills synchronous rendezvous, and Ramsey's
//! theorem forces one whenever `n ≥ e·(2^T)!`. This module extracts the
//! induced coloring from any schedule family and searches it — yielding
//! either a *certificate of failure* (the monochromatic 2-path witness) or
//! evidence that the family's color diversity is adequate, as is the case
//! for the paper's Ramsey-colored construction.

use rdv_core::schedule::Schedule;
use rdv_ramsey::triangle::{find_monochromatic_two_path, FnColoring, Triangle};

/// A factory producing a schedule for any size-two channel set.
pub trait PairScheduleFamily {
    /// The schedule type.
    type S: Schedule;
    /// The schedule for the pair `{a, b}` (`a < b`).
    fn pair_schedule(&self, a: u64, b: u64) -> Self::S;
}

impl<F, S> PairScheduleFamily for F
where
    F: Fn(u64, u64) -> S,
    S: Schedule,
{
    type S = S;
    fn pair_schedule(&self, a: u64, b: u64) -> S {
        self(a, b)
    }
}

/// The induced Theorem 4 edge coloring: the color of edge `{a, b}` is the
/// fingerprint of the first `t_slots` of its schedule.
pub fn induced_color<F: PairScheduleFamily>(family: &F, a: u64, b: u64, t_slots: u64) -> u64 {
    let s = family.pair_schedule(a, b);
    // Encode the prefix exactly (two channels → one bit per slot) so equal
    // colors mean equal schedule prefixes, not just equal hashes.
    let mut color = 0u64;
    for t in 0..t_slots.min(63) {
        let bit = u64::from(s.channel_at(t).get() == b);
        color |= bit << t;
    }
    color
}

/// Searches the induced coloring of `family` over `[n]` for a
/// monochromatic directed 2-path within the first `t_slots` slots.
///
/// `Some(witness)` certifies that the family cannot guarantee synchronous
/// rendezvous within `t_slots` (the two path edges share channel `j` in
/// opposite roles but follow identical prefixes, so they never align on
/// it). `None` means the family survives the Theorem 4 attack at this
/// horizon — necessary (not sufficient) for correctness.
pub fn monochromatic_failure<F: PairScheduleFamily>(
    family: &F,
    n: u64,
    t_slots: u64,
) -> Option<Triangle> {
    let coloring = FnColoring::new(n, |a, b| induced_color(family, a, b, t_slots));
    find_monochromatic_two_path(&coloring)
}

/// Verifies the certificate: the two edges of the witness really do fail to
/// rendezvous synchronously within `t_slots`.
pub fn verify_failure<F: PairScheduleFamily>(family: &F, witness: &Triangle, t_slots: u64) -> bool {
    let lower = family.pair_schedule(witness.i, witness.j);
    let upper = family.pair_schedule(witness.j, witness.k);
    rdv_core::verify::sync_ttr(&lower, &upper, t_slots).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdv_core::pair::PairFamily;
    use rdv_core::schedule::CyclicSchedule;

    /// The "oblivious" family: every pair alternates smaller/larger — the
    /// classic construction Theorem 4 demolishes.
    fn oblivious(a: u64, b: u64) -> CyclicSchedule {
        CyclicSchedule::new(vec![
            rdv_core::channel::Channel::new(a),
            rdv_core::channel::Channel::new(b),
        ])
        .expect("non-empty")
    }

    #[test]
    fn oblivious_family_fails_ramsey_attack() {
        let witness = monochromatic_failure(&oblivious, 4, 8).expect("identical colors everywhere");
        assert!(
            verify_failure(&oblivious, &witness, 8),
            "certificate must verify"
        );
    }

    #[test]
    fn our_construction_survives_up_to_its_period() {
        // The paper's family: colors differ on every 2-path by Lemma 2, so
        // no monochromatic 2-path can exist at any horizon ≥ 1 slot where
        // codewords differ... verify across small universes at the full
        // period horizon.
        for n in [4u64, 8, 16, 32] {
            let fam = PairFamily::new(n).expect("n ≥ 2");
            let family = move |a: u64, b: u64| fam.schedule(a, b).expect("valid pair");
            let period = PairFamily::new(n).expect("n ≥ 2").period();
            let attack = monochromatic_failure(&family, n, period);
            if let Some(w) = attack {
                // A monochromatic 2-path in the induced coloring would be a
                // genuine bug only if it verifies.
                assert!(
                    !verify_failure(&family, &w, period),
                    "n = {n}: Theorem 4 witness {w:?} verified against our construction"
                );
            }
        }
    }

    #[test]
    fn induced_colors_reflect_schedule_prefixes() {
        let fam = PairFamily::new(8).expect("n ≥ 2");
        let family = move |a: u64, b: u64| fam.schedule(a, b).expect("valid pair");
        // Same Ramsey color ⇒ same codeword ⇒ same induced color.
        let c1 = induced_color(&family, 1, 2, 32);
        let c2 = induced_color(&family, 1, 2, 32);
        assert_eq!(c1, c2);
        // A 2-path must get different colors (Lemma 2 through the pipeline).
        let lower = induced_color(&family, 1, 2, 32);
        let upper = induced_color(&family, 2, 3, 32);
        assert_ne!(lower, upper, "2-path colors must differ");
    }

    #[test]
    fn certificate_rejects_sound_families() {
        // verify_failure on a pair that DOES rendezvous returns false.
        let fam = PairFamily::new(8).expect("n ≥ 2");
        let family = move |a: u64, b: u64| fam.schedule(a, b).expect("valid pair");
        let fake = Triangle {
            i: 1,
            j: 2,
            k: 3,
            color: 0,
        };
        assert!(!verify_failure(&family, &fake, 64));
    }
}
