//! Exact optimal rendezvous times for size-two channel sets, by exhaustive
//! constraint search.
//!
//! An `(n,2)`-schedule assigns to every edge `{a, b}` of `K_n` a binary
//! string (`0` = smaller channel, `1` = larger). Rendezvous within `T`
//! slots imposes, per overlapping edge pair, that a specific aligned tuple
//! occurs among the first `T` symbols:
//!
//! | configuration | tuple required |
//! |---------------|----------------|
//! | shared smallest (`a₀ = b₀`) | `(0,0)` |
//! | shared largest (`a₁ = b₁`)  | `(1,1)` |
//! | 2-path (`a₁ = b₀`)          | `(1,0)` |
//! | 2-path (`a₀ = b₁`)          | `(0,1)` |
//!
//! `R_s(n,2)` is the least `T` for which an assignment exists — a binary
//! CSP over domains `{0,1}^T` solved here by backtracking with forward
//! checking. The asynchronous variant treats strings as cyclic and
//! quantifies the tuples over every relative rotation (and adds the unary
//! self-rendezvous constraint `∀d ∃τ: x_{τ+d} = x_τ`), yielding the least
//! `T` achievable by period-`T` cyclic schedules — an upper-bound proxy
//! for `R_a(n,2)` that is exact within the cyclic family.

/// Outcome of a bounded exhaustive search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchOutcome {
    /// A valid assignment exists; the optimum is this `T`.
    Optimal(u32),
    /// No assignment exists for any `T ≤ max_t`.
    ExceedsMax,
    /// The node budget was exhausted before the search completed.
    Unknown,
}

/// How two edges of `K_n` overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Overlap {
    SharedSmallest,
    SharedLargest,
    PathFirstLarger,  // a₁ = b₀: first edge plays 1, second plays 0
    PathSecondLarger, // a₀ = b₁
}

fn classify(a: (u64, u64), b: (u64, u64)) -> Option<Overlap> {
    if a == b {
        return None; // identical sets rendezvous trivially (synchronous)
    }
    if a.0 == b.0 {
        Some(Overlap::SharedSmallest)
    } else if a.1 == b.1 {
        Some(Overlap::SharedLargest)
    } else if a.1 == b.0 {
        Some(Overlap::PathFirstLarger)
    } else if a.0 == b.1 {
        Some(Overlap::PathSecondLarger)
    } else {
        None
    }
}

/// Whether strings `x`, `y` (bit `t` = slot `t`, `T` slots) contain the
/// aligned tuple required by `kind`.
fn sync_ok(x: u32, y: u32, kind: Overlap, mask: u32) -> bool {
    match kind {
        Overlap::SharedSmallest => !x & !y & mask != 0,
        Overlap::SharedLargest => x & y & mask != 0,
        Overlap::PathFirstLarger => x & !y & mask != 0,
        Overlap::PathSecondLarger => !x & y & mask != 0,
    }
}

fn rotate(x: u32, d: u32, t: u32) -> u32 {
    let mask = (1u32 << t) - 1;
    ((x >> d) | (x << (t - d))) & mask
}

/// Cyclic variant: the tuple must occur for *every* relative rotation.
fn cyclic_ok(x: u32, y: u32, kind: Overlap, t: u32) -> bool {
    let mask = (1u32 << t) - 1;
    (0..t).all(|d| sync_ok(rotate(x, d, t), y, kind, mask))
}

/// Unary cyclic self-constraint: a set must rendezvous with itself under
/// every shift (`∀d ∃τ: x_{τ+d} = x_τ`).
fn cyclic_self_ok(x: u32, t: u32) -> bool {
    let mask = (1u32 << t) - 1;
    (0..t).all(|d| {
        let r = rotate(x, d, t);
        // Some aligned position with equal symbols: (0,0) or (1,1).
        (!x & !r & mask != 0) || (x & r & mask != 0)
    })
}

struct Csp {
    /// Edges of K_n as (smaller, larger), in index order.
    edges: Vec<(u64, u64)>,
    /// Constraint kinds per ordered variable pair (i < j).
    constraints: Vec<(usize, usize, Overlap)>,
    t: u32,
    cyclic: bool,
    node_budget: u64,
}

impl Csp {
    fn new(n: u64, t: u32, cyclic: bool, node_budget: u64) -> Self {
        let mut edges = Vec::new();
        for a in 1..=n {
            for b in a + 1..=n {
                edges.push((a, b));
            }
        }
        let mut constraints = Vec::new();
        for i in 0..edges.len() {
            for j in i + 1..edges.len() {
                if let Some(kind) = classify(edges[i], edges[j]) {
                    constraints.push((i, j, kind));
                }
            }
        }
        Csp {
            edges,
            constraints,
            t,
            cyclic,
            node_budget,
        }
    }

    fn pair_ok(&self, x: u32, y: u32, kind: Overlap) -> bool {
        if self.cyclic {
            cyclic_ok(x, y, kind, self.t)
        } else {
            sync_ok(x, y, kind, (1u32 << self.t) - 1)
        }
    }

    /// Backtracking with forward checking over bitmask domains.
    fn solve(&self) -> (Option<Vec<u32>>, bool) {
        let nvals = 1u32 << self.t;
        let full: u64 = if nvals >= 64 {
            u64::MAX
        } else {
            (1u64 << nvals) - 1
        };
        // Unary filtering.
        let mut base = full;
        if self.cyclic {
            base = 0;
            for v in 0..nvals {
                if cyclic_self_ok(v, self.t) {
                    base |= 1u64 << v;
                }
            }
            if base == 0 {
                return (None, true);
            }
        }
        // Adjacency: constraints per variable.
        let nv = self.edges.len();
        let mut adj: Vec<Vec<(usize, Overlap, bool)>> = vec![Vec::new(); nv];
        for &(i, j, kind) in &self.constraints {
            adj[i].push((j, kind, true)); // i is the "x" side
            adj[j].push((i, kind, false));
        }
        let mut domains = vec![base; nv];
        let mut assignment: Vec<Option<u32>> = vec![None; nv];
        let mut nodes = 0u64;
        let ok = self.backtrack(&mut domains, &mut assignment, &adj, &mut nodes);
        match ok {
            Some(true) => (
                Some(
                    assignment
                        .into_iter()
                        .map(|a| a.expect("complete"))
                        .collect(),
                ),
                true,
            ),
            Some(false) => (None, true),
            None => (None, false), // budget exhausted
        }
    }

    fn backtrack(
        &self,
        domains: &mut [u64],
        assignment: &mut [Option<u32>],
        adj: &[Vec<(usize, Overlap, bool)>],
        nodes: &mut u64,
    ) -> Option<bool> {
        *nodes += 1;
        if *nodes > self.node_budget {
            return None;
        }
        // MRV: unassigned variable with smallest domain.
        let var = match (0..domains.len())
            .filter(|&v| assignment[v].is_none())
            .min_by_key(|&v| domains[v].count_ones())
        {
            Some(v) => v,
            None => return Some(true),
        };
        let dom = domains[var];
        let mut value_bits = dom;
        while value_bits != 0 {
            let val = value_bits.trailing_zeros();
            value_bits &= value_bits - 1;
            assignment[var] = Some(val);
            // Forward check neighbors.
            let saved = domains.to_vec();
            let mut dead = false;
            for &(other, kind, var_is_x) in &adj[var] {
                if assignment[other].is_some() {
                    let ov = assignment[other].unwrap();
                    let ok = if var_is_x {
                        self.pair_ok(val, ov, kind)
                    } else {
                        self.pair_ok(ov, val, kind)
                    };
                    if !ok {
                        dead = true;
                        break;
                    }
                    continue;
                }
                let mut newdom = 0u64;
                let mut bits = domains[other];
                while bits != 0 {
                    let w = bits.trailing_zeros();
                    bits &= bits - 1;
                    let ok = if var_is_x {
                        self.pair_ok(val, w, kind)
                    } else {
                        self.pair_ok(w, val, kind)
                    };
                    if ok {
                        newdom |= 1u64 << w;
                    }
                }
                if newdom == 0 {
                    dead = true;
                    break;
                }
                domains[other] = newdom;
            }
            if !dead {
                match self.backtrack(domains, assignment, adj, nodes) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
            }
            domains.copy_from_slice(&saved);
            assignment[var] = None;
        }
        Some(false)
    }
}

/// A satisfying `(n,2)`-schedule assignment: one string per edge of `K_n`
/// (edges in lexicographic order), each of length `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Edge list in the same order as `strings`.
    pub edges: Vec<(u64, u64)>,
    /// Schedule strings as bit-packed `u32`s (bit `t` = slot `t`).
    pub strings: Vec<u32>,
    /// The schedule length `T`.
    pub t: u32,
}

/// Computes the exact synchronous optimum `R_s(n, 2)`: the least `T ≤ max_t`
/// for which a valid `(n,2)`-schedule of length `T` exists.
///
/// `node_budget` bounds the search (per `T`); exceeding it yields
/// [`SearchOutcome::Unknown`].
pub fn exact_rs_n2(n: u64, max_t: u32, node_budget: u64) -> SearchOutcome {
    search(n, max_t, false, node_budget).0
}

/// Like [`exact_rs_n2`] but for cyclic schedules evaluated under every
/// relative rotation — the exact optimum within period-`T` cyclic families,
/// and an upper bound witness for `R_a(n, 2)`.
pub fn exact_ra_n2_cyclic(n: u64, max_t: u32, node_budget: u64) -> SearchOutcome {
    search(n, max_t, true, node_budget).0
}

/// [`exact_rs_n2`] variant that also returns the witness assignment.
pub fn exact_rs_n2_with_witness(
    n: u64,
    max_t: u32,
    node_budget: u64,
) -> (SearchOutcome, Option<Assignment>) {
    search(n, max_t, false, node_budget)
}

fn search(
    n: u64,
    max_t: u32,
    cyclic: bool,
    node_budget: u64,
) -> (SearchOutcome, Option<Assignment>) {
    assert!(n >= 2, "need at least one edge");
    assert!(max_t <= 6, "domains are capped at 2^6 values");
    let mut sawunknown = false;
    for t in 1..=max_t {
        let csp = Csp::new(n, t, cyclic, node_budget);
        let (sol, complete) = csp.solve();
        if let Some(strings) = sol {
            return (
                SearchOutcome::Optimal(t),
                Some(Assignment {
                    edges: csp.edges,
                    strings,
                    t,
                }),
            );
        }
        if !complete {
            sawunknown = true;
        }
    }
    if sawunknown {
        (SearchOutcome::Unknown, None)
    } else {
        (SearchOutcome::ExceedsMax, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotate_behaves() {
        // x = 0b011 (slots: 1,1,0), rotate forward by 1: slots 1,0,1 = 0b101.
        assert_eq!(rotate(0b011, 1, 3), 0b101);
        assert_eq!(rotate(0b011, 0, 3), 0b011);
        assert_eq!(rotate(0b1, 1, 1), 0b1);
    }

    #[test]
    fn classify_cases() {
        assert_eq!(classify((1, 2), (1, 3)), Some(Overlap::SharedSmallest));
        assert_eq!(classify((1, 3), (2, 3)), Some(Overlap::SharedLargest));
        assert_eq!(classify((1, 2), (2, 3)), Some(Overlap::PathFirstLarger));
        assert_eq!(classify((2, 3), (1, 2)), Some(Overlap::PathSecondLarger));
        assert_eq!(classify((1, 2), (3, 4)), None);
        assert_eq!(classify((1, 2), (1, 2)), None);
    }

    #[test]
    fn n2_needs_one_slot() {
        assert_eq!(exact_rs_n2(2, 3, 1 << 20), SearchOutcome::Optimal(1));
    }

    #[test]
    fn n3_exact_value() {
        // K_3: edges A=(1,2), B=(1,3), C=(2,3) with constraints
        // (A,B) ∋ (0,0), (A,C) ∋ (1,0), (B,C) ∋ (1,1). A needs both a 0 and
        // a 1, so T=2 forces A ∈ {01, 10}, and either choice pins B and C
        // into contradiction (e.g. A=01 ⇒ B₀=0 and C₁=0, leaving no slot
        // for (B,C)=(1,1)). T=3 admits A=011, B=011, C=110.
        assert_eq!(exact_rs_n2(3, 4, 1 << 22), SearchOutcome::Optimal(3));
    }

    #[test]
    fn small_n_values_are_monotone() {
        let mut last = 0;
        for n in 2..=8u64 {
            match exact_rs_n2(n, 5, 1 << 24) {
                SearchOutcome::Optimal(t) => {
                    assert!(t >= last, "R_s({n},2) = {t} dropped below {last}");
                    last = t;
                }
                other => panic!("R_s({n},2) search failed: {other:?}"),
            }
        }
        // Theorem 4: the optimum must grow; by n = 8 it exceeds the n = 2
        // value.
        assert!(last >= 2);
    }

    #[test]
    fn witness_actually_satisfies_constraints() {
        let (outcome, witness) = exact_rs_n2_with_witness(5, 5, 1 << 24);
        let SearchOutcome::Optimal(t) = outcome else {
            panic!("no optimum found: {outcome:?}");
        };
        let w = witness.expect("witness accompanies Optimal");
        assert_eq!(w.t, t);
        let mask = (1u32 << t) - 1;
        for (i, &e) in w.edges.iter().enumerate() {
            for (j, &f) in w.edges.iter().enumerate() {
                if i < j {
                    if let Some(kind) = classify(e, f) {
                        assert!(
                            sync_ok(w.strings[i], w.strings[j], kind, mask),
                            "witness violates {e:?} vs {f:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cyclic_optimum_at_least_sync() {
        for n in 2..=5u64 {
            let s = exact_rs_n2(n, 5, 1 << 24);
            let c = exact_ra_n2_cyclic(n, 5, 1 << 24);
            if let (SearchOutcome::Optimal(ts), SearchOutcome::Optimal(tc)) = (s, c) {
                assert!(tc >= ts, "n = {n}: cyclic {tc} < sync {ts}");
            }
        }
    }

    #[test]
    fn cyclic_self_constraint_rejects_alternation() {
        assert!(!cyclic_self_ok(0b10, 2)); // "01" fails at shift 1
        assert!(cyclic_self_ok(0b110, 3));
        assert!(cyclic_self_ok(0b0, 1));
    }

    #[test]
    fn unsat_when_max_t_too_small() {
        assert_eq!(exact_rs_n2(6, 1, 1 << 22), SearchOutcome::ExceedsMax);
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // An absurdly small budget cannot even finish T=1.
        match exact_rs_n2(8, 4, 4) {
            SearchOutcome::Unknown => {}
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn identical_edges_are_unconstrained() {
        // Full overlap (the same edge twice) rendezvouses trivially under
        // synchrony — classify must exclude it rather than emit a
        // vacuous/contradictory constraint.
        assert_eq!(classify((2, 5), (2, 5)), None);
        // And fully disjoint edges share no channel to meet on: no
        // constraint either.
        assert_eq!(classify((1, 2), (5, 9)), None);
        assert_eq!(classify((1, 4), (2, 3)), None);
    }

    #[test]
    fn k3_generates_exactly_its_overlapping_constraints() {
        // K_3's three edges pairwise overlap in exactly one channel
        // (disjoint-except-one in every configuration): 3 constraints, one
        // per pair, none self.
        let csp = Csp::new(3, 2, false, 1 << 10);
        assert_eq!(csp.edges, vec![(1, 2), (1, 3), (2, 3)]);
        assert_eq!(csp.constraints.len(), 3);
        for &(i, j, _) in &csp.constraints {
            assert!(i < j, "constraints must be ordered");
        }
        // K_4 has 6 edges; of the 15 pairs only the 3 perfect matchings'
        // disjoint pairs drop out: 15 − 3 = 12 constraints.
        let csp4 = Csp::new(4, 2, false, 1 << 10);
        assert_eq!(csp4.edges.len(), 6);
        assert_eq!(csp4.constraints.len(), 12);
    }

    #[test]
    fn sync_tuples_match_their_configurations() {
        let mask = 0b11u32;
        // Shared smallest needs an aligned (0,0): x=01, y=10 has (0,·)
        // only at slot 1 where y=1 — no.
        assert!(!sync_ok(0b10, 0b01, Overlap::SharedSmallest, mask));
        assert!(sync_ok(0b10, 0b10, Overlap::SharedSmallest, mask));
        // Shared largest needs (1,1).
        assert!(sync_ok(0b10, 0b11, Overlap::SharedLargest, mask));
        assert!(!sync_ok(0b01, 0b10, Overlap::SharedLargest, mask));
        // 2-paths need the opposing tuples.
        assert!(sync_ok(0b01, 0b10, Overlap::PathFirstLarger, mask));
        assert!(!sync_ok(0b01, 0b01, Overlap::PathFirstLarger, mask));
        assert!(sync_ok(0b10, 0b01, Overlap::PathSecondLarger, mask));
    }

    #[test]
    fn cyclic_single_edge_needs_one_slot() {
        // n = 2: one edge, only the unary self-rendezvous constraint; the
        // constant 1-slot string satisfies every rotation of itself.
        assert_eq!(exact_ra_n2_cyclic(2, 3, 1 << 16), SearchOutcome::Optimal(1));
    }

    #[test]
    fn cyclic_budget_exhaustion_reports_unknown() {
        match exact_ra_n2_cyclic(3, 6, 2) {
            SearchOutcome::Unknown => {}
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn witness_absent_unless_optimal() {
        let (outcome, witness) = exact_rs_n2_with_witness(6, 1, 1 << 22);
        assert_eq!(outcome, SearchOutcome::ExceedsMax);
        assert!(witness.is_none(), "no witness without an optimum");
    }

    #[test]
    #[should_panic(expected = "capped at 2^6")]
    fn oversized_domain_rejected() {
        exact_rs_n2(3, 7, 1 << 10);
    }

    #[test]
    fn rotate_full_shift_is_identity_adjacent() {
        // Rotating by t−1 then by 1 returns the original string.
        for x in 0u32..(1 << 4) {
            assert_eq!(rotate(rotate(x, 3, 4), 1, 4), x);
        }
    }
}
