//! Theorem 7's density argument, made executable.
//!
//! The proof defines the occupancy density
//! `∆(h, σ; T) = |{t < T : σ(t) = h}| / T` and shows by an averaging
//! argument that some pair `A, B` with `A ∩ B = {h}` has
//! `k·∆(h, σ_A; R) + ℓ·∆(h, σ_B; r) ≤ 2`, from which a counting bound on
//! possible rendezvous slots forces an asynchronous rendezvous time of at
//! least `≈ kℓ`.
//!
//! This module computes `∆` exactly and searches pairs drawn from the
//! proof's distribution for concrete **witnesses**: overlap-one set pairs
//! and shifts whose time-to-rendezvous approaches (or exceeds) `kℓ`. Run
//! against *our* construction it quantifies how close Theorem 3's
//! `O(kℓ log log n)` schedules sit to the `Ω(kℓ)` barrier.

use crate::pigeonhole::ScheduleFamily;
use rdv_core::channel::ChannelSet;
use rdv_core::schedule::Schedule;
use rdv_core::verify;

/// The density `∆(h, σ; T)`: the fraction of the first `T` slots spent on
/// channel `h`.
///
/// # Panics
///
/// Panics if `T == 0`.
pub fn density<S: Schedule + ?Sized>(schedule: &S, h: u64, t: u64) -> f64 {
    assert!(t > 0, "density over an empty prefix is undefined");
    let hits = (0..t)
        .filter(|&s| schedule.channel_at(s).get() == h)
        .count();
    hits as f64 / t as f64
}

/// A witness produced by [`worst_overlap_one_pair`].
#[derive(Debug, Clone)]
pub struct AsyncWitness {
    /// The first set (size `k`).
    pub a: ChannelSet,
    /// The second set (size `ℓ`), overlapping `a` in exactly one channel.
    pub b: ChannelSet,
    /// The unique common channel `h`.
    pub h: u64,
    /// The wake-up shift achieving the worst time-to-rendezvous.
    pub shift: u64,
    /// The worst observed time-to-rendezvous.
    pub ttr: u64,
    /// `ttr / (k·ℓ)` — how close the witness sits to the Ω(kℓ) barrier.
    pub barrier_ratio: f64,
    /// The densities `(∆(h, σ_A; T), ∆(h, σ_B; T))` over the sweep horizon.
    pub densities: (f64, f64),
}

/// Deterministically enumerates overlap-one pairs in the style of the
/// proof's random process (a size-`k` set, a shared channel `h`, and
/// `ℓ − 1` fresh channels), sweeps shifts, and returns the worst witness.
///
/// `shift_stride` controls the shift sweep granularity (1 = exhaustive over
/// one period of `A`'s schedule, capped at `max_shifts`).
///
/// Returns `None` if `n < k + ℓ − 1` (no overlap-one pair exists) or no
/// rendezvous completes within `horizon` (which would itself be a
/// counterexample to the family's guarantee — callers should treat it as a
/// failed verification, not a missing witness).
pub fn worst_overlap_one_pair<F: ScheduleFamily>(
    family: &F,
    n: u64,
    k: usize,
    ell: usize,
    horizon: u64,
    shift_stride: u64,
    max_shifts: u64,
) -> Option<AsyncWitness> {
    if n < (k + ell - 1) as u64 {
        return None;
    }
    let mut worst: Option<AsyncWitness> = None;
    // Deterministic pair enumeration: slide the shared channel h and pack
    // A below, B above. This covers the "spread" geometries the averaging
    // argument exploits (h rare in both schedules).
    for offset in 0..(n - (k + ell - 1) as u64 + 1).min(8) {
        let a_lo = offset + 1;
        let h = a_lo + k as u64 - 1;
        let a = ChannelSet::new(a_lo..=h).expect("contiguous");
        let b = ChannelSet::new(h..h + ell as u64).expect("contiguous");
        debug_assert_eq!(a.intersection(&b).len(), 1);
        let sa = family.schedule(&a);
        let sb = family.schedule(&b);
        let period = sa.period_hint().unwrap_or(horizon);
        let shifts = (0..period.min(max_shifts * shift_stride)).step_by(shift_stride as usize);
        let wc = verify::worst_async_ttr(&sa, &sb, shifts, horizon)?;
        let ratio = wc.ttr as f64 / (k * ell) as f64;
        let candidate = AsyncWitness {
            densities: (density(&sa, h, horizon), density(&sb, h, horizon)),
            a,
            b,
            h,
            shift: wc.shift,
            ttr: wc.ttr,
            barrier_ratio: ratio,
        };
        if worst.as_ref().is_none_or(|w| candidate.ttr > w.ttr) {
            worst = Some(candidate);
        }
    }
    worst
}

/// Equation (7)'s expectation check: over the proof's sampling process the
/// expected value of `k·∆(h,σ_A;T) + ℓ·∆(h,σ_B;T')` is exactly 2. This
/// function computes the empirical mean over the deterministic enumeration
/// (useful as a sanity check that a family cannot keep all densities high).
pub fn mean_weighted_density<F: ScheduleFamily>(family: &F, n: u64, k: usize, t: u64) -> f64 {
    // For every set A of a sliding-window enumeration and every h ∈ A:
    // k·∆(h, σ_A; T) averaged — by definition of density this is exactly 1
    // when averaged over h ∈ A for any fixed A; the enumeration mirrors
    // the proof's symmetrization.
    let mut total = 0.0;
    let mut count = 0usize;
    for lo in 1..=(n - k as u64 + 1).min(6) {
        let a = ChannelSet::new(lo..lo + k as u64).expect("contiguous");
        let sa = family.schedule(&a);
        for h in a.iter() {
            total += k as f64 * density(&sa, h.get(), t);
            count += 1;
        }
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdv_core::channel::Channel;
    use rdv_core::general::GeneralSchedule;
    use rdv_core::schedule::CyclicSchedule;

    fn round_robin(set: &ChannelSet) -> CyclicSchedule {
        CyclicSchedule::new(set.iter().collect()).expect("non-empty")
    }

    #[test]
    fn density_counts_exactly() {
        let s = CyclicSchedule::new(vec![
            Channel::new(1),
            Channel::new(2),
            Channel::new(1),
            Channel::new(3),
        ])
        .unwrap();
        assert_eq!(density(&s, 1, 4), 0.5);
        assert_eq!(density(&s, 2, 4), 0.25);
        assert_eq!(density(&s, 9, 4), 0.0);
        assert_eq!(density(&s, 1, 2), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty prefix")]
    fn zero_horizon_panics() {
        let s = CyclicSchedule::new(vec![Channel::new(1)]).unwrap();
        density(&s, 1, 0);
    }

    #[test]
    fn mean_weighted_density_is_one_for_round_robin() {
        // k·∆ averaged over h ∈ A equals 1 exactly when T is a multiple of
        // the period.
        let m = mean_weighted_density(&round_robin, 12, 3, 9);
        assert!((m - 1.0).abs() < 1e-9, "mean {m}");
    }

    #[test]
    fn witness_against_round_robin() {
        // Round-robin schedules of coprime sizes drift into each other
        // quickly, but the overlap-one pair still yields a measurable
        // worst case ≥ 1 slot; the harness must find and verify it.
        let w =
            worst_overlap_one_pair(&round_robin, 16, 3, 4, 10_000, 1, 64).expect("witness exists");
        assert_eq!(w.a.intersection(&w.b).len(), 1);
        assert!(w.a.contains(w.h) && w.b.contains(w.h));
        assert!(w.ttr >= 1);
    }

    #[test]
    fn our_construction_sits_above_the_barrier() {
        // Theorem 7 says ANY family has a kℓ witness; Theorem 3's family
        // is O(kℓ log log n), so the worst witness should land within a
        // modest multiple of kℓ — and, being a lower-bound witness, the
        // observed worst case must be at least a constant fraction of kℓ.
        let n = 16u64;
        let family =
            |set: &ChannelSet| GeneralSchedule::asynchronous(n, set.clone()).expect("valid");
        let k = 3usize;
        let ell = 3usize;
        let horizon = 1 << 20;
        let w = worst_overlap_one_pair(&family, n, k, ell, horizon, 7, 64)
            .expect("construction must rendezvous");
        assert!(
            w.barrier_ratio >= 0.5,
            "worst witness {} suspiciously below the kℓ barrier ({})",
            w.ttr,
            w.barrier_ratio
        );
        // And the guarantee holds: within the Theorem 3 bound.
        let bound = family(&w.a).ttr_bound(ell);
        assert!(w.ttr <= bound, "ttr {} exceeds bound {bound}", w.ttr);
    }

    #[test]
    fn small_universe_rejected() {
        assert!(worst_overlap_one_pair(&round_robin, 3, 3, 3, 100, 1, 8).is_none());
    }
}
