//! Theorem 6's pigeonhole argument, made constructive.
//!
//! For any `(n,k)`-schedule family and any `1 ≤ α ≤ k` with `n ≥ k^{2α}`,
//! the proof partitions the channels into `n/k` disjoint blocks, finds in
//! each block's schedule a channel `a_i` appearing fewer than `α` times in
//! the first `αk − 1` slots, pads its occurrence-slot set to a set `A_i` of
//! size `α − 1`, and pigeonholes: some `k` blocks share the same `A_i = Z`.
//! The set `Ŝ = {a_{i₁}, …, a_{i_k}}` then cannot rendezvous with all `k`
//! block schedules within `αk − 1` slots — because each rendezvous must
//! happen inside `Z`, `|Z| = α − 1`, and the `σ̂^{-1}(a_{i_j})` are
//! disjoint, which would force `|Z| ≥ k > α − 1`.
//!
//! [`certify`] executes exactly this construction against a concrete
//! schedule family and returns the witness, *certifying* `R_s ≥ αk` for
//! that family (the paper's theorem quantifies over all families; per
//! family the certificate is checkable in polynomial time).

use rdv_core::channel::ChannelSet;
use rdv_core::schedule::Schedule;
use rdv_core::verify;
use std::collections::HashMap;

/// A factory producing the family's schedule for any channel set.
pub trait ScheduleFamily {
    /// The concrete schedule type.
    type S: Schedule;
    /// The schedule for `set` (within the family's fixed universe).
    fn schedule(&self, set: &ChannelSet) -> Self::S;
}

impl<F, S> ScheduleFamily for F
where
    F: Fn(&ChannelSet) -> S,
    S: Schedule,
{
    type S = S;
    fn schedule(&self, set: &ChannelSet) -> S {
        self(set)
    }
}

/// The witness produced by [`certify`].
#[derive(Debug, Clone)]
pub struct PigeonholeWitness {
    /// The `k` block sets whose schedules share the rare-slot set `Z`.
    pub blocks: Vec<ChannelSet>,
    /// The rare channel selected in each block.
    pub rare_channels: Vec<u64>,
    /// The shared slot set `Z` (size `α − 1`).
    pub z: Vec<u64>,
    /// The adversarial set `Ŝ = {a_{i₁}, …, a_{i_k}}`.
    pub s_hat: ChannelSet,
    /// Pairs `(block index, sync TTR)` — at least one entry must exceed
    /// `αk − 1` for the certificate to hold.
    pub ttrs: Vec<(usize, Option<u64>)>,
    /// The certified bound: some pair needs at least this many slots.
    pub certified_bound: u64,
}

/// Runs Theorem 6's construction against `family`.
///
/// Returns `None` when the pigeonhole cannot be completed (i.e. `n` is too
/// small relative to `k` and `α`, or no `k` blocks collide — the theorem
/// guarantees a collision when `n/k > (k−1)·C(αk−1, α−1)`).
///
/// When it returns a witness, the witness has been *verified*: at least one
/// of the `k` block schedules fails to rendezvous with `Ŝ`'s schedule
/// within `αk − 1` slots, so the family's synchronous rendezvous time is at
/// least `αk`.
pub fn certify<F: ScheduleFamily>(
    family: &F,
    n: u64,
    k: usize,
    alpha: usize,
) -> Option<PigeonholeWitness> {
    assert!(alpha >= 1 && alpha <= k, "need 1 ≤ α ≤ k");
    let horizon = (alpha * k - 1) as u64;
    let num_blocks = (n / k as u64) as usize;
    if num_blocks < k {
        return None;
    }
    // Partition [n] into contiguous blocks of size k.
    let mut rare: Vec<(ChannelSet, u64, Vec<u64>)> = Vec::new();
    for b in 0..num_blocks {
        let lo = b as u64 * k as u64 + 1;
        let set = ChannelSet::new(lo..lo + k as u64).expect("valid block");
        let sched = family.schedule(&set);
        // Occurrence slots of each channel within the first αk−1 slots.
        let mut occ: HashMap<u64, Vec<u64>> = HashMap::new();
        for t in 0..horizon {
            occ.entry(sched.channel_at(t).get()).or_default().push(t);
        }
        // A channel appearing fewer than α times (exists by counting).
        let (&a, slots) = set
            .as_slice()
            .iter()
            .map(|c| (c, occ.get(c).cloned().unwrap_or_default()))
            .find(|(_, slots)| slots.len() < alpha)?;
        // Pad the slot set to size exactly α − 1 deterministically.
        let mut z = slots;
        let mut filler = 0u64;
        while z.len() < alpha - 1 {
            if !z.contains(&filler) {
                z.push(filler);
            }
            filler += 1;
        }
        z.sort_unstable();
        rare.push((set, a, z));
    }
    // Pigeonhole: find k blocks with identical Z whose rare channels are
    // distinct (they are, being drawn from disjoint blocks). The colliding
    // group is chosen by smallest Z, not HashMap iteration order — the
    // witness feeds the reproduction artifacts, which must be bit-identical
    // across runs.
    let mut groups: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
    for (i, (_, _, z)) in rare.iter().enumerate() {
        groups.entry(z.clone()).or_default().push(i);
    }
    let (z, indices) = groups
        .into_iter()
        .filter(|(_, idxs)| idxs.len() >= k)
        .min_by(|a, b| a.0.cmp(&b.0))?;
    let chosen: Vec<usize> = indices.into_iter().take(k).collect();
    let s_hat = ChannelSet::new(chosen.iter().map(|&i| rare[i].1))
        .expect("rare channels are distinct across blocks");
    let hat_sched = family.schedule(&s_hat);
    let mut ttrs = Vec::new();
    let mut any_failure = false;
    for (pos, &i) in chosen.iter().enumerate() {
        let block_sched = family.schedule(&rare[i].0);
        let ttr = verify::sync_ttr(&hat_sched, &block_sched, horizon);
        if ttr.is_none() {
            any_failure = true;
        }
        ttrs.push((pos, ttr));
    }
    if !any_failure {
        // The family dodged this particular witness (possible when the
        // padding slots happen to align); the theorem's counting still
        // guarantees some witness exists, but we only report verified ones.
        return None;
    }
    Some(PigeonholeWitness {
        blocks: chosen.iter().map(|&i| rare[i].0.clone()).collect(),
        rare_channels: chosen.iter().map(|&i| rare[i].1).collect(),
        z,
        s_hat,
        ttrs,
        certified_bound: horizon + 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdv_core::channel::Channel;
    use rdv_core::schedule::CyclicSchedule;

    /// A deliberately weak family: every set round-robins its channels.
    fn round_robin(set: &ChannelSet) -> CyclicSchedule {
        CyclicSchedule::new(set.iter().collect()).expect("non-empty")
    }

    #[test]
    fn round_robin_family_is_certified_slow() {
        // k = 2, α = 2: need n/k > (k−1)·C(3,1) = 3 blocks, i.e. n ≥ 8.
        let w = certify(&round_robin, 16, 2, 2).expect("witness must exist");
        assert_eq!(w.s_hat.len(), 2);
        assert_eq!(w.z.len(), 1);
        assert!(w.certified_bound >= 4);
        assert!(w.ttrs.iter().any(|(_, t)| t.is_none()));
    }

    #[test]
    fn witness_blocks_are_disjoint() {
        let w = certify(&round_robin, 24, 2, 2).expect("witness");
        let mut all: Vec<u64> = w
            .blocks
            .iter()
            .flat_map(|b| b.as_slice().to_vec())
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "blocks overlap");
    }

    #[test]
    fn too_small_universe_yields_none() {
        assert!(certify(&round_robin, 4, 3, 2).is_none());
    }

    #[test]
    fn constant_family_certified() {
        // The family that always sits on its smallest channel: trivially
        // certified (blocks other than Ŝ's own never rendezvous).
        let constant =
            |set: &ChannelSet| CyclicSchedule::new(vec![set.min_channel()]).expect("non-empty");
        let w = certify(&constant, 16, 2, 2).expect("witness");
        assert!(w.ttrs.iter().any(|(_, t)| t.is_none()));
    }

    #[test]
    fn rare_channels_come_from_their_blocks() {
        let w = certify(&round_robin, 32, 4, 1).unwrap_or_else(|| {
            // α = 1: horizon = k−1 slots; rare channel = one not yet played.
            panic!("α=1 witness must exist for round-robin")
        });
        for (c, b) in w.rare_channels.iter().zip(w.blocks.iter()) {
            assert!(b.contains(*c));
        }
    }

    #[test]
    fn certificate_bound_matches_alpha_k() {
        if let Some(w) = certify(&round_robin, 64, 3, 2) {
            assert_eq!(w.certified_bound, (2 * 3 - 1) + 1);
        }
    }

    /// The real construction should *survive* small pigeonhole attacks well
    /// beyond its guaranteed bound — this documents that the witness search
    /// reports honest results rather than always "succeeding".
    #[test]
    fn general_schedule_responds() {
        let family = |set: &ChannelSet| {
            rdv_core::general::GeneralSchedule::synchronous(16, set.clone()).expect("valid set")
        };
        // Whatever the outcome, the call must be well-formed; for k = 2,
        // α = 2, the horizon (3 slots) is far below the construction's
        // actual rendezvous time, so a witness typically exists.
        let _ = certify(&family, 16, 2, 2);
        // Channel type stays in scope for the imports above.
        let _ = Channel::new(1);
    }
}
