//! Lower-bound harnesses for Section 4 of the paper.
//!
//! The paper's lower bounds are existence proofs; this crate turns each into
//! something executable:
//!
//! * [`exact`] — computes the *exact* optimal synchronous rendezvous time
//!   `R_s(n, 2)` (and a cyclic-schedule variant of `R_a(n, 2)`) for small
//!   universes by exhaustive constraint search over all `(n,2)`-schedules.
//!   This is the empirical companion of Theorem 4's `Ω(log log n)`: the
//!   computed optima grow with `n` exactly as the Ramsey argument predicts
//!   (they are the smallest `T` for which `2^T`-coloring of `K_n` avoids
//!   the forbidden monochromatic configurations).
//! * [`pigeonhole`] — Theorem 6's constructive argument: for a concrete
//!   schedule family, build the witness sets whose schedules provably
//!   cannot all rendezvous quickly, certifying `R_s ≥ αk` for that family.
//! * [`ramsey_bridge`] — Theorem 4's Ramsey attack run against concrete
//!   schedule families: extract the induced edge coloring, hunt for the
//!   monochromatic 2-path that dooms rendezvous, verify the certificate.
//! * [`density`] — Theorem 7's density functional `∆(h, σ; T)` and the
//!   adversarial pair/shift search that exhibits `Ω(kℓ)`-slot witnesses
//!   against any concrete asynchronous schedule family.
//! * [`sandwich`] — the per-scenario covering bound behind the repro
//!   pipeline's *sandwich invariant*: for every measured cell,
//!   `best_bound ≤ worst-over-shifts TTR ≤ the proven upper bound`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod density;
pub mod exact;
pub mod pigeonhole;
pub mod ramsey_bridge;
pub mod sandwich;

pub use exact::{exact_ra_n2_cyclic, exact_rs_n2, SearchOutcome};
pub use sandwich::{best_bound, coverage_bound};
