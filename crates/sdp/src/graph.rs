//! The orientation-maximization instance: a multigraph of size-two agents.

/// A graph whose edges are agents with two channels each.
///
/// Vertices are channels `0..n_vertices`; parallel edges are allowed (two
/// agents may own the same channel pair). The *initial orientation* of edge
/// `(u, v)` is `u → v` as given.
///
/// # Example
///
/// ```
/// use rdv_sdp::OrientGraph;
///
/// // A star on 4 leaves: best one-round outcome orients everything inward.
/// let g = OrientGraph::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
/// assert_eq!(g.incident_pairs().len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrientGraph {
    n_vertices: usize,
    edges: Vec<(u32, u32)>,
}

impl OrientGraph {
    /// Validates and builds an instance.
    ///
    /// Returns `None` if any edge is a self-loop or touches a vertex
    /// `≥ n_vertices`, or if there are no edges.
    pub fn new(n_vertices: usize, edges: Vec<(u32, u32)>) -> Option<Self> {
        if edges.is_empty() {
            return None;
        }
        for &(u, v) in &edges {
            if u == v || u as usize >= n_vertices || v as usize >= n_vertices {
                return None;
            }
        }
        Some(OrientGraph { n_vertices, edges })
    }

    /// Number of vertices (channels).
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// The edges (agents), in input order.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Number of edges (agents).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// All incident edge pairs `(e, f, w)` with `e < f` sharing vertex `w`.
    ///
    /// Edges sharing *both* endpoints contribute two pairs (one per shared
    /// vertex), matching the appendix's count of rendezvousing agent pairs
    /// by meeting channel.
    pub fn incident_pairs(&self) -> Vec<(usize, usize, u32)> {
        let mut out = Vec::new();
        for i in 0..self.edges.len() {
            for j in i + 1..self.edges.len() {
                let (a, b) = self.edges[i];
                let (c, d) = self.edges[j];
                for w in [a, b] {
                    if w == c || w == d {
                        out.push((i, j, w));
                    }
                }
            }
        }
        out
    }

    /// `+1` if edge `e` initially points into `w`, `−1` if away.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not an endpoint of `e`.
    pub fn direction_into(&self, e: usize, w: u32) -> i32 {
        let (u, v) = self.edges[e];
        if v == w {
            1
        } else if u == w {
            -1
        } else {
            panic!("vertex {w} is not an endpoint of edge {e}")
        }
    }

    /// Counts in-pairs under an orientation (`x[e] = true` keeps the initial
    /// direction, `false` flips it).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n_edges()`.
    pub fn in_pairs(&self, x: &[bool]) -> usize {
        assert_eq!(x.len(), self.n_edges(), "orientation length mismatch");
        self.incident_pairs()
            .iter()
            .filter(|&&(e, f, w)| {
                let xe = if x[e] { 1 } else { -1 };
                let xf = if x[f] { 1 } else { -1 };
                xe * self.direction_into(e, w) == 1 && xf * self.direction_into(f, w) == 1
            })
            .count()
    }

    /// Counts in-pairs plus out-pairs under an orientation — the quantity
    /// the SDP relaxes.
    pub fn in_plus_out_pairs(&self, x: &[bool]) -> usize {
        assert_eq!(x.len(), self.n_edges(), "orientation length mismatch");
        self.incident_pairs()
            .iter()
            .filter(|&&(e, f, w)| {
                let xe = if x[e] { 1 } else { -1 };
                let xf = if x[f] { 1 } else { -1 };
                xe * self.direction_into(e, w) == xf * self.direction_into(f, w)
            })
            .count()
    }

    /// The sign `sgn(e, f)` of the SDP objective: `+1` when keeping both
    /// initial orientations makes the pair an in-pair or out-pair at their
    /// shared vertex, `−1` for a cross-pair.
    pub fn pair_sign(&self, e: usize, f: usize, w: u32) -> i32 {
        self.direction_into(e, w) * self.direction_into(f, w)
    }

    /// A seeded random multigraph: a vertex count drawn from `nv_range`,
    /// an edge count from `ne_range`, and that many uniform non-loop
    /// edges (parallel edges allowed) — deterministic given the seed.
    /// The instance generator behind the SDP pipeline's `random-*`
    /// families and the solver's randomized tests.
    ///
    /// # Panics
    ///
    /// Panics if the ranges admit `nv < 2` or `ne < 1` draws (no
    /// non-loop edge exists / the graph would be empty).
    pub fn seeded_random(
        seed: u64,
        nv_range: std::ops::Range<usize>,
        ne_range: std::ops::Range<usize>,
    ) -> Self {
        use rand::{Rng, SeedableRng};
        assert!(nv_range.start >= 2, "non-loop edges need two vertices");
        assert!(ne_range.start >= 1, "instances need at least one edge");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let nv = rng.gen_range(nv_range);
        let ne = rng.gen_range(ne_range);
        let edges: Vec<(u32, u32)> = (0..ne)
            .map(|_| {
                let u = rng.gen_range(0..nv as u32);
                let mut v = rng.gen_range(0..nv as u32);
                while v == u {
                    v = rng.gen_range(0..nv as u32);
                }
                (u, v)
            })
            .collect();
        OrientGraph::new(nv, edges).expect("non-loop edges within the universe")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(OrientGraph::new(3, vec![]).is_none());
        assert!(OrientGraph::new(3, vec![(0, 0)]).is_none());
        assert!(OrientGraph::new(3, vec![(0, 3)]).is_none());
        assert!(OrientGraph::new(3, vec![(0, 2)]).is_some());
    }

    #[test]
    fn path_graph_pairs() {
        // Path 0-1-2: one incident pair at vertex 1.
        let g = OrientGraph::new(3, vec![(0, 1), (1, 2)]).unwrap();
        assert_eq!(g.incident_pairs(), vec![(0, 1, 1)]);
        // Initial orientations: 0→1 (into 1), 1→2 (out of 1): cross-pair.
        assert_eq!(g.pair_sign(0, 1, 1), -1);
        assert_eq!(g.in_pairs(&[true, true]), 0);
        // Flip the second edge: 0→1, 2→1: in-pair.
        assert_eq!(g.in_pairs(&[true, false]), 1);
        assert_eq!(g.in_plus_out_pairs(&[true, false]), 1);
        // Flip the first instead: 1→0, 1→2: out-pair (counts for in+out).
        assert_eq!(g.in_pairs(&[false, true]), 0);
        assert_eq!(g.in_plus_out_pairs(&[false, true]), 1);
    }

    #[test]
    fn star_counts() {
        let g = OrientGraph::new(5, vec![(1, 0), (2, 0), (3, 0), (4, 0)]).unwrap();
        // All initial orientations point into the hub: C(4,2) in-pairs.
        assert_eq!(g.in_pairs(&[true; 4]), 6);
        // One flipped: C(3,2) = 3 in-pairs remain.
        assert_eq!(g.in_pairs(&[false, true, true, true]), 3);
    }

    #[test]
    fn parallel_edges_share_two_vertices() {
        let g = OrientGraph::new(2, vec![(0, 1), (0, 1)]).unwrap();
        assert_eq!(g.incident_pairs().len(), 2);
        // Same direction: in-pair at vertex 1 (both into), out-pair at 0.
        assert_eq!(g.in_pairs(&[true, true]), 1);
        assert_eq!(g.in_plus_out_pairs(&[true, true]), 2);
        // Opposite directions: two cross-pairs.
        assert_eq!(g.in_pairs(&[true, false]), 0);
        assert_eq!(g.in_plus_out_pairs(&[true, false]), 0);
    }

    #[test]
    fn seeded_random_is_deterministic_and_valid() {
        let a = OrientGraph::seeded_random(7, 5..9, 6..13);
        let b = OrientGraph::seeded_random(7, 5..9, 6..13);
        assert_eq!(a, b, "same seed must reproduce the instance");
        assert_ne!(a, OrientGraph::seeded_random(8, 5..9, 6..13));
        assert!((5..9).contains(&a.n_vertices()));
        assert!((6..13).contains(&a.n_edges()));
        for &(u, v) in a.edges() {
            assert_ne!(u, v, "no self-loops");
        }
    }

    #[test]
    fn triangle_max_is_one() {
        // A directed triangle can realize at most one in-pair.
        let g = OrientGraph::new(3, vec![(0, 1), (1, 2), (2, 0)]).unwrap();
        let mut best = 0;
        for mask in 0u32..8 {
            let x: Vec<bool> = (0..3).map(|i| mask >> i & 1 == 1).collect();
            best = best.max(g.in_pairs(&x));
        }
        assert_eq!(best, 1);
    }
}
