//! One-round rendezvous maximization (the paper's appendix).
//!
//! In the *graphical* case every agent has exactly two channels, so agents
//! are edges of a graph on the channels, and choosing a channel for one
//! round orients each edge. A pair of incident edges rendezvouses iff both
//! point **into** their shared vertex (an *in-pair*). The appendix gives:
//!
//! * a trivial randomized `0.25`-approximation (orient uniformly at
//!   random) — [`random_orientation_value`];
//! * a `0.439`-approximation by solving a Goemans–Williamson-style
//!   semidefinite program over *edge* vectors, rounding with a random
//!   hyperplane, and playing the better of the rounded orientation and its
//!   flip (`0.878 / 2 = 0.439`) — [`solve`].
//!
//! The SDP is solved by low-rank Burer–Monteiro projected gradient ascent
//! (rank `⌈√(2m)⌉ + 1`, above the barrier for spurious local optima), which
//! needs no external solver and is deterministic given the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod solver;

pub use graph::OrientGraph;
pub use solver::{exact_max_in_pairs, random_orientation_value, solve, SdpConfig, SdpResult};
